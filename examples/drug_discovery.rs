//! Drug-discovery scenario from the paper's introduction: bridging
//! links between a curated pharmacology KG and an emerging KG of newly
//! synthesized compounds can reveal unknown drug–drug interactions
//! ("the discovery of Artemisinin").
//!
//! The original KG describes approved drugs, their protein targets and
//! interaction patterns; the emerging KG describes a new compound
//! family studied in isolation. DEKG-ILP proposes cross-graph
//! `interacts_with` edges from the shared relation vocabulary alone.
//!
//! ```sh
//! cargo run --release --example drug_discovery
//! ```

use dekg::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Relations of the pharmacology domain.
const RELATIONS: &[&str] = &[
    "targets",        // drug -> protein
    "interacts_with", // drug -> drug
    "metabolized_by", // drug -> enzyme
    "inhibits",       // drug -> enzyme
    "treats",         // drug -> disease
];

fn build_dataset() -> DekgDataset {
    let mut kg = KnowledgeGraph::new();
    for r in RELATIONS {
        kg.vocab_mut().intern_relation(r);
    }

    // --- original KG: approved drugs ---
    // Two interaction "families": CYP3A4-metabolized drugs interact
    // with CYP3A4 inhibitors; kinase-targeting drugs interact with each
    // other. These regularities are what CLRM can pick up.
    let facts: &[(&str, &str, &str)] = &[
        // statin family (metabolized by cyp3a4)
        ("simvastatin", "metabolized_by", "cyp3a4"),
        ("atorvastatin", "metabolized_by", "cyp3a4"),
        ("simvastatin", "treats", "hyperlipidemia"),
        ("atorvastatin", "treats", "hyperlipidemia"),
        // azole family (inhibits cyp3a4)
        ("ketoconazole", "inhibits", "cyp3a4"),
        ("itraconazole", "inhibits", "cyp3a4"),
        ("ketoconazole", "treats", "mycosis"),
        ("itraconazole", "treats", "mycosis"),
        // observed interactions: inhibitor x metabolized
        ("ketoconazole", "interacts_with", "simvastatin"),
        ("itraconazole", "interacts_with", "simvastatin"),
        ("ketoconazole", "interacts_with", "atorvastatin"),
        // kinase inhibitors
        ("imatinib", "targets", "bcr_abl"),
        ("dasatinib", "targets", "bcr_abl"),
        ("imatinib", "treats", "leukemia"),
        ("dasatinib", "treats", "leukemia"),
        ("imatinib", "metabolized_by", "cyp3a4"),
        ("imatinib", "interacts_with", "ketoconazole"),
    ];
    for &(h, r, t) in facts {
        kg.add_fact(h, r, t);
    }
    let num_original_entities = kg.vocab().num_entities();
    let original = kg.store().clone();

    // --- emerging KG: a new compound family, no cross edges ---
    let mut emerging = TripleStore::new();
    let new_facts: &[(&str, &str, &str)] = &[
        // "nova" compounds mirror the statin profile…
        ("novastatin_a", "metabolized_by", "cyp_like_enzyme"),
        ("novastatin_b", "metabolized_by", "cyp_like_enzyme"),
        ("novastatin_a", "treats", "new_lipid_disorder"),
        ("novastatin_b", "treats", "new_lipid_disorder"),
        // …and a new azole-like inhibitor.
        ("novazole", "inhibits", "cyp_like_enzyme"),
        ("novazole", "treats", "new_mycosis"),
        ("novazole", "interacts_with", "novastatin_a"),
    ];
    for &(h, r, t) in new_facts {
        let head = kg.vocab_mut().intern_entity(h);
        let rel = kg.vocab_mut().intern_relation(r);
        let tail = kg.vocab_mut().intern_entity(t);
        emerging.insert(Triple::new(head, rel, tail));
    }

    let resolve = |kg: &KnowledgeGraph, h: &str, r: &str, t: &str| {
        let f = kg.resolve(h, r, t).expect("known names");
        Triple::new(f.head, f.rel, f.tail)
    };

    let data = DekgDataset {
        name: "drug-discovery".into(),
        vocab: kg.vocab().clone(),
        num_original_entities,
        num_relations: RELATIONS.len(),
        original,
        emerging,
        valid: vec![],
        // Enclosing truth: the second in-family interaction.
        test_enclosing: vec![resolve(&kg, "novazole", "interacts_with", "novastatin_b")],
        // Bridging truths: known azoles interact with the new statins,
        // and the new azole interacts with the old statins.
        test_bridging: vec![
            resolve(&kg, "ketoconazole", "interacts_with", "novastatin_a"),
            resolve(&kg, "novazole", "interacts_with", "simvastatin"),
        ],
    };
    data.validate();
    data
}

fn main() {
    let data = build_dataset();
    println!(
        "pharmacology KG: {} facts; emerging compound KG: {} facts\n",
        data.original.len(),
        data.emerging.len()
    );

    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let cfg = DekgIlpConfig {
        dim: 16,
        epochs: 60,
        batch_size: 8,
        num_contrastive: 4,
        gnn_layers: 2,
        ..DekgIlpConfig::quick()
    };
    let mut model = DekgIlp::new(cfg, &data, &mut rng);
    let report = model.fit(&data, &mut rng);
    println!("trained: loss {:.3} -> {:.3}\n", report.initial_loss, report.final_loss);

    let graph = InferenceGraph::from_dataset(&data);
    let interacts = data.vocab.relation("interacts_with").unwrap();

    // Screen every (old drug, new compound) pair for interactions.
    println!("cross-graph interaction screen (top 6 of all old x new pairs):");
    let mut pairs: Vec<(String, String, f32)> = Vec::new();
    for old in 0..data.num_original_entities as u32 {
        for new in data.num_original_entities as u32..data.num_entities() as u32 {
            let t = Triple::new(EntityId(old), interacts, EntityId(new));
            let s = model.score(&graph, &t);
            pairs.push((
                data.vocab.entity_name(EntityId(old)).to_owned(),
                data.vocab.entity_name(EntityId(new)).to_owned(),
                s,
            ));
        }
    }
    pairs.sort_by(|a, b| b.2.total_cmp(&a.2));
    for (old, new, s) in pairs.iter().take(6) {
        let truth = data.test_bridging.iter().any(|t| {
            data.vocab.entity_name(t.head) == old && data.vocab.entity_name(t.tail) == new
        });
        println!(
            "  {:<14} interacts_with {:<16} {:>8.3}{}",
            old,
            new,
            s,
            if truth { "  <-- held-out truth" } else { "" }
        );
    }

    // Where do the held-out bridging truths rank?
    for truth in &data.test_bridging {
        let rank = pairs
            .iter()
            .position(|(o, n, _)| {
                *o == data.vocab.entity_name(truth.head) && *n == data.vocab.entity_name(truth.tail)
            })
            .map(|p| p + 1);
        if let Some(rank) = rank {
            println!(
                "\nheld-out {} ranked {rank} of {}",
                data.vocab.entity_name(truth.head),
                pairs.len()
            );
        }
    }
}
