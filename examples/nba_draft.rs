//! The paper's Fig. 1 motivating example: the NBA 2008 draft.
//!
//! The original KG holds the established league (teams, veterans,
//! colleges); the disconnected emerging KG holds the draft class —
//! brand-new players connected only to each other. The interesting
//! prediction is the **bridging link** `(thunder, employ, russell)`,
//! which no edge in either graph anticipates topologically.
//!
//! ```sh
//! cargo run --release --example nba_draft
//! ```

use dekg::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Builds the shared-vocabulary dataset by hand: facts mirror Fig. 1.
fn build_dataset() -> DekgDataset {
    let mut kg = KnowledgeGraph::new();

    // --- original KG G: the established league ---
    // teams employ veterans; veterans have teammates and coaches;
    // colleges employ(ed) people.
    let original_facts: &[(&str, &str, &str)] = &[
        ("thunder", "employ", "durant"),
        ("thunder", "employ", "collison"),
        ("lakers", "employ", "kobe"),
        ("lakers", "employ", "gasol"),
        ("celtics", "employ", "pierce"),
        ("celtics", "employ", "garnett"),
        // Players are teammate-heavy: that is the profile CLRM must
        // learn to recognize employees by.
        ("durant", "teammate", "collison"),
        ("collison", "teammate", "durant"),
        ("kobe", "teammate", "gasol"),
        ("gasol", "teammate", "kobe"),
        ("pierce", "teammate", "garnett"),
        ("garnett", "teammate", "pierce"),
        ("durant", "employed_by", "thunder"),
        ("collison", "employed_by", "thunder"),
        ("kobe", "employed_by", "lakers"),
        ("gasol", "employed_by", "lakers"),
        ("pierce", "employed_by", "celtics"),
        ("garnett", "employed_by", "celtics"),
        ("brooks", "team_coach", "thunder"),
        ("jackson", "team_coach", "lakers"),
        ("rivers", "team_coach", "celtics"),
        ("brooks", "coach", "durant"),
        ("brooks", "coach", "collison"),
        ("jackson", "coach", "kobe"),
        ("jackson", "coach", "gasol"),
        ("rivers", "coach", "pierce"),
        ("rivers", "coach", "garnett"),
        ("ucla_bruins", "employ", "kareem"),
        ("kareem", "employed_by", "ucla_bruins"),
        ("kareem", "teammate", "walton"),
        ("walton", "teammate", "kareem"),
        ("ucla_bruins", "employ", "walton"),
        ("walton", "employed_by", "ucla_bruins"),
        ("texas_longhorns", "employ", "durant_sr"),
        ("durant_sr", "employed_by", "texas_longhorns"),
    ];
    for &(h, r, t) in original_facts {
        kg.add_fact(h, r, t);
    }
    let num_original_entities = kg.vocab().num_entities();
    let original = kg.store().clone();

    // --- emerging KG G': the 2008 draft class, disconnected from G ---
    let mut emerging = TripleStore::new();
    let emerging_facts: &[(&str, &str, &str)] = &[
        ("russell", "teammate", "kevin_love"),
        ("kevin_love", "teammate", "russell"),
        ("russell", "teammate", "mayo"),
        ("mayo", "teammate", "kevin_love"),
        ("kevin_love", "teammate", "mayo"),
        ("draft_coach", "coach", "russell"),
        ("draft_coach", "coach", "kevin_love"),
        ("draft_coach", "coach", "mayo"),
    ];
    for &(h, r, t) in emerging_facts {
        let head = kg.vocab_mut().intern_entity(h);
        let rel = kg.vocab_mut().intern_relation(r);
        let tail = kg.vocab_mut().intern_entity(t);
        emerging.insert(Triple::new(head, rel, tail));
    }

    let resolve = |kg: &KnowledgeGraph, h: &str, r: &str, t: &str| {
        let f = kg.resolve(h, r, t).expect("known names");
        Triple::new(f.head, f.rel, f.tail)
    };

    // Bridging truths: teams drafting the class of 2008.
    let test_bridging = vec![
        resolve(&kg, "thunder", "employ", "russell"),
        resolve(&kg, "russell", "employed_by", "thunder"),
        resolve(&kg, "lakers", "employ", "kevin_love"),
    ];
    // An enclosing truth inside the draft class.
    let test_enclosing = vec![resolve(&kg, "mayo", "teammate", "russell")];

    let num_relations = kg.vocab().num_relations();
    let data = DekgDataset {
        name: "nba-2008-draft".into(),
        vocab: kg.vocab().clone(),
        num_original_entities,
        num_relations,
        original,
        emerging,
        valid: vec![],
        test_enclosing,
        test_bridging,
    };
    data.validate();
    data
}

fn main() {
    let data = build_dataset();
    println!(
        "original KG:  {} triples over {} entities",
        data.original.len(),
        data.num_original_entities
    );
    println!(
        "emerging KG:  {} triples over {} unseen entities\n",
        data.emerging.len(),
        data.num_entities() - data.num_original_entities
    );

    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let cfg = DekgIlpConfig {
        dim: 16,
        epochs: 120,
        batch_size: 8,
        num_contrastive: 4,
        gnn_layers: 2,
        ..DekgIlpConfig::quick()
    };
    let mut model = DekgIlp::new(cfg, &data, &mut rng);
    let report = model.fit(&data, &mut rng);
    println!("trained DEKG-ILP: loss {:.3} -> {:.3}\n", report.initial_loss, report.final_loss);

    // Rank the true draft destination against every other entity.
    let graph = InferenceGraph::from_dataset(&data);
    let target = data.test_bridging[0]; // (thunder, employ, russell)
    println!(
        "query: ({}, employ, ?) — who does the Thunder hire?",
        data.vocab.entity_name(target.head)
    );

    let mut scored: Vec<(String, f32)> = (0..data.num_entities() as u32)
        .map(|e| {
            let cand = Triple::new(target.head, target.rel, EntityId(e));
            let name = data.vocab.entity_name(EntityId(e)).to_owned();
            // Skip already-known employees via the filtered protocol.
            let score = if data.original.contains(&cand) {
                f32::NEG_INFINITY
            } else {
                model.score(&graph, &cand)
            };
            (name, score)
        })
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1));

    println!("top-5 candidates:");
    for (i, (name, score)) in scored.iter().take(5).enumerate() {
        let marker = if *name == "russell" { "  <-- true bridging link" } else { "" };
        println!("  {}. {:<16} {:>8.3}{}", i + 1, name, score, marker);
    }
    let rank = scored.iter().position(|(n, _)| n == "russell").unwrap() + 1;
    println!("\nrank of russell: {rank} of {}", scored.len());
}
