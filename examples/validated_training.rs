//! Production-style training: validation-based early stopping, LR
//! decay, Bernoulli negative sampling and checkpointing.
//!
//! ```sh
//! cargo run --release --example validated_training
//! ```

use dekg::core::train::{train_with_validation, ValidationConfig};
use dekg::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let profile = DatasetProfile::table2(RawKg::Fb15k237, SplitKind::Eq).scaled(0.06);
    let data = generate(&SynthConfig::for_profile(profile, 17));
    println!(
        "dataset: {} ({} train triples, {} validation links)\n",
        data.name,
        data.original.len(),
        data.valid.len()
    );

    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let cfg = DekgIlpConfig {
        epochs: 20, // budget; early stopping usually ends sooner
        lr_decay: 0.95,
        bernoulli_negatives: true,
        ..DekgIlpConfig::quick()
    };
    let mut model = DekgIlp::new(cfg, &data, &mut rng);

    let val_cfg = ValidationConfig { eval_every: 2, patience: 3, candidates: 20, max_links: 40 };
    let report = train_with_validation(&mut model, &data, &val_cfg, &mut rng);

    println!("validation MRR trajectory (every {} epochs):", val_cfg.eval_every);
    for (i, mrr) in report.valid_mrr.iter().enumerate() {
        let bar = "#".repeat((mrr * 40.0) as usize);
        println!("  after epoch {:>2}: {mrr:.3} {bar}", (i + 1) * val_cfg.eval_every);
    }
    println!(
        "\nran {} of {} budgeted epochs ({}); best parameters restored",
        report.epochs_run,
        model.config().epochs,
        if report.stopped_early { "stopped early" } else { "budget exhausted" },
    );

    // Checkpoint the best model and prove the roundtrip is exact.
    let path = std::env::temp_dir().join("dekg_validated.ckpt");
    model.save_checkpoint(&path).expect("save");
    let graph = InferenceGraph::from_dataset(&data);
    let probe = &data.test_bridging[..5];
    let before = model.score_batch(&graph, probe);

    let mut restored = DekgIlp::new(model.config().clone(), &data, &mut rng);
    restored.load_checkpoint(&path).expect("load");
    assert_eq!(restored.score_batch(&graph, probe), before);
    println!("checkpoint at {} round-trips bit-exactly", path.display());
    std::fs::remove_file(&path).ok();

    // Final held-out quality.
    let mix = TestMix::build(&data, MixRatio::for_split(SplitKind::Eq));
    let result = evaluate(&model, &graph, &data, &mix, &ProtocolConfig::sampled(30));
    println!(
        "\ntest: MRR {:.3} | enclosing H@10 {:.3} | bridging H@10 {:.3}",
        result.overall.mrr,
        result.enclosing.hits_at(10),
        result.bridging.hits_at(10)
    );
}
