//! Case-linking scenario from the paper's motivation: a fresh criminal
//! case (an emerging KG of suspects, locations, methods) shares no
//! entity with the archive, yet a *bridging* link to an old case can
//! crack both. This example also demonstrates the explainability API
//! used for the paper's Fig. 8 heat maps: per-module endpoint
//! embeddings reveal how much of a link's score comes from the
//! semantic (CLRM) branch versus the topological (GSM) branch.
//!
//! ```sh
//! cargo run --release --example emerging_case_link
//! ```

use dekg::core::explain::explain_link;
use dekg::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // A mid-sized synthetic world stands in for the case archive: the
    // generator's latent types play the role of modus-operandi classes.
    let profile = DatasetProfile::table2(RawKg::Fb15k237, SplitKind::Eq).scaled(0.04);
    let mut synth = SynthConfig::for_profile(profile, 99);
    synth.num_test_enclosing = 20;
    synth.num_test_bridging = 20;
    let data = generate(&synth);
    println!(
        "archive: {} facts | new case file: {} facts (disconnected)\n",
        data.original.len(),
        data.emerging.len()
    );

    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let cfg = DekgIlpConfig { epochs: 6, ..DekgIlpConfig::quick() };
    let mut model = DekgIlp::new(cfg, &data, &mut rng);
    let report = model.fit(&data, &mut rng);
    println!(
        "trained DEKG-ILP in {:.1}s (loss {:.3} -> {:.3})\n",
        report.seconds, report.initial_loss, report.final_loss
    );

    let graph = InferenceGraph::from_dataset(&data);

    // Surface the strongest suspected connections between the archive
    // and the new case file.
    let mut ranked: Vec<(Triple, f32)> =
        data.test_bridging.iter().map(|t| (*t, model.score(&graph, t))).collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("strongest suspected archive <-> new-case connections:");
    for (t, s) in ranked.iter().take(5) {
        println!(
            "  {} --{}--> {}   score {:.3}",
            data.vocab.entity_name(t.head),
            data.vocab.relation_name(t.rel),
            data.vocab.entity_name(t.tail),
            s
        );
    }

    // Fig. 8-style module attribution: which module carries the signal?
    let bridging = ranked[0].0;
    let enclosing = data.test_enclosing[0];
    println!("\nmodule activity (mean |activation| of endpoint embeddings):");
    let mut table = Table::new(vec!["link class", "semantic (CLRM)", "topological (GSM)"]);
    for (label, link) in [("enclosing", enclosing), ("bridging", bridging)] {
        let ex = explain_link(&model, &graph, &link);
        table.add_row(vec![
            label.to_owned(),
            format!("{:.4}", ex.semantic_activity()),
            format!("{:.4}", ex.topological_activity()),
        ]);
    }
    println!("{}", table.render());

    let ex = explain_link(&model, &graph, &bridging);
    println!("semantic heat map of the top bridging link (4 x 8):");
    for row in ex.semantic_heatmap(4, 8) {
        let cells: Vec<String> = row.iter().map(|v| format!("{v:>6.2}")).collect();
        println!("  [{}]", cells.join(" "));
    }
}
