//! Quickstart: generate a DEKG benchmark, train DEKG-ILP, evaluate
//! against GraIL, and print a Table III-style comparison.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dekg::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // 1. A scaled-down FB15k-237 EQ benchmark (deterministic). FB15k
    //    keeps a rich relation space after scaling, which is where the
    //    paper reports DEKG-ILP's largest margins.
    let profile = DatasetProfile::table2(RawKg::Fb15k237, SplitKind::Eq).scaled(0.12);
    let mut synth = SynthConfig::for_profile(profile, 42);
    synth.num_test_enclosing = 40;
    synth.num_test_bridging = 40;
    let data = generate(&synth);
    let stats = DatasetStats::of(&data);
    println!("dataset: {}", data.name);
    println!(
        "  G : |R|={:<4} |E|={:<5} |T|={}",
        stats.original.relations, stats.original.entities, stats.original.triples
    );
    println!(
        "  G': |R|={:<4} |E|={:<5} |T|={}",
        stats.emerging.relations, stats.emerging.entities, stats.emerging.triples
    );
    println!(
        "  held out: {} enclosing, {} bridging links\n",
        stats.test_enclosing, stats.test_bridging
    );

    // 2. Train DEKG-ILP and the strongest baseline (GraIL) on G.
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let ilp_cfg = DekgIlpConfig { epochs: 15, ..DekgIlpConfig::quick() };
    let mut dekg_ilp = DekgIlp::new(ilp_cfg, &data, &mut rng);
    println!("training {} ...", dekg_ilp.name());
    let report = dekg_ilp.fit(&data, &mut rng);
    println!(
        "  {} epochs, loss {:.3} -> {:.3} in {:.1}s",
        report.epochs, report.initial_loss, report.final_loss, report.seconds
    );

    let grail_cfg = SubgraphModelConfig { epochs: 15, ..SubgraphModelConfig::quick() };
    let mut grail = Grail::new(grail_cfg, &data, &mut rng);
    println!("training {} ...", grail.name());
    let report = grail.fit(&data, &mut rng);
    println!(
        "  {} epochs, loss {:.3} -> {:.3} in {:.1}s\n",
        report.epochs, report.initial_loss, report.final_loss, report.seconds
    );

    // 3. Evaluate on the 1:1 (EQ) test mix with 30 sampled candidates.
    let graph = InferenceGraph::from_dataset(&data);
    let mix = TestMix::build(&data, MixRatio::for_split(SplitKind::Eq));
    let protocol = ProtocolConfig::sampled(30);

    let mut table = Table::new(vec!["model", "MRR", "Hits@10", "enclosing H@10", "bridging H@10"]);
    for model in [&dekg_ilp as &dyn LinkPredictor, &grail] {
        let r = evaluate(model, &graph, &data, &mix, &protocol);
        table.add_row(vec![
            model.name().to_owned(),
            format!("{:.3}", r.overall.mrr),
            format!("{:.3}", r.overall.hits_at(10)),
            format!("{:.3}", r.enclosing.hits_at(10)),
            format!("{:.3}", r.bridging.hits_at(10)),
        ]);
    }
    println!("{}", table.render());
    println!("note: GraIL's bridging column collapses because its enclosing");
    println!("subgraphs are empty across the G/G' boundary — the paper's");
    println!("'topological limitation' that DEKG-ILP's CLRM circumvents.");
}
