//! Offline stand-in for the slice of `proptest` this workspace uses:
//! the [`strategy::Strategy`] trait (ranges, tuples, `Just`, `any`,
//! regex-like string patterns, `collection::vec`, `prop_map`,
//! `prop_oneof!`), the [`proptest!`] test macro with
//! `proptest_config`, and the assume/assert macros.
//!
//! Two deliberate simplifications versus the real crate:
//!
//! * **No shrinking.** A failing case reports the case number and the
//!   assertion message; inputs are regenerable because generation is
//!   fully deterministic (each case is keyed by its index).
//! * **Deterministic seeding.** Real proptest draws OS entropy per
//!   run; here every run of a test explores the same case sequence,
//!   which suits a reproducibility-focused repo.

#![deny(unsafe_code)]

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Generates values of an associated type from the test RNG.
    ///
    /// Object safe: `prop_map`/`boxed` are `Self: Sized` combinators,
    /// so `dyn Strategy<Value = T>` works for [`BoxedStrategy`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Produces one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy { inner: std::rc::Rc::new(self) }
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T> {
        inner: std::rc::Rc<dyn Strategy<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy { inner: std::rc::Rc::clone(&self.inner) }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate(rng)
        }
    }

    /// Uniform choice between boxed strategies (the `prop_oneof!`
    /// backend; real proptest's weights are not needed here).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics on an empty option list.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.inner().gen_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }

    impl<T> Strategy for std::ops::Range<T>
    where
        T: rand::SampleUniform,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.inner().gen_range(self.clone())
        }
    }

    impl<T> Strategy for std::ops::RangeInclusive<T>
    where
        T: rand::SampleUniform,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.inner().gen_range(self.clone())
        }
    }

    /// `&str` as a pattern strategy: see [`crate::string::generate`]
    /// for the supported regex subset.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate(self, rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                // The macro reuses type-parameter names as bindings.
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Samples an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_std {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.inner().gen()
                }
            }
        )*};
    }

    impl_arbitrary_std!(u8, u32, u64, usize, i8, bool, f32, f64);

    /// The strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy over the whole domain of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// An inclusive-of-low, exclusive-of-high length range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.inner().gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector whose length is drawn from `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Pattern-string generation for `&str` strategies.
pub mod string {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A parsed atom: the characters it can produce.
    struct Atom {
        choices: Vec<char>,
        min: usize,
        max: usize,
    }

    /// Generates a string from a small regex subset: literal
    /// characters, character classes `[a-z0-9_]` (ranges and
    /// literals), and quantifiers `{n}`, `{m,n}`, `?`, `*`, `+`
    /// (star/plus capped at 8 repetitions).
    ///
    /// # Panics
    /// On syntax outside this subset, with the offending pattern in
    /// the message.
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let atoms = parse(pattern);
        let mut out = String::new();
        for atom in &atoms {
            let n = rng.inner().gen_range(atom.min..=atom.max);
            for _ in 0..n {
                let idx = rng.inner().gen_range(0..atom.choices.len());
                out.push(atom.choices[idx]);
            }
        }
        out
    }

    fn parse(pattern: &str) -> Vec<Atom> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let choices = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .unwrap_or_else(|| panic!("unclosed `[` in pattern `{pattern}`"))
                        + i;
                    let class = &chars[i + 1..close];
                    i = close + 1;
                    expand_class(class, pattern)
                }
                '\\' => {
                    i += 1;
                    let c = *chars
                        .get(i)
                        .unwrap_or_else(|| panic!("dangling `\\` in pattern `{pattern}`"));
                    i += 1;
                    match c {
                        'd' => ('0'..='9').collect(),
                        'w' => ('a'..='z').chain('A'..='Z').chain('0'..='9').chain(['_']).collect(),
                        other => vec![other],
                    }
                }
                c if c == '(' || c == ')' || c == '|' => {
                    panic!(
                        "pattern `{pattern}`: groups/alternation unsupported by the proptest shim"
                    )
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            let (min, max) = parse_quantifier(&chars, &mut i, pattern);
            atoms.push(Atom { choices, min, max });
        }
        atoms
    }

    fn expand_class(class: &[char], pattern: &str) -> Vec<char> {
        assert!(!class.is_empty(), "empty character class in pattern `{pattern}`");
        assert!(class[0] != '^', "negated classes unsupported by the proptest shim: `{pattern}`");
        let mut choices = Vec::new();
        let mut k = 0;
        while k < class.len() {
            if k + 2 < class.len() && class[k + 1] == '-' {
                let (lo, hi) = (class[k], class[k + 2]);
                assert!(lo <= hi, "inverted range in class of pattern `{pattern}`");
                for c in lo..=hi {
                    choices.push(c);
                }
                k += 3;
            } else {
                choices.push(class[k]);
                k += 1;
            }
        }
        choices
    }

    fn parse_quantifier(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
        match chars.get(*i) {
            Some('{') => {
                let close = chars[*i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed `{{` in pattern `{pattern}`"))
                    + *i;
                let body: String = chars[*i + 1..close].iter().collect();
                *i = close + 1;
                let parse_n = |s: &str| {
                    s.trim()
                        .parse::<usize>()
                        .unwrap_or_else(|_| panic!("bad quantifier in pattern `{pattern}`"))
                };
                match body.split_once(',') {
                    Some((lo, hi)) => (parse_n(lo), parse_n(hi)),
                    None => {
                        let n = parse_n(&body);
                        (n, n)
                    }
                }
            }
            Some('?') => {
                *i += 1;
                (0, 1)
            }
            Some('*') => {
                *i += 1;
                (0, 8)
            }
            Some('+') => {
                *i += 1;
                (1, 8)
            }
            _ => (1, 1),
        }
    }
}

/// Case driving, configuration, and error plumbing.
pub mod test_runner {
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// The RNG handed to strategies; deterministic per case index.
    pub struct TestRng {
        rng: ChaCha8Rng,
    }

    impl TestRng {
        /// A fresh RNG for one case.
        pub fn for_case(case: u64) -> Self {
            // Offset so case 0 doesn't collide with common user seeds.
            TestRng { rng: ChaCha8Rng::seed_from_u64(0x70726F70 ^ case.wrapping_mul(0x9E37_79B9)) }
        }

        /// The underlying rand-compatible generator.
        pub fn inner(&mut self) -> &mut ChaCha8Rng {
            &mut self.rng
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is retried.
        Reject(String),
        /// `prop_assert!`/`prop_assert_eq!` failed; the test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with a message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }

        /// A rejection with a message.
        pub fn reject(message: impl Into<String>) -> Self {
            TestCaseError::Reject(message.into())
        }
    }

    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of accepted cases required.
        pub cases: u32,
        /// Cap on total `prop_assume!` rejections before giving up.
        pub max_global_rejects: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256, max_global_rejects: 65_536 }
        }
    }

    impl Config {
        /// A config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases, ..Config::default() }
        }
    }

    /// Drives `run_one` until `config.cases` cases pass.
    ///
    /// # Panics
    /// On the first failing case (carrying its message and case
    /// number), or when the rejection budget is exhausted.
    pub fn run_cases<F>(config: &Config, mut run_one: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut accepted: u32 = 0;
        let mut rejected: u32 = 0;
        let mut case: u64 = 0;
        while accepted < config.cases {
            let mut rng = TestRng::for_case(case);
            case += 1;
            match run_one(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected <= config.max_global_rejects,
                        "proptest shim: too many prop_assume! rejections \
                         ({rejected} rejects for {accepted} accepted cases)"
                    );
                }
                Err(TestCaseError::Fail(message)) => {
                    panic!(
                        "proptest case {case_num} failed: {message}\n\
                         (deterministic: rerun reproduces this case)",
                        case_num = case - 1
                    );
                }
            }
        }
    }
}

/// One-glob import mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Uniform choice among the listed strategies (weights unsupported).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Rejects the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::reject(stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::reject(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)*)),
            ));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)*),
                left,
                right
            )));
        }
    }};
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies. Supports the optional leading
/// `#![proptest_config(expr)]` attribute.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Internal expansion backend of [`proptest!`].
#[macro_export]
macro_rules! __proptest_tests {
    ( ($config:expr)
      $(
        $(#[$meta:meta])+
        fn $name:ident( $($arg_pat:pat in $arg_strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])+
            // Bodies ending in panics/asserts leave the loop tail unreachable.
            #[allow(unreachable_code)]
            fn $name() {
                let config = $config;
                $crate::test_runner::run_cases(&config, |prop_rng| {
                    $(
                        let $arg_pat =
                            $crate::strategy::Strategy::generate(&($arg_strategy), prop_rng);
                    )+
                    $body
                    Ok(())
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_patterns() {
        let mut rng = crate::test_runner::TestRng::for_case(3);
        for _ in 0..50 {
            let s = crate::string::generate("[a-z]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn determinism_per_case() {
        let strat = prop::collection::vec(0u32..100, 1..10);
        let a = {
            let mut rng = crate::test_runner::TestRng::for_case(7);
            strat.generate(&mut rng)
        };
        let b = {
            let mut rng = crate::test_runner::TestRng::for_case(7);
            strat.generate(&mut rng)
        };
        assert_eq!(a, b);
    }

    #[test]
    fn fixed_len_vec() {
        let strat = prop::collection::vec(-1.0f32..1.0, 6);
        let mut rng = crate::test_runner::TestRng::for_case(0);
        assert_eq!(strat.generate(&mut rng).len(), 6);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(x in 3usize..9, y in -2.0f64..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn assume_and_early_return(v in prop::collection::vec(0u8..10, 0..5)) {
            if v.is_empty() {
                return Ok(());
            }
            prop_assume!(v[0] < 9);
            prop_assert!(v[0] <= 8);
        }

        #[test]
        fn oneof_and_map(op in prop_oneof![
            Just(0usize),
            (1usize..4).prop_map(|n| n * 10),
            any::<bool>().prop_map(|b| if b { 100 } else { 200 }),
        ]) {
            prop_assert!(
                op == 0 || op == 10 || op == 20 || op == 30 || op == 100 || op == 200,
                "unexpected value {op}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failure_panics_with_case_number() {
        crate::test_runner::run_cases(&crate::test_runner::Config::with_cases(4), |_| {
            Err(crate::test_runner::TestCaseError::fail("forced"))
        });
    }
}
