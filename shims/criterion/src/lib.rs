//! Offline stand-in for the subset of `criterion` this workspace's
//! benches use: the [`Criterion`] builder, benchmark groups,
//! [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Statistical analysis (outlier detection, regression fitting, HTML
//! reports) is intentionally absent. `iter` warms up once, then times
//! batches of calls against the configured measurement budget and
//! prints the mean wall-clock time per iteration — enough to compare
//! kernels locally while keeping the benches compiling and runnable
//! offline.

#![deny(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Sets the target number of timed samples.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, &id.to_string(), &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { config: self.clone(), name: name.into(), _parent: self }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(config: &Criterion, label: &str, f: &mut F) {
    let mut bencher = Bencher {
        sample_size: config.sample_size,
        measurement_time: config.measurement_time,
        warm_up_time: config.warm_up_time,
        mean: None,
        iterations: 0,
    };
    f(&mut bencher);
    match bencher.mean {
        // lint: print-ok — bench reporter: stdout IS the deliverable of a criterion run
        Some(mean) => println!(
            "bench: {label:<40} {:>12.3} ns/iter ({} iterations)",
            mean.as_nanos() as f64,
            bencher.iterations
        ),
        // lint: print-ok — bench reporter: stdout IS the deliverable of a criterion run
        None => println!("bench: {label:<40} (no measurement)"),
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    config: Criterion,
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Overrides the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&self.config, &label, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    // By-value `id` matches the real criterion signature.
    #[allow(clippy::needless_pass_by_value)]
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&self.config, &label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (reporting is per-benchmark, so this is a no-op).
    pub fn finish(self) {}
}

/// Identifies a benchmark by function name and/or parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function/parameter` id.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{function}/{parameter}") }
    }

    /// An id carrying just a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// Passed to each benchmark closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    mean: Option<Duration>,
    iterations: u64,
}

impl Bencher {
    /// Times repeated calls of `f` and records the mean duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: at least one call, until the warm-up budget is spent.
        let warm_start = Instant::now();
        loop {
            black_box(f());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }

        // Measurement: up to `sample_size` samples within the budget.
        let mut total = Duration::ZERO;
        let mut count: u64 = 0;
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            total += t0.elapsed();
            count += 1;
            if budget_start.elapsed() >= self.measurement_time {
                break;
            }
        }

        if count > 0 {
            self.mean = Some(total / u32::try_from(count).unwrap_or(u32::MAX));
            self.iterations = count;
        }
    }
}

/// Bundles benchmark functions into a runner, mirroring criterion's
/// two accepted forms (`name/config/targets` and plain list).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        // Generated runner: callers name it, rustdoc adds nothing.
        #[allow(missing_docs)]
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        // Generated runner: callers name it, rustdoc adds nothing.
        #[allow(missing_docs)]
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1))
    }

    #[test]
    fn bench_function_runs_closure() {
        let mut ran = 0u32;
        quick().bench_function("trivial", |b| {
            b.iter(|| ran += 1);
        });
        assert!(ran > 0);
    }

    #[test]
    fn group_labels_and_inputs() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let input = 21u64;
        let mut seen = 0u64;
        group.bench_with_input(BenchmarkId::new("double", input), &input, |b, &i| {
            b.iter(|| seen = i * 2);
        });
        group.finish();
        assert_eq!(seen, 42);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }

    criterion_group!(plain_form, noop_bench);
    criterion_group! {
        name = config_form;
        config = quick();
        targets = noop_bench, noop_bench
    }

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn macro_forms_expand() {
        // Both expansions must produce callable functions.
        let _: fn() = plain_form;
        let _: fn() = config_form;
    }
}
