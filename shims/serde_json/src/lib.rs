//! Offline stand-in for the `serde_json` functions this workspace
//! uses: [`to_string_pretty`] and [`from_str`].
//!
//! Both go through the `serde` shim's [`Value`] tree. The emitted
//! format is standard JSON, pretty-printed with two-space indentation
//! like real serde_json, so checkpoints and reports written by either
//! implementation parse under the other.

#![deny(unsafe_code)]

use serde::{Deserialize, Number, Serialize, Value};

/// A JSON encode/decode error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

// ---- encoding ----

fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_number(out: &mut String, n: Number) {
    match n {
        Number::I(v) => out.push_str(&v.to_string()),
        Number::U(v) => out.push_str(&v.to_string()),
        Number::F(v) if v.is_finite() => {
            // Match serde_json: floats always carry a decimal point or
            // exponent so they re-parse as floats.
            let s = v.to_string();
            out.push_str(&s);
            if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                out.push_str(".0");
            }
        }
        // serde_json emits null for NaN/Inf.
        Number::F(_) => out.push_str("null"),
    }
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    const STEP: &str = "  ";
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => push_number(out, *n),
        Value::Str(s) => push_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&STEP.repeat(indent + 1));
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, value)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&STEP.repeat(indent + 1));
                push_escaped(out, key);
                out.push_str(": ");
                write_pretty(out, value, indent + 1);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push('}');
        }
    }
}

/// Serializes a value as pretty-printed JSON (two-space indentation).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Serializes a value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    fn write_compact(out: &mut String, v: &Value) {
        match v {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => push_number(out, *n),
            Value::Str(s) => push_escaped(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_compact(out, item);
                }
                out.push(']');
            }
            Value::Object(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_escaped(out, key);
                    out.push(':');
                    write_compact(out, value);
                }
                out.push('}');
            }
        }
    }
    let mut out = String::new();
    write_compact(&mut out, &value.to_value());
    Ok(out)
}

// ---- decoding ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", char::from(b), self.pos)))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::new(format!("expected `{kw}` at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => {
                Err(Error::new(format!("unexpected byte `{}` at {}", char::from(b), self.pos)))
            }
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our
                            // encoder; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance over one UTF-8 character.
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::Num(Number::I(i)));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Num(Number::U(u)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Num(Number::F(f)))
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }
}

/// Parses a JSON document into a [`Value`] tree.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    Ok(T::from_value(&v)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn roundtrip_vec() {
        let v = vec![1i32, 2, 3];
        let json = to_string_pretty(&v).unwrap();
        let back: Vec<i32> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn roundtrip_map_and_nesting() {
        let mut m: HashMap<String, Vec<f64>> = HashMap::new();
        m.insert("a".into(), vec![1.5, -2.0]);
        m.insert("esc\"ape\n".into(), vec![]);
        let json = to_string_pretty(&m).unwrap();
        let back: HashMap<String, Vec<f64>> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn floats_reparse_as_floats() {
        let json = to_string(&2.0f64).unwrap();
        assert_eq!(json, "2.0");
        let v = parse_value(&json).unwrap();
        assert_eq!(v, Value::Num(Number::F(2.0)));
    }

    #[test]
    fn integer_width_preserved() {
        let v = parse_value("18446744073709551615").unwrap();
        assert_eq!(v, Value::Num(Number::U(u64::MAX)));
        let v = parse_value("-42").unwrap();
        assert_eq!(v, Value::Num(Number::I(-42)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("{\"a\": }").is_err());
        assert!(parse_value("[1, 2,]").is_err());
        assert!(parse_value("true false").is_err());
    }

    #[test]
    fn pretty_format_shape() {
        let json = to_string_pretty(&vec![1u32]).unwrap();
        assert_eq!(json, "[\n  1\n]");
    }
}
