//! Offline stand-in for `rand_chacha`: a from-scratch ChaCha stream
//! cipher used as a deterministic PRNG.
//!
//! Implements the ChaCha quarter-round/block function exactly as
//! specified in RFC 8439 (reduced-round variants included), keyed from
//! a 32-byte seed with a 64-bit block counter. The keystream is
//! therefore seed-stable across runs, platforms and compiler versions —
//! the property every experiment and test in this workspace relies on.
//!
//! Only the surface the workspace uses is provided: the
//! [`ChaCha8Rng`] / [`ChaCha12Rng`] / [`ChaCha20Rng`] types with
//! `rand`'s [`RngCore`] + [`SeedableRng`] traits.

#![deny(unsafe_code)]

use rand::{RngCore, SeedableRng};

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// The RFC 8439 constant words "expand 32-byte k".
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// Runs `rounds` ChaCha rounds over the block for `counter` and writes
/// the 16 output words.
fn chacha_block(key: &[u32; 8], counter: u64, rounds: usize, out: &mut [u32; 16]) {
    debug_assert!(rounds.is_multiple_of(2), "ChaCha uses double rounds");
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&SIGMA);
    state[4..12].copy_from_slice(key);
    state[12] = counter as u32;
    state[13] = (counter >> 32) as u32;
    state[14] = 0; // nonce (unused as a PRNG)
    state[15] = 0;

    let mut working = state;
    for _ in 0..rounds / 2 {
        // Column round.
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    for (o, (&w, &s)) in out.iter_mut().zip(working.iter().zip(&state)) {
        *o = w.wrapping_add(s);
    }
}

/// A ChaCha keystream generator with `R` rounds.
#[derive(Debug, Clone)]
pub struct ChaChaRng<const R: usize> {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    /// Next unconsumed word in `buffer`; 16 means "refill".
    cursor: usize,
}

impl<const R: usize> ChaChaRng<R> {
    fn refill(&mut self) {
        chacha_block(&self.key, self.counter, R, &mut self.buffer);
        self.counter = self.counter.wrapping_add(1);
        self.cursor = 0;
    }
}

impl<const R: usize> SeedableRng for ChaChaRng<R> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaChaRng { key, counter: 0, buffer: [0; 16], cursor: 16 }
    }
}

impl<const R: usize> RngCore for ChaChaRng<R> {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.buffer[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_u32().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

/// ChaCha with 8 rounds — the workspace's default experiment PRNG.
pub type ChaCha8Rng = ChaChaRng<8>;
/// ChaCha with 12 rounds.
pub type ChaCha12Rng = ChaChaRng<12>;
/// ChaCha with 20 rounds (the RFC 8439 cipher).
pub type ChaCha20Rng = ChaChaRng<20>;

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.3.2 test vector: key 00 01 02 .. 1f, 20 rounds.
    ///
    /// Our counter/nonce layout zeroes the nonce words, so we check the
    /// raw block function with the RFC's key and counter = 1 after
    /// substituting the RFC nonce with zeros is *not* the RFC output;
    /// instead we verify the core quarter-round vector from §2.1.1,
    /// which is layout-independent.
    #[test]
    fn quarter_round_rfc_vector() {
        let mut state = [0u32; 16];
        state[0] = 0x11111111;
        state[1] = 0x01020304;
        state[2] = 0x9b8d6f43;
        state[3] = 0x01234567;
        quarter_round(&mut state, 0, 1, 2, 3);
        assert_eq!(state[0], 0xea2a92f4);
        assert_eq!(state[1], 0xcb1cf8ce);
        assert_eq!(state[2], 0x4581472e);
        assert_eq!(state[3], 0x5881c4bb);
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = ChaCha8Rng::seed_from_u64(99);
        let mut b = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "streams should differ almost everywhere");
    }

    #[test]
    fn fill_bytes_matches_words() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        let mut buf = [0u8; 12];
        a.fill_bytes(&mut buf);
        let w0 = b.next_u32().to_le_bytes();
        let w1 = b.next_u32().to_le_bytes();
        let w2 = b.next_u32().to_le_bytes();
        assert_eq!(&buf[..4], &w0);
        assert_eq!(&buf[4..8], &w1);
        assert_eq!(&buf[8..12], &w2);
    }

    #[test]
    fn rounds_variants_compile_and_differ() {
        let mut r8 = ChaCha8Rng::seed_from_u64(0);
        let mut r20 = ChaCha20Rng::seed_from_u64(0);
        // Same key schedule, different round counts -> different streams.
        assert_ne!(r8.next_u64(), r20.next_u64());
    }
}
