//! Offline stand-in for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` without `syn`/`quote`.
//!
//! The input item is parsed directly from the raw `TokenStream` — this
//! workspace only derives on plain non-generic structs and enums, so a
//! small hand-written parser suffices. Generated impls target the
//! `serde` shim's value-tree traits (`to_value`/`from_value`) and
//! reproduce real serde's default JSON layout: structs as objects,
//! newtype structs transparently, enums externally tagged (unit
//! variants as bare strings, newtype variants as `{"Tag": value}`,
//! tuple variants as `{"Tag": [..]}`, struct variants as
//! `{"Tag": {..}}`).

#![deny(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shapes of a field list.
enum Fields {
    /// `struct S;` or a unit enum variant.
    Unit,
    /// `struct S { a: T, b: U }` — field names in declaration order.
    Named(Vec<String>),
    /// `struct S(T, U);` — arity only.
    Tuple(usize),
}

/// One enum variant.
struct Variant {
    name: String,
    fields: Fields,
}

/// A parsed derive input.
enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

/// Skips attributes (`#[...]` / doc comments) and visibility
/// (`pub`, `pub(crate)`, ...) at the cursor.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then a bracket group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Parses a brace-delimited named-field list into field names.
fn parse_named_fields(group_tokens: &[TokenTree]) -> Vec<String> {
    let mut names = Vec::new();
    let mut i = 0;
    while i < group_tokens.len() {
        i = skip_attrs_and_vis(group_tokens, i);
        let Some(TokenTree::Ident(name)) = group_tokens.get(i) else {
            break;
        };
        names.push(name.to_string());
        // Skip to the comma that ends this field. Angle brackets don't
        // nest as token groups, so track `<`/`>` depth manually; shifts
        // (`>>` as two puncts) still balance because each closes one.
        let mut depth = 0i32;
        i += 1;
        while i < group_tokens.len() {
            match &group_tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    names
}

/// Counts the fields of a paren-delimited tuple field list.
fn count_tuple_fields(group_tokens: &[TokenTree]) -> usize {
    if group_tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i32;
    for tok in group_tokens {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => count += 1,
            _ => {}
        }
    }
    count
}

/// Parses the body of an enum into variants.
fn parse_variants(group_tokens: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < group_tokens.len() {
        i = skip_attrs_and_vis(group_tokens, i);
        let Some(TokenTree::Ident(name)) = group_tokens.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1;
        let fields = match group_tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                Fields::Named(parse_named_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                Fields::Tuple(count_tuple_fields(&inner))
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
        // Skip a possible discriminant (`= expr`) and the trailing comma.
        while i < group_tokens.len() {
            if let TokenTree::Punct(p) = &group_tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    variants
}

/// Parses the whole derive input.
fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, found {other:?}"),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic types are not supported (deriving on `{name}`)");
        }
    }

    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Named(parse_named_fields(&inner))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Tuple(count_tuple_fields(&inner))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let variants = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    parse_variants(&inner)
                }
                other => panic!("serde shim derive: expected enum body, found {other:?}"),
            };
            Item::Enum { name, variants }
        }
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    }
}

/// Derives the serde shim's `Serialize` (value-tree rendering).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "serde::Value::Null".to_string(),
                Fields::Named(names) => {
                    let pairs: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!("({f:?}.to_string(), serde::Serialize::to_value(&self.{f}))")
                        })
                        .collect();
                    format!("serde::Value::Object(vec![{}])", pairs.join(", "))
                }
                // Newtype structs are transparent, wider tuples are arrays
                // — both as in real serde.
                Fields::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> =
                        (0..*n).map(|k| format!("serde::Serialize::to_value(&self.{k})")).collect();
                    format!("serde::Value::Array(vec![{}])", items.join(", "))
                }
            };
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let tag = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{tag} => serde::Value::Str({tag:?}.to_string()),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{tag}(f0) => serde::Value::Object(vec![({tag:?}.to_string(), serde::Serialize::to_value(f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|k| format!("serde::Serialize::to_value(f{k})"))
                                .collect();
                            format!(
                                "{name}::{tag}({binds}) => serde::Value::Object(vec![({tag:?}.to_string(), serde::Value::Array(vec![{items}]))]),",
                                binds = binds.join(", "),
                                items = items.join(", ")
                            )
                        }
                        Fields::Named(fs) => {
                            let binds = fs.join(", ");
                            let pairs: Vec<String> = fs
                                .iter()
                                .map(|f| {
                                    format!(
                                        "({f:?}.to_string(), serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{tag} {{ {binds} }} => serde::Value::Object(vec![({tag:?}.to_string(), serde::Value::Object(vec![{pairs}]))]),",
                                pairs = pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}",
                arms = arms.join("\n")
            )
        }
    };
    code.parse().expect("serde shim derive: generated Serialize impl failed to parse")
}

/// Derives the serde shim's `Deserialize` (value-tree parsing).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("let _ = v; Ok({name})"),
                Fields::Named(names) => {
                    let inits: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: serde::Deserialize::from_value(serde::field(pairs, {f:?})?)?,"
                            )
                        })
                        .collect();
                    format!(
                        "let pairs = v.as_object().ok_or_else(|| serde::DeError::new(\"expected object for `{name}`\"))?;\n\
                         Ok({name} {{ {inits} }})",
                        inits = inits.join("\n")
                    )
                }
                Fields::Tuple(1) => {
                    format!("Ok({name}(serde::Deserialize::from_value(v)?))")
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("serde::Deserialize::from_value(&items[{k}])?"))
                        .collect();
                    format!(
                        "let items = v.as_array().ok_or_else(|| serde::DeError::new(\"expected array for `{name}`\"))?;\n\
                         if items.len() != {n} {{\n\
                             return Err(serde::DeError::new(\"wrong tuple arity for `{name}`\"));\n\
                         }}\n\
                         Ok({name}({items}))",
                        items = items.join(", ")
                    )
                }
            };
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("{tag:?} => Ok({name}::{tag}),", tag = v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let tag = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(1) => Some(format!(
                            "{tag:?} => Ok({name}::{tag}(serde::Deserialize::from_value(payload)?)),"
                        )),
                        Fields::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|k| format!("serde::Deserialize::from_value(&items[{k}])?"))
                                .collect();
                            Some(format!(
                                "{tag:?} => {{\n\
                                     let items = payload.as_array().ok_or_else(|| serde::DeError::new(\"expected array payload for `{name}::{tag}`\"))?;\n\
                                     if items.len() != {n} {{\n\
                                         return Err(serde::DeError::new(\"wrong tuple arity for `{name}::{tag}`\"));\n\
                                     }}\n\
                                     Ok({name}::{tag}({items}))\n\
                                 }}",
                                items = items.join(", ")
                            ))
                        }
                        Fields::Named(fs) => {
                            let inits: Vec<String> = fs
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: serde::Deserialize::from_value(serde::field(fields, {f:?})?)?,"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{tag:?} => {{\n\
                                     let fields = payload.as_object().ok_or_else(|| serde::DeError::new(\"expected object payload for `{name}::{tag}`\"))?;\n\
                                     Ok({name}::{tag} {{ {inits} }})\n\
                                 }}",
                                inits = inits.join("\n")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                         match v {{\n\
                             serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => Err(serde::DeError::new(format!(\"unknown unit variant `{{other}}` for `{name}`\"))),\n\
                             }},\n\
                             serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                                 let (tag, payload) = &pairs[0];\n\
                                 let _ = payload;\n\
                                 match tag.as_str() {{\n\
                                     {tagged_arms}\n\
                                     other => Err(serde::DeError::new(format!(\"unknown variant `{{other}}` for `{name}`\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => Err(serde::DeError::new(\"expected string or single-key object for `{name}`\")),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms = unit_arms.join("\n"),
                tagged_arms = tagged_arms.join("\n")
            )
        }
    };
    code.parse().expect("serde shim derive: generated Deserialize impl failed to parse")
}
