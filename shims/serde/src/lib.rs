//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The real serde models serialization as a visitor-driven protocol
//! over arbitrary data formats. This workspace only ever serializes to
//! and from JSON (via the sibling `serde_json` shim), so the shim
//! collapses the protocol to a single self-describing [`Value`] tree:
//!
//! * [`Serialize`] renders a type into a [`Value`],
//! * [`Deserialize`] rebuilds a type from a [`Value`].
//!
//! The `#[derive(Serialize, Deserialize)]` macros (re-exported from the
//! `serde_derive` shim) generate the same externally-tagged layout real
//! serde would emit for the plain structs and enums found in this
//! workspace, so on-disk JSON stays interchangeable with a future
//! switch back to the real crates.

#![deny(unsafe_code)]

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-style number: preserves the integer/float distinction so
/// 64-bit ids and counts round-trip exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A signed integer.
    I(i64),
    /// An unsigned integer.
    U(u64),
    /// A double-precision float.
    F(f64),
}

impl Number {
    /// The value as an `f64` (lossy for huge integers).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::I(v) => v as f64,
            Number::U(v) => v as f64,
            Number::F(v) => v,
        }
    }

    /// The value as a `u64` when exactly representable.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::I(v) => u64::try_from(v).ok(),
            Number::U(v) => Some(v),
            Number::F(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            Number::F(_) => None,
        }
    }

    /// The value as an `i64` when exactly representable.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::I(v) => Some(v),
            Number::U(v) => i64::try_from(v).ok(),
            Number::F(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            Number::F(_) => None,
        }
    }
}

/// A self-describing JSON-like value tree.
///
/// Objects keep insertion order (a `Vec` of pairs) so serialized output
/// is stable and diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Num(Number),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with preserved key order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object's pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The array's elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Looks up a field in an object's pairs.
pub fn field<'v>(pairs: &'v [(String, Value)], name: &str) -> Result<&'v Value, DeError> {
    pairs
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::new(format!("missing field `{name}`")))
}

/// Deserialization error: a human-readable message.
#[derive(Debug, Clone)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError { message: message.into() }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Renders `self` into a [`Value`].
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Rebuilds `Self` from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses the value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- primitive impls ----

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => n
                        .as_u64()
                        .and_then(|x| <$t>::try_from(x).ok())
                        .ok_or_else(|| DeError::new(concat!("number out of range for ", stringify!($t)))),
                    _ => Err(DeError::new(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::I(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => n
                        .as_i64()
                        .and_then(|x| <$t>::try_from(x).ok())
                        .ok_or_else(|| DeError::new(concat!("number out of range for ", stringify!($t)))),
                    _ => Err(DeError::new(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Num(Number::F(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Num(n) => Ok(n.as_f64() as f32),
            _ => Err(DeError::new("expected f32")),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Num(n) => Ok(n.as_f64()),
            _ => Err(DeError::new("expected f64")),
        }
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::new("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::new("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Deserialize for &'static str {
    /// Leaks the parsed string to satisfy the `'static` lifetime.
    ///
    /// Only `&'static str` *fields* in derived configs/reports use
    /// this; those are parsed a handful of times per process, so the
    /// leak is bounded and deliberate.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            _ => Err(DeError::new("expected string")),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap_or('\0')),
            _ => Err(DeError::new("expected single-character string")),
        }
    }
}

// ---- containers ----

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = v
            .as_array()
            .ok_or_else(|| DeError::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect::<Result<_, _>>()?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| DeError::new(format!("expected array of length {N}, got {got}")))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v.as_array().ok_or_else(|| DeError::new("expected 2-tuple"))?;
        if items.len() != 2 {
            return Err(DeError::new("expected 2-tuple"));
        }
        Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v.as_array().ok_or_else(|| DeError::new("expected 3-tuple"))?;
        if items.len() != 3 {
            return Err(DeError::new("expected 3-tuple"));
        }
        Ok((A::from_value(&items[0])?, B::from_value(&items[1])?, C::from_value(&items[2])?))
    }
}

/// Renders a key's value form as a JSON object key, matching
/// serde_json: strings stay as-is, numbers and booleans become their
/// decimal rendering. Newtype ids (e.g. `EntityId(u32)`) serialize
/// transparently to numbers and so land here as numeric keys.
fn key_to_string(v: &Value) -> Result<String, &'static str> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        Value::Num(Number::U(u)) => Ok(u.to_string()),
        Value::Num(Number::I(i)) => Ok(i.to_string()),
        Value::Num(Number::F(f)) => Ok(f.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        _ => Err("map key does not serialize to a string or number"),
    }
}

/// Parses an object key back into a key type: first as a string value,
/// then as each numeric interpretation. Mirrors [`key_to_string`].
fn key_from_string<K: Deserialize>(key: &str) -> Result<K, DeError> {
    if let Ok(k) = K::from_value(&Value::Str(key.to_owned())) {
        return Ok(k);
    }
    if let Ok(u) = key.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::Num(Number::U(u))) {
            return Ok(k);
        }
    }
    if let Ok(i) = key.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::Num(Number::I(i))) {
            return Ok(k);
        }
    }
    if let Ok(f) = key.parse::<f64>() {
        if let Ok(k) = K::from_value(&Value::Num(Number::F(f))) {
            return Ok(k);
        }
    }
    if let Ok(b) = key.parse::<bool>() {
        if let Ok(k) = K::from_value(&Value::Bool(b)) {
            return Ok(k);
        }
    }
    Err(DeError::new(format!("unparseable map key `{key}`")))
}

impl<K: Serialize, V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                let key = key_to_string(&k.to_value()).unwrap_or_else(|msg| panic!("{msg}"));
                (key, v.to_value())
            })
            .collect();
        // HashMap iteration order is unstable; sort for deterministic
        // output.
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<
        K: Deserialize + std::hash::Hash + Eq,
        V: Deserialize,
        S: std::hash::BuildHasher + Default,
    > Deserialize for HashMap<K, V, S>
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let pairs = v.as_object().ok_or_else(|| DeError::new("expected object"))?;
        let mut out = HashMap::with_capacity_and_hasher(pairs.len(), S::default());
        for (k, val) in pairs {
            out.insert(key_from_string(k)?, V::from_value(val)?);
        }
        Ok(out)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| {
                    let key = key_to_string(&k.to_value()).unwrap_or_else(|msg| panic!("{msg}"));
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let pairs = v.as_object().ok_or_else(|| DeError::new("expected object"))?;
        let mut out = BTreeMap::new();
        for (k, val) in pairs {
            out.insert(key_from_string(k)?, V::from_value(val)?);
        }
        Ok(out)
    }
}

impl<T: Serialize + std::cmp::Eq + std::hash::Hash, S: std::hash::BuildHasher> Serialize
    for std::collections::HashSet<T, S>
{
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::cmp::Eq + std::hash::Hash, S: std::hash::BuildHasher + Default>
    Deserialize for std::collections::HashSet<T, S>
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(u8::from_value(&300u32.to_value()).is_err());
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);

        let mut m = HashMap::new();
        m.insert("a".to_string(), 1usize);
        m.insert("b".to_string(), 2usize);
        let back: HashMap<String, usize> = HashMap::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);

        let pair = ("x".to_string(), 9u64);
        assert_eq!(<(String, u64)>::from_value(&pair.to_value()).unwrap(), pair);
    }

    #[test]
    fn option_null_roundtrip() {
        let none: Option<u32> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&5u32.to_value()).unwrap(), Some(5));
    }

    #[test]
    fn missing_field_reports_name() {
        let err = field(&[], "alpha").unwrap_err();
        assert!(err.to_string().contains("alpha"));
    }
}
