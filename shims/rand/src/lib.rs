//! Offline stand-in for the subset of the `rand` crate this workspace
//! uses.
//!
//! The container building this repository has no network access, so the
//! real `rand` cannot be vendored. This shim reimplements — from the
//! published trait contracts, not the upstream sources — exactly the
//! API surface the workspace touches: [`RngCore`], [`SeedableRng`]
//! (including the PCG32-based `seed_from_u64` expansion documented by
//! `rand_core`), the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`) and [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! Where a documented algorithm exists (seed expansion, float
//! sampling), the shim follows it so that seeded value streams match
//! what the workspace's tests were originally calibrated against.
//!
//! Determinism is the design goal: every generator in the workspace is
//! seeded explicitly, so results are reproducible across runs and
//! platforms. Statistical quality beyond "good enough for sampling and
//! initialization" is a non-goal.

#![deny(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Error type carried by [`RngCore::try_fill_bytes`]. The shim's
/// generators are infallible, so this is never constructed by them.
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "random number generator failure")
    }
}

impl std::error::Error for Error {}

/// The core generator interface: raw 32/64-bit outputs and byte fills.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible byte fill; the shim never fails.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

impl RngCore for Box<dyn RngCore + '_> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed and seeds the generator with
    /// it. Deterministic and seed-stable.
    ///
    /// Uses the PCG32 output sequence exactly as `rand_core` documents
    /// for its default `seed_from_u64`, so seeded generators produce
    /// the same raw streams the workspace's tests were calibrated
    /// against.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6_364_136_223_846_793_005;
        const INC: u64 = 11_634_580_027_462_260_723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // Advance the LCG state first so low-entropy inputs (like
            // the ubiquitous seed 0) still diffuse.
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            let bytes = x.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: the tiny, well-known seed-expansion PRNG
/// (Steele, Lea & Flood, 2014). Used by `seed_from_u64` and available
/// directly as a minimal deterministic generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator with the given starting state.
    pub fn new(state: u64) -> Self {
        SplitMix64 { state }
    }
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_via_u64(self, dest);
    }
}

impl SeedableRng for SplitMix64 {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        SplitMix64::new(u64::from_le_bytes(seed))
    }
}

/// Shared helper: fills a byte slice from consecutive `next_u64` words.
pub(crate) fn fill_bytes_via_u64<R: RngCore + ?Sized>(rng: &mut R, dest: &mut [u8]) {
    for chunk in dest.chunks_mut(8) {
        let bytes = rng.next_u64().to_le_bytes();
        let n = chunk.len();
        chunk.copy_from_slice(&bytes[..n]);
    }
}

/// Types samplable uniformly from the generator's raw output — the
/// shim's equivalent of sampling from rand's `Standard` distribution.
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl StandardSample for i8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i8
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Uniform sampling from a half-open `[lo, hi)` span.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)`. Requires `lo < hi`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Draws uniformly from `[lo, hi]`. Requires `lo <= hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Unbiased integer draw from `[0, span)` (`span > 0`) by rejection.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Largest multiple of `span` representable in u64 — values at or
    // above it would bias the modulo.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let x = rng.next_u64();
        if x < zone {
            return x % span;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw from `[0, 1)` via the exponent-fix/mantissa-fill
/// construction rand's uniform float sampler uses: set the exponent so
/// the value lies in `[1, 2)`, fill the mantissa with random bits, and
/// subtract 1. `f32` consumes one `next_u32`, `f64` one `next_u64`.
trait UnitFromMantissa {
    fn unit_from_mantissa<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UnitFromMantissa for f32 {
    fn unit_from_mantissa<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mantissa = rng.next_u32() >> 9; // keep 23 bits
        f32::from_bits((127u32 << 23) | mantissa) - 1.0
    }
}

impl UnitFromMantissa for f64 {
    fn unit_from_mantissa<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mantissa = rng.next_u64() >> 12; // keep 52 bits
        f64::from_bits((1023u64 << 52) | mantissa) - 1.0
    }
}

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                // Mantissa-fill method used by rand's uniform float
                // sampler: draw a value in [1, 2) by fixing the
                // exponent and randomizing the mantissa, subtract 1,
                // then scale. Keeps seeded streams identical to what
                // the workspace's tests expect.
                let u = <$t>::unit_from_mantissa(rng);
                u * (hi - lo) + lo
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                // Closed float ranges are not used for exact-endpoint
                // semantics anywhere in the workspace.
                Self::sample_half_open(rng, lo, hi)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range-like arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Convenience extension over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of a [`StandardSample`] type.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p {p} outside [0, 1]");
        let u: f64 = self.gen();
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice shuffling and element selection, mirroring
/// `rand::seq::SliceRandom`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_known_vector() {
        // Reference values for seed 1234567 from the published
        // SplitMix64 algorithm definition.
        let mut rng = SplitMix64::new(1234567);
        let first = rng.next_u64();
        let second = rng.next_u64();
        assert_ne!(first, second);
        let mut again = SplitMix64::new(1234567);
        assert_eq!(again.next_u64(), first);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1u32..=4);
            assert!((1..=4).contains(&y));
            let f = rng.gen_range(-1.5f32..1.5);
            assert!((-1.5..1.5).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SplitMix64::new(9);
        for _ in 0..1000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::new(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = SplitMix64::new(3);
        let v: Vec<u32> = Vec::new();
        assert!(v.choose(&mut rng).is_none());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SplitMix64::new(11);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
