//! Offline stand-in for the subset of `rayon` this workspace uses.
//!
//! The container building this repository has no network access, so the
//! real `rayon` cannot be vendored. This shim implements — against the
//! published API contracts, not the upstream sources — exactly the
//! surface the workspace touches:
//!
//! * [`IntoParallelRefIterator::par_iter`] over slices and `Vec`s, and
//!   [`IntoParallelIterator::into_par_iter`] over `Range<usize>`, each
//!   supporting `.map(f).collect::<Vec<_>>()`,
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] for scoping an
//!   explicit worker count, and [`current_num_threads`].
//!
//! # Execution model
//!
//! Unlike real rayon there is no persistent work-stealing pool: each
//! parallel map splits its input into one contiguous chunk per worker
//! and runs the chunks on `std::thread::scope` threads, writing results
//! into pre-partitioned slots. Three properties the workspace relies on
//! fall out of that design:
//!
//! * **Order preservation** — results come back in input order, so a
//!   parallel map is a drop-in for the serial `iter().map().collect()`
//!   and reductions over the collected vector stay ordered. Combined
//!   with per-item RNG seeding (see `dekg_datasets::seeding`), parallel
//!   output is bitwise-identical to serial output at any thread count.
//! * **Bounded nesting** — worker threads run nested parallel maps
//!   serially (their ambient thread count is pinned to 1), so fanning
//!   out queries and then candidates cannot oversubscribe the host.
//! * **Ambient configuration** — [`ThreadPool::install`] sets the
//!   thread count for the duration of a closure on the calling thread;
//!   code inside needs no pool handle plumbed through. Without an
//!   installed pool, maps default to [`std::thread::available_parallelism`].
//!
//! Thread-spawn cost (~tens of microseconds per worker) is paid per
//! parallel map, which is negligible against the millisecond-scale
//! chunks this workspace fans out (subgraph extraction, GNN scoring,
//! ranking queries). A persistent pool is a non-goal.
//!
//! # Schedule perturbation (`DEKG_SHUFFLE_SCHEDULE=1`)
//!
//! The sanitizer mode randomizes everything the determinism contract
//! says must not matter: chunk boundaries become random and uneven,
//! chunks spawn in shuffled order, and workers yield before touching
//! their slice. Results still come back in input order — output slots
//! are positional — so any code that is schedule-sensitive (reduction
//! order, shared-state mutation, chunk-keyed RNG seeding) diverges and
//! fails the existing determinism tests, upgrading "thread-count
//! invariant" to "schedule invariant". `DEKG_SHUFFLE_SEED=N` pins the
//! perturbation stream for reproducing a failure; the default seed
//! varies per process.

#![deny(unsafe_code)]

use std::cell::Cell;
use std::ops::Range;

/// The schedule-perturbation sanitizer (see the crate docs).
mod shuffle {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::OnceLock;

    static STATE: AtomicU64 = AtomicU64::new(0);

    /// True when `DEKG_SHUFFLE_SCHEDULE=1` (checked once per process).
    pub fn enabled() -> bool {
        static ON: OnceLock<bool> = OnceLock::new();
        *ON.get_or_init(|| std::env::var("DEKG_SHUFFLE_SCHEDULE").is_ok_and(|v| v == "1"))
    }

    fn seed() -> u64 {
        static SEED: OnceLock<u64> = OnceLock::new();
        *SEED.get_or_init(|| {
            std::env::var("DEKG_SHUFFLE_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or_else(
                || {
                    // Un-pinned by default: the point is to explore
                    // schedules the fixed tests would never produce.
                    std::time::SystemTime::now()
                        .duration_since(std::time::UNIX_EPOCH)
                        .map_or(0x5EED_0BAD_F00D, |d| d.as_nanos() as u64)
                },
            )
        })
    }

    /// Next perturbation word (splitmix64 over a shared counter).
    pub fn next() -> u64 {
        let mut z = seed() ^ STATE.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Fisher–Yates over `work` using the perturbation stream.
    pub fn shuffle_vec<T>(work: &mut [T]) {
        for i in (1..work.len()).rev() {
            let j = (next() as usize) % (i + 1);
            work.swap(i, j);
        }
    }
}

/// Splits `0..len` into per-worker ranges: contiguous uniform chunks
/// normally; random uneven cuts (more pieces than workers) when the
/// schedule sanitizer is on.
fn partition(len: usize, threads: usize, shuffled: bool) -> Vec<Range<usize>> {
    if !shuffled {
        let chunk = len.div_ceil(threads);
        return (0..len).step_by(chunk).map(|s| s..(s + chunk).min(len)).collect();
    }
    let pieces = (threads * 2).min(len).max(1);
    let mut cuts: Vec<usize> =
        (0..pieces - 1).map(|_| (shuffle::next() as usize) % (len + 1)).collect();
    cuts.push(0);
    cuts.push(len);
    cuts.sort_unstable();
    cuts.dedup();
    cuts.windows(2).map(|w| w[0]..w[1]).filter(|r| !r.is_empty()).collect()
}

thread_local! {
    /// Worker count installed on this thread, when inside
    /// [`ThreadPool::install`] (or pinned to 1 inside a shim worker).
    static AMBIENT_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Restores the previous ambient thread count on drop (panic-safe).
struct AmbientGuard {
    prev: Option<usize>,
}

impl AmbientGuard {
    fn set(n: usize) -> Self {
        AmbientGuard { prev: AMBIENT_THREADS.with(|c| c.replace(Some(n))) }
    }
}

impl Drop for AmbientGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        AMBIENT_THREADS.with(|c| c.set(prev));
    }
}

fn default_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// The worker count parallel maps on this thread will use: the
/// installed pool's size inside [`ThreadPool::install`], otherwise
/// [`std::thread::available_parallelism`].
pub fn current_num_threads() -> usize {
    AMBIENT_THREADS.with(std::cell::Cell::get).unwrap_or_else(default_num_threads)
}

/// Error returned by [`ThreadPoolBuilder::build`]. The shim's builder
/// cannot actually fail; the type exists for signature compatibility.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`], mirroring rayon's.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (auto) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count; `0` means "use the default".
    #[must_use]
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    /// Never fails in the shim; the `Result` mirrors rayon's signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 { default_num_threads() } else { self.num_threads };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A scoped worker-count configuration (the shim spawns threads per
/// parallel map rather than keeping a persistent pool).
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count installed as the ambient
    /// worker count for parallel maps on the calling thread.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        let _guard = AmbientGuard::set(self.num_threads);
        op()
    }

    /// This pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// The order-preserving chunked map engine shared by every parallel
/// iterator type. Workers run with their ambient thread count pinned to
/// 1, so nested parallel maps execute serially.
fn par_map_slice<'data, T, R, F>(items: &'data [T], map_op: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'data T) -> R + Sync,
{
    let threads = current_num_threads().min(items.len());
    if threads <= 1 {
        return items.iter().map(map_op).collect();
    }
    let shuffled = shuffle::enabled();
    let ranges = partition(items.len(), threads, shuffled);
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    // Pair each input chunk with its positional output slice, so the
    // spawn order below is free to vary without reordering results.
    let mut work: Vec<(&[T], &mut [Option<R>])> = Vec::with_capacity(ranges.len());
    let mut rest: &mut [Option<R>] = &mut out;
    for r in &ranges {
        let (head, tail) = std::mem::take(&mut rest).split_at_mut(r.len());
        work.push((&items[r.clone()], head));
        rest = tail;
    }
    if shuffled {
        shuffle::shuffle_vec(&mut work);
    }
    std::thread::scope(|scope| {
        for (in_chunk, out_chunk) in work {
            scope.spawn(move || {
                let _guard = AmbientGuard::set(1);
                if shuffled {
                    perturb_start();
                }
                for (slot, item) in out_chunk.iter_mut().zip(in_chunk) {
                    *slot = Some(map_op(item));
                }
            });
        }
    });
    out.into_iter().map(|r| r.expect("parallel map slot filled")).collect()
}

/// Worker-start jitter under the schedule sanitizer: a random number of
/// yields so chunks begin (and interleave) in a different order every
/// run.
fn perturb_start() {
    for _ in 0..(shuffle::next() % 4) {
        std::thread::yield_now();
    }
}

/// Index-range variant of the engine (`Fn(usize)` instead of `Fn(&T)`).
fn par_map_range<R, F>(range: Range<usize>, map_op: &F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let len = range.len();
    let threads = current_num_threads().min(len);
    if threads <= 1 {
        return range.map(map_op).collect();
    }
    let shuffled = shuffle::enabled();
    let ranges = partition(len, threads, shuffled);
    let mut out: Vec<Option<R>> = Vec::with_capacity(len);
    out.resize_with(len, || None);
    let mut work: Vec<(usize, &mut [Option<R>])> = Vec::with_capacity(ranges.len());
    let mut rest: &mut [Option<R>] = &mut out;
    for r in &ranges {
        let (head, tail) = std::mem::take(&mut rest).split_at_mut(r.len());
        work.push((range.start + r.start, head));
        rest = tail;
    }
    if shuffled {
        shuffle::shuffle_vec(&mut work);
    }
    std::thread::scope(|scope| {
        for (start, out_chunk) in work {
            scope.spawn(move || {
                let _guard = AmbientGuard::set(1);
                if shuffled {
                    perturb_start();
                }
                for (k, slot) in out_chunk.iter_mut().enumerate() {
                    *slot = Some(map_op(start + k));
                }
            });
        }
    });
    out.into_iter().map(|r| r.expect("parallel map slot filled")).collect()
}

/// Types whose references can be iterated in parallel (`par_iter`).
pub trait IntoParallelRefIterator<'data> {
    /// The borrowed item type.
    type Item: Sync + 'data;

    /// A parallel iterator over `&Self::Item`.
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

/// Parallel iterator over a slice.
#[derive(Debug)]
pub struct ParIter<'data, T: Sync> {
    items: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Maps each item through `map_op` (applied in parallel).
    pub fn map<R, F>(self, map_op: F) -> ParMap<'data, T, F>
    where
        R: Send,
        F: Fn(&'data T) -> R + Sync,
    {
        ParMap { items: self.items, map_op }
    }
}

/// A mapped parallel slice iterator, ready to collect.
#[derive(Debug)]
pub struct ParMap<'data, T: Sync, F> {
    items: &'data [T],
    map_op: F,
}

impl<'data, T, F> ParMap<'data, T, F>
where
    T: Sync,
{
    /// Runs the map and collects results in input order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(&'data T) -> R + Sync,
        C: From<Vec<R>>,
    {
        C::from(par_map_slice(self.items, &self.map_op))
    }
}

/// Types convertible into an owning parallel iterator (`into_par_iter`).
pub trait IntoParallelIterator {
    /// The concrete parallel iterator type.
    type Iter;

    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = RangeParIter;

    fn into_par_iter(self) -> RangeParIter {
        RangeParIter { range: self }
    }
}

/// Parallel iterator over an index range.
#[derive(Debug)]
pub struct RangeParIter {
    range: Range<usize>,
}

impl RangeParIter {
    /// Maps each index through `map_op` (applied in parallel).
    pub fn map<R, F>(self, map_op: F) -> RangeParMap<F>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        RangeParMap { range: self.range, map_op }
    }
}

/// A mapped parallel range iterator, ready to collect.
#[derive(Debug)]
pub struct RangeParMap<F> {
    range: Range<usize>,
    map_op: F,
}

impl<F> RangeParMap<F> {
    /// Runs the map and collects results in index order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
        C: From<Vec<R>>,
    {
        C::from(par_map_range(self.range, &self.map_op))
    }
}

/// The imports rayon users conventionally glob in.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter, RangeParIter};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = items.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_map_preserves_order() {
        let squares: Vec<usize> = (3..203).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, (3..203).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().expect("build");
        let before = current_num_threads();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(current_num_threads(), before);
    }

    #[test]
    fn install_restores_on_panic() {
        let pool = ThreadPoolBuilder::new().num_threads(5).build().expect("build");
        let before = current_num_threads();
        let caught = std::panic::catch_unwind(|| pool.install(|| panic!("boom")));
        assert!(caught.is_err());
        assert_eq!(current_num_threads(), before);
    }

    #[test]
    fn nested_maps_run_serially() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().expect("build");
        let nested: Vec<usize> =
            pool.install(|| (0..8usize).into_par_iter().map(|_| current_num_threads()).collect());
        // Inside a worker the ambient count is pinned to 1.
        assert!(nested.iter().all(|&n| n == 1), "{nested:?}");
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let items: Vec<u64> = (0..257).collect();
        let run = |threads: usize| -> Vec<u64> {
            let pool = ThreadPoolBuilder::new().num_threads(threads).build().expect("build");
            pool.install(|| items.par_iter().map(|x| x.wrapping_mul(0x9E37)).collect())
        };
        assert_eq!(run(1), run(4));
        assert_eq!(run(1), run(7));
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let one: Vec<u32> = vec![7].par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
        let none: Vec<usize> = (5..5).into_par_iter().map(|i| i).collect();
        assert!(none.is_empty());
    }

    #[test]
    fn zero_threads_means_default() {
        let pool = ThreadPoolBuilder::new().num_threads(0).build().expect("build");
        assert!(pool.current_num_threads() >= 1);
    }

    /// Every partition — uniform or perturbed — must tile `0..len`
    /// exactly: that is what makes positional output slots (and
    /// therefore schedule-invariant results) sound.
    #[test]
    fn partitions_tile_the_input_exactly() {
        for &(len, threads) in &[(1usize, 4usize), (7, 2), (100, 3), (257, 8), (4, 16)] {
            for shuffled in [false, true] {
                // Repeat shuffled partitions: each draw is different.
                for _ in 0..if shuffled { 20 } else { 1 } {
                    let ranges = partition(len, threads, shuffled);
                    let mut next = 0;
                    for r in &ranges {
                        assert_eq!(r.start, next, "gap/overlap in {ranges:?}");
                        assert!(r.end > r.start, "empty range in {ranges:?}");
                        next = r.end;
                    }
                    assert_eq!(next, len, "partition does not cover 0..{len}: {ranges:?}");
                }
            }
        }
    }

    /// The engines must produce input-ordered results from an
    /// arbitrarily shuffled work list — forced here via the same
    /// split-and-shuffle machinery the sanitizer uses.
    #[test]
    fn perturbed_partitions_still_order_results() {
        // Not testing via the env var (process-global, racy across the
        // test harness); the partition + shuffle_vec pieces are driven
        // directly instead.
        let len = 103;
        let ranges = partition(len, 4, true);
        let mut out: Vec<Option<usize>> = vec![None; len];
        let mut work: Vec<(usize, &mut [Option<usize>])> = Vec::new();
        let mut rest: &mut [Option<usize>] = &mut out;
        for r in &ranges {
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(r.len());
            work.push((r.start, head));
            rest = tail;
        }
        shuffle::shuffle_vec(&mut work);
        std::thread::scope(|scope| {
            for (start, chunk) in work {
                scope.spawn(move || {
                    for (k, slot) in chunk.iter_mut().enumerate() {
                        *slot = Some((start + k) * 3);
                    }
                });
            }
        });
        let got: Vec<usize> = out.into_iter().map(|s| s.expect("slot filled")).collect();
        assert_eq!(got, (0..len).map(|i| i * 3).collect::<Vec<_>>());
    }
}
