//! Offline stand-in for the part of `crossbeam` this workspace uses:
//! [`thread::scope`] with crossbeam's closure signature (the spawned
//! closure receives a scope reference for nested spawns), implemented
//! on top of `std::thread::scope`.
//!
//! Since Rust 1.63 the standard library's scoped threads provide the
//! same borrow-into-threads guarantee crossbeam pioneered, so this
//! shim is a thin calling-convention adapter, not a reimplementation.

#![deny(unsafe_code)]

/// Scoped-thread API matching `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// The result of a scope or a joined thread: `Err` carries a panic
    /// payload.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle; threads spawned through it may borrow from the
    /// enclosing stack frame (`'env`).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure
        /// receives a scope reference so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { inner: inner.spawn(move || f(&Scope { inner })) }
        }
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread; `Err` is the panic payload.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be
    /// spawned; all are joined before this returns.
    ///
    /// Always returns `Ok`: with std scoped threads, a panic in an
    /// unjoined child propagates as a panic here rather than an `Err`
    /// (panics in *joined* children still surface through
    /// [`ScopedJoinHandle::join`], which is how this workspace
    /// consumes them).
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = crate::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().expect("no panic")).sum::<u64>()
        })
        .expect("scope failed");
        assert_eq!(total, 10);
    }

    #[test]
    fn panic_surfaces_through_join() {
        let caught = crate::thread::scope(|scope| {
            let h = scope.spawn(|_| panic!("boom"));
            h.join().is_err()
        })
        .expect("scope failed");
        assert!(caught);
    }

    #[test]
    fn nested_spawn_compiles() {
        let n = crate::thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 21u32).join().expect("inner") * 2)
                .join()
                .expect("outer")
        })
        .expect("scope failed");
        assert_eq!(n, 42);
    }
}
