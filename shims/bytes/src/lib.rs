//! Offline stand-in for the subset of the `bytes` crate used by the
//! DKGT checkpoint format: [`Bytes`], [`BytesMut`], and the
//! [`Buf`]/[`BufMut`] cursor traits, backed by plain `Vec<u8>`.
//!
//! The real crate's zero-copy reference counting is deliberately
//! omitted — checkpoints are encoded once and written to disk, so an
//! owned buffer is equivalent here.

#![deny(unsafe_code)]

/// An immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.to_vec() }
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.data
    }
}

/// A growable byte buffer for encoding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// A cursor over readable bytes. Implemented for `&[u8]`, where
/// consuming methods advance the slice itself.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `n` bytes.
    ///
    /// # Panics
    /// If `n > self.remaining()`.
    fn advance(&mut self, n: usize);

    /// Copies bytes into `dst`, advancing past them.
    ///
    /// # Panics
    /// If fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut raw = [0u8; 1];
        self.copy_to_slice(&mut raw);
        raw[0]
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        *self = &self[n..];
    }
}

/// A sink for writable bytes.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read() {
        let mut buf = BytesMut::new();
        buf.put_slice(b"HDR!");
        buf.put_u32_le(7);
        buf.put_f32_le(1.5);
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 12);

        let mut cursor: &[u8] = &frozen;
        let mut magic = [0u8; 4];
        cursor.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"HDR!");
        assert_eq!(cursor.get_u32_le(), 7);
        assert_eq!(cursor.get_f32_le(), 1.5);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn advance_moves_slice() {
        let data = [1u8, 2, 3, 4];
        let mut cursor: &[u8] = &data;
        cursor.advance(2);
        assert_eq!(cursor, &[3, 4]);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut cursor: &[u8] = &[1u8];
        let _ = cursor.get_u32_le();
    }
}
