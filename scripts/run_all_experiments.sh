#!/usr/bin/env bash
# Regenerates every table and figure of the paper at the scaled protocol
# documented in EXPERIMENTS.md. Text output lands in results/*.txt,
# machine-readable rows in results/*.json.
#
# Usage: scripts/run_all_experiments.sh [extra flags passed to every binary]
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results

run() {
    local bin="$1"; shift
    echo "=== $bin $* ==="
    cargo run --release -p dekg-bench --bin "$bin" -- "$@" | tee "results/$bin.txt"
}

EXTRA=("$@")

run table1_capabilities
run table2_datasets "${EXTRA[@]}"
run table3_main "${EXTRA[@]}"
run fig5_respective "${EXTRA[@]}"
run fig6_ablation "${EXTRA[@]}"
run fig7_complexity "${EXTRA[@]}"
run table4_timing "${EXTRA[@]}"
run fig8_casestudy "${EXTRA[@]}"
run sweep_hyperparams --raw fb --split eq "${EXTRA[@]}"
run ablation_protocol --raw fb --split eq "${EXTRA[@]}"

echo "all experiments complete — see results/"
