#!/usr/bin/env bash
# Internal driver: the experiment binaries not yet recorded, in cost
# order. Used once during result collection; prefer
# run_all_experiments.sh for a clean full rerun.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results

run() {
    local bin="$1"; shift
    echo "=== $bin $* ==="
    cargo run --release -p dekg-bench --bin "$bin" -- "$@" | tee "results/$bin.txt"
}

run table2_datasets
run fig8_casestudy
run fig7_complexity --epochs 1
run ablation_protocol --raw fb --split eq
run sweep_hyperparams --raw fb --split eq --epochs 5
run fig6_ablation
run table4_timing --epochs 3
run table1_capabilities
echo REMAINING_DONE
