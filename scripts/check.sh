#!/usr/bin/env bash
# Pre-merge gate: formatting, the workspace lint wall, the test suite,
# and an end-to-end generate -> check round trip through the `dekg`
# binary. Everything here must pass before a PR merges (see ROADMAP.md).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo test --workspace"
cargo test -q --workspace --offline

echo "==> dekg generate + dekg check round trip"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
cargo run -q --release --offline -p dekg-cli -- \
    generate --raw fb --split eq --scale 0.05 --seed 1 --out "$tmp/data"
cargo run -q --release --offline -p dekg-cli -- \
    check --data "$tmp/data" --raw fb --split eq --scale 0.05

echo "==> all checks passed"
