#!/usr/bin/env bash
# Pre-merge gate: formatting, the workspace lint wall, the test suite,
# and an end-to-end generate -> check round trip through the `dekg`
# binary. Everything here must pass before a PR merges (see ROADMAP.md).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> dekg lint (workspace invariant rules)"
# The static pass: determinism-contract iteration (L1), #[allow]
# justifications (L2), print routing (L3), unwrap budgets (L4),
# hermetic kernels (L5). Must be clean — fix or justify at the site.
cargo run -q --release --offline -p dekg-cli -- lint
# The machine-readable face must agree with the human one: clean run,
# exit 0, stdout parses as a JSON object reporting zero errors.
lint_json="$(cargo run -q --release --offline -p dekg-cli -- lint --json)"
grep -q '"errors": 0' <<< "$lint_json"

echo "==> cargo test --workspace"
cargo test -q --workspace --offline

echo "==> determinism under a shuffled schedule (DEKG_SHUFFLE_SCHEDULE=1)"
# Re-runs the bitwise-determinism contract with the rayon shim handing
# out random uneven chunks in random spawn order: results must be
# schedule-invariant, not merely thread-count-invariant.
DEKG_SHUFFLE_SCHEDULE=1 cargo test -q -p dekg --test parallel_determinism --offline
# Trace integrity under the same perturbation: span nesting stays
# well-formed with spans closing on many threads in shuffled order, and
# the kernel profiler's calls/bytes columns are schedule-invariant.
DEKG_SHUFFLE_SCHEDULE=1 cargo test -q -p dekg-core --test trace_integrity --offline

echo "==> cargo doc --workspace (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc -q --workspace --no-deps --offline

echo "==> dekg generate + dekg check --grads round trip"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
cargo run -q --release --offline -p dekg-cli -- \
    generate --raw fb --split eq --scale 0.05 --seed 1 --out "$tmp/data"
# --grads runs the finite-difference suite over every Op variant (the
# coverage audit fails on any unregistered variant) plus an f64
# re-execution of one training batch on the generated dataset.
cargo run -q --release --offline -p dekg-cli -- \
    check --data "$tmp/data" --raw fb --split eq --scale 0.05 --grads

echo "==> dekg check --tape: static analysis of the production training tape"
# Abstract shape interpretation, gradient-flow reachability and the
# liveness/memory plan over one recorded training batch — no kernel
# executes during the analysis. The red fixtures (dead parameter, lying
# shape, unconsumed op) and the 34-variant coverage audit run inside
# `cargo test -p dekg-tensor` above; this smokes the CLI wiring plus
# the machine-readable face.
cargo run -q --release --offline -p dekg-cli -- \
    check --data "$tmp/data" --tape
cargo run -q --release --offline -p dekg-cli -- \
    check --data "$tmp/data" --tape --json > "$tmp/tape.json"
grep -q '"clean": true' "$tmp/tape.json"

echo "==> observability smoke: train with sinks, obslint both"
cargo run -q --release --offline -p dekg-cli -- \
    train --data "$tmp/data" --epochs 1 --ckpt "$tmp/model.dekg" \
    --log-level warn --metrics-out "$tmp/metrics.jsonl" --trace-out "$tmp/trace.jsonl"
# Every sink line must parse, re-serialize byte-identically, and lead
# with its event kind; the required kinds pin the training schema.
cargo run -q --release --offline -p dekg-cli -- \
    obslint --file "$tmp/metrics.jsonl" --require train_step,epoch,metrics
cargo run -q --release --offline -p dekg-cli -- \
    obslint --file "$tmp/trace.jsonl" --require spans

echo "==> kernel-profiler smoke: dekg profile train + obslint --chrome"
# Replays the production training tape with the per-op profiler armed;
# the hot-op table must attribute the bracket, and the Chrome trace it
# exports must survive the structural lint (well-formed events,
# monotonic per-track close order, parents contain children).
cargo run -q --release --offline -p dekg-cli -- \
    profile train --data "$tmp/data" --batches 4 \
    --chrome-trace "$tmp/prof_trace.json" | grep -q "coverage"
cargo run -q --release --offline -p dekg-cli -- \
    obslint --file "$tmp/prof_trace.json" --chrome

echo "==> perf harness smoke run (2 threads, tiny scale)"
# Asserts the parallel/sparse/batched pipeline stays bit-identical
# to the serial seed pipeline; the tracked numbers in BENCH_perf.json
# are regenerated separately with the default flags.
cargo run -q --release --offline -p dekg-bench --bin perf -- \
    --threads 2 --scale 0.04 --epochs 1 --out "$tmp/BENCH_perf.json"

echo "==> zero-allocation sanitizer: warmed batched scoring loop"
# Under a counting global allocator, 64 steady-state iterations of the
# batched scoring loop must perform 0 heap allocations (the
# InferenceWorkspace scratch discipline, asserted for real), and the
# measured peak heap growth must stay at or under the tape memory
# plan's prediction; both are recorded into the perf report.
cargo run -q --release --offline -p dekg-bench --features count-alloc --bin perf -- \
    --alloc-check --out "$tmp/BENCH_perf.json"
grep -q '"measured_peak_delta_bytes"' "$tmp/BENCH_perf.json"

echo "==> perf-regression watchdog: --compare"
# A report must hold every tracked speedup/coverage ratio of its
# baseline: self-comparison passes, and a baseline with an inflated
# speedup (simulating a regression in the current run) must fail
# nonzero — that exact failure is the CI tripwire for perf regressions.
cargo run -q --release --offline -p dekg-bench --bin perf -- \
    --out "$tmp/BENCH_perf.json" --compare "$tmp/BENCH_perf.json"
sed -E 's/"end_to_end_eval_speedup": [0-9.eE+-]+/"end_to_end_eval_speedup": 99999.0/' \
    "$tmp/BENCH_perf.json" > "$tmp/BENCH_tampered.json"
if cargo run -q --release --offline -p dekg-bench --bin perf -- \
    --out "$tmp/BENCH_perf.json" --compare "$tmp/BENCH_tampered.json" > /dev/null; then
    echo "watchdog failed to flag an injected regression" >&2
    exit 1
fi

echo "==> batched-path smoke: evaluate batched vs per-candidate, identical metrics"
# The same checkpoint evaluated through the batched candidate-ranking
# engine and the per-candidate forward path must print identical metric
# tables (bitwise score equality end-to-end through the CLI).
cargo run -q --release --offline -p dekg-cli -- \
    evaluate --data "$tmp/data" --ckpt "$tmp/model.dekg" --candidates 20 --seed 7 \
    --scoring batched | grep -E "overall|enclosing|bridging" > "$tmp/eval_batched.txt"
cargo run -q --release --offline -p dekg-cli -- \
    evaluate --data "$tmp/data" --ckpt "$tmp/model.dekg" --candidates 20 --seed 7 \
    --scoring per-candidate | grep -E "overall|enclosing|bridging" > "$tmp/eval_percand.txt"
diff "$tmp/eval_batched.txt" "$tmp/eval_percand.txt"

echo "==> serve determinism under a shuffled schedule"
# The serving face of the bitwise contract: interleaved concurrent
# clients must get byte-identical answers to a serial pass, with the
# rayon shim perturbing worker schedules underneath.
DEKG_SHUFFLE_SCHEDULE=1 cargo test -q -p dekg-serve --offline

echo "==> serve smoke: boot, rank, hot-swap, metrics, shutdown"
# Boots the daemon the way an operator would (ephemeral port via
# --port-file), then walks the runbook in docs/OPERATIONS.md: readiness
# gate, two identical ranks (byte-compared), a hot-swap reload that
# bumps the generation, a /metrics scrape, and a clean remote shutdown.
dekg() { cargo run -q --release --offline -p dekg-cli -- "$@"; }
dekg serve --data "$tmp/data" --ckpt "$tmp/model.dekg" \
    --addr 127.0.0.1:0 --port-file "$tmp/serve.addr" --log-level warn &
serve_pid=$!
for _ in $(seq 1 100); do [ -s "$tmp/serve.addr" ] && break; sleep 0.1; done
addr="$(cat "$tmp/serve.addr")"
for _ in $(seq 1 100); do
    dekg request --addr "$addr" --path /readyz >/dev/null 2>&1 && break
    sleep 0.1
done
dekg request --addr "$addr" --path /readyz | grep -q ready
head="$(head -n 1 "$tmp/data/test_enclosing.txt" | cut -f1)"
rel="$(head -n 1 "$tmp/data/test_enclosing.txt" | cut -f2)"
tail_e="$(head -n 1 "$tmp/data/test_enclosing.txt" | cut -f3)"
rank_body="{\"rank\": {\"task\": \"tail\", \"head\": \"$head\", \"rel\": \"$rel\", \
\"tail\": \"$tail_e\", \"candidates\": 10, \"seed\": 7, \"index\": 0}}"
dekg request --addr "$addr" --body "$rank_body" > "$tmp/rank1.json"
dekg request --addr "$addr" --body "$rank_body" > "$tmp/rank2.json"
diff "$tmp/rank1.json" "$tmp/rank2.json"
grep -q '"rank":' "$tmp/rank1.json"
# Hot-swap: re-reads the checkpoint in place, generation must bump.
dekg request --addr "$addr" --path /admin/reload --method POST | grep -q '"generation":2'
dekg request --addr "$addr" --body "$rank_body" > "$tmp/rank3.json"
diff "$tmp/rank1.json" "$tmp/rank3.json"
dekg request --addr "$addr" --path /metrics | grep -q dekg_serve_requests_total
dekg request --addr "$addr" --path /admin/shutdown --method POST | grep -q stopping
wait "$serve_pid"
unset -f dekg

echo "==> all checks passed"
