//! `--json` purity audit: every machine-readable CLI face must emit
//! *only* JSON on stdout — human chatter belongs on stderr. A single
//! stray `println!` upstream of the report breaks `dekg ... --json |
//! jq`-style pipelines, so each face is pinned here by parsing the
//! entire stdout as one JSON document (the shim's parser rejects
//! trailing non-whitespace content, which is exactly the property we
//! want).

use dekg_datasets::{generate, loader, DatasetProfile, RawKg, SplitKind, SynthConfig};
use std::path::PathBuf;
use std::process::Command;

/// Runs the `dekg` binary, returning (status-ok, stdout, stderr).
fn dekg(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_dekg")).args(args).output().unwrap();
    (
        out.status.success(),
        String::from_utf8(out.stdout).unwrap(),
        String::from_utf8(out.stderr).unwrap(),
    )
}

/// Asserts `stdout` is exactly one JSON document (plus optional
/// trailing whitespace) and returns it parsed.
fn assert_pure_json(face: &str, stdout: &str) -> serde::Value {
    assert!(!stdout.trim().is_empty(), "{face}: empty stdout");
    match serde_json::parse_value(stdout) {
        Ok(v) => v,
        Err(e) => panic!(
            "{face}: stdout is not pure JSON ({e})\n--- stdout ---\n{stdout}\n--------------"
        ),
    }
}

fn tiny_dataset_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dekg-json-purity-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let profile = DatasetProfile::table2(RawKg::Wn18rr, SplitKind::Eq).scaled(0.02);
    loader::save_dir(&generate(&SynthConfig::for_profile(profile, 17)), &dir).unwrap();
    dir
}

#[test]
fn check_tape_json_stdout_is_pure_json() {
    let dir = tiny_dataset_dir("tape");
    let data = dir.to_string_lossy().into_owned();
    let (ok, stdout, stderr) = dekg(&["check", "--data", &data, "--tape", "--json"]);
    assert!(ok, "check --tape --json failed:\n{stderr}");
    let report = assert_pure_json("check --tape --json", &stdout);
    // Sanity: it is the tape report, not some other JSON.
    let pairs = report.as_object().expect("tape report must be an object");
    assert!(serde::field(pairs, "clean").is_ok());
    assert!(serde::field(pairs, "memory_plan").is_ok());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn lint_json_stdout_is_pure_json() {
    // The workspace root is two levels above this crate's manifest.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let root = root.to_string_lossy().into_owned();
    let (ok, stdout, stderr) = dekg(&["lint", "--json", "--root", &root]);
    assert!(ok, "dekg lint found errors:\n{stdout}\n{stderr}");
    let report = assert_pure_json("lint --json", &stdout);
    let pairs = report.as_object().expect("lint report must be an object");
    assert!(serde::field(pairs, "findings").is_ok());
    assert!(serde::field(pairs, "unwrap_budgets").is_ok());
}
