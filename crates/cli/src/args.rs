//! Minimal `--flag value` parsing for the CLI.

use std::collections::{HashMap, HashSet};

/// Parsed command-line flags.
#[derive(Debug, Default)]
pub struct Flags {
    values: HashMap<String, String>,
    switches: HashSet<String>,
}

impl Flags {
    /// Parses `--key value` pairs; rejects dangling flags.
    ///
    /// Thin switchless wrapper over [`Flags::parse_with_switches`];
    /// `main` always goes through the switch-aware entry point, so
    /// this survives for the test suite only.
    #[cfg(test)]
    pub fn parse(argv: &[String]) -> Result<Flags, String> {
        Self::parse_with_switches(argv, &[])
    }

    /// Like `Flags::parse`, but the named `switches` are valueless
    /// booleans (`--check`): present or absent, never consuming the
    /// next argument. Every other flag still requires a value.
    pub fn parse_with_switches(argv: &[String], switches: &[&str]) -> Result<Flags, String> {
        let mut flags = Flags::default();
        let mut i = 0;
        while i < argv.len() {
            let key = argv[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected a --flag, got {:?}", argv[i]))?;
            if switches.contains(&key) {
                flags.switches.insert(key.to_owned());
                i += 1;
                continue;
            }
            let value = argv.get(i + 1).ok_or_else(|| format!("flag --{key} needs a value"))?;
            flags.values.insert(key.to_owned(), value.clone());
            i += 2;
        }
        Ok(flags)
    }

    /// True when a boolean switch was present on the command line.
    pub fn switch(&self, key: &str) -> bool {
        self.switches.contains(key)
    }

    /// A required string flag.
    pub fn required(&self, key: &str) -> Result<&str, String> {
        self.values
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{key}"))
    }

    /// An optional string flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// A parsed flag with a default.
    pub fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("--{key}: {e}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn parses_pairs() {
        let f = Flags::parse(&argv(&["--data", "d", "--epochs", "5"])).unwrap();
        assert_eq!(f.required("data").unwrap(), "d");
        assert_eq!(f.parse_or("epochs", 1usize).unwrap(), 5);
        assert_eq!(f.parse_or("seed", 7u64).unwrap(), 7);
    }

    #[test]
    fn rejects_dangling_flag() {
        assert!(Flags::parse(&argv(&["--data"])).is_err());
        assert!(Flags::parse(&argv(&["data", "x"])).is_err());
    }

    #[test]
    fn missing_required_is_error() {
        let f = Flags::parse(&argv(&[])).unwrap();
        assert!(f.required("data").is_err());
    }

    #[test]
    fn bad_parse_reports_flag() {
        let f = Flags::parse(&argv(&["--epochs", "many"])).unwrap();
        let err = f.parse_or("epochs", 1usize).unwrap_err();
        assert!(err.contains("--epochs"));
    }

    #[test]
    fn switches_take_no_value() {
        let f = Flags::parse_with_switches(&argv(&["--check", "--data", "d"]), &["check"]).unwrap();
        assert!(f.switch("check"));
        assert_eq!(f.required("data").unwrap(), "d");
        assert!(!f.switch("verbose"));
    }

    #[test]
    fn trailing_switch_is_not_dangling() {
        let f = Flags::parse_with_switches(&argv(&["--data", "d", "--check"]), &["check"]).unwrap();
        assert!(f.switch("check"));
        // An unknown trailing flag is still a dangling-flag error.
        assert!(Flags::parse_with_switches(&argv(&["--data"]), &["check"]).is_err());
    }
}
