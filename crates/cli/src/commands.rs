//! The CLI subcommands.

use crate::args::Flags;
use dekg_core::{DekgIlp, DekgIlpConfig, InferenceGraph, LinkPredictor, TrainableModel};
use dekg_datasets::{
    generate as synth_generate, loader, DatasetProfile, DatasetStats, DekgDataset, MixRatio, RawKg,
    SplitKind, SynthConfig, TestMix,
};
use dekg_eval::{evaluate as run_eval, ProtocolConfig, Table};
use dekg_kg::{ComponentTable, EntityId, Triple};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Top-level usage text.
pub const USAGE: &str = "\
dekg — DEKG-ILP inductive link prediction

commands:
  generate  --raw fb|nell|wn --split eq|mb|me [--scale F] [--seed N] --out DIR
  stats     --data DIR
  check     --data DIR [--raw fb|nell|wn --split eq|mb|me [--scale F]] [--grads]
            [--tape [--json]] [--seed N]
  train     --data DIR [--check] [--tape-report] [--epochs N] [--dim N] [--seed N]
            [--gradcheck-every N] [--threads N] --ckpt FILE [observability flags]
  evaluate  --data DIR --ckpt FILE [--candidates N] [--split eq|mb|me] [--seed N]
            [--threads N] [--scoring batched|per-candidate|tape] [observability flags]
  predict   --data DIR --ckpt FILE --rel NAME (--head NAME | --tail NAME) [--top N]
  serve     --data DIR --ckpt FILE [--addr HOST:PORT] [--workers N] [--max-batch N]
            [--max-wait-ms N] [--queue-depth N] [--slow-ms N] [--port-file FILE]
            [observability flags]
  request   --addr HOST:PORT [--path /rank] [--method GET|POST] [--body JSON]
            [--timing]
  profile   train --data DIR [--batches N] [--distinct N] [--seed N]
            [observability flags]
  profile   eval  --data DIR [--queries N] [--candidates N] [--seed N]
            [observability flags]
  obslint   --file FILE [--require kind1,kind2,...] [--chrome]
  lint      [--root DIR] [--json]
  help

observability flags (train, evaluate, serve, profile):
  --log-level debug|info|warn|off   stderr log threshold (default info)
  --metrics-out FILE                JSONL sink: per-step/epoch events + final
                                    metrics snapshot
  --trace-out FILE                  JSONL sink: log records + span timings
                                    (hierarchical: trace/span/parent ids)
  --prom-out FILE                   Prometheus text exposition written at exit
  --chrome-trace FILE               Chrome trace-event JSON written at exit
                                    (open in Perfetto / chrome://tracing)
";

type CliResult = Result<(), Box<dyn std::error::Error>>;

/// Applies the shared observability flags (`--log-level`,
/// `--metrics-out`, `--trace-out`) before a command does real work.
fn obs_init(flags: &Flags) -> CliResult {
    let cfg = dekg_obs::ObsConfig {
        level: flags.get("log-level").map(dekg_obs::Level::parse).transpose()?,
        metrics_path: flags.get("metrics-out").map(ToOwned::to_owned),
        trace_path: flags.get("trace-out").map(ToOwned::to_owned),
        chrome_trace_path: flags.get("chrome-trace").map(ToOwned::to_owned),
    };
    dekg_obs::init(&cfg)?;
    Ok(())
}

/// Flushes end-of-run observability output: the final snapshot/span
/// events into the JSONL sinks, plus the Prometheus text exposition
/// when `--prom-out` was given.
fn obs_finish(flags: &Flags) -> CliResult {
    dekg_obs::finish();
    if let Some(path) = flags.get("prom-out") {
        std::fs::write(path, dekg_obs::metrics::global().render_prometheus())?;
    }
    Ok(())
}

fn parse_raw(s: &str) -> Result<RawKg, String> {
    match s {
        "fb" | "fb15k-237" => Ok(RawKg::Fb15k237),
        "nell" | "nell-995" => Ok(RawKg::Nell995),
        "wn" | "wn18rr" => Ok(RawKg::Wn18rr),
        other => Err(format!("unknown raw KG {other:?} (fb|nell|wn)")),
    }
}

fn parse_split(s: &str) -> Result<SplitKind, String> {
    match s {
        "eq" => Ok(SplitKind::Eq),
        "mb" => Ok(SplitKind::Mb),
        "me" => Ok(SplitKind::Me),
        other => Err(format!("unknown split {other:?} (eq|mb|me)")),
    }
}

fn load_dataset(flags: &Flags) -> Result<DekgDataset, Box<dyn std::error::Error>> {
    let dir = flags.required("data")?;
    Ok(loader::load_dir(dir, dir)?)
}

/// `dekg generate` — writes a synthetic benchmark in GraIL format.
pub fn generate(flags: &Flags) -> CliResult {
    let raw = parse_raw(flags.required("raw")?)?;
    let split = parse_split(flags.required("split")?)?;
    let scale: f64 = flags.parse_or("scale", 0.1)?;
    let seed: u64 = flags.parse_or("seed", 1)?;
    let out = flags.required("out")?;

    let profile = DatasetProfile::table2(raw, split).scaled(scale);
    let dataset = synth_generate(&SynthConfig::for_profile(profile, seed));
    loader::save_dir(&dataset, out)?;
    let s = DatasetStats::of(&dataset);
    dekg_obs::log_info!(
        "wrote {} to {out}: G |R|={} |E|={} |T|={}; G' |R|={} |E|={} |T|={}; \
         held out {} enclosing + {} bridging",
        dataset.name,
        s.original.relations,
        s.original.entities,
        s.original.triples,
        s.emerging.relations,
        s.emerging.entities,
        s.emerging.triples,
        s.test_enclosing,
        s.test_bridging,
    );
    Ok(())
}

/// `dekg stats` — Table II-style statistics of a dataset directory.
pub fn stats(flags: &Flags) -> CliResult {
    let dataset = load_dataset(flags)?;
    let s = DatasetStats::of(&dataset);
    let mut table = Table::new(vec!["graph", "|R|", "|E|", "|T|"]);
    table.add_row(vec![
        "G".into(),
        s.original.relations.to_string(),
        s.original.entities.to_string(),
        s.original.triples.to_string(),
    ]);
    table.add_row(vec![
        "G'".into(),
        s.emerging.relations.to_string(),
        s.emerging.entities.to_string(),
        s.emerging.triples.to_string(),
    ]);
    println!("{}", table.render());
    println!(
        "valid: {}   test enclosing: {}   test bridging: {}   density |T|/|E|: {:.2}",
        s.valid,
        s.test_enclosing,
        s.test_bridging,
        s.density()
    );
    Ok(())
}

/// Runs every applicable KG validator over a dataset, printing each
/// finding. Errors (broken invariants) fail the command; warnings are
/// reported but tolerated. Shared by `dekg check` and `train --check`.
/// With `to_stderr` the chatter moves off stdout so a machine-readable
/// report (`check --tape --json`) stays the only stdout content.
fn run_validators(
    dataset: &DekgDataset,
    profile: Option<&DatasetProfile>,
    to_stderr: bool,
) -> Result<(), Box<dyn std::error::Error>> {
    let say = |line: String| {
        if to_stderr {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    };
    let mut diags = dekg_check::validate(dataset);
    let store = dataset.inference_store();
    let table = ComponentTable::from_store(&store, dataset.num_entities(), dataset.num_relations);
    diags.extend(dekg_check::validate_component_table(&table, &store));
    if let Some(p) = profile {
        diags.extend(dekg_check::validate_profile(dataset, p));
    }
    for d in &diags {
        say(d.to_string());
    }
    let s = dekg_check::summarize(&diags);
    if s.errors > 0 {
        return Err(format!(
            "dekg check: {} error(s), {} warning(s) in {}",
            s.errors, s.warnings, dataset.name
        )
        .into());
    }
    if s.warnings > 0 {
        say(format!("dekg check: {} warning(s), no errors in {}", s.warnings, dataset.name));
    } else {
        say(format!("dekg check: no findings in {}", dataset.name));
    }
    Ok(())
}

/// `dekg check` — static analysis of a dataset directory.
///
/// With `--raw`/`--split` (and optionally `--scale`), the dataset's
/// statistics are additionally compared against that Table II profile.
/// With `--grads`, the autograd engine itself is verified on top of
/// the dataset checks: the per-op finite-difference suite (with its
/// coverage audit over every `Op` variant) and a differential
/// re-execution of one production training batch by the f64 reference
/// interpreter.
pub fn check(flags: &Flags) -> CliResult {
    // Unchecked load: the whole point is to *report* broken invariants,
    // which the normal loader turns into panics.
    let dir = flags.required("data")?;
    let dataset = loader::load_dir_unchecked(dir, dir)?;
    let profile = match (flags.get("raw"), flags.get("split")) {
        (Some(r), Some(s)) => {
            let scale: f64 = flags.parse_or("scale", 0.1)?;
            Some(DatasetProfile::table2(parse_raw(r)?, parse_split(s)?).scaled(scale))
        }
        (None, None) => None,
        _ => return Err("profile checks need both --raw and --split".into()),
    };
    run_validators(&dataset, profile.as_ref(), flags.switch("json"))?;
    if flags.switch("grads") {
        run_grad_checks(&dataset, flags.parse_or("seed", 0)?)?;
    }
    if flags.switch("tape") {
        run_tape_check(&dataset, flags.parse_or("seed", 0)?, flags.switch("json"))?;
    } else if flags.switch("json") {
        return Err("--json applies to the --tape report; pass both".into());
    }
    Ok(())
}

/// The static tape analysis behind `dekg check --tape`: records one
/// production training batch and runs the `dekg_tensor::tapecheck`
/// passes (abstract shapes, gradient-flow reachability, memory plan)
/// over it without executing any kernels.
fn run_tape_check(
    dataset: &DekgDataset,
    seed: u64,
    json: bool,
) -> Result<(), Box<dyn std::error::Error>> {
    if !json {
        println!("tapecheck: static analysis of one training-batch tape on {}…", dataset.name);
    }
    let report = dekg_core::tape_check_dataset(dataset, seed);
    if json {
        println!("{}", serde_json::to_string_pretty(&tape_report_json(&report))?);
    } else {
        print!("{}", report.render());
    }
    if report.errors() > 0 {
        return Err(format!(
            "dekg check --tape: {} error(s), {} warning(s)",
            report.errors(),
            report.warnings()
        )
        .into());
    }
    if !json {
        println!("dekg check --tape: tape statically verified");
    }
    Ok(())
}

/// Machine-readable form of a [`dekg_tensor::TapeReport`] — the
/// `--json` face of `dekg check --tape`. Field set is part of the CLI
/// contract; extend, don't rename.
fn tape_report_json(report: &dekg_tensor::TapeReport) -> serde::Value {
    use serde::{Number, Value};
    let num = |n: usize| Value::Num(Number::U(n as u64));
    let diagnostics = report
        .diagnostics
        .iter()
        .map(|d| {
            Value::Object(vec![
                (
                    "severity".into(),
                    Value::Str(if d.severity == dekg_tensor::Severity::Error {
                        "error".into()
                    } else {
                        "warning".into()
                    }),
                ),
                ("code".into(), Value::Str(d.code.to_string())),
                ("message".into(), Value::Str(d.to_string())),
            ])
        })
        .collect();
    Value::Object(vec![
        ("clean".into(), Value::Bool(report.is_clean())),
        ("errors".into(), num(report.errors())),
        ("warnings".into(), num(report.warnings())),
        ("nodes".into(), num(report.num_nodes)),
        ("params_checked".into(), num(report.params_checked)),
        (
            "dead_params".into(),
            Value::Array(report.dead_params.iter().map(|p| Value::Str(p.clone())).collect()),
        ),
        (
            "unconsumed_ops".into(),
            Value::Array(report.unconsumed_ops.iter().map(|&i| num(i)).collect()),
        ),
        ("dead_nodes".into(), num(report.dead_nodes)),
        ("zero_grad_nodes".into(), num(report.zero_grad_nodes)),
        (
            "memory_plan".into(),
            Value::Object(vec![
                ("peak_live_bytes".into(), num(report.plan.peak_live_bytes)),
                ("total_value_bytes".into(), num(report.plan.total_value_bytes)),
                ("buffers".into(), num(report.plan.num_buffers())),
            ]),
        ),
        ("diagnostics".into(), Value::Array(diagnostics)),
    ])
}

/// The semantic autograd checks behind `dekg check --grads`.
fn run_grad_checks(dataset: &DekgDataset, seed: u64) -> Result<(), Box<dyn std::error::Error>> {
    println!("gradcheck: finite-difference suite over every Op variant…");
    let mut diags = dekg_check::validate_grads(seed);
    println!("gradcheck: re-executing a training batch on {} in f64…", dataset.name);
    diags.extend(dekg_core::grad_check_dataset(dataset, seed));
    for d in &diags {
        println!("{d}");
    }
    let s = dekg_check::summarize(&diags);
    if s.errors > 0 {
        return Err(format!(
            "dekg check --grads: {} error(s), {} warning(s)",
            s.errors, s.warnings
        )
        .into());
    }
    println!("dekg check --grads: all gradients verified");
    Ok(())
}

/// `dekg train` — trains DEKG-ILP and writes a checkpoint pair.
pub fn train(flags: &Flags) -> CliResult {
    obs_init(flags)?;
    // With --check, load unchecked so broken invariants surface as
    // validator diagnostics instead of the loader's panic.
    let dataset = if flags.switch("check") {
        let dir = flags.required("data")?;
        let dataset = loader::load_dir_unchecked(dir, dir)?;
        run_validators(&dataset, None, false)?;
        dataset
    } else {
        load_dataset(flags)?
    };
    let ckpt = flags.required("ckpt")?;
    let seed: u64 = flags.parse_or("seed", 0)?;
    let cfg = DekgIlpConfig {
        epochs: flags.parse_or("epochs", 10)?,
        dim: flags.parse_or("dim", 32)?,
        gradcheck_every: flags.parse_or("gradcheck-every", 0)?,
        tape_report: flags.switch("tape-report"),
        ..DekgIlpConfig::paper()
    };
    cfg.validate();

    let threads: usize = flags.parse_or("threads", 0)?;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut model = DekgIlp::new(cfg.clone(), &dataset, &mut rng);
    dekg_obs::log_info!(
        "training DEKG-ILP on {} ({} triples, {} relations, {} thread(s))…",
        dataset.name,
        dataset.original.len(),
        dataset.num_relations,
        if threads == 0 { rayon::current_num_threads() } else { threads }
    );
    // `--threads 0` (the default) keeps rayon's ambient worker count.
    // The pool only scopes *where* work runs; per-item seeding keeps the
    // result bitwise-identical at any thread count (see DESIGN.md).
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .map_err(|e| format!("--threads: {e}"))?;
    let report = pool.install(|| model.fit(&dataset, &mut rng));
    dekg_obs::log_info!(
        "done: {} epochs, loss {:.4} -> {:.4}, {:.1}s",
        report.epochs,
        report.initial_loss,
        report.final_loss,
        report.seconds
    );

    model.save_checkpoint(ckpt)?;
    std::fs::write(format!("{ckpt}.json"), serde_json::to_string_pretty(&cfg)?)?;
    dekg_obs::log_info!("checkpoint written to {ckpt} (+ {ckpt}.json)");
    obs_finish(flags)
}

/// Rebuilds a model from a checkpoint pair — the same
/// [`DekgIlp::restore`] path `dekg serve` loads through, so CLI
/// evaluation and daemon serving score the identical model.
fn restore(flags: &Flags, dataset: &DekgDataset) -> Result<DekgIlp, Box<dyn std::error::Error>> {
    let ckpt = flags.required("ckpt")?;
    DekgIlp::restore(ckpt, dataset)
        .map_err(|e| -> Box<dyn std::error::Error> { format!("{e}").into() })
}

/// `dekg evaluate` — filtered-ranking metrics of a checkpoint.
pub fn evaluate(flags: &Flags) -> CliResult {
    obs_init(flags)?;
    let dataset = load_dataset(flags)?;
    let mut model = restore(flags, &dataset)?;
    if let Some(s) = flags.get("scoring") {
        let path = dekg_core::ScoringPath::parse(s)
            .ok_or_else(|| format!("unknown scoring path {s:?} (batched|per-candidate|tape)"))?;
        model.set_scoring_path(path);
    }
    let split = match flags.get("split") {
        Some(s) => parse_split(s)?,
        None => SplitKind::Eq,
    };
    let candidates: usize = flags.parse_or("candidates", 30)?;
    let mut protocol = if candidates == 0 {
        ProtocolConfig::default()
    } else {
        ProtocolConfig::sampled(candidates)
    };
    protocol.seed = flags.parse_or("seed", 0)?;
    let threads: usize = flags.parse_or("threads", 0)?;
    if threads > 0 {
        protocol.threads = threads;
    }

    let graph = InferenceGraph::from_dataset(&dataset);
    let mix = TestMix::build(&dataset, MixRatio::for_split(split));
    let result = run_eval(&model, &graph, &dataset, &mix, &protocol);

    let mut table = Table::new(vec!["set", "MRR", "Hits@1", "Hits@5", "Hits@10", "queries"]);
    for (name, m) in [
        ("overall", &result.overall),
        ("enclosing", &result.enclosing),
        ("bridging", &result.bridging),
    ] {
        table.add_row(vec![
            name.into(),
            format!("{:.3}", m.mrr),
            format!("{:.3}", m.hits_at(1)),
            format!("{:.3}", m.hits_at(5)),
            format!("{:.3}", m.hits_at(10)),
            m.count.to_string(),
        ]);
    }
    println!("{}", table.render());
    let t = &result.timing;
    println!(
        "{} queries over {} links in {:.2}s ({:.1} queries/s, {} thread(s))",
        t.queries, t.links, t.wall_seconds, t.queries_per_second, t.threads
    );
    let p = &t.phases;
    if p.ranking_count > 0 {
        println!(
            "phases (cpu-seconds across workers): extraction {:.2}s / {} subgraphs, \
             scoring {:.2}s / {} batches, ranking {:.2}s / {} queries",
            p.extraction_seconds,
            p.extraction_count,
            p.scoring_seconds,
            p.scoring_count,
            p.ranking_seconds,
            p.ranking_count
        );
    }
    if dekg_obs::metrics_active() {
        dekg_obs::Event::new("eval")
            .field_f64("mrr", result.overall.mrr)
            .field_f64("hits1", result.overall.hits_at(1))
            .field_f64("hits5", result.overall.hits_at(5))
            .field_f64("hits10", result.overall.hits_at(10))
            .field_f64("mrr_enclosing", result.enclosing.mrr)
            .field_f64("mrr_bridging", result.bridging.mrr)
            .field_u64("queries", t.queries as u64)
            .field_u64("links", t.links as u64)
            .field_u64("threads", t.threads as u64)
            .field_f64("wall_seconds", t.wall_seconds)
            .field_f64("extraction_seconds", p.extraction_seconds)
            .field_f64("scoring_seconds", p.scoring_seconds)
            .field_f64("ranking_seconds", p.ranking_seconds)
            .emit_metrics();
    }
    obs_finish(flags)
}

/// `dekg predict` — top-k completion for a partial triple.
pub fn predict(flags: &Flags) -> CliResult {
    let dataset = load_dataset(flags)?;
    let model = restore(flags, &dataset)?;
    let graph = InferenceGraph::from_dataset(&dataset);

    let rel_name = flags.required("rel")?;
    let rel =
        dataset.vocab.relation(rel_name).ok_or_else(|| format!("unknown relation {rel_name:?}"))?;
    let top: usize = flags.parse_or("top", 10)?;

    let (fixed, predict_tail) = match (flags.get("head"), flags.get("tail")) {
        (Some(h), None) => (h, true),
        (None, Some(t)) => (t, false),
        _ => return Err("pass exactly one of --head or --tail".into()),
    };
    let fixed_id =
        dataset.vocab.entity(fixed).ok_or_else(|| format!("unknown entity {fixed:?}"))?;

    let candidates: Vec<Triple> = (0..dataset.num_entities() as u32)
        .map(EntityId)
        .filter(|&e| e != fixed_id)
        .map(|e| {
            if predict_tail {
                Triple::new(fixed_id, rel, e)
            } else {
                Triple::new(e, rel, fixed_id)
            }
        })
        .filter(|t| !graph.store.contains(t)) // filtered setting
        .collect();
    let scores = model.score_batch(&graph, &candidates);
    let mut ranked: Vec<(usize, f32)> = scores.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));

    let query = if predict_tail {
        format!("({fixed}, {rel_name}, ?)")
    } else {
        format!("(?, {rel_name}, {fixed})")
    };
    println!("top {top} completions for {query}:");
    for (rank, (i, score)) in ranked.iter().take(top).enumerate() {
        let e = if predict_tail { candidates[*i].tail } else { candidates[*i].head };
        let marker = if dataset.is_original(e) { "" } else { "  [unseen]" };
        println!(
            "  {:>2}. {:<24} {:>9.4}{}",
            rank + 1,
            dataset.vocab.entity_name(e),
            score,
            marker
        );
    }
    Ok(())
}

/// `dekg serve` — the long-lived ranking daemon: loads the dataset and
/// checkpoint once, then answers `/rank` queries over HTTP/JSON until
/// `POST /admin/shutdown`. See `docs/OPERATIONS.md` for the runbook.
///
/// `--port-file` writes the bound address (useful with an ephemeral
/// `--addr HOST:0`) as soon as the socket is up — before the slow
/// model load, so orchestrators can start polling `/readyz` at once.
pub fn serve(flags: &Flags) -> CliResult {
    obs_init(flags)?;
    let data = flags.required("data")?;
    let ckpt = flags.required("ckpt")?;
    let cfg = dekg_serve::ServeConfig {
        addr: flags.get("addr").unwrap_or("127.0.0.1:8080").to_owned(),
        workers: flags.parse_or("workers", 0)?,
        max_batch: flags.parse_or("max-batch", 8)?,
        max_wait_ms: flags.parse_or("max-wait-ms", 1)?,
        queue_depth: flags.parse_or("queue-depth", 128)?,
        slow_ms: flags.parse_or("slow-ms", 250)?,
    };
    let server = dekg_serve::Server::bind(cfg)?;
    if let Some(path) = flags.get("port-file") {
        std::fs::write(path, format!("{}\n", server.addr()))?;
    }
    let engine = dekg_serve::RankEngine::load(data, ckpt)?;
    server.install_engine(engine);
    server.join();
    obs_finish(flags)
}

/// `dekg profile` — runs the per-op kernel profiler over synthetic
/// workload batches drawn from a dataset and prints the hot-op table.
///
/// `profile train` records and backpropagates `--batches` full training
/// batches (cycling through `--distinct` tape structures so repeated
/// shapes fold together); `profile eval` runs forward-only evaluation
/// tapes. Profiling hooks never change what is computed — the perf
/// harness asserts the profiled and unprofiled runs are bitwise
/// identical — so the printed attribution reflects the production
/// kernels. Combine with `--chrome-trace` for a span-level timeline of
/// the same run.
pub fn profile(mode: &str, flags: &Flags) -> CliResult {
    obs_init(flags)?;
    let dataset = load_dataset(flags)?;
    let seed: u64 = flags.parse_or("seed", 0)?;
    let report = match mode {
        "train" => {
            let batches: usize = flags.parse_or("batches", 8)?;
            let distinct: usize = flags.parse_or("distinct", 2)?;
            dekg_core::profile_train(&dataset, seed, batches, distinct)
        }
        "eval" => {
            let queries: usize = flags.parse_or("queries", 4)?;
            let candidates: usize = flags.parse_or("candidates", 8)?;
            dekg_core::profile_eval(&dataset, seed, queries, candidates)
        }
        other => return Err(format!("unknown profile mode {other:?} (train|eval)").into()),
    };
    print!("{}", report.render());
    obs_finish(flags)
}

/// `dekg request` — one blocking HTTP call against a running daemon.
/// The response body is the only stdout output (machine-readable for
/// JSON endpoints); non-2xx statuses additionally fail the command.
/// With `--timing`, the daemon's `X-Dekg-*` latency/provenance headers
/// are reported on stderr so stdout stays pure JSON.
pub fn request(flags: &Flags) -> CliResult {
    let addr = flags.required("addr")?;
    let path = flags.get("path").unwrap_or("/rank");
    let body = flags.get("body");
    let method = match flags.get("method") {
        Some(m) => m.to_uppercase(),
        None if body.is_some() => "POST".to_owned(),
        None => "GET".to_owned(),
    };
    let (status, headers, text) = dekg_serve::http_call_with_headers(addr, &method, path, body)?;
    // A closed stdout (e.g. `dekg request ... | grep -q`) is not an
    // error: the consumer simply stopped reading. Anything else is.
    use std::io::Write;
    if let Err(e) = writeln!(std::io::stdout(), "{text}") {
        if e.kind() != std::io::ErrorKind::BrokenPipe {
            return Err(e.into());
        }
    }
    if flags.switch("timing") {
        let h =
            |name: &str| headers.iter().find(|(k, _)| k == name).map_or("?", |(_, v)| v.as_str());
        if headers.iter().any(|(k, _)| k == "x-dekg-score-us") {
            eprintln!(
                "timing: queued {} us, scoring {} us (model generation {}, trace {})",
                h("x-dekg-queue-us"),
                h("x-dekg-score-us"),
                h("x-dekg-generation"),
                h("x-dekg-trace-id"),
            );
        } else {
            eprintln!("timing: no X-Dekg-* timing headers on {method} {path} (HTTP {status})");
        }
    }
    if status >= 400 {
        return Err(format!("HTTP {status} from {method} {path}").into());
    }
    Ok(())
}

/// `dekg obslint` — validates a JSONL observability file (a
/// `--metrics-out` / `--trace-out` product), or with `--chrome` a
/// Chrome trace-event JSON file (a `--chrome-trace` product).
///
/// JSONL checks, in order: the file holds at least one event; every
/// line parses as JSON and re-serializes byte-identically (the shim's
/// round-trip guarantee); every record is an object whose first key is
/// an `"event"` string; and each comma-separated `--require`d kind
/// appears at least once. CI's observability smoke is built on this.
pub fn obslint(flags: &Flags) -> CliResult {
    let path = flags.required("file")?;
    if flags.switch("chrome") {
        if flags.get("require").is_some() {
            return Err("--require applies to JSONL mode, not --chrome".into());
        }
        return obslint_chrome(path);
    }
    let text = std::fs::read_to_string(path)?;
    let mut kinds: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    let mut events = 0usize;
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.is_empty() {
            continue;
        }
        let v = serde_json::parse_value(line)
            .map_err(|e| format!("{path}:{lineno}: not valid JSON: {e}"))?;
        let back = serde_json::to_string(&v)?;
        if back != line {
            return Err(format!(
                "{path}:{lineno}: line does not round-trip through the serde shim\n  read:  \
                 {line}\n  wrote: {back}"
            )
            .into());
        }
        let serde::Value::Object(pairs) = &v else {
            return Err(format!("{path}:{lineno}: event is not a JSON object").into());
        };
        match pairs.first() {
            Some((key, serde::Value::Str(kind))) if key == "event" => {
                kinds.insert(kind.clone());
            }
            _ => {
                return Err(format!("{path}:{lineno}: first key must be an \"event\" string").into())
            }
        }
        events += 1;
    }
    if events == 0 {
        return Err(format!("{path}: no events (empty JSONL)").into());
    }
    if let Some(required) = flags.get("require") {
        for kind in required.split(',').filter(|k| !k.is_empty()) {
            if !kinds.contains(kind) {
                return Err(format!(
                    "{path}: required event kind {kind:?} never appears (saw: {})",
                    kinds.iter().cloned().collect::<Vec<_>>().join(", ")
                )
                .into());
            }
        }
    }
    println!(
        "obslint: {path}: {events} event(s) OK; kinds: {}",
        kinds.iter().cloned().collect::<Vec<_>>().join(", ")
    );
    Ok(())
}

/// One decoded Chrome complete (`"X"`) event, for trace validation.
struct ChromeEv {
    name: String,
    tid: u64,
    ts: f64,
    end: f64,
    trace: u64,
    span: u64,
    parent: u64,
}

/// The `--chrome` face of `dekg obslint`: validates a Chrome
/// trace-event JSON file written by `--chrome-trace`.
///
/// Checks: the file is a JSON array of event objects; every `"X"`
/// (complete) event carries `name`/`ts`/`dur`/`pid`/`tid` plus
/// `trace_id`/`span_id`/`parent_id` in `args`; span ids are unique;
/// end timestamps are non-decreasing per tid in file order (the
/// exporter appends events at span close, so a regression means a
/// corrupted export); and every referenced parent exists in the file,
/// on the same trace, starting no later and ending no earlier than the
/// child — i.e. a parent span closes only after all of its children.
fn obslint_chrome(path: &str) -> CliResult {
    use serde::{Number, Value};
    // Sub-microsecond slack: `ts` and `dur` are rounded to f64
    // independently, so exact containment can be off by an ulp.
    const EPS: f64 = 0.5;
    let text = std::fs::read_to_string(path)?;
    let root =
        serde_json::parse_value(&text).map_err(|e| format!("{path}: not valid JSON: {e}"))?;
    let Value::Array(items) = root else {
        return Err(format!("{path}: a chrome trace must be a JSON array of events").into());
    };
    let num = |v: &Value| -> Option<f64> {
        match v {
            Value::Num(Number::I(i)) => Some(*i as f64),
            Value::Num(Number::U(u)) => Some(*u as f64),
            Value::Num(Number::F(f)) => Some(*f),
            _ => None,
        }
    };
    let mut events: Vec<ChromeEv> = Vec::new();
    let mut dropped = 0u64;
    for (i, item) in items.iter().enumerate() {
        let n = i + 1;
        let Value::Object(pairs) = item else {
            return Err(format!("{path}: event {n} is not a JSON object").into());
        };
        let get = |k: &str| pairs.iter().find(|(key, _)| key == k).map(|(_, v)| v);
        let Some(Value::Str(ph)) = get("ph") else {
            return Err(format!("{path}: event {n} has no \"ph\" phase string").into());
        };
        match ph.as_str() {
            // The metadata trailer carries the exporter's drop count.
            "M" => {
                if let Some(Value::Object(args)) = get("args") {
                    if let Some(v) = args.iter().find(|(k, _)| k == "dropped_events") {
                        dropped = num(&v.1).unwrap_or(0.0) as u64;
                    }
                }
            }
            "X" => {
                let Some(Value::Str(name)) = get("name") else {
                    return Err(format!("{path}: event {n} has no \"name\" string").into());
                };
                let req = |k: &str| -> Result<f64, String> {
                    get(k)
                        .and_then(num)
                        .ok_or_else(|| format!("{path}: event {n} ({name}): missing number {k:?}"))
                };
                let (ts, dur) = (req("ts")?, req("dur")?);
                let (_pid, tid) = (req("pid")?, req("tid")?);
                if ts < 0.0 || dur < 0.0 {
                    return Err(format!("{path}: event {n} ({name}): negative ts/dur").into());
                }
                let Some(Value::Object(args)) = get("args") else {
                    return Err(format!("{path}: event {n} ({name}): missing args object").into());
                };
                let id = |k: &str| -> Result<u64, String> {
                    args.iter()
                        .find(|(key, _)| key == k)
                        .and_then(|(_, v)| num(v))
                        .map(|f| f as u64)
                        .ok_or_else(|| format!("{path}: event {n} ({name}): missing args.{k}"))
                };
                events.push(ChromeEv {
                    name: name.clone(),
                    tid: tid as u64,
                    ts,
                    end: ts + dur,
                    trace: id("trace_id")?,
                    span: id("span_id")?,
                    parent: id("parent_id")?,
                });
            }
            other => {
                return Err(format!("{path}: event {n} has unsupported phase {other:?}").into())
            }
        }
    }
    if events.is_empty() {
        return Err(format!("{path}: no complete (\"X\") span events").into());
    }
    // Span ids are unique, and ends are non-decreasing per tid.
    let mut by_span: std::collections::HashMap<u64, &ChromeEv> = std::collections::HashMap::new();
    let mut last_end: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
    for e in &events {
        if e.span == 0 || by_span.insert(e.span, e).is_some() {
            return Err(format!("{path}: span id {} is zero or duplicated", e.span).into());
        }
        let prev = last_end.entry(e.tid).or_insert(0.0);
        if e.end + EPS < *prev {
            return Err(format!(
                "{path}: span {} ({}) on tid {} ends at {:.1} us, before the previous \
                 close at {:.1} us — per-tid close order is not monotonic",
                e.span, e.name, e.tid, e.end, prev
            )
            .into());
        }
        *prev = prev.max(e.end);
    }
    // Every referenced parent closed, on the same trace, containing its
    // child's interval.
    for e in &events {
        if e.parent == 0 {
            continue;
        }
        let Some(p) = by_span.get(&e.parent) else {
            return Err(format!(
                "{path}: span {} ({}) references parent {} which never closes",
                e.span, e.name, e.parent
            )
            .into());
        };
        if p.trace != e.trace {
            return Err(format!(
                "{path}: span {} ({}) is on trace {} but its parent {} is on trace {}",
                e.span, e.name, e.trace, e.parent, p.trace
            )
            .into());
        }
        if p.ts > e.ts + EPS || p.end + EPS < e.end {
            return Err(format!(
                "{path}: span {} ({}) [{:.1}, {:.1}] us is not contained in its parent \
                 {} ({}) [{:.1}, {:.1}] us",
                e.span, e.name, e.ts, e.end, p.span, p.name, p.ts, p.end
            )
            .into());
        }
    }
    let traces: std::collections::BTreeSet<u64> = events.iter().map(|e| e.trace).collect();
    println!(
        "obslint: {path}: {} span event(s) across {} trace(s) OK ({} dropped)",
        events.len(),
        traces.len(),
        dropped
    );
    Ok(())
}

/// `dekg lint` — runs the workspace invariant rules (see `dekg-lint`)
/// over the source tree and fails on any error-severity finding.
pub fn lint(flags: &Flags) -> CliResult {
    let root = match flags.get("root") {
        Some(dir) => std::path::PathBuf::from(dir),
        None => {
            let cwd = std::env::current_dir()?;
            dekg_lint::find_workspace_root(&cwd)
                .ok_or("not inside a cargo workspace (pass --root DIR)")?
        }
    };
    let report = dekg_lint::lint_workspace(&root)?;
    if flags.switch("json") {
        println!("{}", serde_json::to_string_pretty(&lint_report_json(&report))?);
    } else {
        print!("{}", report.render());
    }
    if report.is_clean() {
        Ok(())
    } else {
        // Exit code 1 regardless of renderer; with --json stdout stays
        // pure JSON and only this summary goes to stderr.
        Err(format!("dekg lint: {} error(s)", report.errors()).into())
    }
}

/// Machine-readable form of a [`dekg_lint::LintReport`] — the `--json`
/// face of `dekg lint`. Every finding printed by the human renderer
/// appears here; sites carrying a `// lint: <rule> — why` comment are
/// justified and therefore never reach the report, so surfaced
/// findings are always `"justified": false`.
fn lint_report_json(report: &dekg_lint::LintReport) -> serde::Value {
    use serde::{Number, Value};
    let num = |n: usize| Value::Num(Number::U(n as u64));
    let findings = report
        .diagnostics
        .iter()
        .map(|d| {
            Value::Object(vec![
                ("rule".into(), Value::Str(d.rule.to_string())),
                ("file".into(), Value::Str(d.path.clone())),
                ("line".into(), Value::Num(Number::U(u64::from(d.line)))),
                (
                    "severity".into(),
                    Value::Str(match d.severity {
                        dekg_lint::Severity::Error => "error".into(),
                        dekg_lint::Severity::Notice => "notice".into(),
                    }),
                ),
                ("justified".into(), Value::Bool(false)),
                ("message".into(), Value::Str(d.message.clone())),
            ])
        })
        .collect();
    let budgets = report
        .budgets
        .iter()
        .map(|b| {
            Value::Object(vec![
                ("crate".into(), Value::Str(b.crate_name.clone())),
                ("used".into(), num(b.used)),
                ("budget".into(), num(b.budget)),
            ])
        })
        .collect();
    Value::Object(vec![
        ("clean".into(), Value::Bool(report.is_clean())),
        ("errors".into(), num(report.errors())),
        ("notices".into(), num(report.diagnostics.len() - report.errors())),
        ("files_scanned".into(), num(report.files_scanned)),
        ("findings".into(), Value::Array(findings)),
        ("unwrap_budgets".into(), Value::Array(budgets)),
    ])
}
