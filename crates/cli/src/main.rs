#![warn(missing_docs)]

//! `dekg` — command-line interface for the DEKG-ILP reproduction.
//!
//! ```text
//! dekg generate --raw fb --split eq --scale 0.1 --seed 1 --out data/
//! dekg stats    --data data/
//! dekg check    --data data/ --grads
//! dekg train    --data data/ --check --epochs 10 --ckpt model.dekg
//! dekg evaluate --data data/ --ckpt model.dekg --candidates 30
//! dekg predict  --data data/ --ckpt model.dekg --head g_e0 --rel rel0 --top 5
//! dekg serve    --data data/ --ckpt model.dekg --addr 127.0.0.1:8080
//! dekg request  --addr 127.0.0.1:8080 --body '{"rank_tails": {"head": "g_e0", "rel": "rel0"}}'
//! dekg profile train --data data/ --batches 8 --chrome-trace trace.json
//! ```
//!
//! Datasets are GraIL-format directories (`train.txt`, `valid.txt`,
//! `emerging.txt`, `test_enclosing.txt`, `test_bridging.txt`).
//! Checkpoints are a pair of files: `<ckpt>` (binary weights) and
//! `<ckpt>.json` (the model configuration), so `evaluate`/`predict`
//! can rebuild the exact architecture.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        eprintln!("{}", commands::USAGE);
        return ExitCode::FAILURE;
    }
    let command = argv.remove(0);
    // `profile` takes a positional mode (train|eval) before its flags.
    let mut profile_mode = String::new();
    if command == "profile" {
        if argv.is_empty() || argv[0].starts_with("--") {
            eprintln!("error: dekg profile needs a mode: train or eval\n\n{}", commands::USAGE);
            return ExitCode::FAILURE;
        }
        profile_mode = argv.remove(0);
    }
    // Valueless boolean switches, per command.
    let switches: &[&str] = match command.as_str() {
        "train" => &["check", "tape-report"],
        "check" => &["grads", "tape", "json"],
        "lint" => &["json"],
        "request" => &["timing"],
        "obslint" => &["chrome"],
        _ => &[],
    };
    let flags = match args::Flags::parse_with_switches(&argv, switches) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", commands::USAGE);
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "generate" => commands::generate(&flags),
        "stats" => commands::stats(&flags),
        "check" => commands::check(&flags),
        "train" => commands::train(&flags),
        "evaluate" => commands::evaluate(&flags),
        "predict" => commands::predict(&flags),
        "serve" => commands::serve(&flags),
        "request" => commands::request(&flags),
        "profile" => commands::profile(&profile_mode, &flags),
        "obslint" => commands::obslint(&flags),
        "lint" => commands::lint(&flags),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(format!("unknown command {other:?}").into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
