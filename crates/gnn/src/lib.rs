#![warn(missing_docs)]

//! # dekg-gnn
//!
//! Graph-neural-network substrate for GSM (and the GraIL/TACT
//! baselines): the improved node-labeling featurizer, an R-GCN layer
//! with GraIL-style edge attention, and a multi-layer subgraph encoder
//! with average-pool readout.
//!
//! The encoder consumes [`dekg_kg::Subgraph`]s and produces, on a
//! [`dekg_tensor::Graph`] tape, the node embeddings `h_u^L`, the pooled
//! graph embedding `h_G^L` (Eq. 10 of the paper) and the endpoint
//! embeddings used by the topological score (Eq. 11).

pub mod encoder;
pub mod labeling;
pub mod rgcn;

pub use encoder::{
    BatchedEncodeWorkspace, EncodedSubgraph, InferenceEncoding, SubgraphEncoder,
    SubgraphEncoderConfig,
};
pub use labeling::{node_features, LabelingMode};
pub use rgcn::{BatchedLayerScratch, RgcnLayer, RgcnLayerConfig};
