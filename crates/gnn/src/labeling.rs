//! Node-label featurization (Section IV-C2 of the paper).
//!
//! Every node `u` of an extracted subgraph is labeled with the distance
//! pair `(d(i,u), d(j,u))` and featurized as
//! `one_hot(d(i,u)) ⊕ one_hot(d(j,u))`, each one-hot of dimension
//! `t + 1` (distances 0..=t).
//!
//! The two modes differ in how out-of-range distances are treated:
//!
//! * [`LabelingMode::Improved`] (DEKG-ILP): a distance of −1 (over the
//!   hop bound or disconnected) becomes the **all-zero** vector —
//!   `one_hot(-1) = 0`. One-sided nodes thus carry "half" a label and
//!   simulate disconnected nodes.
//! * [`LabelingMode::Grail`]: assumes extraction already pruned
//!   one-sided nodes; encountering −1 anywhere except across a
//!   disconnected endpoint pair falls back to zeros as well, so the
//!   mode difference is entirely driven by the extraction mode. It is
//!   kept as a distinct variant so ablations read explicitly at call
//!   sites.

use dekg_kg::Subgraph;
use dekg_tensor::Tensor;

/// How to featurize distance labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelingMode {
    /// GraIL's original labeling (pairs with intersection extraction).
    Grail,
    /// The paper's improved labeling (pairs with union extraction).
    Improved,
}

/// Builds the `[num_nodes, 2 * (hops + 1)]` input feature matrix for a
/// subgraph.
///
/// # Panics
/// If any recorded distance exceeds `hops` (extraction and labeling
/// must agree on the bound).
pub fn node_features(sg: &Subgraph, hops: u32, _mode: LabelingMode) -> Tensor {
    let width = (hops + 1) as usize;
    let n = sg.num_nodes();
    let mut data = vec![0.0f32; n * 2 * width];
    for u in 0..n {
        let (dh, dt) = sg.label(u);
        let row = &mut data[u * 2 * width..(u + 1) * 2 * width];
        if dh >= 0 {
            assert!((dh as u32) <= hops, "distance {dh} exceeds labeling bound {hops}");
            row[dh as usize] = 1.0;
        }
        if dt >= 0 {
            assert!((dt as u32) <= hops, "distance {dt} exceeds labeling bound {hops}");
            row[width + dt as usize] = 1.0;
        }
    }
    Tensor::from_vec(vec![n, 2 * width], data)
}

/// Builds feature matrices for a batch of subgraphs in parallel.
///
/// Fans out over the ambient `rayon` thread count; featurization is a
/// pure function of each subgraph, and results come back in input
/// order, so the output is identical to mapping [`node_features`] over
/// the batch serially — at any thread count.
pub fn node_features_batch(sgs: &[Subgraph], hops: u32, mode: LabelingMode) -> Vec<Tensor> {
    use rayon::prelude::*;
    sgs.par_iter().map(|sg| node_features(sg, hops, mode)).collect()
}

/// The input feature width for a given hop bound.
pub fn feature_width(hops: u32) -> usize {
    2 * (hops as usize + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dekg_kg::{Adjacency, EntityId, ExtractionMode, SubgraphExtractor, Triple, TripleStore};

    fn line_subgraph(hops: u32, mode: ExtractionMode) -> Subgraph {
        // 0 - 1 - 2 (targets 0 and 2)
        let store =
            TripleStore::from_triples([Triple::from_raw(0, 0, 1), Triple::from_raw(1, 0, 2)]);
        let adj = Adjacency::from_store(&store, 3);
        SubgraphExtractor::new(&adj, hops, mode).extract(EntityId(0), EntityId(2), None)
    }

    #[test]
    fn endpoint_labels_are_unit_vectors() {
        let sg = line_subgraph(2, ExtractionMode::Union);
        let f = node_features(&sg, 2, LabelingMode::Improved);
        assert_eq!(f.shape().dims(), &[3, 6]);
        // Head: (0, d); one-hot(0) in first block.
        assert_eq!(f.row(0)[0], 1.0);
        // Tail: one-hot(0) in second block.
        assert_eq!(f.row(1)[3], 1.0);
    }

    #[test]
    fn disconnected_side_is_all_zero() {
        // Two components: 0-1 and 2-3; extract around bridging pair (0, 2).
        let store =
            TripleStore::from_triples([Triple::from_raw(0, 0, 1), Triple::from_raw(2, 0, 3)]);
        let adj = Adjacency::from_store(&store, 4);
        let sg = SubgraphExtractor::new(&adj, 2, ExtractionMode::Union).extract(
            EntityId(0),
            EntityId(2),
            None,
        );
        let f = node_features(&sg, 2, LabelingMode::Improved);
        // Head (local 0): one-hot(0) from head, all-zero from tail.
        let w = 3;
        assert_eq!(f.row(0)[0], 1.0);
        assert!(f.row(0)[w..].iter().all(|&x| x == 0.0));
        // Tail (local 1): mirror image.
        assert!(f.row(1)[..w].iter().all(|&x| x == 0.0));
        assert_eq!(f.row(1)[w], 1.0);
    }

    #[test]
    fn middle_node_has_both_blocks() {
        // In 0-1-2 around (0,2): node 1 is at distance 1 from each —
        // but labeling blocks paths through the opposite endpoint:
        // d(0,1)=1 (direct edge), d(2,1)=1 (direct edge).
        let sg = line_subgraph(2, ExtractionMode::Union);
        let f = node_features(&sg, 2, LabelingMode::Improved);
        let mid = sg.nodes.iter().position(|&e| e == EntityId(1)).unwrap();
        assert_eq!(f.row(mid)[1], 1.0);
        assert_eq!(f.row(mid)[3 + 1], 1.0);
    }

    #[test]
    fn rows_have_at_most_two_ones() {
        let sg = line_subgraph(2, ExtractionMode::Union);
        let f = node_features(&sg, 2, LabelingMode::Improved);
        for u in 0..sg.num_nodes() {
            let ones = f.row(u).iter().filter(|&&x| x == 1.0).count();
            assert!(ones <= 2);
            assert!(f.row(u).iter().all(|&x| x == 0.0 || x == 1.0));
        }
    }

    #[test]
    fn batch_features_match_serial() {
        let sgs: Vec<Subgraph> = (1..3).map(|h| line_subgraph(h, ExtractionMode::Union)).collect();
        let pool = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let batch = pool.install(|| node_features_batch(&sgs, 2, LabelingMode::Improved));
        for (sg, f) in sgs.iter().zip(&batch) {
            let serial = node_features(sg, 2, LabelingMode::Improved);
            assert_eq!(f.shape().dims(), serial.shape().dims());
            assert_eq!(f.data(), serial.data());
        }
    }

    #[test]
    fn width_helper_matches() {
        assert_eq!(feature_width(2), 6);
        let sg = line_subgraph(2, ExtractionMode::Union);
        let f = node_features(&sg, 2, LabelingMode::Improved);
        assert_eq!(f.shape().dims()[1], feature_width(2));
    }
}
