//! One R-GCN layer with GraIL-style edge attention.
//!
//! Per layer `l` (Eq. 8–9 of the paper):
//!
//! ```text
//! a_i = Σ_{r} Σ_{s ∈ N_r(i)}  α_{s,r,i} · W_r · h_s      (AGGREGATE)
//! h_i = relu( W_self · h_i + a_i + b )                    (COMBINE)
//! ```
//!
//! with `α = sigmoid(w_att · [h_s ⊕ h_t ⊕ q_r])` the per-edge attention
//! over source embedding, destination embedding and a per-relation
//! attention embedding `q_r`.
//!
//! Per-relation weights may optionally use basis decomposition
//! (Schlichtkrull et al., 2018): `W_r = Σ_b a_{rb} V_b` — the
//! `num_bases` knob in [`RgcnLayerConfig`], exercised by the ablation
//! benches.

use dekg_kg::{BatchedSubgraphs, Subgraph};
use dekg_tensor::{init, kernels, Graph, ParamId, ParamStore, Tensor, Var};
use rand::Rng;

/// Groups surviving edge indices by relation, sorted by relation id —
/// the deterministic order both the tape forward and the forward-only
/// inference path iterate in. Shared so the two paths cannot drift.
pub(crate) fn group_edges_by_relation(
    sg: &Subgraph,
    edge_keep: Option<&[bool]>,
) -> Vec<(usize, Vec<usize>)> {
    let mut groups: std::collections::BTreeMap<usize, Vec<usize>> =
        std::collections::BTreeMap::new();
    for (idx, e) in sg.edges.iter().enumerate() {
        if edge_keep.map_or(true, |m| m[idx]) {
            groups.entry(e.rel.index()).or_default().push(idx);
        }
    }
    groups.into_iter().collect()
}

/// Configuration for one layer.
#[derive(Debug, Clone)]
pub struct RgcnLayerConfig {
    /// Number of relations in the shared space.
    pub num_relations: usize,
    /// Input embedding width.
    pub in_dim: usize,
    /// Output embedding width.
    pub out_dim: usize,
    /// Width of the per-relation attention embedding `q_r`.
    pub attn_dim: usize,
    /// `Some(b)` enables basis decomposition with `b` bases.
    pub num_bases: Option<usize>,
}

/// A single message-passing layer with registered parameters.
#[derive(Debug, Clone)]
pub struct RgcnLayer {
    cfg: RgcnLayerConfig,
    /// Either the full stack `[R * in, out]`, or with bases the pair
    /// (`coeffs [R, B]`, `bases [B, in * out]`).
    rel_weights: RelWeights,
    w_self: ParamId,
    bias: ParamId,
    attn_embed: ParamId,
    w_attn: ParamId,
}

#[derive(Debug, Clone)]
enum RelWeights {
    Full(ParamId),
    Bases { coeffs: ParamId, bases: ParamId },
}

impl RgcnLayer {
    /// Registers the layer's parameters into `params` under `prefix`.
    ///
    /// # Panics
    /// If any dimension is zero or `num_bases == Some(0)`.
    pub fn new(
        cfg: RgcnLayerConfig,
        prefix: &str,
        params: &mut ParamStore,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(cfg.num_relations > 0 && cfg.in_dim > 0 && cfg.out_dim > 0 && cfg.attn_dim > 0);
        let rel_weights = match cfg.num_bases {
            None => RelWeights::Full(params.insert(
                format!("{prefix}.w_rel"),
                init::xavier_uniform([cfg.num_relations * cfg.in_dim, cfg.out_dim], rng),
            )),
            Some(b) => {
                assert!(b > 0, "num_bases must be positive");
                RelWeights::Bases {
                    coeffs: params.insert(
                        format!("{prefix}.basis_coeffs"),
                        init::xavier_uniform([cfg.num_relations, b], rng),
                    ),
                    bases: params.insert(
                        format!("{prefix}.bases"),
                        init::xavier_uniform([b, cfg.in_dim * cfg.out_dim], rng),
                    ),
                }
            }
        };
        let w_self = params.insert(
            format!("{prefix}.w_self"),
            init::xavier_uniform([cfg.in_dim, cfg.out_dim], rng),
        );
        let bias = params.insert(format!("{prefix}.bias"), Tensor::zeros([cfg.out_dim]));
        let attn_embed = params.insert(
            format!("{prefix}.attn_embed"),
            init::xavier_uniform([cfg.num_relations, cfg.attn_dim], rng),
        );
        let w_attn = params.insert(
            format!("{prefix}.w_attn"),
            init::xavier_uniform([2 * cfg.in_dim + cfg.attn_dim, 1], rng),
        );
        RgcnLayer { cfg, rel_weights, w_self, bias, attn_embed, w_attn }
    }

    /// The layer configuration.
    pub fn config(&self) -> &RgcnLayerConfig {
        &self.cfg
    }

    /// Mounts the layer's parameters onto a tape once, so many
    /// subgraphs can share them (batched scoring). The mounted handles
    /// are only valid for `g`.
    pub fn mount(&self, g: &mut Graph, params: &ParamStore) -> MountedRgcnLayer {
        MountedRgcnLayer {
            w_self: g.param(params, self.w_self),
            bias: g.param(params, self.bias),
            attn_embed: g.param(params, self.attn_embed),
            w_attn: g.param(params, self.w_attn),
            rel_weights: match &self.rel_weights {
                RelWeights::Full(w) => MountedRelWeights::Full(g.param(params, *w)),
                RelWeights::Bases { coeffs, bases } => MountedRelWeights::Bases {
                    coeffs: g.param(params, *coeffs),
                    bases: g.param(params, *bases),
                },
            },
        }
    }

    /// Runs the layer over `sg` given node embeddings `h [n, in_dim]`,
    /// returning `[n, out_dim]`.
    ///
    /// `edge_keep` optionally masks edges (edge dropout): edges whose
    /// slot is `false` send no message this pass.
    pub fn forward(
        &self,
        g: &mut Graph,
        params: &ParamStore,
        sg: &Subgraph,
        h: Var,
        edge_keep: Option<&[bool]>,
    ) -> Var {
        let mounted = self.mount(g, params);
        self.forward_mounted(g, &mounted, sg, h, edge_keep)
    }

    /// Like [`RgcnLayer::forward`] but reusing pre-mounted parameters.
    pub fn forward_mounted(
        &self,
        g: &mut Graph,
        mounted: &MountedRgcnLayer,
        sg: &Subgraph,
        h: Var,
        edge_keep: Option<&[bool]>,
    ) -> Var {
        let _span = dekg_obs::span!("rgcn_layer");
        let n = sg.num_nodes();
        let (h_rows, in_dim) = g.shape(h).as_matrix();
        assert_eq!(h_rows, n, "embedding row count must match subgraph nodes");
        assert_eq!(in_dim, self.cfg.in_dim, "embedding width mismatch");
        if let Some(mask) = edge_keep {
            assert_eq!(mask.len(), sg.num_edges(), "edge mask length mismatch");
        }

        // Group surviving edges by relation for batched per-relation matmuls.
        let by_rel = group_edges_by_relation(sg, edge_keep);

        let self_msg = g.matmul(h, mounted.w_self);
        let bias_b = g.broadcast_row(mounted.bias, n);
        let mut acc = g.add(self_msg, bias_b);

        if !by_rel.is_empty() {
            let ones_row = g.constant(Tensor::ones([1, self.cfg.out_dim]));

            for (rel, edge_ids) in &by_rel {
                let srcs: Vec<usize> = edge_ids.iter().map(|&i| sg.edges[i].src as usize).collect();
                let dsts: Vec<usize> = edge_ids.iter().map(|&i| sg.edges[i].dst as usize).collect();
                let n_e = edge_ids.len();

                let w_r = self.relation_weight(g, mounted, *rel);
                let h_src = g.gather_rows(h, &srcs);
                let msgs = g.matmul(h_src, w_r); // [E_r, out]

                // Attention: sigmoid([h_s ⊕ h_t ⊕ q_r] · w_att).
                let h_dst = g.gather_rows(h, &dsts);
                let q_r = g.gather_rows(mounted.attn_embed, &vec![*rel; n_e]);
                let att_in = g.concat_cols(&[h_src, h_dst, q_r]);
                let att_logit = g.matmul(att_in, mounted.w_attn); // [E_r, 1]
                let att = g.sigmoid(att_logit);
                let att_wide = g.matmul(att, ones_row); // [E_r, out]

                let weighted = g.mul(msgs, att_wide);
                let agg = g.scatter_add_rows(weighted, &dsts, n);
                acc = g.add(acc, agg);
            }
        }

        g.relu(acc)
    }

    /// Forward-only evaluation of the layer: no tape, no dropout.
    ///
    /// Applies the exact same kernels in the exact same order as
    /// [`RgcnLayer::forward_mounted`] with `edge_keep = None`, so the
    /// output is bitwise identical to the tape path — that identity is
    /// what lets evaluation take this path while training keeps the
    /// autograd tape. `by_rel` must come from the same relation
    /// grouping both paths share (`group_edges_by_relation`) on the
    /// same subgraph.
    ///
    /// `h` is the row-major `[n, in_dim]` input; returns `[n, out_dim]`.
    pub fn forward_inference(
        &self,
        params: &ParamStore,
        sg: &Subgraph,
        h: &[f32],
        by_rel: &[(usize, Vec<usize>)],
    ) -> Vec<f32> {
        let _span = dekg_obs::span!("rgcn_layer_inference");
        let n = sg.num_nodes();
        let in_dim = self.cfg.in_dim;
        let out_dim = self.cfg.out_dim;
        let attn_dim = self.cfg.attn_dim;
        debug_assert_eq!(h.len(), n * in_dim, "embedding shape mismatch");
        let w_self = params.get(self.w_self).data();
        let bias = params.get(self.bias).data();
        let attn_embed = params.get(self.attn_embed);
        let w_attn = params.get(self.w_attn).data();

        // acc = h · W_self + bias (broadcast per row), as in the tape's
        // add(self_msg, bias_b).
        let mut acc = vec![0.0f32; n * out_dim];
        kernels::matmul(h, w_self, &mut acc, n, in_dim, out_dim);
        for row in acc.chunks_exact_mut(out_dim) {
            for (x, &b) in row.iter_mut().zip(bias) {
                *x += b;
            }
        }

        let att_width = 2 * in_dim + attn_dim;
        let mut w_r_scratch = vec![0.0f32; in_dim * out_dim];
        for (rel, edge_ids) in by_rel {
            let n_e = edge_ids.len();
            let w_r: &[f32] = match &self.rel_weights {
                // The tape gathers rows rel*in..(rel+1)*in of the full
                // stack — contiguous, so the slice is value-identical.
                RelWeights::Full(all) => {
                    let stacked = params.get(*all).data();
                    &stacked[*rel * in_dim * out_dim..(*rel + 1) * in_dim * out_dim]
                }
                RelWeights::Bases { coeffs, bases } => {
                    let c = params.get(*coeffs);
                    let num_bases = c.shape().as_matrix().1;
                    kernels::matmul(
                        c.row(*rel),
                        params.get(*bases).data(),
                        &mut w_r_scratch,
                        1,
                        num_bases,
                        in_dim * out_dim,
                    );
                    &w_r_scratch
                }
            };

            // Gather h_src and assemble [h_s ⊕ h_t ⊕ q_r] per edge.
            let mut h_src = vec![0.0f32; n_e * in_dim];
            let mut att_in = vec![0.0f32; n_e * att_width];
            for (row, &eid) in edge_ids.iter().enumerate() {
                let s = sg.edges[eid].src as usize;
                let d = sg.edges[eid].dst as usize;
                h_src[row * in_dim..(row + 1) * in_dim]
                    .copy_from_slice(&h[s * in_dim..(s + 1) * in_dim]);
                let cat = &mut att_in[row * att_width..(row + 1) * att_width];
                cat[..in_dim].copy_from_slice(&h[s * in_dim..(s + 1) * in_dim]);
                cat[in_dim..2 * in_dim].copy_from_slice(&h[d * in_dim..(d + 1) * in_dim]);
                cat[2 * in_dim..].copy_from_slice(attn_embed.row(*rel));
            }

            let mut msgs = vec![0.0f32; n_e * out_dim];
            kernels::matmul(&h_src, w_r, &mut msgs, n_e, in_dim, out_dim);
            let mut att = vec![0.0f32; n_e];
            kernels::matmul(&att_in, w_attn, &mut att, n_e, att_width, 1);
            for a in &mut att {
                *a = 1.0 / (1.0 + (-*a).exp());
            }

            // weighted[e] = msgs[e] * att[e] (the tape widens att with a
            // ones-matmul first; `x * 1.0` is exact in f32, so scaling
            // by the scalar directly is bit-equal), scatter-added into
            // dst rows in edge order, then acc += agg — same order as
            // the tape's scatter_add_rows followed by add.
            let mut agg = vec![0.0f32; n * out_dim];
            for (row, &eid) in edge_ids.iter().enumerate() {
                let d = sg.edges[eid].dst as usize;
                let a = att[row];
                let dst_row = &mut agg[d * out_dim..(d + 1) * out_dim];
                for (x, &m) in dst_row.iter_mut().zip(&msgs[row * out_dim..(row + 1) * out_dim]) {
                    *x += m * a;
                }
            }
            kernels::add_assign(&mut acc, &agg);
        }

        for x in &mut acc {
            *x = x.max(0.0);
        }
        acc
    }

    /// Runs the layer over a block-diagonal batch of subgraphs — the
    /// packed counterpart of [`RgcnLayer::forward_inference`], bitwise
    /// identical to running it per segment.
    ///
    /// Why the identity holds, kernel by kernel:
    ///
    /// * the self term is either one big `matmul` (whose rows are
    ///   computed independently, so packing rows changes nothing) or,
    ///   for the one-hot label features of layer 0, a row gather
    ///   implemented as `0 + w_row` adds in ascending one-hot column
    ///   order — exactly the FLOPs the zero-skip `matmul` performs on a
    ///   one-hot row (`labels` selects this);
    /// * relations are visited in global ascending order, and a segment
    ///   participates only in the relations it contains — for that
    ///   segment the visit order equals its own ascending
    ///   `group_edges_by_relation` order;
    /// * per relation, messages/attention for all segments' edges run
    ///   as one packed matmul (again row-independent), and the scatter
    ///   and `acc += agg` accumulation touch **only the participating
    ///   segments' row ranges**, in each segment's edge order. Skipping
    ///   foreign segments is not just an optimization: adding an
    ///   all-zero `agg` row would flip `-0.0` outputs to `+0.0` and
    ///   break bitwise equality.
    ///
    /// `h` is the packed `[total_nodes, in_dim]` input; the output is
    /// written into `out` (resized, no allocation in the steady state).
    /// `labels` carries each packed node's `(d_head, d_tail)` pair and
    /// must be `Some` exactly when `h` is the layer-0 one-hot feature
    /// matrix.
    pub fn forward_inference_batched(
        &self,
        params: &ParamStore,
        batch: &BatchedSubgraphs<'_>,
        h: &[f32],
        labels: Option<&[(i32, i32)]>,
        out: &mut Vec<f32>,
        scratch: &mut BatchedLayerScratch,
    ) {
        let _span = dekg_obs::span!("rgcn_layer_inference");
        let n = batch.total_nodes();
        let in_dim = self.cfg.in_dim;
        let out_dim = self.cfg.out_dim;
        let attn_dim = self.cfg.attn_dim;
        debug_assert_eq!(h.len(), n * in_dim, "packed embedding shape mismatch");
        let w_self = params.get(self.w_self).data();
        let bias = params.get(self.bias).data();
        let attn_embed = params.get(self.attn_embed);
        let w_attn = params.get(self.w_attn).data();

        // Self term: acc = h · W_self (+ bias per row below).
        out.resize(n * out_dim, 0.0);
        match labels {
            None => kernels::matmul(h, w_self, out, n, in_dim, out_dim),
            Some(lbl) => {
                // One-hot gather: replicate the zero-skip matmul's work
                // on a one-hot row — zero the row, then += the selected
                // W_self rows in ascending column order (the head block
                // precedes the tail block).
                debug_assert_eq!(lbl.len(), n, "label count mismatch");
                let width = in_dim / 2;
                for (row, &(dh, dt)) in out.chunks_exact_mut(out_dim).zip(lbl) {
                    row.fill(0.0);
                    if dh >= 0 {
                        kernels::add_assign(row, &w_self[dh as usize * out_dim..][..out_dim]);
                    }
                    if dt >= 0 {
                        let p = width + dt as usize;
                        kernels::add_assign(row, &w_self[p * out_dim..][..out_dim]);
                    }
                }
            }
        }
        for row in out.chunks_exact_mut(out_dim) {
            for (x, &b) in row.iter_mut().zip(bias) {
                *x += b;
            }
        }

        let att_width = 2 * in_dim + attn_dim;
        scratch.agg.resize(n * out_dim, 0.0);
        for group in batch.by_rel() {
            let rel = group.rel;
            let n_e = group.srcs.len();
            let w_r: &[f32] = match &self.rel_weights {
                RelWeights::Full(all) => {
                    let stacked = params.get(*all).data();
                    &stacked[rel * in_dim * out_dim..(rel + 1) * in_dim * out_dim]
                }
                RelWeights::Bases { coeffs, bases } => {
                    let c = params.get(*coeffs);
                    let num_bases = c.shape().as_matrix().1;
                    scratch.w_r.resize(in_dim * out_dim, 0.0);
                    kernels::matmul(
                        c.row(rel),
                        params.get(*bases).data(),
                        &mut scratch.w_r,
                        1,
                        num_bases,
                        in_dim * out_dim,
                    );
                    &scratch.w_r
                }
            };

            // Gather h_src and assemble [h_s ⊕ h_t ⊕ q_r] per edge,
            // across all participating segments at once.
            scratch.h_src.resize(n_e * in_dim, 0.0);
            scratch.att_in.resize(n_e * att_width, 0.0);
            let q_r = attn_embed.row(rel);
            for (row, (&s, &d)) in group.srcs.iter().zip(&group.dsts).enumerate() {
                let (s, d) = (s as usize, d as usize);
                scratch.h_src[row * in_dim..(row + 1) * in_dim]
                    .copy_from_slice(&h[s * in_dim..(s + 1) * in_dim]);
                let cat = &mut scratch.att_in[row * att_width..(row + 1) * att_width];
                cat[..in_dim].copy_from_slice(&h[s * in_dim..(s + 1) * in_dim]);
                cat[in_dim..2 * in_dim].copy_from_slice(&h[d * in_dim..(d + 1) * in_dim]);
                cat[2 * in_dim..].copy_from_slice(q_r);
            }

            scratch.msgs.resize(n_e * out_dim, 0.0);
            kernels::matmul(&scratch.h_src, w_r, &mut scratch.msgs, n_e, in_dim, out_dim);
            scratch.att.resize(n_e, 0.0);
            kernels::matmul(&scratch.att_in, w_attn, &mut scratch.att, n_e, att_width, 1);
            for a in &mut scratch.att {
                *a = 1.0 / (1.0 + (-*a).exp());
            }

            // Zero, scatter, and accumulate only the participating
            // segments' rows; other segments' agg rows are stale but
            // never read.
            for &si in &group.segments {
                let r = batch.segment(si as usize);
                scratch.agg[r.start * out_dim..r.end * out_dim].fill(0.0);
            }
            for (row, &d) in group.dsts.iter().enumerate() {
                let d = d as usize;
                let a = scratch.att[row];
                let dst_row = &mut scratch.agg[d * out_dim..(d + 1) * out_dim];
                for (x, &m) in
                    dst_row.iter_mut().zip(&scratch.msgs[row * out_dim..(row + 1) * out_dim])
                {
                    *x += m * a;
                }
            }
            for &si in &group.segments {
                let r = batch.segment(si as usize);
                kernels::add_assign(
                    &mut out[r.start * out_dim..r.end * out_dim],
                    &scratch.agg[r.start * out_dim..r.end * out_dim],
                );
            }
        }

        for x in out.iter_mut() {
            *x = x.max(0.0);
        }
    }

    /// Fetches (or composes, for bases) the `[in, out]` weight of `rel`
    /// from mounted handles.
    fn relation_weight(&self, g: &mut Graph, mounted: &MountedRgcnLayer, rel: usize) -> Var {
        match &mounted.rel_weights {
            MountedRelWeights::Full(all) => {
                let rows: Vec<usize> =
                    (rel * self.cfg.in_dim..(rel + 1) * self.cfg.in_dim).collect();
                g.gather_rows(*all, &rows)
            }
            MountedRelWeights::Bases { coeffs, bases } => {
                let c_r = g.gather_rows(*coeffs, &[rel]); // [1, B]
                let flat = g.matmul(c_r, *bases); // [1, in*out]
                g.reshape(flat, [self.cfg.in_dim, self.cfg.out_dim])
            }
        }
    }
}

/// Parameter handles of one layer mounted on a specific tape — see
/// [`RgcnLayer::mount`].
#[derive(Debug, Clone, Copy)]
pub struct MountedRgcnLayer {
    w_self: Var,
    bias: Var,
    attn_embed: Var,
    w_attn: Var,
    rel_weights: MountedRelWeights,
}

#[derive(Debug, Clone, Copy)]
enum MountedRelWeights {
    Full(Var),
    Bases { coeffs: Var, bases: Var },
}

/// Reusable buffers for [`RgcnLayer::forward_inference_batched`]: every
/// per-relation intermediate (gathered sources, attention input,
/// messages, logits, the scatter target, and the composed basis
/// weight). Buffers grow to the high-water mark and are then reused —
/// zero allocations in the steady state.
#[derive(Debug, Default, Clone)]
pub struct BatchedLayerScratch {
    h_src: Vec<f32>,
    att_in: Vec<f32>,
    msgs: Vec<f32>,
    att: Vec<f32>,
    agg: Vec<f32>,
    w_r: Vec<f32>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dekg_kg::{Adjacency, EntityId, ExtractionMode, SubgraphExtractor, Triple, TripleStore};
    use dekg_tensor::optim::{Optimizer, Sgd};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn toy_subgraph() -> Subgraph {
        // 0 -> 1 (r0), 1 -> 2 (r1), 2 -> 0 (r0); extract around (0, 2).
        let store = TripleStore::from_triples([
            Triple::from_raw(0, 0, 1),
            Triple::from_raw(1, 1, 2),
            Triple::from_raw(2, 0, 0),
        ]);
        let adj = Adjacency::from_store(&store, 3);
        SubgraphExtractor::new(&adj, 2, ExtractionMode::Union).extract(
            EntityId(0),
            EntityId(2),
            None,
        )
    }

    fn cfg(bases: Option<usize>) -> RgcnLayerConfig {
        RgcnLayerConfig { num_relations: 2, in_dim: 4, out_dim: 3, attn_dim: 2, num_bases: bases }
    }

    #[test]
    fn forward_shapes() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut ps = ParamStore::new();
        let layer = RgcnLayer::new(cfg(None), "l0", &mut ps, &mut rng);
        let sg = toy_subgraph();
        let mut g = Graph::new();
        let h = g.constant(init::normal([sg.num_nodes(), 4], 0.0, 1.0, &mut rng));
        let out = layer.forward(&mut g, &ps, &sg, h, None);
        assert_eq!(g.shape(out).dims(), &[sg.num_nodes(), 3]);
        assert!(!g.value(out).has_non_finite());
    }

    #[test]
    fn forward_with_bases_shapes() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut ps = ParamStore::new();
        let layer = RgcnLayer::new(cfg(Some(2)), "l0", &mut ps, &mut rng);
        let sg = toy_subgraph();
        let mut g = Graph::new();
        let h = g.constant(init::normal([sg.num_nodes(), 4], 0.0, 1.0, &mut rng));
        let out = layer.forward(&mut g, &ps, &sg, h, None);
        assert_eq!(g.shape(out).dims(), &[sg.num_nodes(), 3]);
    }

    #[test]
    fn bases_reduce_parameter_count() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut full = ParamStore::new();
        let big = RgcnLayerConfig {
            num_relations: 50,
            in_dim: 8,
            out_dim: 8,
            attn_dim: 4,
            num_bases: None,
        };
        RgcnLayer::new(big.clone(), "l", &mut full, &mut rng);
        let mut based = ParamStore::new();
        RgcnLayer::new(RgcnLayerConfig { num_bases: Some(4), ..big }, "l", &mut based, &mut rng);
        assert!(based.num_scalars() < full.num_scalars());
    }

    #[test]
    fn empty_edge_subgraph_still_works() {
        // Bridging link between two isolated entities.
        let store = TripleStore::from_triples([Triple::from_raw(3, 0, 4)]);
        let adj = Adjacency::from_store(&store, 5);
        let sg = SubgraphExtractor::new(&adj, 2, ExtractionMode::Union).extract(
            EntityId(0),
            EntityId(1),
            None,
        );
        assert_eq!(sg.num_edges(), 0);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut ps = ParamStore::new();
        let layer = RgcnLayer::new(cfg(None), "l0", &mut ps, &mut rng);
        let mut g = Graph::new();
        let h = g.constant(Tensor::ones([2, 4]));
        let out = layer.forward(&mut g, &ps, &sg, h, None);
        assert_eq!(g.shape(out).dims(), &[2, 3]);
    }

    #[test]
    fn edge_mask_blocks_messages() {
        let sg = toy_subgraph();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut ps = ParamStore::new();
        let layer = RgcnLayer::new(cfg(None), "l0", &mut ps, &mut rng);

        let mut g_all = Graph::new();
        let h1 = g_all.constant(Tensor::ones([sg.num_nodes(), 4]));
        let out_all = layer.forward(&mut g_all, &ps, &sg, h1, None);

        let mut g_none = Graph::new();
        let h2 = g_none.constant(Tensor::ones([sg.num_nodes(), 4]));
        let mask = vec![false; sg.num_edges()];
        let out_none = layer.forward(&mut g_none, &ps, &sg, h2, Some(&mask));

        // Some coordinate must differ once messages are suppressed.
        assert_ne!(g_all.value(out_all).data(), g_none.value(out_none).data());
    }

    #[test]
    fn layer_gradients_match_central_differences() {
        // Numerical gradient check through the full layer (attention,
        // per-relation matmuls, scatter aggregation, relu) for every
        // parameter scalar of a tiny configuration.
        let sg = toy_subgraph();
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let small = RgcnLayerConfig {
            num_relations: 2,
            in_dim: 2,
            out_dim: 2,
            attn_dim: 2,
            num_bases: None,
        };
        let mut ps = ParamStore::new();
        let layer = RgcnLayer::new(small, "l", &mut ps, &mut rng);
        let feats = init::normal([sg.num_nodes(), 2], 0.0, 1.0, &mut rng);

        let loss_of = |ps: &ParamStore| -> (f32, dekg_tensor::GradStore) {
            let mut g = Graph::new();
            let h = g.constant(feats.clone());
            let out = layer.forward(&mut g, ps, &sg, h, None);
            let sq = g.square(out);
            let loss = g.sum_all(sq);
            let grads = g.backward(loss);
            (g.value(loss).item(), grads)
        };
        let (_, analytic) = loss_of(&ps);

        let eps = 1e-3f32;
        let ids: Vec<_> = ps.iter().map(|(id, _, _)| id).collect();
        for id in ids {
            let n = ps.get(id).numel();
            for i in 0..n {
                let orig = ps.get(id).data()[i];
                ps.get_mut(id).data_mut()[i] = orig + eps;
                let (fp, _) = loss_of(&ps);
                ps.get_mut(id).data_mut()[i] = orig - eps;
                let (fm, _) = loss_of(&ps);
                ps.get_mut(id).data_mut()[i] = orig;
                let numeric = (fp - fm) / (2.0 * eps);
                let a = analytic.get(id).map_or(0.0, |g| g.data()[i]);
                // relu kinks make a few coordinates noisy; tolerate a
                // generous relative error but catch sign/major errors.
                assert!(
                    (numeric - a).abs() < 5e-2 * (1.0 + numeric.abs().max(a.abs())),
                    "param {} [{i}]: numeric {numeric} vs analytic {a}",
                    ps.name_of(id)
                );
            }
        }
    }

    #[test]
    fn gradients_flow_and_training_reduces_loss() {
        let sg = toy_subgraph();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut ps = ParamStore::new();
        let layer = RgcnLayer::new(cfg(None), "l0", &mut ps, &mut rng);
        let feats = init::normal([sg.num_nodes(), 4], 0.0, 1.0, &mut rng);
        let target = Tensor::full([sg.num_nodes(), 3], 0.5);
        let mut opt = Sgd::new(0.05);

        let loss_at = |ps: &ParamStore| {
            let mut g = Graph::new();
            let h = g.constant(feats.clone());
            let out = layer.forward(&mut g, ps, &sg, h, None);
            let t = g.constant(target.clone());
            let d = g.sub(out, t);
            let sq = g.square(d);
            let loss = g.mean_all(sq);
            (g.value(loss).item(), g.backward(loss))
        };

        let (initial, _) = loss_at(&ps);
        for _ in 0..60 {
            let (_, grads) = loss_at(&ps);
            assert!(!grads.is_empty(), "layer parameters must receive gradients");
            opt.step(&mut ps, &grads);
        }
        let (fin, _) = loss_at(&ps);
        assert!(fin < initial * 0.7, "loss should drop: {initial} -> {fin}");
    }
}
