//! The multi-layer subgraph encoder used by GSM and the GraIL/TACT
//! baselines.

use crate::labeling::{feature_width, node_features, LabelingMode};
use crate::rgcn::{group_edges_by_relation, BatchedLayerScratch, RgcnLayer, RgcnLayerConfig};
use dekg_kg::{BatchedSubgraphs, Subgraph};
use dekg_tensor::{kernels, Graph, ParamStore, Var};
use rand::Rng;

/// Configuration for a [`SubgraphEncoder`].
#[derive(Debug, Clone)]
pub struct SubgraphEncoderConfig {
    /// Number of relations in the shared space.
    pub num_relations: usize,
    /// Hop bound `t` the subgraphs were extracted with.
    pub hops: u32,
    /// Hidden/output embedding width of every layer.
    pub dim: usize,
    /// Number of R-GCN layers `L`.
    pub layers: usize,
    /// Per-relation attention embedding width.
    pub attn_dim: usize,
    /// Edge dropout rate `β` applied during training.
    pub edge_dropout: f32,
    /// Node labeling mode (Improved for DEKG-ILP, Grail for baselines).
    pub labeling: LabelingMode,
    /// Optional basis decomposition for relation weights.
    pub num_bases: Option<usize>,
}

impl SubgraphEncoderConfig {
    /// The paper's defaults: `t = 2` hops, `d = 32`, `L = 3`, `β = 0.5`.
    pub fn paper_defaults(num_relations: usize) -> Self {
        SubgraphEncoderConfig {
            num_relations,
            hops: 2,
            dim: 32,
            layers: 3,
            attn_dim: 8,
            edge_dropout: 0.5,
            labeling: LabelingMode::Improved,
            num_bases: None,
        }
    }
}

/// The encoder outputs for one subgraph: everything Eq. 11 consumes.
#[derive(Debug, Clone, Copy)]
pub struct EncodedSubgraph {
    /// All node embeddings `h^L` as `[n, dim]`.
    pub nodes: Var,
    /// Average-pooled graph embedding `h_G^L` as `[1, dim]` (Eq. 10).
    pub graph: Var,
    /// Head embedding `h_i^L` as `[1, dim]`.
    pub head: Var,
    /// Tail embedding `h_j^L` as `[1, dim]`.
    pub tail: Var,
}

/// The forward-only counterpart of [`EncodedSubgraph`]: plain buffers
/// instead of tape handles, produced by
/// [`SubgraphEncoder::encode_inference`].
#[derive(Debug, Clone)]
pub struct InferenceEncoding {
    /// All node embeddings `h^L`, row-major `[n, dim]`.
    pub nodes: Vec<f32>,
    /// Average-pooled graph embedding `h_G^L` as `[dim]`.
    pub graph: Vec<f32>,
    /// Head embedding `h_i^L` as `[dim]`.
    pub head: Vec<f32>,
    /// Tail embedding `h_j^L` as `[dim]`.
    pub tail: Vec<f32>,
}

/// A stack of [`RgcnLayer`]s with labeling-based input features and
/// average-pool readout.
#[derive(Debug, Clone)]
pub struct SubgraphEncoder {
    cfg: SubgraphEncoderConfig,
    layers: Vec<RgcnLayer>,
}

impl SubgraphEncoder {
    /// Registers all layer parameters under `prefix`.
    ///
    /// # Panics
    /// If `layers == 0`.
    pub fn new(
        cfg: SubgraphEncoderConfig,
        prefix: &str,
        params: &mut ParamStore,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(cfg.layers > 0, "encoder needs at least one layer");
        let mut layers = Vec::with_capacity(cfg.layers);
        for l in 0..cfg.layers {
            let in_dim = if l == 0 { feature_width(cfg.hops) } else { cfg.dim };
            layers.push(RgcnLayer::new(
                RgcnLayerConfig {
                    num_relations: cfg.num_relations,
                    in_dim,
                    out_dim: cfg.dim,
                    attn_dim: cfg.attn_dim,
                    num_bases: cfg.num_bases,
                },
                &format!("{prefix}.layer{l}"),
                params,
                rng,
            ));
        }
        SubgraphEncoder { cfg, layers }
    }

    /// The encoder configuration.
    pub fn config(&self) -> &SubgraphEncoderConfig {
        &self.cfg
    }

    /// Encodes one subgraph. `train` enables edge dropout.
    pub fn encode(
        &self,
        g: &mut Graph,
        params: &ParamStore,
        sg: &Subgraph,
        train: bool,
        rng: &mut impl Rng,
    ) -> EncodedSubgraph {
        let mounted = self.mount(g, params);
        self.encode_mounted(g, &mounted, sg, train, rng)
    }

    /// Mounts every layer's parameters once; the handles can encode
    /// many subgraphs on the same tape (batched evaluation — repeated
    /// mounting copies the per-relation weight stacks per candidate,
    /// which dominates scoring cost otherwise).
    pub fn mount(&self, g: &mut Graph, params: &ParamStore) -> Vec<crate::rgcn::MountedRgcnLayer> {
        self.layers.iter().map(|l| l.mount(g, params)).collect()
    }

    /// Encodes one subgraph against pre-mounted layer handles.
    pub fn encode_mounted(
        &self,
        g: &mut Graph,
        mounted: &[crate::rgcn::MountedRgcnLayer],
        sg: &Subgraph,
        train: bool,
        rng: &mut impl Rng,
    ) -> EncodedSubgraph {
        assert_eq!(mounted.len(), self.layers.len(), "mounted handle count mismatch");
        let feats = node_features(sg, self.cfg.hops, self.cfg.labeling);
        let mut h = g.constant(feats);

        // One edge-dropout mask shared by all layers, as in GraIL.
        let edge_keep: Option<Vec<bool>> = if train && self.cfg.edge_dropout > 0.0 {
            let keep = 1.0 - self.cfg.edge_dropout;
            Some((0..sg.num_edges()).map(|_| rng.gen::<f32>() < keep).collect())
        } else {
            None
        };

        for (layer, m) in self.layers.iter().zip(mounted) {
            h = layer.forward_mounted(g, m, sg, h, edge_keep.as_deref());
        }

        let graph_vec = g.mean_axis0(h); // [dim]
        let graph = g.reshape(graph_vec, [1, self.cfg.dim]);
        let head = g.gather_rows(h, &[0]);
        let tail = g.gather_rows(h, &[1]);
        EncodedSubgraph { nodes: h, graph, head, tail }
    }

    /// Forward-only encoding: no tape, no dropout. Bitwise identical to
    /// [`SubgraphEncoder::encode_mounted`] with `train = false` — same
    /// kernels, same op order (see [`RgcnLayer::forward_inference`]).
    /// This is the evaluation fast path: it skips the autograd tape's
    /// node bookkeeping, which dominates scoring cost at eval time.
    pub fn encode_inference(&self, params: &ParamStore, sg: &Subgraph) -> InferenceEncoding {
        let by_rel = group_edges_by_relation(sg, None);
        let mut h = node_features(sg, self.cfg.hops, self.cfg.labeling).into_vec();
        for layer in &self.layers {
            h = layer.forward_inference(params, sg, &h, &by_rel);
        }

        let n = sg.num_nodes();
        let dim = self.cfg.dim;
        // Average-pool readout, replicating the tape's mean_axis0:
        // accumulate rows in order, then scale by 1/n.
        let mut graph = vec![0.0f32; dim];
        for row in h.chunks_exact(dim) {
            kernels::add_assign(&mut graph, row);
        }
        let inv = if n == 0 { 0.0 } else { 1.0 / n as f32 };
        for x in &mut graph {
            *x *= inv;
        }
        let head = h[..dim].to_vec();
        let tail = h[dim..2 * dim].to_vec();
        InferenceEncoding { nodes: h, graph, head, tail }
    }

    /// Batched forward-only encoding over a block-diagonal pack of
    /// subgraphs, bitwise identical to calling
    /// [`SubgraphEncoder::encode_inference`] per subgraph (see
    /// [`RgcnLayer::forward_inference_batched`] for the layer-level
    /// argument; the readout below accumulates each segment's rows in
    /// the same order and scales by the same `1/n`).
    ///
    /// Results land in `ws` (`graph`/`heads`/`tails`, one row per
    /// segment); all buffers are reused across calls.
    pub fn encode_inference_batched(
        &self,
        params: &ParamStore,
        batch: &BatchedSubgraphs<'_>,
        ws: &mut BatchedEncodeWorkspace,
    ) {
        let n = batch.total_nodes();
        let hops = self.cfg.hops;
        let width = (hops + 1) as usize;
        let feat_w = feature_width(hops);

        // Packed one-hot label features + the label list the layer-0
        // self-term gather reads. Same values, same panics as
        // `node_features` on each subgraph.
        ws.labels.clear();
        ws.h_a.clear();
        ws.h_a.resize(n * feat_w, 0.0);
        let mut base = 0usize;
        for sg in batch.graphs() {
            for u in 0..sg.num_nodes() {
                let (dh, dt) = sg.label(u);
                ws.labels.push((dh, dt));
                let row = &mut ws.h_a[(base + u) * feat_w..(base + u + 1) * feat_w];
                if dh >= 0 {
                    assert!((dh as u32) <= hops, "distance {dh} exceeds labeling bound {hops}");
                    row[dh as usize] = 1.0;
                }
                if dt >= 0 {
                    assert!((dt as u32) <= hops, "distance {dt} exceeds labeling bound {hops}");
                    row[width + dt as usize] = 1.0;
                }
            }
            base += sg.num_nodes();
        }

        // Ping-pong through the layer stack: h_a is always the input,
        // h_b the output, swapped after every layer.
        for (l, layer) in self.layers.iter().enumerate() {
            let labels = if l == 0 { Some(ws.labels.as_slice()) } else { None };
            layer.forward_inference_batched(
                params,
                batch,
                &ws.h_a,
                labels,
                &mut ws.h_b,
                &mut ws.scratch,
            );
            std::mem::swap(&mut ws.h_a, &mut ws.h_b);
        }
        let h = &ws.h_a;

        // Segment readout: mean-pool each segment's rows (accumulated
        // in row order, then scaled — as in `encode_inference`) plus
        // the head/tail rows at each segment's start.
        let dim = self.cfg.dim;
        let b = batch.num_graphs();
        ws.graph.clear();
        ws.graph.resize(b * dim, 0.0);
        ws.heads.resize(b * dim, 0.0);
        ws.tails.resize(b * dim, 0.0);
        for i in 0..b {
            let r = batch.segment(i);
            let seg_n = r.len();
            let pooled = &mut ws.graph[i * dim..(i + 1) * dim];
            for row in h[r.start * dim..r.end * dim].chunks_exact(dim) {
                kernels::add_assign(pooled, row);
            }
            let inv = if seg_n == 0 { 0.0 } else { 1.0 / seg_n as f32 };
            for x in pooled.iter_mut() {
                *x *= inv;
            }
            ws.heads[i * dim..(i + 1) * dim]
                .copy_from_slice(&h[r.start * dim..(r.start + 1) * dim]);
            ws.tails[i * dim..(i + 1) * dim]
                .copy_from_slice(&h[(r.start + 1) * dim..(r.start + 2) * dim]);
        }
    }
}

/// Reusable buffers for [`SubgraphEncoder::encode_inference_batched`]:
/// the ping-pong packed node matrices, the packed label list, the
/// per-layer scratch, and the readout outputs. One instance per worker
/// thread makes steady-state batched scoring allocation-free.
#[derive(Debug, Default, Clone)]
pub struct BatchedEncodeWorkspace {
    h_a: Vec<f32>,
    h_b: Vec<f32>,
    labels: Vec<(i32, i32)>,
    scratch: BatchedLayerScratch,
    /// Mean-pooled graph embedding per segment, row-major `[b, dim]`.
    pub graph: Vec<f32>,
    /// Head (local node 0) embedding per segment, `[b, dim]`.
    pub heads: Vec<f32>,
    /// Tail (local node 1) embedding per segment, `[b, dim]`.
    pub tails: Vec<f32>,
}

impl BatchedEncodeWorkspace {
    /// An empty workspace; buffers grow on first use and are reused.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dekg_kg::{Adjacency, EntityId, ExtractionMode, SubgraphExtractor, Triple, TripleStore};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn chain_subgraph() -> Subgraph {
        let store = TripleStore::from_triples([
            Triple::from_raw(0, 0, 1),
            Triple::from_raw(1, 1, 2),
            Triple::from_raw(2, 0, 3),
        ]);
        let adj = Adjacency::from_store(&store, 4);
        SubgraphExtractor::new(&adj, 2, ExtractionMode::Union).extract(
            EntityId(0),
            EntityId(3),
            None,
        )
    }

    fn tiny_cfg() -> SubgraphEncoderConfig {
        SubgraphEncoderConfig {
            num_relations: 2,
            hops: 2,
            dim: 8,
            layers: 2,
            attn_dim: 4,
            edge_dropout: 0.5,
            labeling: LabelingMode::Improved,
            num_bases: None,
        }
    }

    #[test]
    fn encode_shapes() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut ps = ParamStore::new();
        let enc = SubgraphEncoder::new(tiny_cfg(), "gsm", &mut ps, &mut rng);
        let sg = chain_subgraph();
        let mut g = Graph::new();
        let out = enc.encode(&mut g, &ps, &sg, false, &mut rng);
        assert_eq!(g.shape(out.nodes).dims(), &[sg.num_nodes(), 8]);
        assert_eq!(g.shape(out.graph).dims(), &[1, 8]);
        assert_eq!(g.shape(out.head).dims(), &[1, 8]);
        assert_eq!(g.shape(out.tail).dims(), &[1, 8]);
    }

    #[test]
    fn eval_mode_is_deterministic() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut ps = ParamStore::new();
        let enc = SubgraphEncoder::new(tiny_cfg(), "gsm", &mut ps, &mut rng);
        let sg = chain_subgraph();

        let run = |rng_seed: u64| {
            let mut rng = ChaCha8Rng::seed_from_u64(rng_seed);
            let mut g = Graph::new();
            let out = enc.encode(&mut g, &ps, &sg, false, &mut rng);
            g.value(out.graph).clone()
        };
        // Different RNG streams, same eval output (no dropout at eval).
        assert_eq!(run(10), run(99));
    }

    #[test]
    fn train_mode_uses_dropout() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut ps = ParamStore::new();
        let enc = SubgraphEncoder::new(
            SubgraphEncoderConfig { edge_dropout: 0.9, ..tiny_cfg() },
            "gsm",
            &mut ps,
            &mut rng,
        );
        let sg = chain_subgraph();
        let mut g_eval = Graph::new();
        let eval = enc.encode(&mut g_eval, &ps, &sg, false, &mut rng);
        let mut g_train = Graph::new();
        let train = enc.encode(&mut g_train, &ps, &sg, true, &mut rng);
        // With 90% edge dropout the outputs should differ w.h.p.
        assert_ne!(g_eval.value(eval.graph).data(), g_train.value(train.graph).data());
    }

    #[test]
    fn encoder_tape_passes_differential_check() {
        // The full R-GCN stack — gather/scatter message passing,
        // attention, edge dropout — re-executed by the f64 reference
        // interpreter must match the optimized kernels on every node
        // value and every parameter gradient.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut ps = ParamStore::new();
        let enc = SubgraphEncoder::new(tiny_cfg(), "gsm", &mut ps, &mut rng);
        let sg = chain_subgraph();
        let mut g = Graph::new();
        let out = enc.encode(&mut g, &ps, &sg, true, &mut rng);
        let pooled = g.sum_all(out.graph);
        let head = g.sum_all(out.head);
        let loss = g.add(pooled, head);
        let diags = g.diff_check(loss, Some(&ps));
        assert!(diags.is_empty(), "encoder tape should be clean: {diags:?}");
    }

    #[test]
    fn inference_path_is_bitwise_identical_to_tape() {
        // The forward-only path must reproduce the tape path bit for
        // bit — evaluation switches between them expecting identical
        // rankings. Exercised with and without basis decomposition and
        // under both labeling modes.
        for (num_bases, labeling) in [
            (None, LabelingMode::Improved),
            (None, LabelingMode::Grail),
            (Some(3), LabelingMode::Improved),
            (Some(3), LabelingMode::Grail),
        ] {
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            let mut ps = ParamStore::new();
            let enc = SubgraphEncoder::new(
                SubgraphEncoderConfig { num_bases, labeling, ..tiny_cfg() },
                "gsm",
                &mut ps,
                &mut rng,
            );
            let sg = chain_subgraph();

            let mut g = Graph::new();
            let tape = enc.encode(&mut g, &ps, &sg, false, &mut rng);
            let fast = enc.encode_inference(&ps, &sg);

            assert_eq!(g.value(tape.nodes).data(), &fast.nodes[..], "{num_bases:?} {labeling:?}");
            assert_eq!(g.value(tape.graph).data(), &fast.graph[..], "{num_bases:?} {labeling:?}");
            assert_eq!(g.value(tape.head).data(), &fast.head[..], "{num_bases:?} {labeling:?}");
            assert_eq!(g.value(tape.tail).data(), &fast.tail[..], "{num_bases:?} {labeling:?}");
        }
    }

    #[test]
    fn inference_path_handles_edgeless_subgraphs() {
        let store = TripleStore::from_triples([Triple::from_raw(3, 0, 4)]);
        let adj = Adjacency::from_store(&store, 5);
        let sg = SubgraphExtractor::new(&adj, 2, ExtractionMode::Union).extract(
            EntityId(0),
            EntityId(1),
            None,
        );
        assert_eq!(sg.num_edges(), 0);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let mut ps = ParamStore::new();
        let enc = SubgraphEncoder::new(tiny_cfg(), "gsm", &mut ps, &mut rng);
        let mut g = Graph::new();
        let tape = enc.encode(&mut g, &ps, &sg, false, &mut rng);
        let fast = enc.encode_inference(&ps, &sg);
        assert_eq!(g.value(tape.nodes).data(), &fast.nodes[..]);
        assert_eq!(g.value(tape.graph).data(), &fast.graph[..]);
    }

    /// A mixed bag of subgraphs: connected, disconnected/bridging,
    /// edgeless, self-link-degenerate, and multi-relation.
    fn mixed_subgraphs() -> Vec<Subgraph> {
        let store = TripleStore::from_triples([
            Triple::from_raw(0, 0, 1),
            Triple::from_raw(1, 1, 2),
            Triple::from_raw(2, 0, 3),
            Triple::from_raw(4, 1, 5),
            Triple::from_raw(5, 0, 4),
        ]);
        let adj = Adjacency::from_store(&store, 8);
        let ex = SubgraphExtractor::new(&adj, 2, ExtractionMode::Union);
        vec![
            ex.extract(EntityId(0), EntityId(3), None), // chain, rels {0,1}
            ex.extract(EntityId(0), EntityId(4), None), // bridging: disconnected
            ex.extract(EntityId(6), EntityId(7), None), // isolated endpoints: edgeless
            ex.extract(EntityId(4), EntityId(5), None), // two-cycle, rels {0,1}
            ex.extract(EntityId(1), EntityId(1), None), // degenerate self-link
            ex.extract(EntityId(2), EntityId(0), None), // reversed endpoints
        ]
    }

    #[test]
    fn batched_encoding_is_bitwise_identical_per_subgraph() {
        // The batched engine must reproduce `encode_inference` bit for
        // bit on every segment — with and without basis decomposition
        // (which itself is pinned to the tape path elsewhere).
        for num_bases in [None, Some(2)] {
            let mut rng = ChaCha8Rng::seed_from_u64(21);
            let mut ps = ParamStore::new();
            let enc = SubgraphEncoder::new(
                SubgraphEncoderConfig { num_bases, ..tiny_cfg() },
                "gsm",
                &mut ps,
                &mut rng,
            );
            let sgs = mixed_subgraphs();
            let batch = dekg_kg::BatchedSubgraphs::pack(&sgs);
            let mut ws = BatchedEncodeWorkspace::new();
            enc.encode_inference_batched(&ps, &batch, &mut ws);
            let dim = enc.config().dim;
            for (i, sg) in sgs.iter().enumerate() {
                let single = enc.encode_inference(&ps, sg);
                assert_eq!(
                    &ws.graph[i * dim..(i + 1) * dim],
                    &single.graph[..],
                    "graph row {i}, num_bases {num_bases:?}"
                );
                assert_eq!(&ws.heads[i * dim..(i + 1) * dim], &single.head[..], "head row {i}");
                assert_eq!(&ws.tails[i * dim..(i + 1) * dim], &single.tail[..], "tail row {i}");
            }
        }
    }

    #[test]
    fn batched_workspace_reuse_is_stable() {
        // Re-running with a dirty workspace (larger previous batch,
        // different relation mix) must not leak state between calls.
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let mut ps = ParamStore::new();
        let enc = SubgraphEncoder::new(tiny_cfg(), "gsm", &mut ps, &mut rng);
        let sgs = mixed_subgraphs();
        let mut ws = BatchedEncodeWorkspace::new();
        let big = dekg_kg::BatchedSubgraphs::pack(&sgs);
        enc.encode_inference_batched(&ps, &big, &mut ws);
        let first = ws.graph.clone();
        // A smaller batch, then the big one again.
        let small = dekg_kg::BatchedSubgraphs::pack(&sgs[2..3]);
        enc.encode_inference_batched(&ps, &small, &mut ws);
        enc.encode_inference_batched(&ps, &big, &mut ws);
        assert_eq!(ws.graph, first);
    }

    #[test]
    fn paper_defaults_sane() {
        let cfg = SubgraphEncoderConfig::paper_defaults(14);
        assert_eq!(cfg.dim, 32);
        assert_eq!(cfg.hops, 2);
        assert_eq!(cfg.layers, 3);
        assert_eq!(cfg.edge_dropout, 0.5);
    }

    #[test]
    fn graph_embedding_is_node_mean() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut ps = ParamStore::new();
        let enc = SubgraphEncoder::new(tiny_cfg(), "gsm", &mut ps, &mut rng);
        let sg = chain_subgraph();
        let mut g = Graph::new();
        let out = enc.encode(&mut g, &ps, &sg, false, &mut rng);
        let nodes = g.value(out.nodes).clone();
        let graph = g.value(out.graph).clone();
        let n = sg.num_nodes();
        for d in 0..8 {
            let mean: f32 = (0..n).map(|u| nodes.at(&[u, d])).sum::<f32>() / n as f32;
            assert!((mean - graph.at(&[0, d])).abs() < 1e-5);
        }
    }
}
