//! The ranking engine behind the daemon: one immutable graph view plus
//! an atomically swappable model handle.
//!
//! The expensive, checkpoint-independent state — the loaded dataset,
//! the derived [`InferenceGraph`] and the evaluation filter store — is
//! built once at startup and shared immutably by every worker. The
//! model itself lives behind `RwLock<Arc<ModelGeneration>>`: a request
//! clones the `Arc` once (a read lock held for nanoseconds) and scores
//! against that generation for its whole lifetime, so a concurrent
//! [`RankEngine::reload`] can swap in a new checkpoint without a
//! single in-flight request observing a half-updated model. The old
//! generation is freed when its last in-flight request finishes.
//!
//! Reloads are serialized by a dedicated mutex and do all slow work
//! (reading and decoding the checkpoint pair) *outside* the write
//! lock — the swap itself is one pointer store.

use dekg_core::{DekgIlp, InferenceGraph};
use dekg_datasets::{loader, DekgDataset};
use dekg_kg::TripleStore;
use std::sync::{Arc, Mutex, PoisonError, RwLock};

/// One loaded checkpoint: the model plus its provenance.
#[derive(Debug)]
pub struct ModelGeneration {
    /// The restored model (scoring path: [`dekg_core::ScoringPath::Batched`]).
    pub model: DekgIlp,
    /// Path of the checkpoint pair this generation was restored from.
    pub ckpt_path: String,
    /// Monotone generation counter: 1 for the startup load, +1 per reload.
    pub generation: u64,
}

/// The daemon's shared ranking state. See the module docs.
#[derive(Debug)]
pub struct RankEngine {
    dataset: DekgDataset,
    graph: InferenceGraph,
    filter: TripleStore,
    current: RwLock<Arc<ModelGeneration>>,
    /// Serializes reloads and owns the generation counter.
    reload_serial: Mutex<u64>,
}

impl RankEngine {
    /// Loads a dataset directory and a checkpoint pair into a ready
    /// engine. This is the slow path every warm request skips: dataset
    /// IO, adjacency/component-table derivation, filter construction
    /// and checkpoint restore all happen here, once.
    ///
    /// The filter store matches `dekg evaluate` exactly:
    /// `G ∪ G' ∪ valid ∪ test_enclosing ∪ test_bridging`, so filtered
    /// ranks served over HTTP are bitwise-identical to the CLI's.
    ///
    /// # Errors
    /// Dataset or checkpoint IO/parse failures, as a displayable error.
    pub fn load(data_dir: &str, ckpt: &str) -> Result<RankEngine, String> {
        let dataset = loader::load_dir(data_dir, data_dir)
            .map_err(|e| format!("loading dataset {data_dir}: {e}"))?;
        let graph = InferenceGraph::from_dataset(&dataset);
        let mut filter = graph.store.clone();
        for t in dataset.valid.iter().chain(&dataset.test_enclosing).chain(&dataset.test_bridging) {
            filter.insert(*t);
        }
        let model = DekgIlp::restore(ckpt, &dataset)
            .map_err(|e| format!("restoring checkpoint {ckpt}: {e}"))?;
        dekg_obs::log_info!(
            "engine loaded: {} ({} entities, {} relations), checkpoint {ckpt} (generation 1)",
            dataset.name,
            dataset.num_entities(),
            dataset.num_relations
        );
        Ok(RankEngine {
            dataset,
            graph,
            filter,
            current: RwLock::new(Arc::new(ModelGeneration {
                model,
                ckpt_path: ckpt.to_owned(),
                generation: 1,
            })),
            reload_serial: Mutex::new(1),
        })
    }

    /// The loaded dataset (vocabulary lookups, split membership).
    pub fn dataset(&self) -> &DekgDataset {
        &self.dataset
    }

    /// The shared inference graph view.
    pub fn graph(&self) -> &InferenceGraph {
        &self.graph
    }

    /// The evaluation filter store (`G ∪ G' ∪ valid ∪ tests`).
    pub fn filter(&self) -> &TripleStore {
        &self.filter
    }

    /// The current model generation. Cheap: one read lock, one `Arc`
    /// clone. Callers keep scoring against the returned generation even
    /// if a reload swaps the current one mid-request.
    pub fn model(&self) -> Arc<ModelGeneration> {
        Arc::clone(&self.current.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Hot-swaps the model from a checkpoint pair — `ckpt` when given,
    /// else the current generation's path (re-read from disk). The new
    /// model is fully restored *before* the swap; in-flight requests
    /// keep their generation. Returns the new generation number.
    ///
    /// # Errors
    /// Checkpoint restore failures — the current generation stays
    /// installed and keeps serving.
    pub fn reload(&self, ckpt: Option<&str>) -> Result<u64, String> {
        // One reload at a time; concurrent requests queue here while
        // the serving path stays wait-free.
        let mut serial = self.reload_serial.lock().unwrap_or_else(PoisonError::into_inner);
        let path = match ckpt {
            Some(p) => p.to_owned(),
            None => self.model().ckpt_path.clone(),
        };
        let model = DekgIlp::restore(&path, &self.dataset)
            .map_err(|e| format!("restoring checkpoint {path}: {e}"))?;
        *serial += 1;
        let generation = *serial;
        let fresh = Arc::new(ModelGeneration { model, ckpt_path: path.clone(), generation });
        *self.current.write().unwrap_or_else(PoisonError::into_inner) = fresh;
        crate::serve_obs().reloads.inc();
        dekg_obs::log_info!("model hot-swapped from {path} (generation {generation})");
        Ok(generation)
    }
}
