//! The daemon's JSON API: request decoding, scoring, and byte-stable
//! response encoding.
//!
//! Three request forms share `POST /rank`, keyed by the single
//! top-level field of the request object:
//!
//! * `{"rank": {...}}` — one filtered-protocol ranking query,
//!   reproducing `dekg evaluate` bitwise: the caller names the truth
//!   triple, the prediction form, and the `(seed, index)` pair that
//!   seeds candidate sampling, and gets back exactly the tie-averaged
//!   rank the evaluation protocol computes for that query.
//! * `{"score": {...}}` — a fixed-pair batch: plausibility scores for
//!   an explicit list of `[head, relation, tail]` name triples.
//! * `{"rank_tails": {...}}` — the serving question proper: the top-k
//!   tail completions for `(head, relation)` over the full entity
//!   universe, known-true triples filtered out.
//!
//! Responses are built as ordered [`serde::Value`] objects and encoded
//! with the workspace's deterministic float rendering, so identical
//! queries produce byte-identical bodies across runs, thread counts
//! and checkpoint generations (a reload that restores the same
//! checkpoint changes no response byte).

use crate::engine::RankEngine;
use dekg_core::LinkPredictor;
use dekg_eval::{filtered_rank, RankQuery};
use dekg_kg::{EntityId, RelationId, Triple, Vocab};
use serde::{Number, Value};

/// A client-visible failure: HTTP status plus message (the `{"error"}`
/// envelope body).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ApiError {
    /// HTTP status to answer with.
    pub status: u16,
    /// Human-readable message.
    pub message: String,
}

impl ApiError {
    /// A 400 Bad Request.
    pub fn bad(message: impl Into<String>) -> ApiError {
        ApiError { status: 400, message: message.into() }
    }
}

/// One decoded `/rank` request.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum RankRequest {
    /// `{"rank": {...}}` — one evaluation-protocol query.
    Rank {
        /// The query (truth triple + prediction form).
        query: RankQuery,
        /// Prediction form name, echoed into the response.
        task: &'static str,
        /// Candidate cap (`None` = full filtered candidate set).
        sample: Option<usize>,
        /// Master seed for candidate sampling.
        seed: u64,
        /// Per-query seed-split index (`li * |tasks| + ti` in the CLI).
        index: u64,
    },
    /// `{"score": {...}}` — fixed-pair batch scoring.
    Score {
        /// The triples to score, in request order.
        triples: Vec<Triple>,
    },
    /// `{"rank_tails": {...}}` — top-k tail completion.
    RankTails {
        /// Query head.
        head: EntityId,
        /// Query relation.
        rel: RelationId,
        /// How many completions to return.
        k: usize,
    },
}

/// The object payload of `pairs[name]`, or a 400.
fn obj_field<'v>(
    pairs: &'v [(String, Value)],
    name: &str,
) -> Result<&'v [(String, Value)], ApiError> {
    match serde::field(pairs, name) {
        Ok(Value::Object(inner)) => Ok(inner),
        Ok(_) => Err(ApiError::bad(format!("field {name:?} must be an object"))),
        Err(_) => Err(ApiError::bad(format!("missing field {name:?}"))),
    }
}

/// A required string field, or a 400.
fn str_field<'v>(pairs: &'v [(String, Value)], name: &str) -> Result<&'v str, ApiError> {
    serde::field(pairs, name)
        .ok()
        .and_then(Value::as_str)
        .ok_or_else(|| ApiError::bad(format!("missing string field {name:?}")))
}

/// An optional unsigned-integer field with a default.
fn u64_field_or(pairs: &[(String, Value)], name: &str, default: u64) -> Result<u64, ApiError> {
    match pairs.iter().find(|(k, _)| k == name) {
        None => Ok(default),
        Some((_, Value::Null)) => Ok(default),
        Some((_, Value::Num(n))) => n
            .as_u64()
            .ok_or_else(|| ApiError::bad(format!("field {name:?} must be a non-negative integer"))),
        Some(_) => Err(ApiError::bad(format!("field {name:?} must be a non-negative integer"))),
    }
}

/// An entity by name, or a 400 naming the unknown entity.
fn entity(vocab: &Vocab, name: &str) -> Result<EntityId, ApiError> {
    vocab.entity(name).ok_or_else(|| ApiError::bad(format!("unknown entity {name:?}")))
}

/// A relation by name, or a 400 naming the unknown relation.
fn relation(vocab: &Vocab, name: &str) -> Result<RelationId, ApiError> {
    vocab.relation(name).ok_or_else(|| ApiError::bad(format!("unknown relation {name:?}")))
}

impl RankRequest {
    /// Decodes a request body against the dataset vocabulary.
    pub fn parse(body: &str, vocab: &Vocab) -> Result<RankRequest, ApiError> {
        let value = serde_json::parse_value(body)
            .map_err(|e| ApiError::bad(format!("invalid JSON: {e}")))?;
        let pairs =
            value.as_object().ok_or_else(|| ApiError::bad("request body must be a JSON object"))?;
        if let Ok(inner) = obj_field(pairs, "rank") {
            return RankRequest::parse_rank(inner, vocab);
        }
        if let Ok(inner) = obj_field(pairs, "score") {
            return RankRequest::parse_score(inner, vocab);
        }
        if let Ok(inner) = obj_field(pairs, "rank_tails") {
            return RankRequest::parse_rank_tails(inner, vocab);
        }
        Err(ApiError::bad("request must contain one of \"rank\", \"score\", \"rank_tails\""))
    }

    fn parse_rank(pairs: &[(String, Value)], vocab: &Vocab) -> Result<RankRequest, ApiError> {
        let truth = Triple::new(
            entity(vocab, str_field(pairs, "head")?)?,
            relation(vocab, str_field(pairs, "rel")?)?,
            entity(vocab, str_field(pairs, "tail")?)?,
        );
        let (query, task) = match str_field(pairs, "task")? {
            "head" => (RankQuery::Head(truth), "head"),
            "relation" => (RankQuery::Relation(truth), "relation"),
            "tail" => (RankQuery::Tail(truth), "tail"),
            other => {
                return Err(ApiError::bad(format!(
                    "unknown task {other:?} (expected \"head\", \"relation\" or \"tail\")"
                )))
            }
        };
        let sample = match pairs.iter().find(|(k, _)| k == "candidates") {
            None | Some((_, Value::Null)) => None,
            Some(_) => Some(
                usize::try_from(u64_field_or(pairs, "candidates", 0)?)
                    .map_err(|_| ApiError::bad("field \"candidates\" is out of range"))?,
            ),
        };
        let seed = u64_field_or(pairs, "seed", 0)?;
        let index = u64_field_or(pairs, "index", 0)?;
        Ok(RankRequest::Rank { query, task, sample, seed, index })
    }

    fn parse_score(pairs: &[(String, Value)], vocab: &Vocab) -> Result<RankRequest, ApiError> {
        let Ok(Value::Array(items)) = serde::field(pairs, "triples") else {
            return Err(ApiError::bad("field \"triples\" must be an array"));
        };
        let mut triples = Vec::with_capacity(items.len());
        for item in items {
            let parts = item
                .as_array()
                .filter(|a| a.len() == 3)
                .ok_or_else(|| ApiError::bad("each triple must be [head, rel, tail]"))?;
            let name = |i: usize| {
                parts[i].as_str().ok_or_else(|| ApiError::bad("triple components must be strings"))
            };
            triples.push(Triple::new(
                entity(vocab, name(0)?)?,
                relation(vocab, name(1)?)?,
                entity(vocab, name(2)?)?,
            ));
        }
        if triples.is_empty() {
            return Err(ApiError::bad("field \"triples\" must not be empty"));
        }
        Ok(RankRequest::Score { triples })
    }

    fn parse_rank_tails(pairs: &[(String, Value)], vocab: &Vocab) -> Result<RankRequest, ApiError> {
        let head = entity(vocab, str_field(pairs, "head")?)?;
        let rel = relation(vocab, str_field(pairs, "rel")?)?;
        let k = usize::try_from(u64_field_or(pairs, "k", 10)?)
            .map_err(|_| ApiError::bad("field \"k\" is out of range"))?;
        if k == 0 {
            return Err(ApiError::bad("field \"k\" must be at least 1"));
        }
        Ok(RankRequest::RankTails { head, rel, k })
    }
}

/// An `f32` model score as a JSON number (exact: every `f32` is
/// representable as `f64`, and the encoder's shortest-roundtrip float
/// rendering makes the bytes a pure function of the value).
fn score_value(s: f32) -> Value {
    Value::Num(Number::F(f64::from(s)))
}

/// Executes one decoded request against the engine's *current* model
/// generation. The generation `Arc` is taken once at entry, so a
/// concurrent hot-swap cannot change the model mid-request.
pub(crate) fn execute(engine: &RankEngine, request: &RankRequest) -> Result<Value, ApiError> {
    let generation = engine.model();
    let model = &generation.model;
    match request {
        RankRequest::Rank { query, task, sample, seed, index } => {
            let mut rng = dekg_datasets::item_rng(*seed, *index);
            let rank =
                filtered_rank(model, engine.graph(), query, engine.filter(), *sample, &mut rng);
            Ok(Value::Object(vec![
                ("task".to_owned(), Value::Str((*task).to_owned())),
                ("rank".to_owned(), Value::Num(Number::F(rank))),
            ]))
        }
        RankRequest::Score { triples } => {
            let scores = model.score_batch(engine.graph(), triples);
            Ok(Value::Object(vec![(
                "scores".to_owned(),
                Value::Array(scores.into_iter().map(score_value).collect()),
            )]))
        }
        RankRequest::RankTails { head, rel, k } => {
            let vocab = &engine.dataset().vocab;
            let filter = engine.filter();
            // Every entity as a tail candidate, known-true triples
            // (observed graphs + held-out splits) filtered out — the
            // same closed-world convention as the ranking protocol.
            let candidates: Vec<Triple> = (0..engine.graph().num_entities as u32)
                .map(|e| Triple::new(*head, *rel, EntityId(e)))
                .filter(|t| !filter.contains(t))
                .collect();
            let scores = model.score_batch(engine.graph(), &candidates);
            let mut ranked: Vec<(Triple, f32)> = candidates.into_iter().zip(scores).collect();
            // Deterministic order: score descending, entity id ascending
            // on ties (total_cmp gives NaN a fixed position too).
            ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.tail.cmp(&b.0.tail)));
            ranked.truncate(*k);
            let tails: Vec<Value> = ranked
                .into_iter()
                .map(|(t, s)| {
                    Value::Object(vec![
                        ("tail".to_owned(), Value::Str(vocab.entity_name(t.tail).to_owned())),
                        ("score".to_owned(), score_value(s)),
                    ])
                })
                .collect();
            Ok(Value::Object(vec![
                ("head".to_owned(), Value::Str(vocab.entity_name(*head).to_owned())),
                ("rel".to_owned(), Value::Str(vocab.relation_name(*rel).to_owned())),
                ("tails".to_owned(), Value::Array(tails)),
            ]))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vocab() -> Vocab {
        let mut v = Vocab::new();
        for n in ["a", "b", "c"] {
            v.intern_entity(n);
        }
        v.intern_relation("likes");
        v
    }

    #[test]
    fn parses_protocol_rank() {
        let v = vocab();
        let req = RankRequest::parse(
            r#"{"rank": {"task": "tail", "head": "a", "rel": "likes", "tail": "b",
                "candidates": 50, "seed": 7, "index": 3}}"#,
            &v,
        )
        .unwrap();
        let truth = Triple::from_raw(0, 0, 1);
        assert_eq!(
            req,
            RankRequest::Rank {
                query: RankQuery::Tail(truth),
                task: "tail",
                sample: Some(50),
                seed: 7,
                index: 3,
            }
        );
    }

    #[test]
    fn rank_defaults_are_full_protocol_seed_zero() {
        let v = vocab();
        let req = RankRequest::parse(
            r#"{"rank": {"task": "head", "head": "a", "rel": "likes", "tail": "c"}}"#,
            &v,
        )
        .unwrap();
        match req {
            RankRequest::Rank { sample, seed, index, .. } => {
                assert_eq!(sample, None);
                assert_eq!(seed, 0);
                assert_eq!(index, 0);
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn parses_score_batch() {
        let v = vocab();
        let req = RankRequest::parse(
            r#"{"score": {"triples": [["a", "likes", "b"], ["c", "likes", "a"]]}}"#,
            &v,
        )
        .unwrap();
        assert_eq!(
            req,
            RankRequest::Score {
                triples: vec![Triple::from_raw(0, 0, 1), Triple::from_raw(2, 0, 0)],
            }
        );
    }

    #[test]
    fn parses_rank_tails_with_default_k() {
        let v = vocab();
        let req =
            RankRequest::parse(r#"{"rank_tails": {"head": "b", "rel": "likes"}}"#, &v).unwrap();
        assert_eq!(req, RankRequest::RankTails { head: EntityId(1), rel: RelationId(0), k: 10 });
    }

    #[test]
    fn rejects_unknown_names_with_400() {
        let v = vocab();
        let err = RankRequest::parse(r#"{"rank_tails": {"head": "zz", "rel": "likes"}}"#, &v)
            .unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("unknown entity"), "{}", err.message);
    }

    #[test]
    fn rejects_unknown_form_and_bad_json() {
        let v = vocab();
        assert_eq!(RankRequest::parse(r#"{"frobnicate": {}}"#, &v).unwrap_err().status, 400);
        assert_eq!(RankRequest::parse("not json", &v).unwrap_err().status, 400);
        assert_eq!(RankRequest::parse("[1,2]", &v).unwrap_err().status, 400);
    }
}
