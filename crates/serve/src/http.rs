//! A deliberately small HTTP/1.1 layer over `std::net`.
//!
//! The workspace builds fully offline with no async runtime, so the
//! daemon speaks exactly the HTTP subset its API needs: one request per
//! connection (`Connection: close`), a request line, headers terminated
//! by a blank line, and an optional `Content-Length`-framed body. That
//! subset is what `curl`, Prometheus scrapers and the bundled
//! `dekg request` client all produce; anything fancier (chunked bodies,
//! keep-alive, upgrades) is rejected with a `400`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Upper bound on an accepted request body. Rank requests are small;
/// anything larger is a client bug or abuse, shed before allocation.
pub(crate) const MAX_BODY_BYTES: usize = 1 << 20;

/// Per-connection socket timeout: a stalled peer must not pin a
/// connection thread forever.
pub(crate) const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// One parsed request.
#[derive(Debug)]
pub(crate) struct Request {
    /// Upper-case method (`GET`, `POST`, …).
    pub method: String,
    /// Path component of the request target, query string stripped.
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The body as UTF-8, or an error string for the 400 response.
    pub fn body_utf8(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.body).map_err(|_| "request body is not UTF-8".to_owned())
    }
}

/// Reads one request from `stream`. Errors are client-facing strings
/// (they become the `400` body).
pub(crate) fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let mut reader = BufReader::new(stream);

    let mut request_line = String::new();
    reader.read_line(&mut request_line).map_err(|e| format!("reading request line: {e}"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or("empty request line")?.to_owned();
    let target = parts.next().ok_or("request line has no target")?;
    let path = target.split('?').next().unwrap_or(target).to_owned();

    let mut content_length: usize = 0;
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).map_err(|e| format!("reading header: {e}"))?;
        let line = line.trim_end();
        if n == 0 || line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad Content-Length {:?}", value.trim()))?;
            } else if name.eq_ignore_ascii_case("transfer-encoding") {
                return Err("chunked transfer encoding is not supported".to_owned());
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(format!("body of {content_length} bytes exceeds the {MAX_BODY_BYTES} cap"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| format!("reading body: {e}"))?;
    Ok(Request { method, path, body })
}

/// One response, written with `Connection: close` framing.
#[derive(Debug)]
pub(crate) struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
    /// Extra response headers (`X-Dekg-*` timing/provenance).
    pub headers: Vec<(String, String)>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response { status, content_type: "application/json", body, headers: Vec::new() }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: &str) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.to_owned(),
            headers: Vec::new(),
        }
    }

    /// A JSON error envelope: `{"error": "<message>"}`.
    pub fn error(status: u16, message: &str) -> Response {
        let body =
            serde::Value::Object(vec![("error".to_owned(), serde::Value::Str(message.to_owned()))]);
        Response::json(status, serde_json::to_string(&body).unwrap_or_default())
    }

    /// Appends one extra response header.
    pub fn with_header(mut self, name: &str, value: String) -> Response {
        self.headers.push((name.to_owned(), value));
        self
    }

    /// Serializes the response onto `stream`.
    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}

/// Canonical reason phrase for the status codes this daemon emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Minimal blocking HTTP client for the daemon's API — shared by the
/// `dekg request` subcommand, the serve smoke in `scripts/check.sh`,
/// the perf harness's load generator and the integration tests.
///
/// Sends one request and reads the full response (the server closes the
/// connection after each exchange). Returns `(status, body)`.
///
/// # Errors
/// Connection, IO or response-framing failures.
pub fn http_call(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let (status, _, body) = http_call_with_headers(addr, method, path, body)?;
    Ok((status, body))
}

/// Response headers as `(lower-cased name, trimmed value)` pairs in
/// wire order.
pub type HeaderList = Vec<(String, String)>;

/// [`http_call`] plus the response headers, lower-cased names in wire
/// order — `dekg request --timing` reads the daemon's `x-dekg-*`
/// timing/provenance headers from here without touching the body.
///
/// # Errors
/// Connection, IO or response-framing failures.
pub fn http_call_with_headers(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, HeaderList, String)> {
    let err = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
    let mut stream = TcpStream::connect(addr)?;
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let payload = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        payload.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(payload.as_bytes())?;
    stream.flush()?;

    let mut reader = BufReader::new(&mut stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err(format!("malformed status line {status_line:?}")))?;
    let mut content_length: Option<usize> = None;
    let mut headers: HeaderList = Vec::new();
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line)?;
        let line = line.trim_end();
        if n == 0 || line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            }
            headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
        }
    }
    let body = match content_length {
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf)?;
            String::from_utf8(buf).map_err(|_| err("response body is not UTF-8".to_owned()))?
        }
        None => {
            // `Connection: close` framing: read to EOF.
            let mut buf = String::new();
            reader.read_to_string(&mut buf)?;
            buf
        }
    };
    Ok((status, headers, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// One-shot echo server: accepts a single connection, parses the
    /// request, responds with `method path body-length`.
    fn echo_server() -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            match read_request(&mut stream) {
                Ok(req) => {
                    let body = format!("{} {} {}", req.method, req.path, req.body.len());
                    Response::text(200, &body).write_to(&mut stream).unwrap();
                }
                Err(e) => Response::error(400, &e).write_to(&mut stream).unwrap(),
            }
        });
        (addr, handle)
    }

    #[test]
    fn round_trip_post_with_body() {
        let (addr, handle) = echo_server();
        let (status, body) =
            http_call(&addr.to_string(), "POST", "/rank", Some("{\"x\":1}")).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "POST /rank 7");
        handle.join().unwrap();
    }

    #[test]
    fn round_trip_get_strips_query() {
        let (addr, handle) = echo_server();
        let (status, body) = http_call(&addr.to_string(), "GET", "/metrics?x=1", None).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "GET /metrics 0");
        handle.join().unwrap();
    }

    #[test]
    fn custom_headers_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let _ = read_request(&mut stream);
            Response::text(200, "ok")
                .with_header("X-Dekg-Score-Us", "123".to_owned())
                .write_to(&mut stream)
                .unwrap();
        });
        let (status, headers, body) =
            http_call_with_headers(&addr.to_string(), "GET", "/", None).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "ok");
        let v = headers.iter().find(|(k, _)| k == "x-dekg-score-us").map(|(_, v)| v.as_str());
        assert_eq!(v, Some("123"));
        handle.join().unwrap();
    }

    #[test]
    fn error_envelope_is_json() {
        let r = Response::error(429, "queue full");
        assert_eq!(r.status, 429);
        assert_eq!(r.body, "{\"error\":\"queue full\"}");
    }
}
