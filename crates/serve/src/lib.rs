//! `dekg-serve`: a long-lived HTTP/JSON ranking daemon over the
//! DEKG-ILP batched scoring engine.
//!
//! `dekg evaluate` pays the full startup cost — dataset load, graph
//! derivation, checkpoint restore — on every invocation. This crate
//! keeps that state resident: the daemon loads once and then answers
//! link-prediction queries for the lifetime of the process, with the
//! core crate's thread-local inference workspace and extraction cache
//! staying warm across requests (see [`batcher`](self) internals).
//!
//! # Architecture
//!
//! ```text
//!  client ──► accept loop ──► connection thread ──► admission queue
//!                                  │  (bounded; full ⇒ 429)
//!                                  ▼
//!                            scoring workers (persistent, warm caches)
//!                                  │
//!                                  ▼
//!                      RankEngine ── RwLock<Arc<ModelGeneration>>
//!                                      ▲ atomic hot-swap (/admin/reload)
//! ```
//!
//! Three properties the design pins down, each backed by a test:
//!
//! * **Bitwise fidelity** — a `{"rank": ...}` request reproduces the
//!   evaluation protocol exactly: same candidate sampling stream
//!   (`item_rng(seed, index)`), same filter set, same batched scoring
//!   path, hence the identical `f64` rank `dekg evaluate` computes —
//!   byte-for-byte, since JSON floats render deterministically.
//! * **Concurrency-invariance** — jobs are scored independently of
//!   their admission-batch neighbours, so any interleaving of
//!   concurrent clients produces byte-identical responses.
//! * **Hot-swap atomicity** — the model lives behind
//!   `RwLock<Arc<ModelGeneration>>`; a request clones the `Arc` once
//!   and keeps its generation for the whole request, while
//!   `/admin/reload` builds the new generation entirely off-lock and
//!   swaps it with a single pointer store. No request ever observes a
//!   partially loaded model, and none is dropped during a swap.
//!
//! # Endpoints
//!
//! | Method | Path              | Purpose                                      |
//! |--------|-------------------|----------------------------------------------|
//! | POST   | `/rank`           | Rank / score queries (see [`mod@self`] forms) |
//! | GET    | `/healthz`        | Liveness: 200 once the socket is bound        |
//! | GET    | `/readyz`         | Readiness: 200 once the model is loaded       |
//! | GET    | `/metrics`        | Prometheus text exposition                    |
//! | GET    | `/debug/profile`  | JSON span/hot-op/load snapshot                |
//! | POST   | `/admin/reload`   | Checkpoint hot-swap                           |
//! | POST   | `/admin/shutdown` | Graceful stop (drains queued work)            |
//!
//! Serve-side latency metrics (`dekg_serve_request_latency_us`,
//! `dekg_serve_*_seconds`) and the point-in-time load gauges
//! (`dekg_serve_inflight_requests`, `dekg_serve_queue_depth`) are
//! wall-clock/timing-dependent measurements and sit outside the
//! workspace's bitwise-determinism contract, like every other
//! lexically marked timing metric.
//!
//! Each request is assigned a trace id at admission that follows it
//! across the queue to the scoring worker (spans there nest under it;
//! see `dekg_obs`'s hierarchical tracing) and is echoed back in the
//! `X-Dekg-Trace-Id` response header alongside `X-Dekg-Queue-Us`,
//! `X-Dekg-Score-Us` and `X-Dekg-Generation` — `dekg request --timing`
//! prints these without touching the response body. Requests slower
//! end-to-end than [`ServeConfig::slow_ms`] get a warn-level log line
//! with the same per-phase breakdown.

mod api;
mod batcher;
mod engine;
mod http;

pub use engine::{ModelGeneration, RankEngine};
pub use http::{http_call, http_call_with_headers, HeaderList};

use batcher::{Batcher, Job};
use http::{read_request, Request, Response};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, OnceLock, PoisonError, RwLock};
use std::time::{Duration, Instant};

use dekg_obs::metrics::{Counter, Gauge, Histogram};

/// Serve-side metric handles, registered once in the global registry.
pub(crate) struct ServeObs {
    /// Requests scored (any form), across all generations.
    pub requests: Counter,
    /// Requests shed with a 429 at admission.
    pub shed: Counter,
    /// Successful checkpoint hot-swaps.
    pub reloads: Counter,
    /// Per-request scoring latency in microseconds (wall-clock:
    /// outside the determinism contract).
    pub latency_us: Histogram,
    /// Admission batch sizes actually drained by workers.
    pub batch_size: Histogram,
    /// Requests admitted and not yet answered
    /// (`dekg_serve_inflight_requests`).
    pub inflight: Gauge,
    /// Jobs currently queued (`dekg_serve_queue_depth`). Point-in-time
    /// load gauges: timing-dependent like the latency histogram, hence
    /// outside the determinism contract.
    pub queue_depth: Gauge,
    /// Backing count for the inflight gauge (gauges only store).
    inflight_count: AtomicU64,
}

impl ServeObs {
    /// Notes one admitted request.
    pub fn inflight_enter(&self) {
        let now = self.inflight_count.fetch_add(1, Ordering::Relaxed) + 1;
        self.inflight.set(now as f64);
    }

    /// Notes one answered (or timed-out) request.
    pub fn inflight_exit(&self) {
        let before = self.inflight_count.fetch_sub(1, Ordering::Relaxed);
        self.inflight.set(before.saturating_sub(1) as f64);
    }
}

pub(crate) fn serve_obs() -> &'static ServeObs {
    static OBS: OnceLock<ServeObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let reg = dekg_obs::metrics::global();
        ServeObs {
            requests: reg.counter("dekg_serve_requests_total"),
            shed: reg.counter("dekg_serve_shed_total"),
            reloads: reg.counter("dekg_serve_reloads_total"),
            latency_us: reg.histogram(
                "dekg_serve_request_latency_us",
                &[100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 1_000_000],
            ),
            batch_size: reg.histogram("dekg_serve_batch_size", &[1, 2, 4, 8, 16, 32]),
            inflight: reg.gauge("dekg_serve_inflight_requests"),
            queue_depth: reg.gauge("dekg_serve_queue_depth"),
            inflight_count: AtomicU64::new(0),
        }
    })
}

/// Daemon configuration. All knobs have serving-sane defaults; the CLI
/// maps `dekg serve` flags onto this struct 1:1.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address. Port 0 binds an ephemeral port (the bound
    /// address is reported by [`Server::addr`]).
    pub addr: String,
    /// Scoring worker threads. `0` = auto: available parallelism,
    /// capped at 4 — serving is latency-bound, not throughput-bound,
    /// and each worker keeps its own warm workspace.
    pub workers: usize,
    /// Max jobs a worker drains per admission batch.
    pub max_batch: usize,
    /// How long a worker lingers after the first job of a batch for a
    /// burst to coalesce, in milliseconds.
    pub max_wait_ms: u64,
    /// Admission queue bound; a full queue sheds with `429`.
    pub queue_depth: usize,
    /// Slow-request threshold in milliseconds: a request whose
    /// queue-wait plus scoring exceeds this is logged at warn level
    /// with its per-phase breakdown and trace id. `0` disables.
    pub slow_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 0,
            max_batch: 8,
            max_wait_ms: 1,
            queue_depth: 128,
            slow_ms: 250,
        }
    }
}

impl ServeConfig {
    /// The worker count `workers` resolves to (see the field docs).
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get().min(4))
        }
    }
}

/// Shared daemon state: configuration, lifecycle flags, and the
/// late-installed engine + batcher.
struct ServeState {
    cfg: ServeConfig,
    /// The bound listen address (ephemeral port resolved) — the
    /// shutdown self-wake connects here.
    addr: SocketAddr,
    stop: AtomicBool,
    ready: AtomicBool,
    engine: RwLock<Option<Arc<RankEngine>>>,
    batcher: Mutex<Option<Batcher>>,
}

/// A running daemon.
///
/// Startup is two-phase so health and readiness split cleanly:
/// [`Server::bind`] opens the socket and starts answering `/healthz`
/// (200) and `/readyz` (503) immediately; [`Server::install_engine`]
/// flips `/readyz` to 200 once the slow load has finished. Scoring
/// requests before installation answer `503`.
pub struct Server {
    state: Arc<ServeState>,
    addr: SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds the listen socket and starts the accept loop. The daemon
    /// is live (but not ready) when this returns.
    ///
    /// # Errors
    /// Socket bind failures.
    pub fn bind(cfg: ServeConfig) -> Result<Server, String> {
        let listener =
            TcpListener::bind(&cfg.addr).map_err(|e| format!("binding {}: {e}", cfg.addr))?;
        let addr = listener.local_addr().map_err(|e| format!("resolving bound address: {e}"))?;
        let state = Arc::new(ServeState {
            cfg,
            addr,
            stop: AtomicBool::new(false),
            ready: AtomicBool::new(false),
            engine: RwLock::new(None),
            batcher: Mutex::new(None),
        });
        let accept_state = Arc::clone(&state);
        let accept = std::thread::Builder::new()
            .name("dekg-serve-accept".to_owned())
            .spawn(move || accept_loop(&accept_state, &listener))
            .map_err(|e| format!("spawning accept loop: {e}"))?;
        dekg_obs::log_info!("dekg-serve listening on {addr}");
        Ok(Server { state, addr, accept: Some(accept) })
    }

    /// The bound listen address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Installs a loaded engine, starts the scoring workers, and flips
    /// `/readyz` to 200.
    pub fn install_engine(&self, engine: RankEngine) {
        let engine = Arc::new(engine);
        let cfg = &self.state.cfg;
        let batcher = Batcher::start(
            Arc::clone(&engine),
            cfg.effective_workers(),
            cfg.max_batch,
            Duration::from_millis(cfg.max_wait_ms),
            cfg.queue_depth,
            cfg.slow_ms,
        );
        *self.state.engine.write().unwrap_or_else(PoisonError::into_inner) = Some(engine);
        *self.state.batcher.lock().unwrap_or_else(PoisonError::into_inner) = Some(batcher);
        self.state.ready.store(true, Ordering::Release);
        dekg_obs::log_info!(
            "dekg-serve ready: {} workers, max batch {}, queue depth {}",
            cfg.effective_workers(),
            cfg.max_batch,
            cfg.queue_depth
        );
    }

    /// Requests a graceful stop — equivalent to `POST /admin/shutdown`.
    pub fn shutdown(&self) {
        request_stop(&self.state, self.addr);
    }

    /// Blocks until the daemon stops (via [`Server::shutdown`] or
    /// `POST /admin/shutdown`), then drains and joins the scoring
    /// workers. Queued jobs finish; new submissions are refused.
    pub fn join(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        let batcher = self.state.batcher.lock().unwrap_or_else(PoisonError::into_inner).take();
        if let Some(batcher) = batcher {
            batcher.shutdown();
        }
        dekg_obs::log_info!("dekg-serve stopped");
    }
}

/// Flags the accept loop to stop and wakes it with a self-connection
/// (the loop blocks in `accept`).
fn request_stop(state: &ServeState, addr: SocketAddr) {
    state.stop.store(true, Ordering::Release);
    let _ = TcpStream::connect(addr);
}

fn accept_loop(state: &Arc<ServeState>, listener: &TcpListener) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if state.stop.load(Ordering::Acquire) {
                return;
            }
            continue;
        };
        if state.stop.load(Ordering::Acquire) {
            // The wake-up connection (or a straggler): close unanswered.
            return;
        }
        let state = Arc::clone(state);
        let spawned = std::thread::Builder::new()
            .name("dekg-serve-conn".to_owned())
            .spawn(move || handle_connection(&state, stream));
        if spawned.is_err() {
            dekg_obs::log_warn!("dropping connection: could not spawn handler thread");
        }
    }
}

fn handle_connection(state: &ServeState, mut stream: TcpStream) {
    let response = match read_request(&mut stream) {
        Ok(request) => route(state, &request),
        Err(message) => Response::error(400, &message),
    };
    let _ = response.write_to(&mut stream);
}

/// Dispatches one parsed request to its endpoint.
fn route(state: &ServeState, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("GET", "/readyz") => {
            if state.ready.load(Ordering::Acquire) {
                Response::text(200, "ready\n")
            } else {
                Response::error(503, "model not loaded yet")
            }
        }
        ("GET", "/metrics") => {
            Response::text(200, &dekg_obs::metrics::global().render_prometheus())
        }
        ("GET", "/debug/profile") => debug_profile(),
        ("POST", "/rank") => rank(state, request),
        ("POST", "/admin/reload") => reload(state, request),
        ("POST", "/admin/shutdown") => {
            request_stop(state, state.addr);
            Response::json(200, "{\"stopping\": true}".to_owned())
        }
        (
            "GET" | "POST",
            "/healthz" | "/readyz" | "/metrics" | "/debug/profile" | "/rank" | "/admin/reload"
            | "/admin/shutdown",
        ) => Response::error(405, "method not allowed for this path"),
        _ => Response::error(404, "no such endpoint"),
    }
}

/// `GET /debug/profile`: a JSON snapshot of the daemon's profiling
/// state — the accumulated span table (per-phase counts and seconds),
/// the per-op kernel table if the tensor profiler has been armed in
/// this process, and the live load gauges.
fn debug_profile() -> Response {
    use serde::{Number, Value};
    let obs = serve_obs();
    let spans = serde::Serialize::to_value(&dekg_obs::span_snapshot());
    let prof = dekg_tensor::prof::snapshot();
    let ops: Vec<Value> = prof
        .ops
        .iter()
        .map(|op| {
            Value::Object(vec![
                ("op".to_owned(), Value::Str(op.op.to_owned())),
                ("forward_calls".to_owned(), Value::Num(Number::U(op.forward_calls))),
                ("forward_seconds".to_owned(), Value::Num(Number::F(op.forward_seconds))),
                ("forward_bytes".to_owned(), Value::Num(Number::U(op.forward_bytes))),
                ("backward_calls".to_owned(), Value::Num(Number::U(op.backward_calls))),
                ("backward_seconds".to_owned(), Value::Num(Number::F(op.backward_seconds))),
                ("backward_bytes".to_owned(), Value::Num(Number::U(op.backward_bytes))),
            ])
        })
        .collect();
    let body = Value::Object(vec![
        ("inflight".to_owned(), Value::Num(Number::F(obs.inflight.get()))),
        ("queue_depth".to_owned(), Value::Num(Number::F(obs.queue_depth.get()))),
        ("requests_total".to_owned(), Value::Num(Number::U(obs.requests.get()))),
        ("spans".to_owned(), spans),
        ("ops".to_owned(), Value::Array(ops)),
    ]);
    Response::json(200, serde_json::to_string(&body).unwrap_or_default())
}

fn rank(state: &ServeState, request: &Request) -> Response {
    let engine = {
        let guard = state.engine.read().unwrap_or_else(PoisonError::into_inner);
        match guard.as_ref() {
            Some(e) => Arc::clone(e),
            None => return Response::error(503, "model not loaded yet"),
        }
    };
    let body = match request.body_utf8() {
        Ok(b) => b,
        Err(message) => return Response::error(400, &message),
    };
    let decoded = match api::RankRequest::parse(body, &engine.dataset().vocab) {
        Ok(d) => d,
        Err(e) => return Response::error(e.status, &e.message),
    };
    let trace_id = dekg_obs::new_trace_id();
    let (reply_tx, reply_rx) = mpsc::channel();
    let accepted = {
        let guard = state.batcher.lock().unwrap_or_else(PoisonError::into_inner);
        match guard.as_ref() {
            Some(b) => b.submit(Job {
                request: decoded,
                reply: reply_tx,
                trace_id,
                admitted: Instant::now(),
            }),
            None => return Response::error(503, "model not loaded yet"),
        }
    };
    if !accepted {
        serve_obs().shed.inc();
        return Response::error(429, "queue full");
    }
    serve_obs().inflight_enter();
    let outcome = reply_rx.recv_timeout(Duration::from_secs(60));
    serve_obs().inflight_exit();
    match outcome {
        Ok(outcome) => match outcome.result {
            Ok(value) => Response::json(200, serde_json::to_string(&value).unwrap_or_default())
                .with_header("X-Dekg-Queue-Us", outcome.queue_us.to_string())
                .with_header("X-Dekg-Score-Us", outcome.score_us.to_string())
                .with_header("X-Dekg-Generation", outcome.generation.to_string())
                .with_header("X-Dekg-Trace-Id", trace_id.to_string()),
            Err(e) => Response::error(e.status, &e.message),
        },
        Err(_) => Response::error(500, "scoring timed out"),
    }
}

fn reload(state: &ServeState, request: &Request) -> Response {
    let engine = {
        let guard = state.engine.read().unwrap_or_else(PoisonError::into_inner);
        match guard.as_ref() {
            Some(e) => Arc::clone(e),
            None => return Response::error(503, "model not loaded yet"),
        }
    };
    // Body is optional: empty reloads the current generation's path;
    // `{"ckpt": "<path>"}` swaps to a different checkpoint pair.
    let ckpt: Option<String> = match request.body_utf8() {
        Ok(b) if b.trim().is_empty() => None,
        Ok(b) => match serde_json::parse_value(b) {
            Ok(value) => match value.as_object().map(|pairs| serde::field(pairs, "ckpt")) {
                Some(Ok(v)) => match v.as_str() {
                    Some(s) => Some(s.to_owned()),
                    None => return Response::error(400, "field \"ckpt\" must be a string"),
                },
                _ => return Response::error(400, "reload body must be {\"ckpt\": \"<path>\"}"),
            },
            Err(e) => return Response::error(400, &format!("invalid JSON: {e}")),
        },
        Err(message) => return Response::error(400, &message),
    };
    match engine.reload(ckpt.as_deref()) {
        Ok(generation) => {
            let body = serde::Value::Object(vec![(
                "generation".to_owned(),
                serde::Value::Num(serde::Number::U(generation)),
            )]);
            Response::json(200, serde_json::to_string(&body).unwrap_or_default())
        }
        Err(message) => Response::error(500, &message),
    }
}
