//! Admission batching: a bounded queue feeding persistent scoring
//! workers.
//!
//! Connection threads never score; they enqueue a [`Job`] and block on
//! its reply channel. A fixed pool of worker threads drains the queue
//! in admission batches: a worker takes whatever is queued (up to
//! `max_batch`), waiting up to `max_wait` after the first job arrives
//! to let a burst coalesce. When the queue is at `queue_depth` the
//! submit is refused and the connection answers `429` — overload sheds
//! at the door instead of growing an unbounded backlog.
//!
//! # Why workers pin ambient parallelism to 1
//!
//! Each worker wraps its loop in a single-thread rayon scope, so the
//! core crate's batched scoring runs *inline on the worker thread*
//! rather than fanning out. That keeps `dekg-core`'s thread-local
//! [`InferenceWorkspace`](dekg_core::model) and extraction cache warm
//! on the same OS thread across requests — the whole point of a
//! long-lived daemon. Cross-request parallelism comes from running
//! several workers, not from intra-request fan-out.
//!
//! # Determinism under batching
//!
//! Batch composition is timing-dependent, but jobs are scored
//! independently — a job's response is a pure function of its request
//! and the model generation, never of its batch neighbours. So any
//! interleaving of concurrent clients yields byte-identical responses
//! (the concurrency integration test pins this).

use crate::api::{self, ApiError, RankRequest};
use crate::engine::RankEngine;
use serde::Value;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// One queued request plus the channel its connection thread waits on.
pub(crate) struct Job {
    /// The decoded request.
    pub request: RankRequest,
    /// Reply channel back to the connection thread.
    pub reply: mpsc::Sender<JobOutcome>,
    /// The request's trace id — allocated at admission, re-installed on
    /// the worker thread so the scoring spans nest under the request's
    /// trace across the queue boundary.
    pub trace_id: u64,
    /// When the connection thread enqueued the job (queue-wait phase
    /// starts here).
    pub admitted: Instant,
}

/// What a worker sends back: the API result plus the per-phase timing
/// the connection thread surfaces as `X-Dekg-*` headers (wall-clock —
/// outside the determinism contract).
pub(crate) struct JobOutcome {
    /// The scored response (or API error).
    pub result: Result<Value, ApiError>,
    /// Microseconds spent queued before a worker picked the job up.
    pub queue_us: u64,
    /// Microseconds spent scoring.
    pub score_us: u64,
    /// Model generation the job was scored against.
    pub generation: u64,
}

/// State shared between submitters and workers.
struct Shared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    stop: AtomicBool,
    max_batch: usize,
    max_wait: Duration,
    queue_depth: usize,
    /// Requests slower than this end-to-end (queue + scoring) get a
    /// warn-level log with the per-phase breakdown and trace id.
    slow_ms: u64,
    engine: Arc<RankEngine>,
}

/// The running worker pool. Dropping without [`Batcher::shutdown`]
/// leaks the workers; the server always shuts down explicitly.
pub(crate) struct Batcher {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Batcher {
    /// Spawns `workers` scoring threads over `engine`.
    pub fn start(
        engine: Arc<RankEngine>,
        workers: usize,
        max_batch: usize,
        max_wait: Duration,
        queue_depth: usize,
        slow_ms: u64,
    ) -> Batcher {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            stop: AtomicBool::new(false),
            max_batch: max_batch.max(1),
            max_wait,
            queue_depth,
            slow_ms,
            engine,
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dekg-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .filter_map(Result::ok)
            .collect();
        Batcher { shared, workers }
    }

    /// Enqueues a job. Returns `false` — shed, answer `429` — when the
    /// queue is full or the batcher is stopping.
    pub fn submit(&self, job: Job) -> bool {
        if self.shared.stop.load(Ordering::Acquire) {
            return false;
        }
        let mut queue = self.shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
        if queue.len() >= self.shared.queue_depth {
            return false;
        }
        queue.push_back(job);
        crate::serve_obs().queue_depth.set(queue.len() as f64);
        drop(queue);
        self.shared.available.notify_one();
        true
    }

    /// Stops the pool: refuses new jobs, lets workers drain what is
    /// already queued, then joins them.
    pub fn shutdown(self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.available.notify_all();
        for handle in self.workers {
            let _ = handle.join();
        }
    }
}

/// Blocks for the next admission batch. Empty result = stopped and
/// fully drained.
fn next_batch(shared: &Shared) -> Vec<Job> {
    let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
    while queue.is_empty() {
        if shared.stop.load(Ordering::Acquire) {
            return Vec::new();
        }
        queue = shared.available.wait(queue).unwrap_or_else(PoisonError::into_inner);
    }
    // First job in hand: linger up to max_wait for a burst to coalesce,
    // but never once the batch is full or shutdown has begun.
    if shared.max_wait > Duration::ZERO {
        let deadline = Instant::now() + shared.max_wait;
        while queue.len() < shared.max_batch && !shared.stop.load(Ordering::Acquire) {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (q, _) = shared
                .available
                .wait_timeout(queue, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            queue = q;
        }
    }
    let take = queue.len().min(shared.max_batch);
    let batch: Vec<Job> = queue.drain(..take).collect();
    crate::serve_obs().queue_depth.set(queue.len() as f64);
    batch
}

/// One worker: pin ambient rayon parallelism to 1 (see module docs),
/// then score admission batches until stopped and drained.
fn worker_loop(shared: &Shared) {
    let Ok(pool) = rayon::ThreadPoolBuilder::new().num_threads(1).build() else {
        return;
    };
    pool.install(|| loop {
        let batch = next_batch(shared);
        if batch.is_empty() {
            return;
        }
        let obs = crate::serve_obs();
        obs.batch_size.observe(batch.len() as u64);
        for job in batch {
            // Re-install the request's trace id so the scoring spans on
            // this worker thread nest under the request's trace.
            dekg_obs::set_current_trace(job.trace_id);
            let queue_us = u64::try_from(job.admitted.elapsed().as_micros()).unwrap_or(u64::MAX);
            let generation = shared.engine.model().generation;
            let started = Instant::now();
            let result = {
                let _span = dekg_obs::span!("serve_score_request");
                api::execute(&shared.engine, &job.request)
            };
            obs.requests.inc();
            let score_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
            obs.latency_us.observe(score_us);
            let total_us = queue_us.saturating_add(score_us);
            if shared.slow_ms > 0 && total_us >= shared.slow_ms.saturating_mul(1_000) {
                dekg_obs::log_warn!(
                    "slow request (trace {}): {total_us} us total = {queue_us} us queued + {score_us} us scoring (generation {generation})",
                    job.trace_id,
                );
            }
            // A dead receiver just means the client gave up; scoring
            // already happened, nothing to unwind.
            let _ = job.reply.send(JobOutcome { result, queue_us, score_us, generation });
        }
        dekg_obs::set_current_trace(0);
    });
}
