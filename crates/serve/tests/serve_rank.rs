//! End-to-end daemon tests: endpoint semantics, the evaluate-fidelity
//! pin (a served rank is bitwise-identical to the library protocol's),
//! overload shedding, and zero-downtime checkpoint hot-swap.

mod common;

use common::{fixture, rank_call, serve, stop, write_checkpoint, Fixture};
use dekg_core::{DekgIlp, InferenceGraph, LinkPredictor};
use dekg_eval::{filtered_rank, RankQuery};
use dekg_kg::TripleStore;
use dekg_serve::{http_call, RankEngine, ServeConfig, Server};

/// The evaluation protocol's filter set for a fixture, built exactly
/// as `dekg evaluate` builds it.
fn protocol_filter(fx: &Fixture) -> TripleStore {
    let graph = InferenceGraph::from_dataset(&fx.dataset);
    let mut filter = graph.store.clone();
    for t in
        fx.dataset.valid.iter().chain(&fx.dataset.test_enclosing).chain(&fx.dataset.test_bridging)
    {
        filter.insert(*t);
    }
    filter
}

/// The `{"rank": ...}` request body for a tail query over a held-out
/// enclosing link.
fn tail_rank_body(fx: &Fixture, link: usize, candidates: usize, seed: u64, index: u64) -> String {
    let t = fx.dataset.test_enclosing[link];
    format!(
        "{{\"rank\": {{\"task\": \"tail\", \"head\": \"{}\", \"rel\": \"{}\", \"tail\": \"{}\", \
         \"candidates\": {candidates}, \"seed\": {seed}, \"index\": {index}}}}}",
        fx.dataset.vocab.entity_name(t.head),
        fx.dataset.vocab.relation_name(t.rel),
        fx.dataset.vocab.entity_name(t.tail),
    )
}

/// The rank the evaluation protocol computes for the same query, via
/// the same library entry points `dekg evaluate --scoring batched`
/// uses (restore → batched scoring → `filtered_rank`).
fn library_rank(
    fx: &Fixture,
    ckpt: &str,
    link: usize,
    candidates: usize,
    seed: u64,
    index: u64,
) -> f64 {
    let model = DekgIlp::restore(ckpt, &fx.dataset).unwrap();
    let graph = InferenceGraph::from_dataset(&fx.dataset);
    let filter = protocol_filter(fx);
    let query = RankQuery::Tail(fx.dataset.test_enclosing[link]);
    let mut rng = dekg_datasets::item_rng(seed, index);
    filtered_rank(&model, &graph, &query, &filter, Some(candidates), &mut rng)
}

#[test]
fn health_and_readiness_split() {
    let fx = fixture("health", 1);
    // Phase 1: socket up, model not loaded.
    let server = Server::bind(ServeConfig::default()).unwrap();
    let addr = server.addr().to_string();
    assert_eq!(http_call(&addr, "GET", "/healthz", None).unwrap().0, 200);
    assert_eq!(http_call(&addr, "GET", "/readyz", None).unwrap().0, 503);
    assert_eq!(rank_call(&addr, "{}").0, 503);
    // Phase 2: engine installed.
    server.install_engine(RankEngine::load(&fx.data, &fx.ckpt).unwrap());
    let (status, body) = http_call(&addr, "GET", "/readyz", None).unwrap();
    assert_eq!((status, body.as_str()), (200, "ready\n"));
    stop(server);
}

#[test]
fn unknown_paths_and_methods_are_rejected() {
    let fx = fixture("routes", 1);
    let (server, addr) = serve(&fx, ServeConfig::default());
    assert_eq!(http_call(&addr, "GET", "/nope", None).unwrap().0, 404);
    assert_eq!(http_call(&addr, "GET", "/rank", None).unwrap().0, 405);
    assert_eq!(http_call(&addr, "POST", "/metrics", Some("{}")).unwrap().0, 405);
    let (status, body) = rank_call(&addr, "not json");
    assert_eq!(status, 400);
    assert!(body.starts_with("{\"error\":"), "{body}");
    stop(server);
}

#[test]
fn served_rank_is_bitwise_identical_to_evaluate_protocol() {
    let fx = fixture("fidelity", 7);
    let (server, addr) = serve(&fx, ServeConfig::default());
    for (link, seed, index) in [(0, 5, 7), (1, 0, 0), (2, 11, 3)] {
        let body = tail_rank_body(&fx, link, 20, seed, index);
        let (status, first) = rank_call(&addr, &body);
        assert_eq!(status, 200, "{first}");
        // Byte-identical to the library-side protocol computation…
        let expected = library_rank(&fx, &fx.ckpt, link, 20, seed, index);
        let expected_body = serde_json::to_string(&serde::Value::Object(vec![
            ("task".to_owned(), serde::Value::Str("tail".to_owned())),
            ("rank".to_owned(), serde::Value::Num(serde::Number::F(expected))),
        ]))
        .unwrap();
        assert_eq!(first, expected_body, "link {link}");
        // …and across repeated requests.
        assert_eq!(rank_call(&addr, &body).1, first);
    }
    stop(server);
}

#[test]
fn score_and_rank_tails_forms() {
    let fx = fixture("forms", 3);
    let (server, addr) = serve(&fx, ServeConfig::default());
    let t = fx.dataset.test_bridging[0];
    let (h, r, tl) = (
        fx.dataset.vocab.entity_name(t.head),
        fx.dataset.vocab.relation_name(t.rel),
        fx.dataset.vocab.entity_name(t.tail),
    );

    let (status, body) = rank_call(
        &addr,
        &format!("{{\"score\": {{\"triples\": [[\"{h}\", \"{r}\", \"{tl}\"]]}}}}"),
    );
    assert_eq!(status, 200, "{body}");
    let model = DekgIlp::restore(&fx.ckpt, &fx.dataset).unwrap();
    let graph = InferenceGraph::from_dataset(&fx.dataset);
    let expected = f64::from(model.score_batch(&graph, &[t])[0]);
    let parsed = serde_json::parse_value(&body).unwrap();
    let scores = serde::field(parsed.as_object().unwrap(), "scores").unwrap();
    match scores.as_array().unwrap() {
        [serde::Value::Num(n)] => assert_eq!(n.as_f64().to_bits(), expected.to_bits()),
        other => panic!("unexpected scores array: {other:?}"),
    }

    let (status, body) = rank_call(
        &addr,
        &format!("{{\"rank_tails\": {{\"head\": \"{h}\", \"rel\": \"{r}\", \"k\": 5}}}}"),
    );
    assert_eq!(status, 200, "{body}");
    let parsed = serde_json::parse_value(&body).unwrap();
    let tails = serde::field(parsed.as_object().unwrap(), "tails").unwrap();
    let tails = tails.as_array().unwrap();
    assert_eq!(tails.len(), 5);
    // Scores come back in non-increasing order.
    let scores: Vec<f64> = tails
        .iter()
        .map(|e| match serde::field(e.as_object().unwrap(), "score").unwrap() {
            serde::Value::Num(n) => n.as_f64(),
            other => panic!("non-numeric score: {other:?}"),
        })
        .collect();
    assert!(scores.windows(2).all(|w| w[0] >= w[1]), "{scores:?}");
    stop(server);
}

#[test]
fn full_queue_sheds_with_429() {
    let fx = fixture("shed", 1);
    let cfg = ServeConfig { queue_depth: 0, ..ServeConfig::default() };
    let (server, addr) = serve(&fx, cfg);
    let (status, body) = rank_call(&addr, &tail_rank_body(&fx, 0, 5, 0, 0));
    assert_eq!(status, 429);
    assert_eq!(body, "{\"error\":\"queue full\"}");
    let (_, metrics) = http_call(&addr, "GET", "/metrics", None).unwrap();
    assert!(metrics.contains("dekg_serve_shed_total"), "{metrics}");
    stop(server);
}

#[test]
fn metrics_endpoint_exposes_serve_series() {
    let fx = fixture("metrics", 1);
    let (server, addr) = serve(&fx, ServeConfig::default());
    assert_eq!(rank_call(&addr, &tail_rank_body(&fx, 0, 10, 0, 0)).0, 200);
    let (status, metrics) = http_call(&addr, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    for series in
        ["dekg_serve_requests_total", "dekg_serve_request_latency_us", "dekg_serve_batch_size"]
    {
        assert!(metrics.contains(series), "missing {series} in:\n{metrics}");
    }
    stop(server);
}

#[test]
fn hot_swap_changes_generation_and_model() {
    let fx = fixture("reload", 1);
    let ckpt2 = fx.dir.join("model2.dekg").to_string_lossy().into_owned();
    write_checkpoint(&fx.dataset, &ckpt2, 99);
    let (server, addr) = serve(&fx, ServeConfig::default());

    let body = tail_rank_body(&fx, 0, 20, 5, 7);
    let before = rank_call(&addr, &body);
    assert_eq!(before.0, 200);

    // Swap to a differently initialized checkpoint.
    let (status, reply) =
        http_call(&addr, "POST", "/admin/reload", Some(&format!("{{\"ckpt\": \"{ckpt2}\"}}")))
            .unwrap();
    assert_eq!((status, reply.as_str()), (200, "{\"generation\":2}"));

    let after = rank_call(&addr, &body);
    assert_eq!(after.0, 200);
    let expected2 = library_rank(&fx, &ckpt2, 0, 20, 5, 7);
    let expected1 = library_rank(&fx, &fx.ckpt, 0, 20, 5, 7);
    assert_ne!(
        expected1.to_bits(),
        expected2.to_bits(),
        "fixture too degenerate: both checkpoints rank identically"
    );
    let want = serde_json::to_string(&serde::Value::Object(vec![
        ("task".to_owned(), serde::Value::Str("tail".to_owned())),
        ("rank".to_owned(), serde::Value::Num(serde::Number::F(expected2))),
    ]))
    .unwrap();
    assert_eq!(after.1, want);

    // Empty body re-reads the current generation's path.
    let (status, reply) = http_call(&addr, "POST", "/admin/reload", None).unwrap();
    assert_eq!((status, reply.as_str()), (200, "{\"generation\":3}"));
    // Re-reading the same checkpoint changes no response byte.
    assert_eq!(rank_call(&addr, &body).1, after.1);
    stop(server);
}

#[test]
fn reload_failure_keeps_serving_current_generation() {
    let fx = fixture("reload-fail", 1);
    let (server, addr) = serve(&fx, ServeConfig::default());
    let body = tail_rank_body(&fx, 0, 10, 0, 0);
    let before = rank_call(&addr, &body);
    let (status, _) =
        http_call(&addr, "POST", "/admin/reload", Some("{\"ckpt\": \"/nonexistent/ckpt.dekg\"}"))
            .unwrap();
    assert_eq!(status, 500);
    // Old generation still answers, byte-identically.
    assert_eq!(rank_call(&addr, &body), before);
    stop(server);
}

#[test]
fn in_flight_requests_survive_hot_swap() {
    let fx = fixture("swap-inflight", 1);
    let ckpt2 = fx.dir.join("model2.dekg").to_string_lossy().into_owned();
    write_checkpoint(&fx.dataset, &ckpt2, 42);
    let (server, addr) = serve(&fx, ServeConfig::default());

    let body = tail_rank_body(&fx, 1, 15, 2, 4);
    let make = |ckpt: &str| {
        let rank = library_rank(&fx, ckpt, 1, 15, 2, 4);
        serde_json::to_string(&serde::Value::Object(vec![
            ("task".to_owned(), serde::Value::Str("tail".to_owned())),
            ("rank".to_owned(), serde::Value::Num(serde::Number::F(rank))),
        ]))
        .unwrap()
    };
    let allowed = [make(&fx.ckpt), make(&ckpt2)];

    std::thread::scope(|scope| {
        let clients: Vec<_> = (0..4)
            .map(|_| {
                let addr = addr.clone();
                let body = body.clone();
                scope.spawn(move || (0..8).map(|_| rank_call(&addr, &body)).collect::<Vec<_>>())
            })
            .collect();
        // Swap mid-flight, twice, while clients hammer /rank.
        for ckpt in [&ckpt2, &fx.ckpt] {
            let (status, _) = http_call(
                &addr,
                "POST",
                "/admin/reload",
                Some(&format!("{{\"ckpt\": \"{ckpt}\"}}")),
            )
            .unwrap();
            assert_eq!(status, 200);
        }
        for client in clients {
            for (status, reply) in client.join().unwrap() {
                // No request is dropped or torn: every response is a
                // complete answer from exactly one generation.
                assert_eq!(status, 200, "{reply}");
                assert!(allowed.contains(&reply), "torn response: {reply}");
            }
        }
    });
    stop(server);
}

#[test]
fn shutdown_endpoint_stops_the_daemon() {
    let fx = fixture("shutdown", 1);
    let (server, addr) = serve(&fx, ServeConfig::default());
    let (status, body) = http_call(&addr, "POST", "/admin/shutdown", None).unwrap();
    assert_eq!((status, body.as_str()), (200, "{\"stopping\": true}"));
    // join() returns promptly because the accept loop observed stop.
    server.join();
    // The socket no longer answers.
    assert!(http_call(&addr, "GET", "/healthz", None).is_err());
}
