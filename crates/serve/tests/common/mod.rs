//! Shared fixture for the serve integration tests: a tiny synthetic
//! dataset plus an (untrained) checkpoint pair on disk, and helpers to
//! boot a daemon over them. Untrained weights are fine — every test
//! here is about *fidelity* (serve output ≡ library output), which is
//! independent of model quality.

use dekg_core::{DekgIlp, DekgIlpConfig};
use dekg_datasets::{generate, loader, DatasetProfile, DekgDataset, RawKg, SplitKind, SynthConfig};
use dekg_serve::{RankEngine, ServeConfig, Server};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::path::PathBuf;

/// On-disk dataset + checkpoint, cleaned up on drop.
pub struct Fixture {
    /// Root temp directory (removed on drop).
    pub dir: PathBuf,
    /// Dataset directory path.
    pub data: String,
    /// Checkpoint path (`<ckpt>.json` sits next to it).
    pub ckpt: String,
    /// The dataset as the daemon will load it (from disk, so vocab
    /// interning order matches exactly).
    pub dataset: DekgDataset,
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Builds the fixture under a `tag`-unique temp dir. `model_seed`
/// seeds the checkpoint's parameter initialization.
pub fn fixture(tag: &str, model_seed: u64) -> Fixture {
    let dir = std::env::temp_dir().join(format!("dekg-serve-test-{}-{tag}", std::process::id()));
    let data_dir = dir.join("data");
    std::fs::create_dir_all(&data_dir).unwrap();
    let profile = DatasetProfile::table2(RawKg::Wn18rr, SplitKind::Eq).scaled(0.02);
    let mut synth = SynthConfig::for_profile(profile, 21);
    synth.num_test_enclosing = 12;
    synth.num_test_bridging = 12;
    loader::save_dir(&generate(&synth), &data_dir).unwrap();
    let data = data_dir.to_string_lossy().into_owned();
    let dataset = loader::load_dir(&data, &data).unwrap();
    let ckpt = dir.join("model.dekg").to_string_lossy().into_owned();
    write_checkpoint(&dataset, &ckpt, model_seed);
    Fixture { dir, data, ckpt, dataset }
}

/// Writes a checkpoint pair (`path` + `path.json`) for a freshly
/// initialized small model.
pub fn write_checkpoint(dataset: &DekgDataset, path: &str, seed: u64) {
    let cfg = DekgIlpConfig { dim: 8, ..DekgIlpConfig::paper() };
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let model = DekgIlp::new(cfg.clone(), dataset, &mut rng);
    model.save_checkpoint(path).unwrap();
    std::fs::write(format!("{path}.json"), serde_json::to_string_pretty(&cfg).unwrap()).unwrap();
}

/// Boots a ready daemon over the fixture. Returns the server handle
/// and its dial address.
pub fn serve(fx: &Fixture, cfg: ServeConfig) -> (Server, String) {
    let server = Server::bind(cfg).unwrap();
    let addr = server.addr().to_string();
    server.install_engine(RankEngine::load(&fx.data, &fx.ckpt).unwrap());
    (server, addr)
}

/// `POST /rank` with a JSON body; returns `(status, body)`.
pub fn rank_call(addr: &str, body: &str) -> (u16, String) {
    dekg_serve::http_call(addr, "POST", "/rank", Some(body)).unwrap()
}

/// Stops a daemon and waits for it to drain.
pub fn stop(server: Server) {
    server.shutdown();
    server.join();
}
