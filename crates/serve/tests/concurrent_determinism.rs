//! Concurrent-request determinism: N parallel clients issuing the
//! evaluation protocol's queries in interleaved, per-client-shuffled
//! orders must receive responses byte-identical to a serial pass.
//!
//! This is the serving face of the workspace's bitwise-determinism
//! contract: admission batches form timing-dependently and several
//! warm workers score concurrently, yet a response is a pure function
//! of its request and the model generation. `scripts/check.sh` runs
//! this suite under `DEKG_SHUFFLE_SCHEDULE=1`, so the rayon shim's
//! schedule perturbation is active on top of real client concurrency.

mod common;

use common::{fixture, rank_call, serve, stop};
use dekg_serve::ServeConfig;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The CLI protocol's query grid over the first `links` held-out
/// enclosing links: tasks ordered [head, relation, tail], flattened
/// index `qi = li * 3 + ti` — the same `(seed, index)` pairs
/// `dekg evaluate` derives.
fn query_bodies(fx: &common::Fixture, links: usize, candidates: usize, seed: u64) -> Vec<String> {
    let mut bodies = Vec::new();
    for li in 0..links {
        let t = fx.dataset.test_enclosing[li];
        for (ti, task) in ["head", "relation", "tail"].iter().enumerate() {
            let index = (li * 3 + ti) as u64;
            bodies.push(format!(
                "{{\"rank\": {{\"task\": \"{task}\", \"head\": \"{}\", \"rel\": \"{}\", \
                 \"tail\": \"{}\", \"candidates\": {candidates}, \"seed\": {seed}, \
                 \"index\": {index}}}}}",
                fx.dataset.vocab.entity_name(t.head),
                fx.dataset.vocab.relation_name(t.rel),
                fx.dataset.vocab.entity_name(t.tail),
            ));
        }
    }
    bodies
}

#[test]
fn interleaved_clients_match_the_serial_pass_byte_for_byte() {
    let fx = fixture("concurrent", 5);
    let cfg = ServeConfig { workers: 4, max_batch: 4, max_wait_ms: 1, ..ServeConfig::default() };
    let (server, addr) = serve(&fx, cfg);
    let bodies = query_bodies(&fx, 6, 15, 3);

    // Serial reference pass: one client, query order.
    let reference: Vec<String> = bodies
        .iter()
        .map(|b| {
            let (status, reply) = rank_call(&addr, b);
            assert_eq!(status, 200, "{reply}");
            reply
        })
        .collect();

    // Parallel pass: each client walks its own shuffled permutation,
    // so queries interleave arbitrarily across admission batches.
    std::thread::scope(|scope| {
        let clients: Vec<_> = (0..6u64)
            .map(|client| {
                let addr = &addr;
                let bodies = &bodies;
                scope.spawn(move || {
                    let mut order: Vec<usize> = (0..bodies.len()).collect();
                    order.shuffle(&mut ChaCha8Rng::seed_from_u64(client));
                    order
                        .into_iter()
                        .map(|qi| {
                            let (status, reply) = rank_call(addr, &bodies[qi]);
                            assert_eq!(status, 200, "{reply}");
                            (qi, reply)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for client in clients {
            for (qi, reply) in client.join().unwrap() {
                assert_eq!(reply, reference[qi], "query {qi} diverged under concurrency");
            }
        }
    });
    stop(server);
}
