//! Filtered candidate construction and rank computation.

use dekg_core::{InferenceGraph, LinkPredictor};
use dekg_kg::{EntityId, RelationId, Triple, TripleStore};
use rand::seq::SliceRandom;
use rand::Rng;
use std::sync::OnceLock;

/// Per-query metrics, registered once. Both are additive and
/// per-query-seeded, so totals stay thread-count-invariant under the
/// protocol's parallel fan-out.
struct RankingObs {
    queries: dekg_obs::metrics::Counter,
    candidates: dekg_obs::metrics::Histogram,
}

fn ranking_obs() -> &'static RankingObs {
    static OBS: OnceLock<RankingObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let reg = dekg_obs::metrics::global();
        RankingObs {
            queries: reg.counter("dekg_eval_queries_total"),
            candidates: reg
                .histogram("dekg_eval_candidates", &[8, 16, 32, 64, 128, 256, 512, 1024, 4096]),
        }
    })
}

/// One ranking query: a true triple and the position being predicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankQuery {
    /// `(?, r, t)` — rank the true head against candidate heads.
    Head(Triple),
    /// `(h, ?, t)` — rank the true relation against candidate relations.
    Relation(Triple),
    /// `(h, r, ?)` — rank the true tail against candidate tails.
    Tail(Triple),
}

impl RankQuery {
    /// The underlying true triple.
    pub fn truth(&self) -> Triple {
        match *self {
            RankQuery::Head(t) | RankQuery::Relation(t) | RankQuery::Tail(t) => t,
        }
    }

    /// Materializes a candidate triple for this query.
    fn candidate_entity(&self, e: EntityId) -> Triple {
        let t = self.truth();
        match self {
            RankQuery::Head(_) => Triple::new(e, t.rel, t.tail),
            RankQuery::Tail(_) => Triple::new(t.head, t.rel, e),
            RankQuery::Relation(_) => unreachable!("entity candidate on relation query"),
        }
    }
}

/// Builds the filtered candidate triples for `query`.
///
/// Filtering (Section V-C): any candidate that is itself a known true
/// triple in `filter` is removed — except the query's own truth, which
/// is *not* included here (the caller scores it separately).
///
/// `sample` optionally caps the candidate count by uniform sampling
/// with `rng`; `None` keeps every candidate (the paper's protocol).
pub fn filtered_candidates(
    query: &RankQuery,
    num_entities: usize,
    num_relations: usize,
    filter: &TripleStore,
    sample: Option<usize>,
    rng: &mut impl Rng,
) -> Vec<Triple> {
    let truth = query.truth();
    let mut candidates: Vec<Triple> = match query {
        RankQuery::Head(_) | RankQuery::Tail(_) => (0..num_entities as u32)
            .map(|e| query.candidate_entity(EntityId(e)))
            .filter(|c| *c != truth && !filter.contains(c))
            .collect(),
        RankQuery::Relation(_) => (0..num_relations as u32)
            .map(|r| Triple::new(truth.head, RelationId(r), truth.tail))
            .filter(|c| *c != truth && !filter.contains(c))
            .collect(),
    };
    if let Some(k) = sample {
        if candidates.len() > k {
            candidates.shuffle(rng);
            candidates.truncate(k);
        }
    }
    candidates
}

/// The tie-averaged, 1-based rank of `true_score` among
/// `candidate_scores`.
///
/// `rank = 1 + |{s > s*}| + |{s = s*}| / 2` — candidates scoring
/// strictly higher push the truth down; exact ties split the
/// difference, so a constant scorer lands mid-field rather than first.
pub fn rank_of(true_score: f32, candidate_scores: &[f32]) -> f64 {
    let mut higher = 0usize;
    let mut equal = 0usize;
    for &s in candidate_scores {
        if s > true_score {
            higher += 1;
        } else if s == true_score {
            equal += 1;
        }
    }
    1.0 + higher as f64 + equal as f64 / 2.0
}

/// Scores and ranks one query end-to-end.
pub fn filtered_rank(
    model: &dyn LinkPredictor,
    graph: &InferenceGraph,
    query: &RankQuery,
    filter: &TripleStore,
    sample: Option<usize>,
    rng: &mut impl Rng,
) -> f64 {
    let _span = dekg_obs::span!("rank_query");
    let candidates =
        filtered_candidates(query, graph.num_entities, graph.num_relations, filter, sample, rng);
    let obs = ranking_obs();
    obs.queries.inc();
    // The histogram records the *scored* batch size — candidates plus
    // the truth — matching what score_batch actually sees. Full-entity
    // queries land in the histogram's implicit overflow bucket (bounds
    // cap at 4096).
    obs.candidates.observe(candidates.len() as u64 + 1);
    let truth = query.truth();
    // One batch: the truth first, then all candidates.
    let mut batch = Vec::with_capacity(candidates.len() + 1);
    batch.push(truth);
    batch.extend_from_slice(&candidates);
    let scores = model.score_batch(graph, &batch);
    rank_of(scores[0], &scores[1..])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn rank_basic() {
        assert_eq!(rank_of(5.0, &[1.0, 2.0, 3.0]), 1.0);
        assert_eq!(rank_of(2.5, &[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(rank_of(0.0, &[1.0, 2.0, 3.0]), 4.0);
    }

    #[test]
    fn rank_ties_averaged() {
        // Truth ties with 2 candidates: ranks {1,2,3} averaged → 2.
        assert_eq!(rank_of(1.0, &[1.0, 1.0]), 2.0);
        // Constant scorer over 100 candidates → rank 51 (mid-field).
        let scores = vec![0.0; 100];
        assert_eq!(rank_of(0.0, &scores), 51.0);
    }

    #[test]
    fn candidates_exclude_truth_and_filter() {
        let truth = Triple::from_raw(0, 0, 1);
        let filter = TripleStore::from_triples([Triple::from_raw(2, 0, 1)]);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let cands = filtered_candidates(&RankQuery::Head(truth), 5, 1, &filter, None, &mut rng);
        // Heads 0 (truth) and 2 (filtered) removed → 1, 3, 4 remain.
        assert_eq!(cands.len(), 3);
        assert!(!cands.contains(&truth));
        assert!(!cands.contains(&Triple::from_raw(2, 0, 1)));
    }

    #[test]
    fn relation_candidates() {
        let truth = Triple::from_raw(0, 2, 1);
        let filter = TripleStore::new();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let cands =
            filtered_candidates(&RankQuery::Relation(truth), 10, 4, &filter, None, &mut rng);
        assert_eq!(cands.len(), 3); // relations 0,1,3
        assert!(cands.iter().all(|c| c.head == truth.head && c.tail == truth.tail));
    }

    #[test]
    fn sampling_caps_candidates() {
        let truth = Triple::from_raw(0, 0, 1);
        let filter = TripleStore::new();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let cands =
            filtered_candidates(&RankQuery::Tail(truth), 1000, 1, &filter, Some(20), &mut rng);
        assert_eq!(cands.len(), 20);
    }

    #[test]
    fn sampling_is_deterministic() {
        let truth = Triple::from_raw(0, 0, 1);
        let filter = TripleStore::new();
        let run = |seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            filtered_candidates(&RankQuery::Head(truth), 100, 1, &filter, Some(10), &mut rng)
        };
        assert_eq!(run(5), run(5));
    }
}
