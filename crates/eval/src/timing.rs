//! Timing harness for Table IV and Fig. 7.
//!
//! The paper reports training time per epoch (minutes) and average
//! inference time for 50 links (seconds). Absolute numbers are
//! hardware-bound; the reproduction cares about the *relative* ordering
//! (subgraph methods ≫ embedding methods).

use dekg_core::{InferenceGraph, LinkPredictor};
use dekg_kg::Triple;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One model's timing row.
///
/// `model` is an owned `String` so rows can be built for
/// dynamically-named configurations (ablations, thread-count sweeps),
/// not just compile-time model names.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimingResult {
    /// Model name.
    pub model: String,
    /// Training seconds per epoch.
    pub train_seconds_per_epoch: f64,
    /// Seconds to score 50 links.
    pub inference_seconds_per_50: f64,
    /// Parameter count.
    pub parameters: usize,
}

/// Per-phase breakdown of one evaluation run, derived from the
/// `rank_query` / `score_batch` / `extract_subgraph` span totals that
/// accumulated during the run (see `dekg_obs::span`).
///
/// The spans nest — extraction happens inside scoring, scoring inside
/// ranking — so each phase's seconds are the *exclusive* share:
/// `extraction + scoring + ranking` ≈ the total CPU-seconds spent in
/// `rank_query` scopes. Seconds are CPU-time summed across workers
/// (they exceed the wall clock on multi-threaded runs) and sit outside
/// the determinism contract; counts are inside it. All zero when spans
/// are disabled.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EvalPhases {
    /// CPU-seconds inside subgraph extraction.
    pub extraction_seconds: f64,
    /// Subgraph extractions performed.
    pub extraction_count: u64,
    /// CPU-seconds scoring batches, net of nested extraction.
    pub scoring_seconds: f64,
    /// Scoring batches run.
    pub scoring_count: u64,
    /// CPU-seconds in candidate construction and rank aggregation, net
    /// of nested scoring.
    pub ranking_seconds: f64,
    /// Ranking queries completed.
    pub ranking_count: u64,
}

impl EvalPhases {
    /// Derives the breakdown from the span deltas accumulated over the
    /// run (`delta = after.diff(&before)` around the query fan-out),
    /// peeling each nested span's total out of its parent's.
    pub fn from_span_delta(delta: &dekg_obs::SpanSnapshot) -> Self {
        let get = |name: &str| delta.get(name).copied().unwrap_or_default();
        let extract = get("extract_subgraph");
        let score = get("score_batch");
        let rank = get("rank_query");
        EvalPhases {
            extraction_seconds: extract.seconds,
            extraction_count: extract.count,
            scoring_seconds: (score.seconds - extract.seconds).max(0.0),
            scoring_count: score.count,
            ranking_seconds: (rank.seconds - score.seconds).max(0.0),
            ranking_count: rank.count,
        }
    }
}

/// Wall-clock and throughput counters for one evaluation run, recorded
/// by `evaluate_with_filter` and carried on `EvalResult`.
///
/// `PartialEq` deliberately ignores nothing — compare `Metrics` fields
/// when asserting determinism; timing is measurement, not output.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EvalTiming {
    /// End-to-end wall-clock seconds for the protocol run.
    pub wall_seconds: f64,
    /// Ranking queries executed (links × prediction forms).
    pub queries: usize,
    /// Test links evaluated.
    pub links: usize,
    /// Worker threads the run was configured with.
    pub threads: usize,
    /// Queries per wall-clock second.
    pub queries_per_second: f64,
    /// Span-derived per-phase breakdown (extraction / scoring / rank
    /// aggregation).
    pub phases: EvalPhases,
}

impl EvalTiming {
    /// Builds the counters, deriving throughput from the wall clock.
    pub fn new(wall_seconds: f64, queries: usize, links: usize, threads: usize) -> Self {
        let queries_per_second =
            if wall_seconds > 0.0 { queries as f64 / wall_seconds } else { 0.0 };
        EvalTiming {
            wall_seconds,
            queries,
            links,
            threads,
            queries_per_second,
            phases: EvalPhases::default(),
        }
    }

    /// Attaches a span-derived phase breakdown (builder-style).
    #[must_use]
    pub fn with_phases(mut self, phases: EvalPhases) -> Self {
        self.phases = phases;
        self
    }
}

/// Measures the average wall-clock time to score 50 links, cycling
/// through `links` as needed.
///
/// # Panics
/// If `links` is empty.
pub fn time_inference_per_50(
    model: &dyn LinkPredictor,
    graph: &InferenceGraph,
    links: &[Triple],
    repeats: usize,
) -> f64 {
    assert!(!links.is_empty(), "need links to time");
    let batch: Vec<Triple> = links.iter().copied().cycle().take(50).collect();
    // Warm-up pass (first-touch allocation noise).
    let _ = model.score_batch(graph, &batch[..batch.len().min(5)]);
    let repeats = repeats.max(1);
    let start = Instant::now();
    for _ in 0..repeats {
        let scores = model.score_batch(graph, &batch);
        std::hint::black_box(scores);
    }
    start.elapsed().as_secs_f64() / repeats as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dekg_datasets::{generate, DatasetProfile, RawKg, SplitKind, SynthConfig};

    struct Sleepy;

    impl LinkPredictor for Sleepy {
        fn name(&self) -> &'static str {
            "sleepy"
        }
        fn score_batch(&self, _g: &InferenceGraph, triples: &[Triple]) -> Vec<f32> {
            std::thread::sleep(std::time::Duration::from_millis(2));
            vec![0.0; triples.len()]
        }
        fn num_parameters(&self) -> usize {
            0
        }
    }

    struct Instant0;

    impl LinkPredictor for Instant0 {
        fn name(&self) -> &'static str {
            "instant"
        }
        fn score_batch(&self, _g: &InferenceGraph, triples: &[Triple]) -> Vec<f32> {
            vec![0.0; triples.len()]
        }
        fn num_parameters(&self) -> usize {
            0
        }
    }

    #[test]
    fn slower_model_times_higher() {
        let profile = DatasetProfile::table2(RawKg::Wn18rr, SplitKind::Eq).scaled(0.02);
        let d = generate(&SynthConfig::for_profile(profile, 1));
        let graph = InferenceGraph::from_dataset(&d);
        let links: Vec<Triple> = d.test_enclosing.clone();
        let slow = time_inference_per_50(&Sleepy, &graph, &links, 1);
        let fast = time_inference_per_50(&Instant0, &graph, &links, 1);
        assert!(slow > fast, "slow {slow} vs fast {fast}");
        assert!(slow >= 0.002);
    }
}
