//! Rank-based metrics: MRR and Hits@N.

use serde::{Deserialize, Serialize};

/// The Hits@N cutoffs reported in the paper's tables.
pub const HITS_AT: [usize; 3] = [1, 5, 10];

/// Aggregated ranking metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Mean reciprocal rank.
    pub mrr: f64,
    /// `hits[i]` is Hits@`HITS_AT[i]`.
    pub hits: [f64; 3],
    /// Number of ranking queries aggregated.
    pub count: usize,
}

impl Metrics {
    /// The all-zero metrics of an empty evaluation.
    pub fn empty() -> Self {
        Metrics { mrr: 0.0, hits: [0.0; 3], count: 0 }
    }

    /// Hits@`n` for one of the standard cutoffs.
    ///
    /// # Panics
    /// If `n` is not one of [`HITS_AT`].
    pub fn hits_at(&self, n: usize) -> f64 {
        let idx = HITS_AT
            .iter()
            .position(|&h| h == n)
            .unwrap_or_else(|| panic!("hits@{n} not tracked (only {HITS_AT:?})"));
        self.hits[idx]
    }
}

/// Accumulates ranks (possibly fractional, from tie averaging) into
/// [`Metrics`]. Mergeable across threads.
#[derive(Debug, Clone, Default)]
pub struct RankAccumulator {
    reciprocal_sum: f64,
    hit_counts: [f64; 3],
    count: usize,
}

impl RankAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one ranking query's (1-based) rank.
    ///
    /// # Panics
    /// If `rank < 1`.
    pub fn push(&mut self, rank: f64) {
        assert!(rank >= 1.0, "ranks are 1-based, got {rank}");
        self.reciprocal_sum += 1.0 / rank;
        for (i, &n) in HITS_AT.iter().enumerate() {
            if rank <= n as f64 {
                self.hit_counts[i] += 1.0;
            }
        }
        self.count += 1;
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &RankAccumulator) {
        self.reciprocal_sum += other.reciprocal_sum;
        for i in 0..3 {
            self.hit_counts[i] += other.hit_counts[i];
        }
        self.count += other.count;
    }

    /// Number of queries recorded.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Finalizes into [`Metrics`].
    pub fn finish(&self) -> Metrics {
        if self.count == 0 {
            return Metrics::empty();
        }
        let n = self.count as f64;
        Metrics {
            mrr: self.reciprocal_sum / n,
            hits: [self.hit_counts[0] / n, self.hit_counts[1] / n, self.hit_counts[2] / n],
            count: self.count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranks() {
        let mut acc = RankAccumulator::new();
        for _ in 0..10 {
            acc.push(1.0);
        }
        let m = acc.finish();
        assert_eq!(m.mrr, 1.0);
        assert_eq!(m.hits, [1.0, 1.0, 1.0]);
        assert_eq!(m.count, 10);
    }

    #[test]
    fn mixed_ranks() {
        let mut acc = RankAccumulator::new();
        acc.push(1.0); // hits@1,5,10
        acc.push(4.0); // hits@5,10
        acc.push(10.0); // hits@10
        acc.push(100.0); // none
        let m = acc.finish();
        assert!((m.mrr - (1.0 + 0.25 + 0.1 + 0.01) / 4.0).abs() < 1e-12);
        assert_eq!(m.hits_at(1), 0.25);
        assert_eq!(m.hits_at(5), 0.5);
        assert_eq!(m.hits_at(10), 0.75);
    }

    #[test]
    fn fractional_tie_ranks() {
        let mut acc = RankAccumulator::new();
        acc.push(1.5); // tie between 1 and 2 → counts for hits@5/10, not hits@1
        let m = acc.finish();
        assert_eq!(m.hits_at(1), 0.0);
        assert_eq!(m.hits_at(5), 1.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let ranks = [1.0, 2.0, 3.0, 7.0, 20.0];
        let mut all = RankAccumulator::new();
        for &r in &ranks {
            all.push(r);
        }
        let mut a = RankAccumulator::new();
        let mut b = RankAccumulator::new();
        for (i, &r) in ranks.iter().enumerate() {
            if i % 2 == 0 {
                a.push(r);
            } else {
                b.push(r);
            }
        }
        a.merge(&b);
        assert_eq!(a.finish(), all.finish());
    }

    #[test]
    fn empty_metrics() {
        assert_eq!(RankAccumulator::new().finish(), Metrics::empty());
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_rank_rejected() {
        RankAccumulator::new().push(0.5);
    }

    #[test]
    #[should_panic(expected = "not tracked")]
    fn unknown_cutoff_panics() {
        Metrics::empty().hits_at(3);
    }
}
