//! Fixed-width table rendering and JSON result persistence for the
//! experiment binaries.

use serde::Serialize;
use std::fmt::Write as _;
use std::path::Path;

/// A simple fixed-width text table.
///
/// ```
/// use dekg_eval::Table;
/// let mut t = Table::new(vec!["model", "MRR", "Hits@10"]);
/// t.add_row(vec!["DEKG-ILP".into(), "0.508".into(), "0.841".into()]);
/// println!("{}", t.render());
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<impl Into<String>>) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// If the cell count does not match the header count.
    pub fn add_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows exist.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<width$}", width = widths[i]);
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Formats a metric to the paper's three decimal places.
pub fn fmt3(x: f64) -> String {
    format!("{x:.3}")
}

/// Renders a horizontal ASCII bar chart — the textual analogue of the
/// paper's figure panels.
///
/// Bars scale to `width` characters at `max` (values above `max`
/// clamp). Labels are right-padded to align the bars.
///
/// ```
/// use dekg_eval::report::bar_chart;
/// let chart = bar_chart(&[("DEKG-ILP", 0.8), ("Grail", 0.2)], 1.0, 20);
/// assert!(chart.contains("DEKG-ILP"));
/// ```
pub fn bar_chart(entries: &[(&str, f64)], max: f64, width: usize) -> String {
    assert!(max > 0.0, "bar chart needs a positive maximum");
    assert!(width > 0, "bar chart needs a positive width");
    let label_w = entries.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in entries {
        let frac = (value / max).clamp(0.0, 1.0);
        let filled = (frac * width as f64).round() as usize;
        let _ = writeln!(
            out,
            "{label:<label_w$} |{}{} {value:.3}",
            "█".repeat(filled),
            " ".repeat(width - filled),
        );
    }
    out
}

/// Persists a serializable result next to the human-readable output so
/// reruns can be diffed.
pub fn save_json(path: impl AsRef<Path>, value: &impl Serialize) -> std::io::Result<()> {
    let json = serde_json::to_string_pretty(value).expect("serializable result");
    if let Some(parent) = path.as_ref().parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["a", "bb"]);
        t.add_row(vec!["xxx".into(), "y".into()]);
        t.add_row(vec!["z".into(), "wwww".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].starts_with("xxx"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.add_row(vec!["only-one".into()]);
    }

    #[test]
    fn bar_chart_scales_and_clamps() {
        let chart = bar_chart(&[("a", 0.5), ("bb", 2.0)], 1.0, 10);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 2);
        // "a" padded to width of "bb"; half-filled bar.
        assert!(lines[0].starts_with("a  |"));
        assert_eq!(lines[0].matches('█').count(), 5);
        // Clamped to full width.
        assert_eq!(lines[1].matches('█').count(), 10);
    }

    #[test]
    #[should_panic(expected = "positive maximum")]
    fn bar_chart_rejects_zero_max() {
        bar_chart(&[("a", 1.0)], 0.0, 10);
    }

    #[test]
    fn fmt3_truncates() {
        assert_eq!(fmt3(0.50849), "0.508");
        assert_eq!(fmt3(1.0), "1.000");
    }

    #[test]
    fn save_json_roundtrips() {
        let path = std::env::temp_dir().join("dekg_eval_report_test.json");
        save_json(&path, &vec![1, 2, 3]).unwrap();
        let back: Vec<i32> =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
        std::fs::remove_file(&path).ok();
    }
}
