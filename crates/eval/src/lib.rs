#![warn(missing_docs)]

//! # dekg-eval
//!
//! The evaluation harness for the DEKG-ILP reproduction (Section V-C of
//! the paper):
//!
//! * **Filtered ranking** over all three prediction forms `(?, r, t)`,
//!   `(h, ?, t)` and `(h, r, ?)` — candidates that are known true
//!   triples (train ∪ emerging ∪ valid ∪ test) are removed before
//!   ranking, and ties receive their average rank.
//! * **MRR and Hits@{1, 5, 10}** aggregation with per-link-class
//!   (enclosing vs bridging) breakdowns for the Fig. 5 respective study.
//! * **Candidate sampling** — the paper ranks against every entity;
//!   at CPU scale the protocol optionally ranks against `K` sampled
//!   negatives instead (documented in `EXPERIMENTS.md`). `None`
//!   reproduces the full protocol.
//! * **Timing** helpers for Table IV / Fig. 7 and fixed-width table
//!   [`report`]ing for the experiment binaries.

pub mod metrics;
pub mod protocol;
pub mod ranking;
pub mod report;
pub mod timing;

pub use metrics::{Metrics, RankAccumulator};
pub use protocol::{
    effective_threads, evaluate, evaluate_with_filter, EvalResult, PredictionTask, ProtocolConfig,
};
pub use ranking::{filtered_rank, rank_of, RankQuery};
pub use report::Table;
pub use timing::{time_inference_per_50, EvalPhases, EvalTiming, TimingResult};
