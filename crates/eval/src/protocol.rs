//! The full evaluation protocol: all prediction forms over a labeled
//! test mix, with per-class breakdowns and thread-parallel scoring.
//!
//! Parallelism is query-granular with per-query child seeds (see
//! `dekg_datasets::seeding`): query `q` — the `t`-th prediction form of
//! the `l`-th link — samples its candidates from a ChaCha8 stream
//! seeded by `split_seed(cfg.seed, q)`, and ranks are folded into the
//! accumulators in query order after the parallel map returns. Both
//! choices make the result bitwise-identical at any thread count.

use crate::metrics::{Metrics, RankAccumulator};
use crate::ranking::{filtered_rank, RankQuery};
use crate::timing::{EvalPhases, EvalTiming};
use dekg_core::{InferenceGraph, LinkPredictor};
use dekg_datasets::{DekgDataset, LinkClass, TestMix};
use dekg_kg::{Triple, TripleStore};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Which prediction forms to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PredictionTask {
    /// `(?, r, t)`.
    Head,
    /// `(h, ?, t)`.
    Relation,
    /// `(h, r, ?)`.
    Tail,
}

impl PredictionTask {
    /// All three forms, as in the paper ("we extend these baselines to
    /// all the forms of prediction tasks").
    pub fn all() -> [PredictionTask; 3] {
        [PredictionTask::Head, PredictionTask::Relation, PredictionTask::Tail]
    }

    fn query(self, t: Triple) -> RankQuery {
        match self {
            PredictionTask::Head => RankQuery::Head(t),
            PredictionTask::Relation => RankQuery::Relation(t),
            PredictionTask::Tail => RankQuery::Tail(t),
        }
    }
}

/// Protocol configuration.
#[derive(Debug, Clone)]
pub struct ProtocolConfig {
    /// Candidate cap per query; `None` ranks against the full
    /// filtered candidate set (the paper's protocol).
    pub num_candidates: Option<usize>,
    /// Which prediction forms to run.
    pub tasks: Vec<PredictionTask>,
    /// Seed for candidate sampling.
    pub seed: u64,
    /// Worker threads (1 = sequential).
    pub threads: usize,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            num_candidates: None,
            tasks: PredictionTask::all().to_vec(),
            seed: 0,
            threads: 1,
        }
    }
}

impl ProtocolConfig {
    /// A CPU-friendly configuration: 50 sampled candidates, all tasks,
    /// as many threads as available (capped at 8).
    pub fn sampled(num_candidates: usize) -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get().min(8));
        ProtocolConfig { num_candidates: Some(num_candidates), threads, ..Self::default() }
    }
}

/// Evaluation output with the per-class breakdown of Fig. 5 and a
/// per-prediction-form breakdown (head/relation/tail).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalResult {
    /// Metrics over the whole mix (Table III rows).
    pub overall: Metrics,
    /// Enclosing-link-only metrics.
    pub enclosing: Metrics,
    /// Bridging-link-only metrics.
    pub bridging: Metrics,
    /// Metrics per prediction form, in the order of `cfg.tasks`.
    /// Diagnoses e.g. rule methods' relation-task tie floor.
    pub by_task: Vec<(PredictionTask, Metrics)>,
    /// Wall-clock and throughput counters for this run.
    pub timing: EvalTiming,
}

/// Runs the protocol for one model over a labeled test mix.
///
/// The filter set is `G ∪ G' ∪ valid ∪ all test links`, matching "all
/// the triplets appeared in training, valid, and test set are removed".
pub fn evaluate(
    model: &dyn LinkPredictor,
    graph: &InferenceGraph,
    dataset: &DekgDataset,
    mix: &TestMix,
    cfg: &ProtocolConfig,
) -> EvalResult {
    let mut filter = graph.store.clone();
    for t in dataset.valid.iter().chain(&dataset.test_enclosing).chain(&dataset.test_bridging) {
        filter.insert(*t);
    }
    evaluate_with_filter(model, graph, &filter, &mix.links, cfg)
}

/// The worker count a request for `requested` threads actually gets:
/// at least 1, at most the machine's available parallelism.
pub fn effective_threads(requested: usize) -> usize {
    let avail = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    requested.max(1).min(avail)
}

/// Lower-level entry point with an explicit filter store.
///
/// Queries fan out over `cfg.threads` rayon workers; candidate
/// sampling is per-query-seeded and the rank reduction is an ordered
/// serial fold, so the metrics are bitwise-identical to a sequential
/// run at any thread count (see the module docs).
pub fn evaluate_with_filter(
    model: &dyn LinkPredictor,
    graph: &InferenceGraph,
    filter: &TripleStore,
    links: &[(Triple, LinkClass)],
    cfg: &ProtocolConfig,
) -> EvalResult {
    use rayon::prelude::*;
    assert!(!cfg.tasks.is_empty(), "no prediction tasks configured");
    // Clamp to the cores actually available: oversubscribing a pool on
    // a smaller machine costs real time (context switches on the
    // extraction hot path) and can never help, and metrics are
    // thread-count invariant anyway.
    let threads = effective_threads(cfg.threads);
    let started = Instant::now();

    // One record per (link, prediction-form) query, carrying its
    // flattened index — the query's seed-split index, stable under any
    // chunking of the parallel map.
    let queries: Vec<(u64, Triple, LinkClass, usize)> = links
        .iter()
        .enumerate()
        .flat_map(|(li, &(triple, class))| {
            (0..cfg.tasks.len())
                .map(move |ti| ((li * cfg.tasks.len() + ti) as u64, triple, class, ti))
        })
        .collect();

    let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("eval pool");
    // Bracket the fan-out with span snapshots: the delta isolates this
    // run's extraction/scoring/ranking share even when other spans
    // accumulated earlier in the process (e.g. training).
    let spans_before = dekg_obs::span_snapshot();
    let ranks: Vec<f64> = pool.install(|| {
        queries
            .par_iter()
            .map(|&(qi, triple, _, ti)| {
                let mut rng = dekg_datasets::item_rng(cfg.seed, qi);
                filtered_rank(
                    model,
                    graph,
                    &cfg.tasks[ti].query(triple),
                    filter,
                    cfg.num_candidates,
                    &mut rng,
                )
            })
            .collect()
    });
    let phases = EvalPhases::from_span_delta(&dekg_obs::span_snapshot().diff(&spans_before));

    // Ordered fold of ranks into per-class and per-task accumulators.
    let mut enclosing = RankAccumulator::new();
    let mut bridging = RankAccumulator::new();
    let mut per_task = vec![RankAccumulator::new(); cfg.tasks.len()];
    for (&(_, _, class, ti), &rank) in queries.iter().zip(&ranks) {
        match class {
            LinkClass::Enclosing => enclosing.push(rank),
            LinkClass::Bridging => bridging.push(rank),
        }
        per_task[ti].push(rank);
    }
    let mut overall = enclosing.clone();
    overall.merge(&bridging);

    let wall_seconds = started.elapsed().as_secs_f64();
    EvalResult {
        overall: overall.finish(),
        enclosing: enclosing.finish(),
        bridging: bridging.finish(),
        by_task: cfg.tasks.iter().zip(&per_task).map(|(&t, acc)| (t, acc.finish())).collect(),
        timing: EvalTiming::new(wall_seconds, queries.len(), links.len(), threads)
            .with_phases(phases),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dekg_datasets::{generate, DatasetProfile, MixRatio, RawKg, SplitKind, SynthConfig};

    /// Oracle model: scores a triple 1.0 when it is a held-out truth or
    /// an observed edge, else 0.0 — must achieve near-perfect metrics.
    struct Oracle {
        truths: TripleStore,
    }

    impl LinkPredictor for Oracle {
        fn name(&self) -> &'static str {
            "oracle"
        }
        fn score_batch(&self, _graph: &InferenceGraph, triples: &[Triple]) -> Vec<f32> {
            triples.iter().map(|t| if self.truths.contains(t) { 1.0 } else { 0.0 }).collect()
        }
        fn num_parameters(&self) -> usize {
            0
        }
    }

    /// Constant scorer: every candidate ties → mid-field ranks.
    struct Constant;

    impl LinkPredictor for Constant {
        fn name(&self) -> &'static str {
            "constant"
        }
        fn score_batch(&self, _graph: &InferenceGraph, triples: &[Triple]) -> Vec<f32> {
            vec![0.0; triples.len()]
        }
        fn num_parameters(&self) -> usize {
            0
        }
    }

    fn dataset() -> DekgDataset {
        let profile = DatasetProfile::table2(RawKg::Wn18rr, SplitKind::Eq).scaled(0.03);
        let mut cfg = SynthConfig::for_profile(profile, 21);
        cfg.num_test_enclosing = 20;
        cfg.num_test_bridging = 20;
        generate(&cfg)
    }

    #[test]
    fn oracle_scores_perfectly() {
        let d = dataset();
        let graph = InferenceGraph::from_dataset(&d);
        let mix = TestMix::build(&d, MixRatio { enclosing: 1, bridging: 1 });
        let mut truths = TripleStore::new();
        for (t, _) in &mix.links {
            truths.insert(*t);
        }
        let oracle = Oracle { truths };
        let result = evaluate(&oracle, &graph, &d, &mix, &ProtocolConfig::default());
        // The oracle scores exactly the truth at 1.0; every candidate
        // is filtered or scores 0 → rank 1 everywhere.
        assert!(result.overall.mrr > 0.99, "mrr = {}", result.overall.mrr);
        assert!(result.overall.hits_at(1) > 0.99);
        assert_eq!(result.enclosing.count + result.bridging.count, result.overall.count);
    }

    #[test]
    fn constant_model_lands_midfield() {
        let d = dataset();
        let graph = InferenceGraph::from_dataset(&d);
        let mix = TestMix::build(&d, MixRatio { enclosing: 1, bridging: 1 });
        // Entity prediction only: the tiny dataset has so few relations
        // that relation queries tie at rank ~1.5 and would dominate MRR.
        let cfg = ProtocolConfig {
            tasks: vec![PredictionTask::Head, PredictionTask::Tail],
            ..Default::default()
        };
        let result = evaluate(&Constant, &graph, &d, &mix, &cfg);
        // With N candidates all tied, expected reciprocal rank is tiny.
        assert!(result.overall.mrr < 0.05, "mrr = {}", result.overall.mrr);
        assert!(result.overall.hits_at(1) < 0.05);
    }

    #[test]
    fn parallel_matches_sequential() {
        let d = dataset();
        let graph = InferenceGraph::from_dataset(&d);
        let mix = TestMix::build(&d, MixRatio { enclosing: 1, bridging: 1 });
        let mut truths = TripleStore::new();
        for (t, _) in &mix.links {
            truths.insert(*t);
        }
        let oracle = Oracle { truths };
        let seq = evaluate(
            &oracle,
            &graph,
            &d,
            &mix,
            &ProtocolConfig { threads: 1, ..Default::default() },
        );
        let par = evaluate(
            &oracle,
            &graph,
            &d,
            &mix,
            &ProtocolConfig { threads: 4, ..Default::default() },
        );
        // Full-candidate protocol is sampling-free → exact match.
        assert_eq!(seq.overall, par.overall);
        assert_eq!(seq.bridging, par.bridging);
    }

    #[test]
    fn query_count_is_links_times_tasks() {
        let d = dataset();
        let graph = InferenceGraph::from_dataset(&d);
        let mix = TestMix::build(&d, MixRatio { enclosing: 1, bridging: 1 });
        let result = evaluate(&Constant, &graph, &d, &mix, &ProtocolConfig::default());
        assert_eq!(result.overall.count, mix.len() * 3, "3 prediction forms per link");
    }

    #[test]
    fn per_task_breakdown_sums_to_overall() {
        let d = dataset();
        let graph = InferenceGraph::from_dataset(&d);
        let mix = TestMix::build(&d, MixRatio { enclosing: 1, bridging: 1 });
        let result = evaluate(&Constant, &graph, &d, &mix, &ProtocolConfig::default());
        assert_eq!(result.by_task.len(), 3);
        let task_total: usize = result.by_task.iter().map(|(_, m)| m.count).sum();
        assert_eq!(task_total, result.overall.count);
        // Tiny dataset → few relations → the constant model's relation
        // task has far better (tie-averaged) MRR than entity tasks.
        let rel_mrr =
            result.by_task.iter().find(|(t, _)| *t == PredictionTask::Relation).unwrap().1.mrr;
        let head_mrr =
            result.by_task.iter().find(|(t, _)| *t == PredictionTask::Head).unwrap().1.mrr;
        assert!(rel_mrr > head_mrr, "{rel_mrr} vs {head_mrr}");
    }

    #[test]
    fn sampled_protocol_is_thread_count_invariant() {
        // Stronger than determinism: with per-query child seeds the
        // *sampled* protocol must produce identical metrics at any
        // thread count, not just across repeat runs at the same count.
        let d = dataset();
        let graph = InferenceGraph::from_dataset(&d);
        let mix = TestMix::build(&d, MixRatio { enclosing: 1, bridging: 1 });
        let run = |threads: usize| {
            let cfg =
                ProtocolConfig { num_candidates: Some(10), threads, seed: 3, ..Default::default() };
            evaluate(&Constant, &graph, &d, &mix, &cfg)
        };
        let serial = run(1);
        for threads in [2, 4, 5] {
            let par = run(threads);
            assert_eq!(serial.overall, par.overall, "threads={threads}");
            assert_eq!(serial.enclosing, par.enclosing, "threads={threads}");
            assert_eq!(serial.bridging, par.bridging, "threads={threads}");
            assert_eq!(serial.by_task, par.by_task, "threads={threads}");
        }
    }

    #[test]
    fn timing_counters_are_recorded() {
        let d = dataset();
        let graph = InferenceGraph::from_dataset(&d);
        let mix = TestMix::build(&d, MixRatio { enclosing: 1, bridging: 1 });
        let cfg = ProtocolConfig { threads: 2, ..Default::default() };
        let result = evaluate(&Constant, &graph, &d, &mix, &cfg);
        assert_eq!(result.timing.links, mix.len());
        assert_eq!(result.timing.queries, mix.len() * 3);
        // The recorded count is the effective (machine-clamped) pool
        // size, not the raw request.
        assert_eq!(result.timing.threads, effective_threads(2));
        assert!(result.timing.wall_seconds > 0.0);
        assert!(result.timing.queries_per_second > 0.0);
    }

    #[test]
    fn sampled_protocol_is_deterministic() {
        let d = dataset();
        let graph = InferenceGraph::from_dataset(&d);
        let mix = TestMix::build(&d, MixRatio { enclosing: 1, bridging: 1 });
        let cfg =
            ProtocolConfig { num_candidates: Some(10), threads: 2, seed: 3, ..Default::default() };
        let a = evaluate(&Constant, &graph, &d, &mix, &cfg);
        let b = evaluate(&Constant, &graph, &d, &mix, &cfg);
        assert_eq!(a.overall, b.overall);
    }
}
