//! The full evaluation protocol: all prediction forms over a labeled
//! test mix, with per-class breakdowns and thread-parallel scoring.

use crate::metrics::{Metrics, RankAccumulator};
use crate::ranking::{filtered_rank, RankQuery};
use dekg_core::{InferenceGraph, LinkPredictor};
use dekg_datasets::{DekgDataset, LinkClass, TestMix};
use dekg_kg::{Triple, TripleStore};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Which prediction forms to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PredictionTask {
    /// `(?, r, t)`.
    Head,
    /// `(h, ?, t)`.
    Relation,
    /// `(h, r, ?)`.
    Tail,
}

impl PredictionTask {
    /// All three forms, as in the paper ("we extend these baselines to
    /// all the forms of prediction tasks").
    pub fn all() -> [PredictionTask; 3] {
        [PredictionTask::Head, PredictionTask::Relation, PredictionTask::Tail]
    }

    fn query(self, t: Triple) -> RankQuery {
        match self {
            PredictionTask::Head => RankQuery::Head(t),
            PredictionTask::Relation => RankQuery::Relation(t),
            PredictionTask::Tail => RankQuery::Tail(t),
        }
    }
}

/// Protocol configuration.
#[derive(Debug, Clone)]
pub struct ProtocolConfig {
    /// Candidate cap per query; `None` ranks against the full
    /// filtered candidate set (the paper's protocol).
    pub num_candidates: Option<usize>,
    /// Which prediction forms to run.
    pub tasks: Vec<PredictionTask>,
    /// Seed for candidate sampling.
    pub seed: u64,
    /// Worker threads (1 = sequential).
    pub threads: usize,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            num_candidates: None,
            tasks: PredictionTask::all().to_vec(),
            seed: 0,
            threads: 1,
        }
    }
}

impl ProtocolConfig {
    /// A CPU-friendly configuration: 50 sampled candidates, all tasks,
    /// as many threads as available (capped at 8).
    pub fn sampled(num_candidates: usize) -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get().min(8));
        ProtocolConfig { num_candidates: Some(num_candidates), threads, ..Self::default() }
    }
}

/// Evaluation output with the per-class breakdown of Fig. 5 and a
/// per-prediction-form breakdown (head/relation/tail).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalResult {
    /// Metrics over the whole mix (Table III rows).
    pub overall: Metrics,
    /// Enclosing-link-only metrics.
    pub enclosing: Metrics,
    /// Bridging-link-only metrics.
    pub bridging: Metrics,
    /// Metrics per prediction form, in the order of `cfg.tasks`.
    /// Diagnoses e.g. rule methods' relation-task tie floor.
    pub by_task: Vec<(PredictionTask, Metrics)>,
}

/// Runs the protocol for one model over a labeled test mix.
///
/// The filter set is `G ∪ G' ∪ valid ∪ all test links`, matching "all
/// the triplets appeared in training, valid, and test set are removed".
pub fn evaluate(
    model: &dyn LinkPredictor,
    graph: &InferenceGraph,
    dataset: &DekgDataset,
    mix: &TestMix,
    cfg: &ProtocolConfig,
) -> EvalResult {
    let mut filter = graph.store.clone();
    for t in dataset.valid.iter().chain(&dataset.test_enclosing).chain(&dataset.test_bridging) {
        filter.insert(*t);
    }
    evaluate_with_filter(model, graph, &filter, &mix.links, cfg)
}

/// Lower-level entry point with an explicit filter store.
pub fn evaluate_with_filter(
    model: &dyn LinkPredictor,
    graph: &InferenceGraph,
    filter: &TripleStore,
    links: &[(Triple, LinkClass)],
    cfg: &ProtocolConfig,
) -> EvalResult {
    assert!(!cfg.tasks.is_empty(), "no prediction tasks configured");
    let threads = cfg.threads.max(1);

    // Each worker owns accumulators per class and per task; merge at
    // the end.
    type Partial = (RankAccumulator, RankAccumulator, Vec<RankAccumulator>);
    let chunk = links.len().div_ceil(threads.max(1)).max(1);
    let partials: Vec<Partial> = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (w, part) in links.chunks(chunk).enumerate() {
            let tasks = cfg.tasks.clone();
            let sample = cfg.num_candidates;
            let seed = cfg.seed;
            handles.push(scope.spawn(move |_| {
                let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (w as u64).wrapping_mul(0x9E37));
                let mut enc = RankAccumulator::new();
                let mut bri = RankAccumulator::new();
                let mut per_task = vec![RankAccumulator::new(); tasks.len()];
                for (triple, class) in part {
                    let acc = match class {
                        LinkClass::Enclosing => &mut enc,
                        LinkClass::Bridging => &mut bri,
                    };
                    for (t, task) in tasks.iter().enumerate() {
                        let rank = filtered_rank(
                            model,
                            graph,
                            &task.query(*triple),
                            filter,
                            sample,
                            &mut rng,
                        );
                        acc.push(rank);
                        per_task[t].push(rank);
                    }
                }
                (enc, bri, per_task)
            }));
        }
        handles.into_iter().map(|h| h.join().expect("eval worker panicked")).collect()
    })
    .expect("crossbeam scope failed");

    let mut enclosing = RankAccumulator::new();
    let mut bridging = RankAccumulator::new();
    let mut per_task = vec![RankAccumulator::new(); cfg.tasks.len()];
    for (e, b, ts) in &partials {
        enclosing.merge(e);
        bridging.merge(b);
        for (acc, t) in per_task.iter_mut().zip(ts) {
            acc.merge(t);
        }
    }
    let mut overall = enclosing.clone();
    overall.merge(&bridging);

    EvalResult {
        overall: overall.finish(),
        enclosing: enclosing.finish(),
        bridging: bridging.finish(),
        by_task: cfg.tasks.iter().zip(&per_task).map(|(&t, acc)| (t, acc.finish())).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dekg_datasets::{generate, DatasetProfile, MixRatio, RawKg, SplitKind, SynthConfig};

    /// Oracle model: scores a triple 1.0 when it is a held-out truth or
    /// an observed edge, else 0.0 — must achieve near-perfect metrics.
    struct Oracle {
        truths: TripleStore,
    }

    impl LinkPredictor for Oracle {
        fn name(&self) -> &'static str {
            "oracle"
        }
        fn score_batch(&self, _graph: &InferenceGraph, triples: &[Triple]) -> Vec<f32> {
            triples.iter().map(|t| if self.truths.contains(t) { 1.0 } else { 0.0 }).collect()
        }
        fn num_parameters(&self) -> usize {
            0
        }
    }

    /// Constant scorer: every candidate ties → mid-field ranks.
    struct Constant;

    impl LinkPredictor for Constant {
        fn name(&self) -> &'static str {
            "constant"
        }
        fn score_batch(&self, _graph: &InferenceGraph, triples: &[Triple]) -> Vec<f32> {
            vec![0.0; triples.len()]
        }
        fn num_parameters(&self) -> usize {
            0
        }
    }

    fn dataset() -> DekgDataset {
        let profile = DatasetProfile::table2(RawKg::Wn18rr, SplitKind::Eq).scaled(0.03);
        let mut cfg = SynthConfig::for_profile(profile, 21);
        cfg.num_test_enclosing = 20;
        cfg.num_test_bridging = 20;
        generate(&cfg)
    }

    #[test]
    fn oracle_scores_perfectly() {
        let d = dataset();
        let graph = InferenceGraph::from_dataset(&d);
        let mix = TestMix::build(&d, MixRatio { enclosing: 1, bridging: 1 });
        let mut truths = TripleStore::new();
        for (t, _) in &mix.links {
            truths.insert(*t);
        }
        let oracle = Oracle { truths };
        let result = evaluate(&oracle, &graph, &d, &mix, &ProtocolConfig::default());
        // The oracle scores exactly the truth at 1.0; every candidate
        // is filtered or scores 0 → rank 1 everywhere.
        assert!(result.overall.mrr > 0.99, "mrr = {}", result.overall.mrr);
        assert!(result.overall.hits_at(1) > 0.99);
        assert_eq!(result.enclosing.count + result.bridging.count, result.overall.count);
    }

    #[test]
    fn constant_model_lands_midfield() {
        let d = dataset();
        let graph = InferenceGraph::from_dataset(&d);
        let mix = TestMix::build(&d, MixRatio { enclosing: 1, bridging: 1 });
        // Entity prediction only: the tiny dataset has so few relations
        // that relation queries tie at rank ~1.5 and would dominate MRR.
        let cfg = ProtocolConfig {
            tasks: vec![PredictionTask::Head, PredictionTask::Tail],
            ..Default::default()
        };
        let result = evaluate(&Constant, &graph, &d, &mix, &cfg);
        // With N candidates all tied, expected reciprocal rank is tiny.
        assert!(result.overall.mrr < 0.05, "mrr = {}", result.overall.mrr);
        assert!(result.overall.hits_at(1) < 0.05);
    }

    #[test]
    fn parallel_matches_sequential() {
        let d = dataset();
        let graph = InferenceGraph::from_dataset(&d);
        let mix = TestMix::build(&d, MixRatio { enclosing: 1, bridging: 1 });
        let mut truths = TripleStore::new();
        for (t, _) in &mix.links {
            truths.insert(*t);
        }
        let oracle = Oracle { truths };
        let seq = evaluate(
            &oracle,
            &graph,
            &d,
            &mix,
            &ProtocolConfig { threads: 1, ..Default::default() },
        );
        let par = evaluate(
            &oracle,
            &graph,
            &d,
            &mix,
            &ProtocolConfig { threads: 4, ..Default::default() },
        );
        // Full-candidate protocol is sampling-free → exact match.
        assert_eq!(seq.overall, par.overall);
        assert_eq!(seq.bridging, par.bridging);
    }

    #[test]
    fn query_count_is_links_times_tasks() {
        let d = dataset();
        let graph = InferenceGraph::from_dataset(&d);
        let mix = TestMix::build(&d, MixRatio { enclosing: 1, bridging: 1 });
        let result = evaluate(&Constant, &graph, &d, &mix, &ProtocolConfig::default());
        assert_eq!(result.overall.count, mix.len() * 3, "3 prediction forms per link");
    }

    #[test]
    fn per_task_breakdown_sums_to_overall() {
        let d = dataset();
        let graph = InferenceGraph::from_dataset(&d);
        let mix = TestMix::build(&d, MixRatio { enclosing: 1, bridging: 1 });
        let result = evaluate(&Constant, &graph, &d, &mix, &ProtocolConfig::default());
        assert_eq!(result.by_task.len(), 3);
        let task_total: usize = result.by_task.iter().map(|(_, m)| m.count).sum();
        assert_eq!(task_total, result.overall.count);
        // Tiny dataset → few relations → the constant model's relation
        // task has far better (tie-averaged) MRR than entity tasks.
        let rel_mrr =
            result.by_task.iter().find(|(t, _)| *t == PredictionTask::Relation).unwrap().1.mrr;
        let head_mrr =
            result.by_task.iter().find(|(t, _)| *t == PredictionTask::Head).unwrap().1.mrr;
        assert!(rel_mrr > head_mrr, "{rel_mrr} vs {head_mrr}");
    }

    #[test]
    fn sampled_protocol_is_deterministic() {
        let d = dataset();
        let graph = InferenceGraph::from_dataset(&d);
        let mix = TestMix::build(&d, MixRatio { enclosing: 1, bridging: 1 });
        let cfg =
            ProtocolConfig { num_candidates: Some(10), threads: 2, seed: 3, ..Default::default() };
        let a = evaluate(&Constant, &graph, &d, &mix, &cfg);
        let b = evaluate(&Constant, &graph, &d, &mix, &cfg);
        assert_eq!(a.overall, b.overall);
    }
}
