#![warn(missing_docs)]

//! # dekg
//!
//! Umbrella crate for the **DEKG-ILP** reproduction ("Disconnected
//! Emerging Knowledge Graph Oriented Inductive Link Prediction",
//! ICDE 2023). Re-exports the whole stack under one roof and hosts the
//! runnable examples and cross-crate integration tests.
//!
//! Layer map:
//!
//! * [`tensor`] — dense tensors + reverse-mode autograd + optimizers,
//! * [`kg`] — triple stores, adjacency, BFS, subgraph extraction,
//! * [`gnn`] — R-GCN with edge attention over extracted subgraphs,
//! * [`core`] — the paper's model: CLRM + GSM = DEKG-ILP,
//! * [`baselines`] — TransE, RotatE, ConvE, GEN, RuleN, GraIL, TACT,
//! * [`datasets`] — synthetic DEKG benchmarks calibrated to Table II,
//! * [`eval`] — filtered ranking, MRR/Hits@N, timing, reporting,
//! * [`obs`] — structured logging, metrics registry, JSONL event
//!   sinks and span timers instrumenting all of the above.
//!
//! ```no_run
//! use dekg::prelude::*;
//! use rand::SeedableRng;
//!
//! // 1. A small synthetic DEKG benchmark.
//! let profile = DatasetProfile::table2(RawKg::Nell995, SplitKind::Eq).scaled(0.05);
//! let data = generate(&SynthConfig::for_profile(profile, 1));
//!
//! // 2. Train DEKG-ILP on the original KG.
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let mut model = DekgIlp::new(DekgIlpConfig::quick(), &data, &mut rng);
//! model.fit(&data, &mut rng);
//!
//! // 3. Evaluate on a 1:1 enclosing/bridging mix.
//! let graph = InferenceGraph::from_dataset(&data);
//! let mix = TestMix::build(&data, MixRatio::for_split(SplitKind::Eq));
//! let result = evaluate(&model, &graph, &data, &mix, &ProtocolConfig::sampled(50));
//! println!("MRR = {:.3}", result.overall.mrr);
//! ```

pub use dekg_baselines as baselines;
pub use dekg_core as core;
pub use dekg_datasets as datasets;
pub use dekg_eval as eval;
pub use dekg_gnn as gnn;
pub use dekg_kg as kg;
pub use dekg_obs as obs;
pub use dekg_tensor as tensor;

/// One-stop imports for applications and examples.
pub mod prelude {
    pub use dekg_baselines::{
        capability_of, Capability, ConvE, EmbeddingConfig, Gen, Grail, Mean, NeuralLp,
        NeuralLpConfig, RotatE, RuleN, SubgraphModelConfig, Tact, TransE,
    };
    pub use dekg_core::{
        Ablation, DekgIlp, DekgIlpConfig, InferenceGraph, LinkPredictor, ScoringPath, TrainReport,
        TrainableModel,
    };
    pub use dekg_datasets::{
        generate, DatasetProfile, DatasetStats, DekgDataset, LinkClass, MixRatio, NegativeSampler,
        RawKg, SplitKind, SynthConfig, TestMix,
    };
    pub use dekg_eval::{evaluate, EvalResult, Metrics, PredictionTask, ProtocolConfig, Table};
    pub use dekg_kg::{
        Adjacency, ComponentTable, EntityId, ExtractionMode, KnowledgeGraph, RelationId, Subgraph,
        SubgraphExtractor, Triple, TripleStore, Vocab,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_is_importable() {
        use crate::prelude::*;
        // Smoke-check a couple of re-exports resolve to the right things.
        let cap = capability_of("DEKG-ILP");
        assert!(cap.dekg_bridging);
        let t = Triple::from_raw(0, 0, 1);
        assert_eq!(t.reversed().head, EntityId(1));
    }
}
