//! Property-based gradient verification: random op chains must match
//! central-difference numerical gradients.

use dekg_tensor::{Graph, ParamStore, Tensor, Var};
use proptest::prelude::*;

/// The pointwise ops safe to chain on arbitrary bounded inputs.
#[derive(Debug, Clone, Copy)]
enum PointOp {
    Relu,
    Sigmoid,
    Tanh,
    Square,
    Sin,
    Cos,
    Abs,
    AddScalar(i8),
    MulScalar(i8),
}

fn apply(g: &mut Graph, v: Var, op: PointOp) -> Var {
    match op {
        PointOp::Relu => g.relu(v),
        PointOp::Sigmoid => g.sigmoid(v),
        PointOp::Tanh => g.tanh(v),
        PointOp::Square => g.square(v),
        PointOp::Sin => g.sin(v),
        PointOp::Cos => g.cos(v),
        PointOp::Abs => g.abs(v),
        PointOp::AddScalar(s) => g.add_scalar(v, s as f32 * 0.1),
        PointOp::MulScalar(s) => g.mul_scalar(v, s as f32 * 0.1),
    }
}

fn op_strategy() -> impl Strategy<Value = PointOp> {
    prop_oneof![
        Just(PointOp::Relu),
        Just(PointOp::Sigmoid),
        Just(PointOp::Tanh),
        Just(PointOp::Square),
        Just(PointOp::Sin),
        Just(PointOp::Cos),
        Just(PointOp::Abs),
        any::<i8>().prop_map(PointOp::AddScalar),
        any::<i8>().prop_map(PointOp::MulScalar),
    ]
}

/// Evaluates `ops` applied to `data` and returns (value, analytic grad).
fn forward_backward(data: &[f32], ops: &[PointOp]) -> (f32, Vec<f32>) {
    let mut ps = ParamStore::new();
    let w = ps.insert("w", Tensor::from_vec([data.len()], data.to_vec()));
    let mut g = Graph::new();
    let mut v = g.param(&ps, w);
    for &op in ops {
        v = apply(&mut g, v, op);
    }
    let loss = g.sum_all(v);
    let grads = g.backward(loss);
    let grad = grads.get(w).map_or_else(|| vec![0.0; data.len()], |t| t.data().to_vec());
    (g.value(loss).item(), grad)
}

/// Is the chain differentiable at `x` for all its intermediate values?
/// (relu/abs have kinks at 0 where central differences disagree.)
fn away_from_kinks(data: &[f32], ops: &[PointOp]) -> bool {
    // Track values through the chain; require margin from each kink.
    let mut values: Vec<f32> = data.to_vec();
    for &op in ops {
        for v in &mut values {
            let x = *v;
            if matches!(op, PointOp::Relu | PointOp::Abs) && x.abs() < 5e-2 {
                return false;
            }
            *v = match op {
                PointOp::Relu => x.max(0.0),
                PointOp::Sigmoid => 1.0 / (1.0 + (-x).exp()),
                PointOp::Tanh => x.tanh(),
                PointOp::Square => x * x,
                PointOp::Sin => x.sin(),
                PointOp::Cos => x.cos(),
                PointOp::Abs => x.abs(),
                PointOp::AddScalar(s) => x + s as f32 * 0.1,
                PointOp::MulScalar(s) => x * s as f32 * 0.1,
            };
            if !v.is_finite() || v.abs() > 1e3 {
                return false;
            }
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_pointwise_chains_gradcheck(
        data in prop::collection::vec(-1.5f32..1.5, 1..6),
        ops in prop::collection::vec(op_strategy(), 1..5),
    ) {
        prop_assume!(away_from_kinks(&data, &ops));
        let (_, analytic) = forward_backward(&data, &ops);
        let eps = 1e-3f32;
        for i in 0..data.len() {
            let mut plus = data.clone();
            plus[i] += eps;
            let mut minus = data.clone();
            minus[i] -= eps;
            prop_assume!(away_from_kinks(&plus, &ops) && away_from_kinks(&minus, &ops));
            let (fp, _) = forward_backward(&plus, &ops);
            let (fm, _) = forward_backward(&minus, &ops);
            let numeric = (fp - fm) / (2.0 * eps);
            let a = analytic[i];
            let tol = 2e-2 * (1.0 + numeric.abs().max(a.abs()));
            prop_assert!(
                (numeric - a).abs() < tol,
                "ops {:?} at index {}: numeric {} vs analytic {}",
                ops, i, numeric, a
            );
        }
    }

    #[test]
    fn matmul_chain_gradcheck(
        a in prop::collection::vec(-1.0f32..1.0, 6),
        b in prop::collection::vec(-1.0f32..1.0, 6),
    ) {
        // loss = sum((A·B)²), grad wrt A checked numerically.
        let f = |a_data: &[f32]| -> (f32, Vec<f32>) {
            let mut ps = ParamStore::new();
            let w = ps.insert("a", Tensor::from_vec([2, 3], a_data.to_vec()));
            let mut g = Graph::new();
            let av = g.param(&ps, w);
            let bv = g.constant(Tensor::from_vec([3, 2], b.clone()));
            let prod = g.matmul(av, bv);
            let sq = g.square(prod);
            let loss = g.sum_all(sq);
            let grads = g.backward(loss);
            (g.value(loss).item(), grads.get(w).unwrap().data().to_vec())
        };
        let (_, analytic) = f(&a);
        let eps = 1e-3f32;
        for i in 0..a.len() {
            let mut plus = a.clone();
            plus[i] += eps;
            let mut minus = a.clone();
            minus[i] -= eps;
            let numeric = (f(&plus).0 - f(&minus).0) / (2.0 * eps);
            prop_assert!(
                (numeric - analytic[i]).abs() < 1e-2 * (1.0 + numeric.abs()),
                "index {i}: {numeric} vs {}", analytic[i]
            );
        }
    }

    #[test]
    fn backward_never_produces_nan_on_finite_inputs(
        data in prop::collection::vec(-3.0f32..3.0, 2..8),
        ops in prop::collection::vec(op_strategy(), 1..6),
    ) {
        let (_, grad) = forward_backward(&data, &ops);
        prop_assert!(grad.iter().all(|x| x.is_finite()), "{grad:?}");
    }

    #[test]
    fn gather_rows_grad_counts_duplicates(
        rows in 1usize..5,
        cols in 1usize..4,
        picks in prop::collection::vec(0usize..5, 1..8),
    ) {
        let picks: Vec<usize> = picks.into_iter().map(|p| p % rows).collect();
        let mut ps = ParamStore::new();
        let w = ps.insert("w", Tensor::ones([rows, cols]));
        let mut g = Graph::new();
        let wv = g.param(&ps, w);
        let sel = g.gather_rows(wv, &picks);
        let loss = g.sum_all(sel);
        let grads = g.backward(loss);
        let grad = grads.get(w).unwrap();
        // d(loss)/d(row i) = (times row i was picked) per element.
        for i in 0..rows {
            let expect = picks.iter().filter(|&&p| p == i).count() as f32;
            for c in 0..cols {
                prop_assert_eq!(grad.at(&[i, c]), expect);
            }
        }
    }
}
