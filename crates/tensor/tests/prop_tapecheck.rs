//! Property-based validation of the tape static analyzer: random valid
//! tapes built through the public constructors must analyze without a
//! single shape finding, and the abstract shape derived for every node
//! we hold a [`Var`] to must equal the executed one.

use dekg_tensor::tapecheck::{structure_key, tapecheck_with, TapeCache};
use dekg_tensor::{Graph, ParamStore, Tensor, Var};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Builds one random but well-formed tape. `choices` drives which op
/// each step records and which pool entries it consumes; every shape
/// is valid by construction because only the public eager constructors
/// are used. Returns the graph, the loss, and every Var we created.
fn build_tape(
    rows: usize,
    cols: usize,
    choices: &[(u8, u8, u8)],
) -> (Graph, ParamStore, Var, Vec<Var>) {
    let mut ps = ParamStore::new();
    let n = rows * cols;
    let init: Vec<f32> = (0..n).map(|i| (i as f32 * 0.31).sin() * 0.5).collect();
    let w = ps.insert("w", Tensor::from_vec(vec![rows, cols], init));
    let mut rng = ChaCha8Rng::seed_from_u64(11);

    let mut g = Graph::new();
    let mut all: Vec<Var> = Vec::new();
    let track = |v: Var, all: &mut Vec<Var>| {
        all.push(v);
        v
    };

    let mut mats: Vec<Var> = Vec::new();
    let mut vecs: Vec<Var> = Vec::new();
    let mut scalars: Vec<Var> = Vec::new();

    let c0 = {
        let data: Vec<f32> = (0..n).map(|i| (i as f32 * 0.7).cos() + 1.5).collect();
        g.constant(Tensor::from_vec(vec![rows, cols], data))
    };
    mats.push(track(c0, &mut all));
    mats.push(track(g.param(&ps, w), &mut all));

    for &(op, i, j) in choices {
        let a = mats[i as usize % mats.len()];
        let b = mats[j as usize % mats.len()];
        match op % 16 {
            0 => mats.push(track(g.add(a, b), &mut all)),
            1 => mats.push(track(g.sub(a, b), &mut all)),
            2 => mats.push(track(g.mul(a, b), &mut all)),
            3 => {
                // Keep the divisor provably non-zero.
                let sq = track(g.square(b), &mut all);
                let safe = track(g.add_scalar(sq, 1.0), &mut all);
                mats.push(track(g.div(a, safe), &mut all));
            }
            4 => mats.push(track(g.tanh(a), &mut all)),
            5 => mats.push(track(g.mul_scalar(a, 0.5 + f32::from(j) * 0.01), &mut all)),
            6 => {
                // Matmul against a fresh [cols, cols] constant keeps the
                // result in the matrix pool.
                let m: Vec<f32> = (0..cols * cols).map(|k| (k as f32 * 0.13).sin()).collect();
                let rhs = track(g.constant(Tensor::from_vec(vec![cols, cols], m)), &mut all);
                mats.push(track(g.matmul(a, rhs), &mut all));
            }
            7 => {
                let idx: Vec<usize> = (0..=usize::from(j) % rows).map(|k| k % rows).collect();
                let picked = track(g.gather_rows(a, &idx), &mut all);
                scalars.push(track(g.sum_all(picked), &mut all));
            }
            8 => vecs.push(track(g.sum_axis0(a), &mut all)),
            9 => vecs.push(track(g.sum_axis1(a), &mut all)),
            10 => vecs.push(track(g.reshape(a, [rows * cols]), &mut all)),
            11 => {
                let target = 1 + usize::from(j) % 3;
                let idx: Vec<usize> = (0..rows).map(|k| k % target).collect();
                let spread = track(g.scatter_add_rows(a, &idx, target), &mut all);
                scalars.push(track(g.mean_all(spread), &mut all));
            }
            12 => mats.push(track(g.dropout(a, 0.5, &mut rng), &mut all)),
            13 => {
                if let Some(&v) = vecs.last() {
                    let wide = track(g.broadcast_row(v, 2), &mut all);
                    scalars.push(track(g.sum_all(wide), &mut all));
                } else {
                    scalars.push(track(g.mean_all(a), &mut all));
                }
            }
            14 => {
                use dekg_tensor::tape::PAD;
                let flat = track(g.gather_flat(a, &[0, PAD], [2]), &mut all);
                scalars.push(track(g.sum_all(flat), &mut all));
            }
            _ => {
                let sq = track(g.square(a), &mut all);
                scalars.push(track(g.mean_all(sq), &mut all));
            }
        }
    }

    // Fold everything into one scalar loss: a couple of matrix sinks
    // plus every scalar produced along the way.
    scalars.push(track(g.sum_all(mats[mats.len() - 1]), &mut all));
    if let Some(&v) = vecs.first() {
        scalars.push(track(g.sum_all(v), &mut all));
    }
    let stacked = track(g.stack_scalars(&scalars), &mut all);
    let loss = track(g.sum_all(stacked), &mut all);
    (g, ps, loss, all)
}

proptest! {
    /// Abstract shape interpretation agrees with concrete execution
    /// node-for-node on random valid tapes, the analysis raises no
    /// errors, and the memory plan is internally consistent.
    #[test]
    fn abstract_shapes_match_executed_shapes(
        rows in 1usize..4,
        cols in 1usize..4,
        choices in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>()), 0..16),
    ) {
        let (g, ps, loss, all) = build_tape(rows, cols, &choices);
        let report = g.tapecheck_with_params(loss, &ps);

        // No shape pass finding of any kind: the abstract interpreter
        // re-derived and cross-checked every node against execution.
        prop_assert_eq!(report.errors(), 0, "diags: {:?}", report.diagnostics);
        prop_assert_eq!(report.shapes.len(), g.len());
        for v in &all {
            prop_assert!(
                report.shapes[v.index()].same_as(g.shape(*v)),
                "node {}: abstract {} != executed {}",
                v.index(), report.shapes[v.index()], g.shape(*v)
            );
        }

        // Memory-plan internal consistency: every node sits in a
        // buffer of exactly its own byte size, and the predicted peak
        // never exceeds keep-everything-alive.
        let plan = &report.plan;
        prop_assert_eq!(plan.buffer_of.len(), g.len());
        prop_assert_eq!(plan.last_use.len(), g.len());
        for v in &all {
            let id = v.index();
            prop_assert!(plan.buffer_of[id] < plan.num_buffers());
            prop_assert_eq!(
                plan.buffer_bytes[plan.buffer_of[id]],
                report.shapes[id].numel() * 4
            );
            prop_assert!(plan.last_use[id] >= id);
        }
        prop_assert!(plan.peak_live_bytes <= plan.total_value_bytes);

        // Re-analyzing the identical structure must hit the cache, and
        // the cached report must key identically.
        let mut cache = TapeCache::new();
        cache.analyze(&g, loss, &[], Some(&ps));
        cache.analyze(&g, loss, &[], Some(&ps));
        prop_assert_eq!((cache.hits(), cache.misses()), (1, 1));
        let _ = tapecheck_with(&g, loss, &[], Some(&ps));
        prop_assert_eq!(
            structure_key(&g, loss, &[], Some(&ps)),
            structure_key(&g, loss, &[], Some(&ps))
        );
    }
}
