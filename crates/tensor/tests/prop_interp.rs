//! Property-based differential testing: for random small graphs, the
//! pure-f64 reference interpreter must agree with the optimized f32
//! kernels on every forward value, and the textbook f64 reverse sweep
//! must agree with the tape's `backward()` on every parameter
//! gradient. `Graph::diff_check` performs both comparisons; the
//! property is that it finds nothing.
//!
//! No kink avoidance is needed (unlike the finite-difference
//! properties in `prop_autograd.rs`): both sides branch on the same
//! recorded values, so `Relu`/`Abs` at exactly zero still agree.

use dekg_tensor::{Graph, ParamStore, Tensor, Var};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Pointwise chain steps; `AddB`/`MulB` mix in a second parameter so
/// gradient accumulation across multiple uses is exercised.
#[derive(Debug, Clone, Copy)]
enum Step {
    Relu,
    Abs,
    Sigmoid,
    Tanh,
    Sin,
    Cos,
    Square,
    Neg,
    AddScalar(i8),
    MulScalar(i8),
    AddB,
    MulB,
    Dropout,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        Just(Step::Relu),
        Just(Step::Abs),
        Just(Step::Sigmoid),
        Just(Step::Tanh),
        Just(Step::Sin),
        Just(Step::Cos),
        Just(Step::Square),
        Just(Step::Neg),
        any::<i8>().prop_map(Step::AddScalar),
        any::<i8>().prop_map(Step::MulScalar),
        Just(Step::AddB),
        Just(Step::MulB),
        Just(Step::Dropout),
    ]
}

fn apply(g: &mut Graph, v: Var, b: Var, step: Step, dseed: u64) -> Var {
    match step {
        Step::Relu => g.relu(v),
        Step::Abs => g.abs(v),
        Step::Sigmoid => g.sigmoid(v),
        Step::Tanh => g.tanh(v),
        Step::Sin => g.sin(v),
        Step::Cos => g.cos(v),
        Step::Square => g.square(v),
        Step::Neg => g.neg(v),
        Step::AddScalar(s) => g.add_scalar(v, f32::from(s) * 0.1),
        Step::MulScalar(s) => g.mul_scalar(v, f32::from(s) * 0.1),
        Step::AddB => g.add(v, b),
        Step::MulB => g.mul(v, b),
        Step::Dropout => {
            let mut rng = ChaCha8Rng::seed_from_u64(dseed);
            g.dropout(v, 0.3, &mut rng)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn interpreter_matches_kernels_forward_and_backward(
        m in 1usize..4,
        n in 1usize..4,
        data in prop::collection::vec(-1.5f32..1.5, 9),
        bdata in prop::collection::vec(-1.5f32..1.5, 9),
        cdata in prop::collection::vec(-1.0f32..1.0, 6),
        steps in prop::collection::vec(step_strategy(), 0..5),
        structural in 0u8..4,
        reduce in 0u8..5,
        picks in prop::collection::vec(0usize..16, 1..5),
        dseed in any::<u64>(),
    ) {
        let mut ps = ParamStore::new();
        let a = ps.insert("a", Tensor::from_vec([m, n], data[..m * n].to_vec()));
        let b = ps.insert("b", Tensor::from_vec([m, n], bdata[..m * n].to_vec()));

        let mut g = Graph::new();
        let bv = g.param(&ps, b);
        let mut v = g.param(&ps, a);
        for (i, &s) in steps.iter().enumerate() {
            v = apply(&mut g, v, bv, s, dseed.wrapping_add(i as u64));
        }
        v = match structural {
            0 => v,
            1 => {
                let picks: Vec<usize> = picks.iter().map(|p| p % m).collect();
                g.gather_rows(v, &picks)
            }
            2 => g.concat_rows(&[v, v]),
            _ => {
                let c = g.constant(Tensor::from_vec([n, 2], cdata[..n * 2].to_vec()));
                g.matmul(v, c)
            }
        };
        let loss = match reduce {
            0 => g.sum_all(v),
            1 => g.mean_all(v),
            2 => {
                let s = g.sum_axis0(v);
                g.sum_all(s)
            }
            3 => {
                let s = g.sum_axis1(v);
                g.sum_all(s)
            }
            _ => {
                let s = g.mean_axis0(v);
                g.sum_all(s)
            }
        };

        let diags = g.diff_check(loss, Some(&ps));
        prop_assert!(
            diags.is_empty(),
            "steps {steps:?} structural {structural} reduce {reduce}: {diags:?}"
        );
    }
}
