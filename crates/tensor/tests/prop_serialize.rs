//! Property-based checkpoint roundtrip: arbitrary parameter stores
//! survive encode/decode bit-exactly, and arbitrary corruption never
//! produces a silently-wrong store.

use dekg_tensor::serialize::{decode, encode};
use dekg_tensor::{ParamStore, Tensor};
use proptest::prelude::*;

/// Strategy: a store with 0..6 parameters of random small shapes.
fn stores() -> impl Strategy<Value = ParamStore> {
    prop::collection::vec(
        (
            "[a-z]{1,12}",
            prop::collection::vec(1usize..5, 0..3), // dims (rank 0..2)
        ),
        0..6,
    )
    .prop_map(|entries| {
        let mut ps = ParamStore::new();
        let mut used = std::collections::HashSet::new();
        for (i, (name, dims)) in entries.into_iter().enumerate() {
            let name = if used.insert(name.clone()) { name } else { format!("{name}_{i}") };
            let numel: usize = dims.iter().product();
            let data: Vec<f32> = (0..numel).map(|k| (k as f32) * 0.5 - 1.0).collect();
            ps.insert(name, Tensor::from_vec(dims, data));
        }
        ps
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn roundtrip_is_exact(ps in stores()) {
        let bytes = encode(&ps);
        let back = decode(&bytes).expect("decode own encoding");
        prop_assert_eq!(back.len(), ps.len());
        for (_, name, value) in ps.iter() {
            let id = back.id_of(name).expect("name preserved");
            prop_assert_eq!(back.get(id), value);
        }
    }

    #[test]
    fn truncation_always_detected(ps in stores(), frac in 0.0f64..1.0) {
        let bytes = encode(&ps);
        let cut = ((bytes.len() as f64) * frac) as usize;
        if cut == bytes.len() {
            return Ok(());
        }
        // Any strict prefix must fail to decode (never a silent
        // partial store) — the format has no trailing slack.
        prop_assert!(decode(&bytes[..cut]).is_err(), "prefix of {cut} bytes decoded");
    }

    #[test]
    fn header_bitflips_detected(ps in stores(), byte in 0usize..8, bit in 0u8..8) {
        let mut bytes = encode(&ps).to_vec();
        if byte >= bytes.len() {
            return Ok(());
        }
        bytes[byte] ^= 1 << bit;
        // A flipped magic/version byte must be rejected; a flipped
        // count byte may decode fewer/more params only if it still
        // parses — but never panics.
        let _ = decode(&bytes);
    }
}
