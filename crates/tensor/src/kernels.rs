//! Raw numeric kernels on `f32` slices.
//!
//! These are the shared inner loops used by both the forward pass of
//! [`crate::Tensor`] methods and the backward pass in [`crate::tape`].
//! Keeping them as free functions over slices lets the backward sweep
//! reuse them without constructing intermediate `Tensor`s.

/// `out[i] = a[i] + b[i]`.
pub fn add(a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), b.len(), "add: operand lengths differ");
    debug_assert_eq!(a.len(), out.len(), "add: output length differs from operands");
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x + y;
    }
}

/// `out[i] += a[i]` — gradient accumulation.
pub fn add_assign(out: &mut [f32], a: &[f32]) {
    debug_assert_eq!(a.len(), out.len(), "add_assign: accumulator length differs from input");
    for (o, &x) in out.iter_mut().zip(a) {
        *o += x;
    }
}

/// `out[i] += s * a[i]`.
pub fn axpy(s: f32, a: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), out.len(), "axpy: accumulator length differs from input");
    for (o, &x) in out.iter_mut().zip(a) {
        *o += s * x;
    }
}

/// `out[i] = a[i] * b[i]`.
pub fn mul(a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), b.len(), "mul: operand lengths differ");
    debug_assert_eq!(a.len(), out.len(), "mul: output length differs from operands");
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x * y;
    }
}

/// `out[i] += a[i] * b[i]` — fused multiply-accumulate.
pub fn mul_acc(a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), b.len(), "mul_acc: operand lengths differ");
    debug_assert_eq!(a.len(), out.len(), "mul_acc: output length differs from operands");
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o += x * y;
    }
}

/// Dense row-major matrix multiply: `c[m,n] = a[m,k] * b[k,n]`.
///
/// Loop order (m, k, n) keeps the inner loop streaming over contiguous
/// rows of `b` and `c`, which the compiler auto-vectorizes.
///
/// Exact `0.0` entries of `a` are skipped (component tables and one-hot
/// features are sparse), so a zero left factor annihilates its term
/// even against non-finite `b` entries: `0 · Inf ≡ 0`, never `NaN`.
/// `k == 0` leaves `c` all zeros (empty-sum convention). Both behaviors
/// are contractual — the f64 reference interpreter replicates them.
pub fn matmul(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k, "matmul: lhs is not [{m}, {k}]");
    debug_assert_eq!(b.len(), k * n, "matmul: rhs is not [{k}, {n}]");
    debug_assert_eq!(c.len(), m * n, "matmul: output is not [{m}, {n}]");
    c.fill(0.0);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue; // component tables and one-hot features are sparse
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
                *c_v += a_ip * b_v;
            }
        }
    }
}

/// `c[m,n] += a[m,k] * b[k,n]` — accumulating variant for gradients.
///
/// Shares [`matmul`]'s zero-skip contract on `a`.
pub fn matmul_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k, "matmul_acc: lhs is not [{m}, {k}]");
    debug_assert_eq!(b.len(), k * n, "matmul_acc: rhs is not [{k}, {n}]");
    debug_assert_eq!(c.len(), m * n, "matmul_acc: output is not [{m}, {n}]");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
                *c_v += a_ip * b_v;
            }
        }
    }
}

/// `c[m,n] += a^T[m,k] * b[k,n]` where `a` is stored as `[k, m]`.
///
/// Used by matmul backward for the left operand without materializing a
/// transpose. Shares [`matmul`]'s zero-skip contract on `a`.
pub fn matmul_at_b_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m, "matmul_at_b_acc: lhs is not [{k}, {m}]");
    debug_assert_eq!(b.len(), k * n, "matmul_at_b_acc: rhs is not [{k}, {n}]");
    debug_assert_eq!(c.len(), m * n, "matmul_at_b_acc: output is not [{m}, {n}]");
    for p in 0..k {
        let a_row = &a[p * m..(p + 1) * m];
        let b_row = &b[p * n..(p + 1) * n];
        for (i, &a_pi) in a_row.iter().enumerate() {
            if a_pi == 0.0 {
                continue;
            }
            let c_row = &mut c[i * n..(i + 1) * n];
            for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
                *c_v += a_pi * b_v;
            }
        }
    }
}

/// `c[m,n] += a[m,k] * b^T[k,n]` where `b` is stored as `[n, k]`.
///
/// Used by matmul backward for the right operand. Unlike the other
/// matmul kernels this one performs a plain dot product per output
/// element with **no** zero skipping — its access pattern gains nothing
/// from sparsity — so non-finite values propagate unconditionally here.
pub fn matmul_a_bt_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k, "matmul_a_bt_acc: lhs is not [{m}, {k}]");
    debug_assert_eq!(b.len(), n * k, "matmul_a_bt_acc: rhs is not [{n}, {k}]");
    debug_assert_eq!(c.len(), m * n, "matmul_a_bt_acc: output is not [{m}, {n}]");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (j, c_v) in c_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            *c_v += acc;
        }
    }
}

/// Transposes a row-major `[m, n]` matrix into `out` as `[n, m]`.
pub fn transpose(a: &[f32], out: &mut [f32], m: usize, n: usize) {
    debug_assert_eq!(a.len(), m * n, "transpose: input is not [{m}, {n}]");
    debug_assert_eq!(out.len(), m * n, "transpose: output cannot hold [{n}, {m}]");
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = a[i * n + j];
        }
    }
}

/// Dot product.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dot: operand lengths differ");
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Squared L2 norm.
pub fn norm_sq(a: &[f32]) -> f32 {
    a.iter().map(|&x| x * x).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = [0.0; 4];
        matmul(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        // [1 2 3] (1x3) * [[1],[2],[3]] (3x1) = [14]
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 2.0, 3.0];
        let mut c = [0.0; 1];
        matmul(&a, &b, &mut c, 1, 3, 1);
        assert_eq!(c, [14.0]);
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // [3,2] -> a^T is [2,3]
        let b = [1.0, 0.0, 0.0, 1.0, 1.0, 1.0]; // [3,2]
        let mut at = [0.0; 6];
        transpose(&a, &mut at, 3, 2);
        let mut want = [0.0; 4];
        matmul(&at, &b, &mut want, 2, 3, 2);
        let mut got = [0.0; 4];
        matmul_at_b_acc(&a, &b, &mut got, 2, 3, 2);
        assert_eq!(got, want);
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let a = [1.0, 2.0, 3.0, 4.0]; // [2,2]
        let b = [5.0, 6.0, 7.0, 8.0]; // [2,2], b^T used
        let mut bt = [0.0; 4];
        transpose(&b, &mut bt, 2, 2);
        let mut want = [0.0; 4];
        matmul(&a, &bt, &mut want, 2, 2, 2);
        let mut got = [0.0; 4];
        matmul_a_bt_acc(&a, &b, &mut got, 2, 2, 2);
        assert_eq!(got, want);
    }

    #[test]
    fn transpose_roundtrip() {
        let a: Vec<f32> = (0..12).map(|x| x as f32).collect();
        let mut t = vec![0.0; 12];
        let mut back = vec![0.0; 12];
        transpose(&a, &mut t, 3, 4);
        transpose(&t, &mut back, 4, 3);
        assert_eq!(a, back);
    }

    #[test]
    fn axpy_accumulates() {
        let mut out = [1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut out);
        assert_eq!(out, [7.0, 9.0]);
    }
}
