//! Per-op kernel profiler for the autograd tape.
//!
//! A zero-cost-when-disabled execution hook: every eager op constructor
//! and every backward step in [`crate::Graph`] asks this module for a
//! [`ProfTimer`] (one relaxed atomic load when profiling is off, an
//! `Instant::now` when it is on) and, when the timer is live, folds its
//! elapsed wall time, one call, and the bytes it moved into a global
//! table indexed by the op's [`crate::ALL_OPS`] ordinal. Whole-tape
//! executions are additionally folded by their
//! [`crate::tapecheck::structure_key`], so repeated structurally
//! identical batches aggregate into one row instead of a stream.
//!
//! The profiler observes, never participates: it reads values already
//! computed and touches no RNG, so enabling it cannot change any
//! recorded tensor, gradient, or ranked output (the bitwise-determinism
//! contract). Wall-clock seconds are inherently run-dependent, but the
//! deterministic columns — call counts and bytes moved — are exact and
//! thread-invariant, because the table is a single mutex-guarded
//! accumulator of additive integers.
//!
//! ```
//! use dekg_tensor::{prof, Graph, Tensor};
//!
//! prof::reset();
//! prof::set_enabled(true);
//! let mut g = Graph::new();
//! let a = g.constant(Tensor::ones([4, 4]));
//! let b = g.matmul(a, a);
//! let _ = g.sum_all(b);
//! prof::set_enabled(false);
//!
//! let snap = prof::snapshot();
//! let matmul = snap.ops.iter().find(|o| o.op == "Matmul").unwrap();
//! assert_eq!(matmul.forward_calls, 1);
//! ```

use crate::check::ALL_OPS;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Number of distinct op kernels ([`ALL_OPS`] is the authority).
const NUM_OPS: usize = ALL_OPS.len();

/// One accumulator row: wall time, call count, bytes moved.
#[derive(Clone, Copy)]
struct OpStat {
    calls: u64,
    seconds: f64,
    bytes: u64,
}

const ZERO: OpStat = OpStat { calls: 0, seconds: 0.0, bytes: 0 };

impl OpStat {
    fn fold(&mut self, seconds: f64, bytes: u64) {
        self.calls += 1;
        self.seconds += seconds;
        self.bytes += bytes;
    }
}

/// Whole-tape accumulator row, keyed by tapecheck structure key.
#[derive(Clone, Copy)]
struct TapeStat {
    executions: u64,
    nodes: u64,
    seconds: f64,
}

struct Tables {
    forward: [OpStat; NUM_OPS],
    backward: [OpStat; NUM_OPS],
    tapes: BTreeMap<u64, TapeStat>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static TABLES: Mutex<Tables> = Mutex::new(Tables {
    forward: [ZERO; NUM_OPS],
    backward: [ZERO; NUM_OPS],
    tapes: BTreeMap::new(),
});

fn tables() -> std::sync::MutexGuard<'static, Tables> {
    // A panic while holding this lock leaves only partial telemetry
    // behind, never a broken invariant — recover instead of poisoning
    // every later profile.
    TABLES.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Turns the profiler on or off. Off (the default) costs one relaxed
/// atomic load per recorded op.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether op recording currently feeds the profile tables.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clears every accumulator (op rows and per-tape rows).
pub fn reset() {
    let mut t = tables();
    t.forward = [ZERO; NUM_OPS];
    t.backward = [ZERO; NUM_OPS];
    t.tapes.clear();
}

/// A possibly-armed stopwatch handed to the tape's recording hot path.
///
/// Created by `start`; `None` inside means profiling was off at
/// creation and every later step is a no-op.
pub struct ProfTimer(Option<Instant>);

impl ProfTimer {
    /// Elapsed time when the timer was armed, consuming the timer.
    pub(crate) fn finish(self) -> Option<Duration> {
        self.0.map(|t| t.elapsed())
    }
}

/// Starts a stopwatch if profiling is enabled (the single branch every
/// op pays when profiling is off).
#[inline]
pub(crate) fn start() -> ProfTimer {
    if ENABLED.load(Ordering::Relaxed) {
        ProfTimer(Some(Instant::now()))
    } else {
        ProfTimer(None)
    }
}

/// Folds one forward execution of op `ordinal` into the table.
pub(crate) fn record_forward(ordinal: usize, bytes: u64, elapsed: Duration) {
    tables().forward[ordinal].fold(elapsed.as_secs_f64(), bytes);
}

/// Folds one backward step through op `ordinal` into the table.
pub(crate) fn record_backward(ordinal: usize, bytes: u64, elapsed: Duration) {
    tables().backward[ordinal].fold(elapsed.as_secs_f64(), bytes);
}

/// Folds one whole-tape execution (record + backward) under its
/// [`crate::tapecheck::structure_key`], so structurally identical
/// batches aggregate into a single row.
pub fn record_tape(key: u64, nodes: u64, seconds: f64) {
    let mut t = tables();
    let row = t.tapes.entry(key).or_insert(TapeStat { executions: 0, nodes, seconds: 0.0 });
    row.executions += 1;
    row.seconds += seconds;
}

/// Aggregated profile of one op kernel, forward and backward.
#[derive(Debug, Clone)]
pub struct OpProfile {
    /// Op mnemonic from [`ALL_OPS`].
    pub op: &'static str,
    /// Forward executions recorded.
    pub forward_calls: u64,
    /// Wall time inside forward execution (eager value computation).
    pub forward_seconds: f64,
    /// Bytes moved forward: inputs read plus output written.
    pub forward_bytes: u64,
    /// Backward steps through nodes of this op.
    pub backward_calls: u64,
    /// Wall time inside those backward steps.
    pub backward_seconds: f64,
    /// Bytes of incoming gradient consumed by those steps.
    pub backward_bytes: u64,
}

impl OpProfile {
    /// Forward plus backward wall time.
    pub fn total_seconds(&self) -> f64 {
        self.forward_seconds + self.backward_seconds
    }

    /// Forward plus backward call count.
    pub fn total_calls(&self) -> u64 {
        self.forward_calls + self.backward_calls
    }
}

/// Aggregated profile of one tape structure (see [`record_tape`]).
#[derive(Debug, Clone, Copy)]
pub struct TapeProfile {
    /// The tapecheck structure key the executions folded under.
    pub key: u64,
    /// Executions (record + backward) of this structure.
    pub executions: u64,
    /// Nodes in one instance of the structure.
    pub nodes: u64,
    /// Total wall time across all executions.
    pub seconds: f64,
}

/// A point-in-time copy of the profiler's tables.
#[derive(Debug, Clone, Default)]
pub struct ProfSnapshot {
    /// Per-op rows with at least one call, sorted by descending total
    /// wall time (the hot-op order).
    pub ops: Vec<OpProfile>,
    /// Per-tape-structure rows in structure-key order.
    pub tapes: Vec<TapeProfile>,
}

impl ProfSnapshot {
    /// Wall time the profiler attributed to op kernels — the numerator
    /// of the coverage ratio against an enclosing tape-execution span.
    pub fn attributed_seconds(&self) -> f64 {
        self.ops.iter().map(OpProfile::total_seconds).sum()
    }

    /// Total op executions recorded (forward + backward).
    pub fn total_calls(&self) -> u64 {
        self.ops.iter().map(OpProfile::total_calls).sum()
    }

    /// Total bytes moved across all ops (forward + backward).
    pub fn total_bytes(&self) -> u64 {
        self.ops.iter().map(|o| o.forward_bytes + o.backward_bytes).sum()
    }
}

/// Snapshots the current tables (ops sorted hottest-first).
pub fn snapshot() -> ProfSnapshot {
    let t = tables();
    let mut ops: Vec<OpProfile> = (0..NUM_OPS)
        .filter(|&i| t.forward[i].calls > 0 || t.backward[i].calls > 0)
        .map(|i| OpProfile {
            op: ALL_OPS[i],
            forward_calls: t.forward[i].calls,
            forward_seconds: t.forward[i].seconds,
            forward_bytes: t.forward[i].bytes,
            backward_calls: t.backward[i].calls,
            backward_seconds: t.backward[i].seconds,
            backward_bytes: t.backward[i].bytes,
        })
        .collect();
    // Stable tie-break on the ordinal-ordered input keeps equal-time
    // rows (e.g. two never-hot ops at 0.0s) in deterministic order.
    ops.sort_by(|a, b| b.total_seconds().total_cmp(&a.total_seconds()));
    let tapes = t
        .tapes
        .iter()
        .map(|(&key, s)| TapeProfile {
            key,
            executions: s.executions,
            nodes: s.nodes,
            seconds: s.seconds,
        })
        .collect();
    ProfSnapshot { ops, tapes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;
    use crate::Graph;

    /// The profiler tables are global; serialize the tests that assert
    /// on their contents.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let _guard = lock();
        reset();
        set_enabled(false);
        let mut g = Graph::new();
        let a = g.constant(Tensor::ones([3, 3]));
        let _ = g.matmul(a, a);
        let snap = snapshot();
        assert!(snap.ops.is_empty(), "rows recorded while disabled: {:?}", snap.ops);
    }

    #[test]
    fn forward_and_backward_rows_fold() {
        let _guard = lock();
        reset();
        set_enabled(true);
        let mut ps = crate::ParamStore::new();
        let w = ps.insert("w", Tensor::ones([2, 2]));
        let mut g = Graph::new();
        let wv = g.param(&ps, w);
        let prod = g.matmul(wv, wv);
        let loss = g.sum_all(prod);
        let _ = g.backward(loss);
        set_enabled(false);

        let snap = snapshot();
        let row = |name: &str| {
            snap.ops
                .iter()
                .find(|o| o.op == name)
                .unwrap_or_else(|| panic!("no {name} row in {:?}", snap.ops))
                .clone()
        };
        let mm = row("Matmul");
        assert_eq!(mm.forward_calls, 1);
        assert_eq!(mm.backward_calls, 1);
        // 2x2 f32 inputs (x2) + 2x2 output = 48 bytes forward; the
        // backward step consumes the 2x2 incoming gradient (16 bytes).
        assert_eq!(mm.forward_bytes, 48);
        assert_eq!(mm.backward_bytes, 16);
        let leaf = row("Param");
        assert_eq!(leaf.forward_calls, 1);
        // The Param leaf's backward step routes into the GradStore.
        assert_eq!(leaf.backward_calls, 1);
        assert!(snap.attributed_seconds() >= 0.0);
        assert!(snap.total_calls() >= 6);
    }

    #[test]
    fn profiling_does_not_change_values() {
        let _guard = lock();
        let run = |on: bool| -> (Vec<f32>, Vec<f32>) {
            reset();
            set_enabled(on);
            let mut ps = crate::ParamStore::new();
            let w = ps.insert("w", Tensor::from_vec([2, 2], vec![0.5, -1.0, 2.0, 0.25]));
            let mut g = Graph::new();
            let wv = g.param(&ps, w);
            let sq = g.square(wv);
            let s = g.sigmoid(sq);
            let loss = g.mean_all(s);
            let grads = g.backward(loss);
            set_enabled(false);
            (
                g.value(loss).data().to_vec(),
                grads.get(w).map(|t| t.data().to_vec()).unwrap_or_default(),
            )
        };
        let off = run(false);
        let on = run(true);
        // Bitwise equality, not approximate: the profiler must observe
        // without participating.
        assert_eq!(
            off.0.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            on.0.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(
            off.1.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            on.1.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn tape_rows_fold_by_structure_key() {
        let _guard = lock();
        reset();
        record_tape(42, 100, 0.5);
        record_tape(42, 100, 0.25);
        record_tape(7, 10, 0.1);
        let snap = snapshot();
        assert_eq!(snap.tapes.len(), 2);
        assert_eq!(snap.tapes[0].key, 7);
        let folded = snap.tapes[1];
        assert_eq!(folded.executions, 2);
        assert_eq!(folded.nodes, 100);
        assert!((folded.seconds - 0.75).abs() < 1e-12);
        reset();
        assert!(snapshot().tapes.is_empty());
    }
}
