//! dekg-grad passes 2 and 3: finite-difference gradient checking and
//! the op-coverage audit.
//!
//! [`check_fn`] is the harness: it records a tape once, takes analytic
//! gradients via [`Graph::backward`], runs the
//! [`f64` reference interpreter](crate::interp) over the same tape (so
//! every gradcheck doubles as a differential test of the optimized
//! kernels), and then verifies each parameter coordinate against a
//! central finite difference `(f(x+ε) − f(x−ε)) / 2ε` with a
//! per-coordinate adaptive step `ε = eps_scale · (1 + |x|)`.
//!
//! [`registry`] holds one [`OpCheck`] per `Op` variant, each building a
//! randomized small tape in that op's valid domain (kinked ops like
//! `Relu`/`Abs` keep inputs away from the kink; `Ln`/`Sqrt` stay
//! strictly positive; `Div` denominators stay away from zero — central
//! differences are meaningless across a non-differentiable point).
//! [`coverage_gaps`] diffs the registry against
//! [`crate::check::ALL_OPS`], whose companion
//! `op_ordinal` match is exhaustive, so adding an `Op` variant without
//! registering a gradcheck fails the audit at compile-or-test time.

use crate::check::{Diagnostic, ALL_OPS};
use crate::params::ParamStore;
use crate::tape::{Graph, Var, PAD};
use crate::tensor::Tensor;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeSet;

/// Finite-difference settings for [`check_fn`].
#[derive(Debug, Clone, Copy)]
pub struct FdConfig {
    /// Relative step size: `ε = eps_scale · (1 + |x|)`. The default is
    /// near the `f32` sweet spot `∛ε₃₂ ≈ 5e-3` balancing truncation
    /// against cancellation error.
    pub eps_scale: f32,
    /// Relative tolerance on `|fd − analytic|`, scaled by the larger
    /// magnitude of the two.
    pub rel_tol: f64,
    /// Absolute tolerance floor.
    pub abs_tol: f64,
}

impl Default for FdConfig {
    fn default() -> Self {
        FdConfig { eps_scale: 5e-3, rel_tol: 2e-2, abs_tol: 2e-3 }
    }
}

/// One named input to [`check_fn`]: `(parameter name, shape, data)`.
pub type FdInput = (&'static str, Vec<usize>, Vec<f32>);

/// Gradient-checks a scalar-valued function of named parameters.
///
/// `build` must be deterministic: it is re-invoked for every
/// perturbed evaluation and has to record the same tape each time
/// (ops with internal randomness, like dropout, must reseed their own
/// RNG inside the closure). Returns a description of the first failure,
/// covering analytic-vs-FD disagreement, reference-interpreter
/// disagreement, and non-scalar or non-finite losses.
///
/// # Errors
/// Returns `Err` with a human-readable description on any mismatch.
pub fn check_fn(
    inputs: &[FdInput],
    build: &dyn Fn(&mut Graph, &ParamStore) -> Var,
    cfg: &FdConfig,
) -> Result<(), String> {
    let mut ps = ParamStore::new();
    let ids: Vec<_> = inputs
        .iter()
        .map(|(name, shape, data)| ps.insert(*name, Tensor::from_vec(shape.clone(), data.clone())))
        .collect();

    let eval = |ps: &ParamStore| -> Result<f64, String> {
        let mut g = Graph::new();
        let loss = build(&mut g, ps);
        if g.value(loss).numel() != 1 {
            return Err(format!("loss must be scalar, got shape {}", g.shape(loss)));
        }
        let l = f64::from(g.value(loss).data()[0]);
        if !l.is_finite() {
            return Err(format!("loss is not finite: {l}"));
        }
        Ok(l)
    };

    // Analytic gradients + the reference-interpreter differential test
    // over the exact tape being finite-differenced.
    let mut g = Graph::new();
    let loss = build(&mut g, &ps);
    if g.value(loss).numel() != 1 {
        return Err(format!("loss must be scalar, got shape {}", g.shape(loss)));
    }
    let diags = g.diff_check(loss, Some(&ps));
    if !diags.is_empty() {
        return Err(format!("reference interpreter disagrees: {}", diags[0]));
    }
    let grads = g.backward(loss);

    for (&id, (name, _, _)) in ids.iter().zip(inputs) {
        let n = ps.get(id).numel();
        for i in 0..n {
            let orig = ps.get(id).data()[i];
            let eps = cfg.eps_scale * (1.0 + orig.abs());
            ps.get_mut(id).data_mut()[i] = orig + eps;
            let hi = ps.get(id).data()[i];
            let lp = eval(&ps)?;
            ps.get_mut(id).data_mut()[i] = orig - eps;
            let lo = ps.get(id).data()[i];
            let lm = eval(&ps)?;
            ps.get_mut(id).data_mut()[i] = orig;

            // Use the step that was actually representable in f32.
            let denom = f64::from(hi) - f64::from(lo);
            let fd = (lp - lm) / denom;
            let an = grads.get(id).map_or(0.0, |t| f64::from(t.data()[i]));
            let tol = cfg.abs_tol + cfg.rel_tol * fd.abs().max(an.abs());
            if !(fd - an).abs().le(&tol) {
                return Err(format!(
                    "parameter {name} element {i}: analytic {an:e} vs central difference {fd:e} \
                     (|Δ| {:e} > tolerance {tol:e})",
                    (fd - an).abs()
                ));
            }
        }
    }
    Ok(())
}

/// A registered gradcheck for one `Op` variant.
pub struct OpCheck {
    /// The op mnemonic, matching an entry of [`ALL_OPS`].
    pub op: &'static str,
    /// Builds a randomized small tape exercising the op and runs
    /// [`check_fn`] on it.
    pub run: fn(&mut ChaCha8Rng) -> Result<(), String>,
}

fn uniform(rng: &mut ChaCha8Rng, n: usize, lo: f32, hi: f32) -> Vec<f32> {
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// Values with `min_mag ≤ |x|`, both signs: safe for kinked ops and
/// divisors under the default FD step.
fn away_from_zero(rng: &mut ChaCha8Rng, n: usize, min_mag: f32, max_mag: f32) -> Vec<f32> {
    (0..n)
        .map(|_| {
            let mag = rng.gen_range(min_mag..max_mag);
            if rng.gen::<bool>() {
                mag
            } else {
                -mag
            }
        })
        .collect()
}

/// Reduces `y` to a scalar through a random positive weighting, so
/// every output position contributes a *distinct* gradient — a routing
/// bug in a movement op cannot cancel out.
fn weighted(g: &mut Graph, y: Var, rng: &mut ChaCha8Rng) -> Var {
    let n = g.value(y).numel();
    let w = Tensor::from_vec(g.shape(y).clone(), uniform(rng, n, 0.5, 1.5));
    let c = g.constant(w);
    let p = g.mul(y, c);
    g.sum_all(p)
}

/// One-input elementwise check: `loss = Σ wᵢ · op(x)ᵢ`.
fn unary_check(
    rng: &mut ChaCha8Rng,
    data: Vec<f32>,
    op: impl Fn(&mut Graph, Var) -> Var,
) -> Result<(), String> {
    let n = data.len();
    let wseed = rng.gen::<u64>();
    check_fn(
        &[("x", vec![n], data)],
        &|g, ps| {
            let x = g.param(ps, ps.id_of("x").unwrap());
            let y = op(&mut *g, x);
            let mut wrng = ChaCha8Rng::seed_from_u64(wseed);
            weighted(g, y, &mut wrng)
        },
        &FdConfig::default(),
    )
}

/// Two-input elementwise check over `[m, n]` operands.
fn binary_check(
    rng: &mut ChaCha8Rng,
    a: Vec<f32>,
    b: Vec<f32>,
    shape: Vec<usize>,
    op: impl Fn(&mut Graph, Var, Var) -> Var,
) -> Result<(), String> {
    let wseed = rng.gen::<u64>();
    check_fn(
        &[("a", shape.clone(), a), ("b", shape, b)],
        &|g, ps| {
            let a = g.param(ps, ps.id_of("a").unwrap());
            let b = g.param(ps, ps.id_of("b").unwrap());
            let y = op(&mut *g, a, b);
            let mut wrng = ChaCha8Rng::seed_from_u64(wseed);
            weighted(g, y, &mut wrng)
        },
        &FdConfig::default(),
    )
}

fn rand_matrix_shape(rng: &mut ChaCha8Rng) -> (usize, usize) {
    (rng.gen_range(1..4), rng.gen_range(1..4))
}

#[allow(clippy::too_many_lines)] // one registration per op variant, by design
fn registry_impl() -> Vec<OpCheck> {
    vec![
        OpCheck {
            op: "Param",
            run: |rng| {
                let data = uniform(rng, 5, -1.0, 1.0);
                unary_check(rng, data, |_, x| x)
            },
        },
        OpCheck {
            op: "Constant",
            run: |rng| {
                let data = uniform(rng, 4, -1.0, 1.0);
                let cdata = uniform(rng, 4, 0.5, 1.5);
                let wseed = rng.gen::<u64>();
                check_fn(
                    &[("x", vec![4], data)],
                    &{
                        let cdata = cdata.clone();
                        move |g: &mut Graph, ps: &ParamStore| {
                            let x = g.param(ps, ps.id_of("x").unwrap());
                            let c = g.constant(Tensor::from_vec(vec![4], cdata.clone()));
                            let y = g.mul(x, c);
                            let mut wrng = ChaCha8Rng::seed_from_u64(wseed);
                            weighted(g, y, &mut wrng)
                        }
                    },
                    &FdConfig::default(),
                )
            },
        },
        OpCheck {
            op: "Add",
            run: |rng| {
                let (m, n) = rand_matrix_shape(rng);
                let a = uniform(rng, m * n, -1.0, 1.0);
                let b = uniform(rng, m * n, -1.0, 1.0);
                binary_check(rng, a, b, vec![m, n], Graph::add)
            },
        },
        OpCheck {
            op: "Sub",
            run: |rng| {
                let (m, n) = rand_matrix_shape(rng);
                let a = uniform(rng, m * n, -1.0, 1.0);
                let b = uniform(rng, m * n, -1.0, 1.0);
                binary_check(rng, a, b, vec![m, n], Graph::sub)
            },
        },
        OpCheck {
            op: "Mul",
            run: |rng| {
                let (m, n) = rand_matrix_shape(rng);
                let a = uniform(rng, m * n, -1.0, 1.0);
                let b = uniform(rng, m * n, -1.0, 1.0);
                binary_check(rng, a, b, vec![m, n], Graph::mul)
            },
        },
        OpCheck {
            op: "Div",
            run: |rng| {
                let (m, n) = rand_matrix_shape(rng);
                let a = uniform(rng, m * n, -1.0, 1.0);
                let b = away_from_zero(rng, m * n, 0.5, 1.5);
                binary_check(rng, a, b, vec![m, n], Graph::div)
            },
        },
        OpCheck {
            op: "Neg",
            run: |rng| {
                let data = uniform(rng, 6, -1.0, 1.0);
                unary_check(rng, data, Graph::neg)
            },
        },
        OpCheck {
            op: "AddScalar",
            run: |rng| {
                let data = uniform(rng, 5, -1.0, 1.0);
                let s = rng.gen_range(-2.0..2.0);
                unary_check(rng, data, move |g, x| g.add_scalar(x, s))
            },
        },
        OpCheck {
            op: "MulScalar",
            run: |rng| {
                let data = uniform(rng, 5, -1.0, 1.0);
                let s = rng.gen_range(0.5..2.0);
                unary_check(rng, data, move |g, x| g.mul_scalar(x, s))
            },
        },
        OpCheck {
            op: "Matmul",
            run: |rng| {
                let (m, k) = rand_matrix_shape(rng);
                let n = rng.gen_range(1..4);
                let mut a = uniform(rng, m * k, -1.0, 1.0);
                // Exercise the kernel's 0.0-skip path.
                a[0] = 0.0;
                let b = uniform(rng, k * n, -1.0, 1.0);
                let wseed = rng.gen::<u64>();
                check_fn(
                    &[("a", vec![m, k], a), ("b", vec![k, n], b)],
                    &|g, ps| {
                        let a = g.param(ps, ps.id_of("a").unwrap());
                        let b = g.param(ps, ps.id_of("b").unwrap());
                        let y = g.matmul(a, b);
                        let mut wrng = ChaCha8Rng::seed_from_u64(wseed);
                        weighted(g, y, &mut wrng)
                    },
                    &FdConfig::default(),
                )
            },
        },
        OpCheck {
            op: "GatherRows",
            run: |rng| {
                let cols = rng.gen_range(1..4);
                let data = uniform(rng, 4 * cols, -1.0, 1.0);
                // Duplicate rows must accumulate gradient.
                let idx = vec![2, 0, 2, rng.gen_range(0..4)];
                let wseed = rng.gen::<u64>();
                check_fn(
                    &[("x", vec![4, cols], data)],
                    &move |g, ps| {
                        let x = g.param(ps, ps.id_of("x").unwrap());
                        let y = g.gather_rows(x, &idx);
                        let mut wrng = ChaCha8Rng::seed_from_u64(wseed);
                        weighted(g, y, &mut wrng)
                    },
                    &FdConfig::default(),
                )
            },
        },
        OpCheck {
            op: "GatherFlat",
            run: |rng| {
                let data = uniform(rng, 6, -1.0, 1.0);
                // PAD offsets read 0.0 and must route no gradient;
                // offset 1 repeats, so its gradient accumulates.
                let idx = vec![PAD, 1, rng.gen_range(0..6), PAD, 1, 4];
                let wseed = rng.gen::<u64>();
                check_fn(
                    &[("x", vec![2, 3], data)],
                    &move |g, ps| {
                        let x = g.param(ps, ps.id_of("x").unwrap());
                        let y = g.gather_flat(x, &idx, [2, 3]);
                        let mut wrng = ChaCha8Rng::seed_from_u64(wseed);
                        weighted(g, y, &mut wrng)
                    },
                    &FdConfig::default(),
                )
            },
        },
        OpCheck {
            op: "Reshape",
            run: |rng| {
                let data = uniform(rng, 6, -1.0, 1.0);
                let wseed = rng.gen::<u64>();
                check_fn(
                    &[("x", vec![2, 3], data)],
                    &|g, ps| {
                        let x = g.param(ps, ps.id_of("x").unwrap());
                        let y = g.reshape(x, [3, 2]);
                        let mut wrng = ChaCha8Rng::seed_from_u64(wseed);
                        weighted(g, y, &mut wrng)
                    },
                    &FdConfig::default(),
                )
            },
        },
        OpCheck {
            op: "ConcatRows",
            run: |rng| {
                let cols = rng.gen_range(1..4);
                let a = uniform(rng, cols, -1.0, 1.0);
                let b = uniform(rng, 2 * cols, -1.0, 1.0);
                let wseed = rng.gen::<u64>();
                check_fn(
                    &[("a", vec![1, cols], a), ("b", vec![2, cols], b)],
                    &|g, ps| {
                        let a = g.param(ps, ps.id_of("a").unwrap());
                        let b = g.param(ps, ps.id_of("b").unwrap());
                        let y = g.concat_rows(&[a, b]);
                        let mut wrng = ChaCha8Rng::seed_from_u64(wseed);
                        weighted(g, y, &mut wrng)
                    },
                    &FdConfig::default(),
                )
            },
        },
        OpCheck {
            op: "ConcatCols",
            run: |rng| {
                let rows = rng.gen_range(1..4);
                let a = uniform(rng, rows, -1.0, 1.0);
                let b = uniform(rng, 2 * rows, -1.0, 1.0);
                let wseed = rng.gen::<u64>();
                check_fn(
                    &[("a", vec![rows, 1], a), ("b", vec![rows, 2], b)],
                    &|g, ps| {
                        let a = g.param(ps, ps.id_of("a").unwrap());
                        let b = g.param(ps, ps.id_of("b").unwrap());
                        let y = g.concat_cols(&[a, b]);
                        let mut wrng = ChaCha8Rng::seed_from_u64(wseed);
                        weighted(g, y, &mut wrng)
                    },
                    &FdConfig::default(),
                )
            },
        },
        OpCheck {
            op: "SumAll",
            run: |rng| {
                let data = uniform(rng, 6, -1.0, 1.0);
                let cdata = uniform(rng, 6, 0.5, 1.5);
                check_fn(
                    &[("x", vec![2, 3], data)],
                    &move |g, ps| {
                        let x = g.param(ps, ps.id_of("x").unwrap());
                        let c = g.constant(Tensor::from_vec(vec![2, 3], cdata.clone()));
                        let y = g.mul(x, c);
                        g.sum_all(y)
                    },
                    &FdConfig::default(),
                )
            },
        },
        OpCheck {
            op: "MeanAll",
            run: |rng| {
                let data = uniform(rng, 6, -1.0, 1.0);
                let cdata = uniform(rng, 6, 0.5, 1.5);
                check_fn(
                    &[("x", vec![2, 3], data)],
                    &move |g, ps| {
                        let x = g.param(ps, ps.id_of("x").unwrap());
                        let c = g.constant(Tensor::from_vec(vec![2, 3], cdata.clone()));
                        let y = g.mul(x, c);
                        g.mean_all(y)
                    },
                    &FdConfig::default(),
                )
            },
        },
        OpCheck {
            op: "SumAxis0",
            run: |rng| {
                let (m, n) = rand_matrix_shape(rng);
                let data = uniform(rng, m * n, -1.0, 1.0);
                let wseed = rng.gen::<u64>();
                check_fn(
                    &[("x", vec![m, n], data)],
                    &move |g, ps| {
                        let x = g.param(ps, ps.id_of("x").unwrap());
                        let y = g.sum_axis0(x);
                        let mut wrng = ChaCha8Rng::seed_from_u64(wseed);
                        weighted(g, y, &mut wrng)
                    },
                    &FdConfig::default(),
                )
            },
        },
        OpCheck {
            op: "SumAxis1",
            run: |rng| {
                let (m, n) = rand_matrix_shape(rng);
                let data = uniform(rng, m * n, -1.0, 1.0);
                let wseed = rng.gen::<u64>();
                check_fn(
                    &[("x", vec![m, n], data)],
                    &move |g, ps| {
                        let x = g.param(ps, ps.id_of("x").unwrap());
                        let y = g.sum_axis1(x);
                        let mut wrng = ChaCha8Rng::seed_from_u64(wseed);
                        weighted(g, y, &mut wrng)
                    },
                    &FdConfig::default(),
                )
            },
        },
        OpCheck {
            op: "MeanAxis0",
            run: |rng| {
                let (m, n) = rand_matrix_shape(rng);
                let data = uniform(rng, m * n, -1.0, 1.0);
                let wseed = rng.gen::<u64>();
                check_fn(
                    &[("x", vec![m, n], data)],
                    &move |g, ps| {
                        let x = g.param(ps, ps.id_of("x").unwrap());
                        let y = g.mean_axis0(x);
                        let mut wrng = ChaCha8Rng::seed_from_u64(wseed);
                        weighted(g, y, &mut wrng)
                    },
                    &FdConfig::default(),
                )
            },
        },
        OpCheck {
            op: "Relu",
            run: |rng| {
                let data = away_from_zero(rng, 6, 0.2, 1.5);
                unary_check(rng, data, Graph::relu)
            },
        },
        OpCheck {
            op: "Sigmoid",
            run: |rng| {
                let data = uniform(rng, 6, -2.0, 2.0);
                unary_check(rng, data, Graph::sigmoid)
            },
        },
        OpCheck {
            op: "Tanh",
            run: |rng| {
                let data = uniform(rng, 6, -2.0, 2.0);
                unary_check(rng, data, Graph::tanh)
            },
        },
        OpCheck {
            op: "Sqrt",
            run: |rng| {
                let data = uniform(rng, 6, 0.3, 2.0);
                unary_check(rng, data, Graph::sqrt)
            },
        },
        OpCheck {
            op: "Exp",
            run: |rng| {
                let data = uniform(rng, 6, -1.0, 1.0);
                unary_check(rng, data, Graph::exp)
            },
        },
        OpCheck {
            op: "Ln",
            run: |rng| {
                let data = uniform(rng, 6, 0.5, 2.0);
                unary_check(rng, data, Graph::ln)
            },
        },
        OpCheck {
            op: "Sin",
            run: |rng| {
                let data = uniform(rng, 6, -3.0, 3.0);
                unary_check(rng, data, Graph::sin)
            },
        },
        OpCheck {
            op: "Cos",
            run: |rng| {
                let data = uniform(rng, 6, -3.0, 3.0);
                unary_check(rng, data, Graph::cos)
            },
        },
        OpCheck {
            op: "Square",
            run: |rng| {
                let data = uniform(rng, 6, -1.5, 1.5);
                unary_check(rng, data, Graph::square)
            },
        },
        OpCheck {
            op: "Abs",
            run: |rng| {
                let data = away_from_zero(rng, 6, 0.2, 1.5);
                unary_check(rng, data, Graph::abs)
            },
        },
        OpCheck {
            op: "Dropout",
            run: |rng| {
                let data = uniform(rng, 12, -1.0, 1.0);
                let mask_seed = rng.gen::<u64>();
                let wseed = rng.gen::<u64>();
                check_fn(
                    &[("x", vec![3, 4], data)],
                    // The mask must be identical across perturbed
                    // evaluations, so the closure reseeds its own RNG.
                    &move |g, ps| {
                        let x = g.param(ps, ps.id_of("x").unwrap());
                        let mut mrng = ChaCha8Rng::seed_from_u64(mask_seed);
                        let y = g.dropout(x, 0.35, &mut mrng);
                        let mut wrng = ChaCha8Rng::seed_from_u64(wseed);
                        weighted(g, y, &mut wrng)
                    },
                    &FdConfig::default(),
                )
            },
        },
        OpCheck {
            op: "StackScalars",
            run: |rng| {
                let a = uniform(rng, 2, -1.0, 1.0);
                let b = uniform(rng, 3, -1.0, 1.0);
                let wseed = rng.gen::<u64>();
                check_fn(
                    &[("a", vec![2], a), ("b", vec![3], b)],
                    &|g, ps| {
                        let a = g.param(ps, ps.id_of("a").unwrap());
                        let b = g.param(ps, ps.id_of("b").unwrap());
                        let s1 = g.sum_all(a);
                        let s2 = g.mean_all(b);
                        let y = g.stack_scalars(&[s1, s2]);
                        let mut wrng = ChaCha8Rng::seed_from_u64(wseed);
                        weighted(g, y, &mut wrng)
                    },
                    &FdConfig::default(),
                )
            },
        },
        OpCheck {
            op: "ScatterAddRows",
            run: |rng| {
                let cols = rng.gen_range(1..4);
                let data = uniform(rng, 4 * cols, -1.0, 1.0);
                // Rows 0 and 2 both land on output row 1: the
                // duplicate-index accumulation path.
                let idx = vec![1, 0, 1, rng.gen_range(0..3)];
                let wseed = rng.gen::<u64>();
                check_fn(
                    &[("x", vec![4, cols], data)],
                    &move |g, ps| {
                        let x = g.param(ps, ps.id_of("x").unwrap());
                        let y = g.scatter_add_rows(x, &idx, 3);
                        let mut wrng = ChaCha8Rng::seed_from_u64(wseed);
                        weighted(g, y, &mut wrng)
                    },
                    &FdConfig::default(),
                )
            },
        },
        OpCheck {
            op: "BroadcastRow",
            run: |rng| {
                let d = rng.gen_range(1..5);
                let data = uniform(rng, d, -1.0, 1.0);
                let rows = rng.gen_range(1..4);
                let wseed = rng.gen::<u64>();
                check_fn(
                    &[("x", vec![d], data)],
                    &move |g, ps| {
                        let x = g.param(ps, ps.id_of("x").unwrap());
                        let y = g.broadcast_row(x, rows);
                        let mut wrng = ChaCha8Rng::seed_from_u64(wseed);
                        weighted(g, y, &mut wrng)
                    },
                    &FdConfig::default(),
                )
            },
        },
    ]
}

/// The gradcheck registry: one [`OpCheck`] per `Op` variant.
pub fn registry() -> Vec<OpCheck> {
    registry_impl()
}

/// Diffs an op list against a registration list. Both directions are
/// gaps: an op without a check can land unverified, a check without an
/// op is a stale registration.
fn gaps_between(ops: &[&str], registered: &[&str]) -> Vec<String> {
    let have: BTreeSet<&str> = registered.iter().copied().collect();
    let known: BTreeSet<&str> = ops.iter().copied().collect();
    let mut gaps: Vec<String> =
        known.difference(&have).map(|s| format!("op {s} has no registered gradcheck")).collect();
    gaps.extend(
        have.difference(&known).map(|s| format!("gradcheck {s} matches no known op variant")),
    );
    gaps
}

/// The coverage audit: every variant of the `Op` enum (as enumerated by
/// the exhaustive [`ALL_OPS`] table) must have a registered gradcheck,
/// and every registration must name a real variant. Empty means fully
/// covered.
pub fn coverage_gaps() -> Vec<String> {
    let reg = registry();
    let names: Vec<&str> = reg.iter().map(|c| c.op).collect();
    gaps_between(ALL_OPS, &names)
}

/// Runs the coverage audit plus every registered gradcheck, reporting
/// failures as [`Diagnostic`] errors (`gradcheck-uncovered`,
/// `gradcheck-failed`). Each op draws from its own seeded RNG, so runs
/// are deterministic for a given `seed` and independent of registry
/// order.
pub fn run_all(seed: u64) -> Vec<Diagnostic> {
    let mut out: Vec<Diagnostic> = coverage_gaps()
        .into_iter()
        .map(|m| Diagnostic::error("gradcheck-uncovered", None, "gradcheck", m))
        .collect();
    for c in registry() {
        // FNV-1a over the mnemonic decorrelates per-op streams.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in c.op.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ h);
        if let Err(e) = (c.run)(&mut rng) {
            out.push(Diagnostic::error("gradcheck-failed", None, c.op, e));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The audit itself: every op variant is covered, right now.
    #[test]
    fn every_op_variant_has_a_gradcheck() {
        let gaps = coverage_gaps();
        assert!(gaps.is_empty(), "coverage gaps: {gaps:?}");
    }

    /// Adding a new op variant without a gradcheck must fail the audit
    /// (simulated by extending the op table with a dummy variant).
    #[test]
    fn unregistered_op_variant_fails_the_audit() {
        let mut ops: Vec<&str> = ALL_OPS.to_vec();
        ops.push("DummyNewOp");
        let reg = registry();
        let names: Vec<&str> = reg.iter().map(|c| c.op).collect();
        let gaps = gaps_between(&ops, &names);
        assert_eq!(gaps, vec!["op DummyNewOp has no registered gradcheck".to_string()]);
    }

    /// A registration that names no real op is also a gap.
    #[test]
    fn stale_registration_fails_the_audit() {
        let gaps = gaps_between(&["Add"], &["Add", "Ghost"]);
        assert_eq!(gaps, vec!["gradcheck Ghost matches no known op variant".to_string()]);
    }

    /// The full suite passes on several seeds (fast config: the same
    /// one `scripts/check.sh` and `dekg check --grads` use).
    #[test]
    fn full_registry_passes() {
        for seed in [0, 1, 42] {
            let diags = run_all(seed);
            assert!(diags.is_empty(), "seed {seed}: {diags:?}");
        }
    }

    /// The harness actually rejects wrong gradients. The loss
    /// `detach(Σx³) + Σx²` re-evaluates the detached term from the
    /// perturbed inputs (so the finite difference sees slope
    /// `3x² + 2x`) while the tape routes no gradient through the
    /// constant (analytic slope `2x`) — check_fn must flag it.
    #[test]
    fn harness_detects_wrong_gradients() {
        let r = check_fn(
            &[("x", vec![2], vec![0.4, -0.6])],
            &|g: &mut Graph, ps: &ParamStore| {
                let x = g.param(ps, ps.id_of("x").unwrap());
                let sq = g.square(x);
                let cube = g.mul(sq, x);
                let s_cube = g.sum_all(cube);
                let s_sq = g.sum_all(sq);
                let detached_value = g.value(s_cube).clone();
                let detached = g.constant(detached_value);
                g.add(detached, s_sq)
            },
            &FdConfig::default(),
        );
        let err = r.expect_err("detached-constant loss must fail the FD check");
        assert!(err.contains("central difference"), "unexpected error: {err}");
    }
}
