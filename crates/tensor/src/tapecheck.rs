//! Static dataflow analysis over a recorded autograd tape.
//!
//! Where [`crate::check`] validates a tape against its *recorded
//! forward values*, this module analyzes the `Op` graph alone — the
//! program, not one execution of it — in three passes that never touch
//! a kernel:
//!
//! 1. **Abstract shape interpretation** ([`abstract_shapes`]): every
//!    node's output shape is re-derived symbolically, bottom-up from
//!    the leaf shapes, through the same centralized inference the eager
//!    constructors use ([`crate::check`]'s `infer_shape_with`). Each
//!    derived shape is cross-checked against the recorded one; a
//!    disagreement is a "shape lie" — a tape whose values no longer
//!    match its program. The [`registry`] audits this pass against
//!    [`ALL_OPS`] both ways, in the style of the gradcheck registry, so
//!    a new `Op` variant cannot ship without an abstract shape rule.
//! 2. **Gradient-flow reachability**: backward reachability from the
//!    loss along differentiable edges, treating value-independent
//!    gradient killers (`MulScalar(_, 0.0)`, an all-zero dropout mask,
//!    an all-[`PAD`] gather) as cut edges. Reports dead parameters
//!    (registered but receiving no gradient), zero-gradient subtapes
//!    (nodes that reach the loss yet provably train nothing), and ops
//!    whose outputs nothing consumes.
//! 3. **Liveness + memory planning** ([`memory_plan`]): last-use
//!    computation per [`Var`] yielding a [`MemoryPlan`] — an
//!    interval-graph buffer-reuse assignment and the predicted peak
//!    live bytes of an executor that frees each value after its last
//!    structural use (the arena executor ROADMAP item 3 calls for; the
//!    eager [`Graph`] keeps everything alive, so `total_value_bytes`
//!    is what we pay today and `peak_live_bytes` is the floor a
//!    reuse-aware executor can reach). `perf --alloc-check` in
//!    dekg-bench validates the prediction against the counting
//!    allocator.
//!
//! Because GraIL-style subgraph scorers build thousands of small
//! per-batch tapes, [`TapeCache`] amortizes analysis: tapes are keyed
//! by [`structure_key`], a fingerprint of exactly the facts the passes
//! consume (ops, edges, shapes, `needs_grad` bits, and *abstracted*
//! payloads — index vectors collapse to their length and
//! bounds/padding flags, dropout masks to their length and an all-zero
//! flag). Two tapes with equal keys provably produce equal reports, so
//! per-batch tapes that differ only in gathered indices or mask draws
//! are analyzed once.
//!
//! ```
//! use dekg_tensor::{Graph, ParamStore, Tensor};
//!
//! let mut ps = ParamStore::new();
//! let w = ps.insert("w", Tensor::ones([2]));
//! let dead = ps.insert("unused", Tensor::ones([2]));
//!
//! let mut g = Graph::new();
//! let wv = g.param(&ps, w);
//! let sq = g.square(wv);
//! let loss = g.sum_all(sq);
//!
//! let report = g.tapecheck_with_params(loss, &ps);
//! assert_eq!(report.dead_params, vec!["unused".to_string()]);
//! assert!(report.plan.peak_live_bytes <= report.plan.total_value_bytes);
//! let _ = dead;
//! ```

use crate::check::{
    for_each_input, infer_shape_with, op_context, op_mnemonic, op_ordinal, Diagnostic, Severity,
    ShapeErrorKind, ALL_OPS,
};
use crate::params::ParamStore;
use crate::shape::Shape;
use crate::tape::{Graph, Op, Var, PAD};
use crate::tensor::Tensor;
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};

/// Bytes per tape element (`f32` values throughout).
const BYTES_PER_ELEM: usize = 4;

// ---------------------------------------------------------------------
// Pass 1: abstract shape interpretation
// ---------------------------------------------------------------------

/// Re-derives every node's shape from its op and its inputs' abstract
/// shapes, bottom-up from the leaves, and cross-checks each against the
/// recorded value's shape.
///
/// Leaf shapes are the givens of the analysis; `Reshape` and
/// `GatherFlat` carry a declared output shape the tape only persists
/// through the recorded value, so it is read back as an op attribute.
/// Every other shape is derived from the op alone.
///
/// On a disagreement the pass reports a `shape-mismatch` (or
/// `shape-error` / `oob-index` when inference itself fails) and then
/// *recovers* by adopting the recorded shape, so downstream nodes are
/// judged against consistent inputs and report their own faults rather
/// than one fault's fallout.
pub fn abstract_shapes(g: &Graph) -> (Vec<Shape>, Vec<Diagnostic>) {
    let mut shapes: Vec<Shape> = Vec::with_capacity(g.len());
    let mut diags = Vec::new();
    for id in 0..g.len() {
        let v = Var(id);
        let op = g.node_op(v);
        let recorded = g.node_value(v).shape();
        let declared =
            matches!(op, Op::Leaf(_) | Op::Reshape(_) | Op::GatherFlat(..)).then_some(recorded);
        let inferred = infer_shape_with(op, declared, &|u: Var| &shapes[u.index()]);
        match inferred {
            Ok(abs) if abs.same_as(recorded) => shapes.push(abs),
            Ok(abs) => {
                diags.push(Diagnostic::error(
                    "shape-mismatch",
                    Some(id),
                    op_mnemonic(op),
                    format!(
                        "recorded value has shape {recorded}, abstract interpretation derives \
                         {abs} [{}]",
                        op_context(g, op, id, Some(recorded))
                    ),
                ));
                shapes.push(recorded.clone());
            }
            Err(e) => {
                let code = match e.kind() {
                    ShapeErrorKind::OutOfBounds => "oob-index",
                    _ => "shape-error",
                };
                let e = e.with_context(op_context(g, op, id, Some(recorded)));
                diags.push(Diagnostic::error(code, Some(id), op_mnemonic(op), e.to_string()));
                shapes.push(recorded.clone());
            }
        }
    }
    (shapes, diags)
}

// ---------------------------------------------------------------------
// Pass 2: gradient-flow reachability
// ---------------------------------------------------------------------

/// True when `op` provably transmits zero gradient to every input, by
/// structure alone. Deliberately value-independent (a `Mul` by a
/// zero-valued constant is *not* listed): every fact here is part of
/// [`structure_key`], which keeps the analysis cache sound.
fn blocks_gradient(op: &Op) -> bool {
    match op {
        Op::MulScalar(_, s) => *s == 0.0,
        Op::Dropout(_, mask) => mask.iter().all(|&m| m == 0.0),
        Op::GatherFlat(_, idx) => idx.iter().all(|&i| i == PAD),
        _ => false,
    }
}

/// Marks every node whose output receives a non-trivial gradient when
/// `backward(loss)` runs: backward reachability from the loss along
/// differentiable edges, cut at [`blocks_gradient`] ops.
fn grad_reachable(g: &Graph, loss: Var) -> Vec<bool> {
    let mut reach = vec![false; g.len()];
    if !g.node_needs_grad(loss) {
        return reach;
    }
    reach[loss.index()] = true;
    let mut stack = vec![loss.index()];
    while let Some(id) = stack.pop() {
        let op = g.node_op(Var(id));
        if blocks_gradient(op) {
            continue;
        }
        for_each_input(op, |u| {
            if g.node_needs_grad(u) && !reach[u.index()] {
                reach[u.index()] = true;
                stack.push(u.index());
            }
        });
    }
    reach
}

/// Forward reachability over the whole arena from a set of roots.
fn value_reachable(g: &Graph, roots: &[Var]) -> Vec<bool> {
    let mut reach = vec![false; g.len()];
    let mut stack = Vec::new();
    for r in roots {
        if !reach[r.index()] {
            reach[r.index()] = true;
            stack.push(r.index());
        }
    }
    while let Some(id) = stack.pop() {
        for_each_input(g.node_op(Var(id)), |u| {
            if !reach[u.index()] {
                reach[u.index()] = true;
                stack.push(u.index());
            }
        });
    }
    reach
}

// ---------------------------------------------------------------------
// Pass 3: liveness + memory planning
// ---------------------------------------------------------------------

/// The buffer-reuse plan a free-after-last-use executor would run this
/// tape under. See the module docs for what "predicted" means relative
/// to the eager [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryPlan {
    /// For each node, the arena index of the last node consuming its
    /// value (its own index when nothing does; declared roots are
    /// pinned to the end of the tape).
    pub last_use: Vec<usize>,
    /// For each node, the reuse buffer its value is assigned to.
    pub buffer_of: Vec<usize>,
    /// Capacity in bytes of each reuse buffer.
    pub buffer_bytes: Vec<usize>,
    /// Peak bytes simultaneously live under free-after-last-use — the
    /// prediction `perf --alloc-check` validates.
    pub peak_live_bytes: usize,
    /// Total bytes of every recorded value: what the eager tape holds
    /// live for its whole lifetime.
    pub total_value_bytes: usize,
}

impl MemoryPlan {
    /// Number of distinct buffers the interval assignment needs.
    pub fn num_buffers(&self) -> usize {
        self.buffer_bytes.len()
    }

    /// Total bytes the reuse buffers occupy (an upper bound on
    /// [`MemoryPlan::peak_live_bytes`] the exact-size free list pays
    /// for determinism).
    pub fn planned_bytes(&self) -> usize {
        self.buffer_bytes.iter().sum()
    }
}

/// Computes per-node last uses and assigns values to reuse buffers.
///
/// `shapes` are the (abstract) per-node shapes — sized in bytes at
/// `BYTES_PER_ELEM` each — and `roots` are the outputs that must
/// survive to the end of the tape (the loss plus any declared
/// observation nodes). The assignment walks the arena in recording
/// order keeping an exact-size free list keyed by byte size: a freed
/// buffer is reused only for a value of identical size, which is
/// deterministic and never oversubscribes a buffer. A node may not
/// reuse the buffer of a value whose last use is the node itself
/// (kernels read their inputs while writing their output).
pub fn memory_plan(g: &Graph, shapes: &[Shape], roots: &[Var]) -> MemoryPlan {
    let n = g.len();
    let bytes: Vec<usize> = shapes.iter().map(|s| s.numel() * BYTES_PER_ELEM).collect();
    let mut last_use: Vec<usize> = (0..n).collect();
    for id in 0..n {
        for_each_input(g.node_op(Var(id)), |u| last_use[u.index()] = id);
    }
    let end = n.saturating_sub(1);
    for r in roots {
        last_use[r.index()] = end;
    }
    let mut expiring: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (id, &last) in last_use.iter().enumerate() {
        expiring[last].push(id);
    }
    let mut free: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    let mut buffer_of = vec![0usize; n];
    let mut buffer_bytes: Vec<usize> = Vec::new();
    let mut live = 0usize;
    let mut peak = 0usize;
    for t in 0..n {
        if t > 0 {
            for &e in &expiring[t - 1] {
                free.entry(bytes[e]).or_default().push(buffer_of[e]);
            }
        }
        buffer_of[t] = if let Some(b) = free.get_mut(&bytes[t]).and_then(Vec::pop) {
            b
        } else {
            buffer_bytes.push(bytes[t]);
            buffer_bytes.len() - 1
        };
        live += bytes[t];
        peak = peak.max(live);
        for &e in &expiring[t] {
            live -= bytes[e];
        }
    }
    MemoryPlan {
        last_use,
        buffer_of,
        buffer_bytes,
        peak_live_bytes: peak,
        total_value_bytes: bytes.iter().sum(),
    }
}

// ---------------------------------------------------------------------
// The combined report
// ---------------------------------------------------------------------

/// Everything the three static passes found on one tape.
#[derive(Debug, Clone)]
pub struct TapeReport {
    /// All findings, shape pass first, then gradient flow, then
    /// structure — each order deterministic.
    pub diagnostics: Vec<Diagnostic>,
    /// The abstract shape derived for every node (equal to the recorded
    /// shape on a clean tape; recorded shapes where recovery kicked in).
    pub shapes: Vec<Shape>,
    /// Arena length at analysis time.
    pub num_nodes: usize,
    /// How many registered parameters were checked for gradient flow
    /// (0 when no store was supplied).
    pub params_checked: usize,
    /// Names of parameters with no gradient path to the loss.
    pub dead_params: Vec<String>,
    /// Arena indices of nodes whose output nothing consumes (and that
    /// are not declared roots).
    pub unconsumed_ops: Vec<usize>,
    /// Nodes unreachable from the loss and every declared root.
    pub dead_nodes: usize,
    /// Differentiable nodes that reach the loss but provably receive
    /// zero gradient (stopped subtapes).
    pub zero_grad_nodes: usize,
    /// The liveness/buffer-reuse plan (pass 3).
    pub plan: MemoryPlan,
}

impl TapeReport {
    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warning).count()
    }

    /// True when no pass found anything at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Renders the findings plus a fixed-format summary block (the
    /// transcript the red-fixture golden tests pin byte-for-byte).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(out, "{d}");
        }
        let _ = writeln!(
            out,
            "tapecheck: {} node(s), {} param(s) checked; {} error(s), {} warning(s)",
            self.num_nodes,
            self.params_checked,
            self.errors(),
            self.warnings()
        );
        let _ = writeln!(
            out,
            "  grad-flow: {} dead param(s), {} zero-grad node(s), {} unconsumed op(s), {} dead \
             node(s)",
            self.dead_params.len(),
            self.zero_grad_nodes,
            self.unconsumed_ops.len(),
            self.dead_nodes
        );
        let _ = writeln!(
            out,
            "  memory plan: predicted peak {} live byte(s) in {} buffer(s) ({} byte(s) planned, \
             {} byte(s) recorded)",
            self.plan.peak_live_bytes,
            self.plan.num_buffers(),
            self.plan.planned_bytes(),
            self.plan.total_value_bytes
        );
        out
    }
}

/// Runs all three static passes over the arena.
///
/// `observed` declares outputs beyond the loss that are read by the
/// caller (e.g. the diagnostic-only loss components the training loop
/// logs): they count as roots for the structure pass and the memory
/// plan, but *not* for gradient flow — gradients only ever start at the
/// loss. Pass `params` to also check registered-parameter coverage.
pub fn tapecheck_with(
    g: &Graph,
    loss: Var,
    observed: &[Var],
    params: Option<&ParamStore>,
) -> TapeReport {
    let n = g.len();
    let mut roots = vec![loss];
    roots.extend(observed.iter().copied().filter(|v| *v != loss));

    let (shapes, mut diagnostics) = abstract_shapes(g);

    // -- gradient flow --
    let grad_live = grad_reachable(g, loss);
    let loss_live = g.live_set(loss);
    let zero_grad: Vec<usize> = (0..n)
        .filter(|&id| {
            id != loss.index()
                && loss_live.get(id).copied().unwrap_or(false)
                && g.node_needs_grad(Var(id))
                && !grad_live[id]
        })
        .collect();
    if !zero_grad.is_empty() {
        let preview: Vec<String> = zero_grad.iter().take(5).map(ToString::to_string).collect();
        let suffix = if zero_grad.len() > 5 { ", .." } else { "" };
        diagnostics.push(Diagnostic::warning(
            "zero-grad",
            Some(zero_grad[0]),
            op_mnemonic(g.node_op(Var(zero_grad[0]))),
            format!(
                "{} differentiable node(s) reach the loss but provably receive zero gradient \
                 (nodes {}{suffix})",
                zero_grad.len(),
                preview.join(", ")
            ),
        ));
    }

    let mut dead_params = Vec::new();
    let params_checked = params.map_or(0, ParamStore::len);
    if let Some(ps) = params {
        let mut has_grad = vec![false; ps.len()];
        for (id, &reached) in grad_live.iter().enumerate() {
            if let Op::Leaf(Some(pid)) = g.node_op(Var(id)) {
                if reached && pid.index() < has_grad.len() {
                    has_grad[pid.index()] = true;
                }
            }
        }
        for (pid, name, _) in ps.iter() {
            if !has_grad[pid.index()] {
                dead_params.push(name.to_string());
                diagnostics.push(Diagnostic::warning(
                    "dead-param",
                    None,
                    "Param",
                    format!("registered parameter {name:?} has no gradient path to the loss"),
                ));
            }
        }
    }

    // -- structure: unconsumed outputs and dead subtapes --
    let mut consumed = vec![false; n];
    for id in 0..n {
        for_each_input(g.node_op(Var(id)), |u| consumed[u.index()] = true);
    }
    let mut is_root = vec![false; n];
    for r in &roots {
        is_root[r.index()] = true;
    }
    let unconsumed_ops: Vec<usize> = (0..n).filter(|&id| !consumed[id] && !is_root[id]).collect();
    for &id in &unconsumed_ops {
        diagnostics.push(Diagnostic::warning(
            "unconsumed-op",
            Some(id),
            op_mnemonic(g.node_op(Var(id))),
            format!("output of shape {} is never consumed and is not a declared root", shapes[id]),
        ));
    }
    let reachable = value_reachable(g, &roots);
    let dead: Vec<usize> = (0..n).filter(|&id| !reachable[id]).collect();
    if !dead.is_empty() {
        let preview: Vec<String> = dead.iter().take(5).map(ToString::to_string).collect();
        let suffix = if dead.len() > 5 { ", .." } else { "" };
        diagnostics.push(Diagnostic::warning(
            "dead-code",
            Some(dead[0]),
            op_mnemonic(g.node_op(Var(dead[0]))),
            format!(
                "{} node(s) never reach the loss or a declared root (nodes {}{suffix})",
                dead.len(),
                preview.join(", ")
            ),
        ));
    }

    let plan = memory_plan(g, &shapes, &roots);
    TapeReport {
        diagnostics,
        shapes,
        num_nodes: n,
        params_checked,
        dead_params,
        unconsumed_ops,
        dead_nodes: dead.len(),
        zero_grad_nodes: zero_grad.len(),
        plan,
    }
}

impl Graph {
    /// Static analysis of the tape below (and around) `loss`: abstract
    /// shape interpretation, gradient-flow reachability, and the
    /// liveness/memory plan. See the [`crate::tapecheck`] module docs.
    pub fn tapecheck(&self, loss: Var) -> TapeReport {
        tapecheck_with(self, loss, &[], None)
    }

    /// [`Graph::tapecheck`] plus registered-parameter gradient
    /// coverage.
    pub fn tapecheck_with_params(&self, loss: Var, params: &ParamStore) -> TapeReport {
        tapecheck_with(self, loss, &[], Some(params))
    }
}

// ---------------------------------------------------------------------
// Structure-keyed analysis cache
// ---------------------------------------------------------------------

/// 64-bit FNV-1a, the same mixing the gradcheck seed decorrelator uses.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn word(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.byte(b);
        }
    }

    fn len(&mut self, x: usize) {
        self.word(x as u64);
    }

    fn text(&mut self, s: &str) {
        self.len(s.len());
        for b in s.bytes() {
            self.byte(b);
        }
    }

    fn shape(&mut self, s: &Shape) {
        self.len(s.rank());
        for &d in s.dims() {
            self.len(d);
        }
    }
}

/// Fingerprints exactly the facts the three passes consume, so equal
/// keys imply equal [`TapeReport`]s.
///
/// Per node: op ordinal, `needs_grad` bit, recorded shape, input `Var`
/// ids, and an *abstraction* of the payload — index vectors collapse to
/// their length plus bounds/all-[`PAD`] flags (the full vector is only
/// hashed when an index is out of bounds, because then the diagnostic
/// message quotes it), dropout masks to their length plus an all-zero
/// flag, `MulScalar` to its is-zero flag. Recorded per-batch tapes that
/// differ only in which rows they gather or which mask the RNG drew
/// therefore share a key and one analysis.
pub fn structure_key(g: &Graph, loss: Var, observed: &[Var], params: Option<&ParamStore>) -> u64 {
    let mut h = Fnv::new();
    h.len(g.len());
    h.len(loss.index());
    h.len(observed.len());
    for v in observed {
        h.len(v.index());
    }
    match params {
        None => h.len(0),
        Some(ps) => {
            h.len(1 + ps.len());
            for (pid, name, _) in ps.iter() {
                h.len(pid.index());
                h.text(name);
            }
        }
    }
    for id in 0..g.len() {
        let v = Var(id);
        let op = g.node_op(v);
        h.len(op_ordinal(op));
        h.byte(u8::from(g.node_needs_grad(v)));
        h.shape(g.node_value(v).shape());
        for_each_input(op, |u| h.len(u.index()));
        match op {
            Op::Leaf(Some(pid)) => h.len(pid.index()),
            Op::MulScalar(_, s) => h.byte(u8::from(*s == 0.0)),
            Op::Dropout(_, mask) => {
                h.len(mask.len());
                h.byte(u8::from(mask.iter().all(|&m| m == 0.0)));
            }
            Op::GatherRows(a, idx) => {
                h.len(idx.len());
                let s = g.node_value(*a).shape();
                let oob = s.rank() != 2 || idx.iter().any(|&i| i >= s.dim(0));
                h.byte(u8::from(oob));
                if oob {
                    for &i in idx {
                        h.len(i);
                    }
                }
            }
            Op::GatherFlat(a, idx) => {
                h.len(idx.len());
                let numel = g.node_value(*a).shape().numel();
                let oob = idx.iter().any(|&i| i != PAD && i >= numel);
                h.byte(u8::from(oob));
                h.byte(u8::from(idx.iter().all(|&i| i == PAD)));
                if oob {
                    for &i in idx {
                        h.len(i);
                    }
                }
            }
            Op::ScatterAddRows { idx, rows, .. } => {
                h.len(idx.len());
                h.len(*rows);
                let oob = idx.iter().any(|&t| t >= *rows);
                h.byte(u8::from(oob));
                if oob {
                    for &t in idx {
                        h.len(t);
                    }
                }
            }
            Op::BroadcastRow(_, rows) => h.len(*rows),
            _ => {}
        }
    }
    h.0
}

/// Memoizes [`tapecheck_with`] by [`structure_key`].
///
/// The training loop holds one of these across batches: per-batch tapes
/// of identical structure (the common case within an epoch at a fixed
/// batch size and subgraph census) are analyzed once and served from
/// the cache afterwards.
#[derive(Debug, Default)]
pub struct TapeCache {
    entries: BTreeMap<u64, TapeReport>,
    hits: u64,
    misses: u64,
}

impl TapeCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the report for this tape's structure, computing it on
    /// first sight and serving every structurally identical tape from
    /// the cache afterwards.
    pub fn analyze(
        &mut self,
        g: &Graph,
        loss: Var,
        observed: &[Var],
        params: Option<&ParamStore>,
    ) -> &TapeReport {
        let key = structure_key(g, loss, observed, params);
        match self.entries.entry(key) {
            Entry::Occupied(e) => {
                self.hits += 1;
                e.into_mut()
            }
            Entry::Vacant(e) => {
                self.misses += 1;
                e.insert(tapecheck_with(g, loss, observed, params))
            }
        }
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that ran the full analysis.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Distinct tape structures seen.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been analyzed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

// ---------------------------------------------------------------------
// Op-coverage audit (registry <-> ALL_OPS, both ways)
// ---------------------------------------------------------------------

/// One registered abstract-shape rule: builds a tiny tape exercising
/// its op and asserts the abstract shapes match the executed ones
/// node-for-node.
pub struct ShapeRule {
    /// The [`ALL_OPS`] mnemonic this rule covers.
    pub op: &'static str,
    /// Builds the probe tape and checks it; `Err` carries the detail.
    pub run: fn() -> Result<(), String>,
}

/// Asserts the whole arena's abstract shapes equal the executed ones.
fn expect_clean(g: &Graph) -> Result<(), String> {
    let (shapes, diags) = abstract_shapes(g);
    if let Some(d) = diags.first() {
        return Err(format!("abstract interpretation flagged a well-formed tape: {d}"));
    }
    for (id, s) in shapes.iter().enumerate() {
        let recorded = g.shape(Var(id));
        if !s.same_as(recorded) {
            return Err(format!("node {id}: abstract shape {s} != executed shape {recorded}"));
        }
    }
    Ok(())
}

/// A deterministic constant with the given dims (values kept positive
/// so `sqrt`/`ln` probes stay finite).
fn probe(g: &mut Graph, dims: &[usize]) -> Var {
    let n: usize = dims.iter().product();
    let data: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin() + 1.5).collect();
    g.constant(Tensor::from_vec(dims.to_vec(), data))
}

fn unary_probe(f: fn(&mut Graph, Var) -> Var) -> Result<(), String> {
    let mut g = Graph::new();
    let a = probe(&mut g, &[2, 3]);
    f(&mut g, a);
    expect_clean(&g)
}

fn binary_probe(f: fn(&mut Graph, Var, Var) -> Var) -> Result<(), String> {
    let mut g = Graph::new();
    let a = probe(&mut g, &[2, 3]);
    let b = probe(&mut g, &[2, 3]);
    f(&mut g, a, b);
    expect_clean(&g)
}

/// Every abstract-shape rule, one per [`ALL_OPS`] mnemonic. The
/// coverage audit ([`coverage_gaps`]) diffs this registry against
/// `ALL_OPS` both ways, exactly like the gradcheck registry: an op
/// without a rule, or a rule naming a vanished op, fails the build.
pub fn registry() -> Vec<ShapeRule> {
    fn rule(op: &'static str, run: fn() -> Result<(), String>) -> ShapeRule {
        ShapeRule { op, run }
    }
    vec![
        rule("Param", || {
            let mut ps = ParamStore::new();
            let w = ps.insert("w", Tensor::ones([2, 3]));
            let mut g = Graph::new();
            g.param(&ps, w);
            expect_clean(&g)
        }),
        rule("Constant", || {
            let mut g = Graph::new();
            probe(&mut g, &[2, 2]);
            expect_clean(&g)
        }),
        rule("Add", || binary_probe(Graph::add)),
        rule("Sub", || binary_probe(Graph::sub)),
        rule("Mul", || binary_probe(Graph::mul)),
        rule("Div", || binary_probe(Graph::div)),
        rule("Neg", || unary_probe(Graph::neg)),
        rule("AddScalar", || {
            let mut g = Graph::new();
            let a = probe(&mut g, &[2, 3]);
            g.add_scalar(a, 0.25);
            expect_clean(&g)
        }),
        rule("MulScalar", || {
            let mut g = Graph::new();
            let a = probe(&mut g, &[2, 3]);
            g.mul_scalar(a, 0.5);
            expect_clean(&g)
        }),
        rule("Matmul", || {
            let mut g = Graph::new();
            let a = probe(&mut g, &[2, 3]);
            let b = probe(&mut g, &[3, 4]);
            g.matmul(a, b);
            expect_clean(&g)
        }),
        rule("GatherRows", || {
            let mut g = Graph::new();
            let a = probe(&mut g, &[3, 2]);
            g.gather_rows(a, &[2, 0, 2, 1]);
            expect_clean(&g)
        }),
        rule("GatherFlat", || {
            let mut g = Graph::new();
            let a = probe(&mut g, &[4]);
            g.gather_flat(a, &[3, PAD, 0], [3]);
            expect_clean(&g)
        }),
        rule("Reshape", || {
            let mut g = Graph::new();
            let a = probe(&mut g, &[2, 3]);
            g.reshape(a, [3, 2]);
            expect_clean(&g)
        }),
        rule("ConcatRows", || {
            let mut g = Graph::new();
            let a = probe(&mut g, &[2, 3]);
            let b = probe(&mut g, &[1, 3]);
            g.concat_rows(&[a, b]);
            let x = probe(&mut g, &[2]);
            let y = probe(&mut g, &[3]);
            g.concat_rows(&[x, y]);
            expect_clean(&g)
        }),
        rule("ConcatCols", || {
            let mut g = Graph::new();
            let a = probe(&mut g, &[2, 2]);
            let b = probe(&mut g, &[2, 3]);
            g.concat_cols(&[a, b]);
            expect_clean(&g)
        }),
        rule("SumAll", || unary_probe(Graph::sum_all)),
        rule("MeanAll", || unary_probe(Graph::mean_all)),
        rule("SumAxis0", || unary_probe(Graph::sum_axis0)),
        rule("SumAxis1", || unary_probe(Graph::sum_axis1)),
        rule("MeanAxis0", || unary_probe(Graph::mean_axis0)),
        rule("Relu", || unary_probe(Graph::relu)),
        rule("Sigmoid", || unary_probe(Graph::sigmoid)),
        rule("Tanh", || unary_probe(Graph::tanh)),
        rule("Sqrt", || unary_probe(Graph::sqrt)),
        rule("Exp", || unary_probe(Graph::exp)),
        rule("Ln", || unary_probe(Graph::ln)),
        rule("Sin", || unary_probe(Graph::sin)),
        rule("Cos", || unary_probe(Graph::cos)),
        rule("Square", || unary_probe(Graph::square)),
        rule("Abs", || unary_probe(Graph::abs)),
        rule("Dropout", || {
            use rand::SeedableRng;
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
            let mut g = Graph::new();
            let a = probe(&mut g, &[2, 4]);
            g.dropout(a, 0.5, &mut rng);
            expect_clean(&g)
        }),
        rule("StackScalars", || {
            let mut g = Graph::new();
            let a = g.scalar(0.3);
            let b = g.scalar(0.7);
            g.stack_scalars(&[a, b]);
            expect_clean(&g)
        }),
        rule("ScatterAddRows", || {
            let mut g = Graph::new();
            let src = probe(&mut g, &[3, 2]);
            g.scatter_add_rows(src, &[0, 1, 0], 2);
            expect_clean(&g)
        }),
        rule("BroadcastRow", || {
            let mut g = Graph::new();
            let a = probe(&mut g, &[3]);
            g.broadcast_row(a, 4);
            expect_clean(&g)
        }),
    ]
}

/// Two-way diff of the rule names against [`ALL_OPS`]; non-empty means
/// an op shipped without an abstract shape rule (or a rule went stale).
pub fn coverage_gaps() -> Vec<String> {
    let reg = registry();
    let names: Vec<&str> = reg.iter().map(|r| r.op).collect();
    gaps_between(ALL_OPS, &names)
}

fn gaps_between(ops: &[&str], registered: &[&str]) -> Vec<String> {
    let have: BTreeSet<&str> = registered.iter().copied().collect();
    let known: BTreeSet<&str> = ops.iter().copied().collect();
    let mut gaps: Vec<String> = known
        .difference(&have)
        .map(|s| format!("op {s} has no registered abstract shape rule"))
        .collect();
    gaps.extend(
        have.difference(&known).map(|s| format!("shape rule {s} matches no known op variant")),
    );
    gaps
}

/// Runs the coverage audit plus every registered rule, returning one
/// [`Diagnostic`] per gap (`tapecheck-uncovered`) or failing probe
/// (`tapecheck-failed`). Empty means the abstract interpreter fully
/// covers the op set.
pub fn run_all() -> Vec<Diagnostic> {
    let mut out: Vec<Diagnostic> = coverage_gaps()
        .into_iter()
        .map(|gap| Diagnostic::error("tapecheck-uncovered", None, "registry", gap))
        .collect();
    for shape_rule in registry() {
        if let Err(msg) = (shape_rule.run)() {
            out.push(Diagnostic::error("tapecheck-failed", None, shape_rule.op, msg));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn two_param_store() -> (ParamStore, crate::params::ParamId, crate::params::ParamId) {
        let mut ps = ParamStore::new();
        let a = ps.insert("a", Tensor::from_vec([2], vec![1.0, 2.0]));
        let b = ps.insert("b", Tensor::from_vec([2], vec![3.0, 4.0]));
        (ps, a, b)
    }

    #[test]
    fn every_op_variant_has_a_shape_rule() {
        let gaps = coverage_gaps();
        assert!(gaps.is_empty(), "coverage gaps: {gaps:?}");
    }

    #[test]
    fn unregistered_op_variant_fails_the_audit() {
        let reg = registry();
        let names: Vec<&str> = reg.iter().map(|r| r.op).filter(|o| *o != "Matmul").collect();
        let gaps = gaps_between(ALL_OPS, &names);
        assert_eq!(gaps.len(), 1, "gaps: {gaps:?}");
        assert!(gaps[0].contains("Matmul"), "gaps: {gaps:?}");
    }

    #[test]
    fn stale_registration_fails_the_audit() {
        let reg = registry();
        let mut names: Vec<&str> = reg.iter().map(|r| r.op).collect();
        names.push("Conv2d");
        let gaps = gaps_between(ALL_OPS, &names);
        assert_eq!(gaps.len(), 1, "gaps: {gaps:?}");
        assert!(gaps[0].contains("Conv2d"), "gaps: {gaps:?}");
    }

    #[test]
    fn full_registry_passes() {
        let diags = run_all();
        assert!(diags.is_empty(), "diags: {diags:?}");
    }

    #[test]
    fn clean_tape_reports_clean() {
        let (ps, a, b) = two_param_store();
        let mut g = Graph::new();
        let av = g.param(&ps, a);
        let bv = g.param(&ps, b);
        let p = g.mul(av, bv);
        let loss = g.sum_all(p);
        let report = g.tapecheck_with_params(loss, &ps);
        assert!(report.is_clean(), "diags: {:?}", report.diagnostics);
        assert_eq!(report.shapes.len(), g.len());
        assert_eq!(report.params_checked, 2);
        assert!(report.plan.peak_live_bytes <= report.plan.total_value_bytes);
    }

    #[test]
    fn memory_plan_reuses_buffers_on_a_unary_chain() {
        let mut g = Graph::new();
        let mut x = probe(&mut g, &[4, 4]);
        for _ in 0..6 {
            x = g.relu(x);
        }
        let loss = g.sum_all(x);
        let report = g.tapecheck(loss);
        assert!(report.is_clean(), "diags: {:?}", report.diagnostics);
        // The chain alternates between two 64-byte buffers plus the
        // scalar loss; without reuse it would need one buffer per node.
        assert!(
            report.plan.num_buffers() < g.len(),
            "no reuse: {} buffers for {} nodes",
            report.plan.num_buffers(),
            g.len()
        );
        assert!(report.plan.peak_live_bytes < report.plan.total_value_bytes);
        // Peak: two 4x4 values live across each unary step + the loss.
        assert_eq!(report.plan.peak_live_bytes, 2 * 16 * BYTES_PER_ELEM);
    }

    #[test]
    fn stopped_gradient_subtape_is_flagged() {
        let (ps, a, b) = two_param_store();
        let mut g = Graph::new();
        let av = g.param(&ps, a);
        let sq_a = g.square(av);
        let stopped = g.mul_scalar(sq_a, 0.0);
        let bv = g.param(&ps, b);
        let sq_b = g.square(bv);
        let sum = g.add(stopped, sq_b);
        let loss = g.sum_all(sum);
        let report = g.tapecheck_with_params(loss, &ps);
        // `stopped` itself still receives a gradient; its inputs do not.
        assert_eq!(report.zero_grad_nodes, 2, "diags: {:?}", report.diagnostics);
        assert_eq!(report.dead_params, vec!["a".to_string()]);
        assert!(report.diagnostics.iter().any(|d| d.code == "zero-grad"));
    }

    #[test]
    fn observed_roots_suppress_unconsumed_and_dead_findings() {
        let (ps, a, _b) = two_param_store();
        let mut g = Graph::new();
        let av = g.param(&ps, a);
        let sq = g.square(av);
        let loss = g.sum_all(sq);
        // A diagnostic-only mean the caller logs but the loss ignores.
        let watched = g.mean_all(sq);
        let noisy = tapecheck_with(&g, loss, &[], None);
        assert!(noisy.diagnostics.iter().any(|d| d.code == "unconsumed-op"));
        let quiet = tapecheck_with(&g, loss, &[watched], None);
        assert!(quiet.is_clean(), "diags: {:?}", quiet.diagnostics);
    }

    #[test]
    fn cache_hits_on_structurally_identical_tapes() {
        fn build(scale: f32, idx: &[usize]) -> (Graph, Var) {
            let mut g = Graph::new();
            let a = g.constant(Tensor::from_vec(
                [3, 2],
                (0..6).map(|i| i as f32 * scale).collect::<Vec<f32>>(),
            ));
            let picked = g.gather_rows(a, idx);
            let loss = g.mean_all(picked);
            (g, loss)
        }
        let mut cache = TapeCache::new();
        let (g1, l1) = build(1.0, &[0, 2]);
        let (g2, l2) = build(7.5, &[1, 1]); // other values, other rows
        let (g3, l3) = build(1.0, &[0, 1, 2]); // other gather arity
        cache.analyze(&g1, l1, &[], None);
        cache.analyze(&g2, l2, &[], None);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        cache.analyze(&g3, l3, &[], None);
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn structure_key_sees_grad_killing_payloads() {
        fn build(s: f32) -> (Graph, Var) {
            let mut g = Graph::new();
            let a = probe(&mut g, &[2, 2]);
            let m = g.mul_scalar(a, s);
            let loss = g.sum_all(m);
            (g, loss)
        }
        let (g1, l1) = build(0.5);
        let (g2, l2) = build(2.0);
        let (g3, l3) = build(0.0);
        assert_eq!(structure_key(&g1, l1, &[], None), structure_key(&g2, l2, &[], None));
        assert_ne!(structure_key(&g1, l1, &[], None), structure_key(&g3, l3, &[], None));
    }

    // ---- red fixtures: known-bad tapes with golden transcripts ----

    /// diagnostic code -> tape builder; the audit test below keeps
    /// this table and the code set covering each other.
    type RedFixture = (&'static str, fn() -> TapeReport);

    const RED_FIXTURES: &[RedFixture] = &[
        ("dead-param", red_dead_param),
        ("shape-mismatch", red_shape_lie),
        ("unconsumed-op", red_unconsumed_op),
    ];

    const RED_CODES: &[&str] = &["dead-param", "shape-mismatch", "unconsumed-op"];

    fn red_dead_param() -> TapeReport {
        let (ps, a, _b) = two_param_store();
        let mut g = Graph::new();
        let av = g.param(&ps, a);
        let sq = g.square(av);
        let loss = g.sum_all(sq);
        g.tapecheck_with_params(loss, &ps)
    }

    fn red_shape_lie() -> TapeReport {
        let mut g = Graph::new();
        let a = g.constant(Tensor::from_vec([2], vec![1.0, 2.0]));
        let b = g.constant(Tensor::from_vec([2], vec![3.0, 4.0]));
        let sum = g.add(a, b);
        // Corrupt the recorded value after the fact: the program says
        // [2], the tape now claims [3].
        g.fault_override_value(sum, Tensor::zeros([3]));
        let loss = g.sum_all(sum);
        g.tapecheck(loss)
    }

    fn red_unconsumed_op() -> TapeReport {
        let mut g = Graph::new();
        let a = g.constant(Tensor::from_vec([2], vec![1.0, 2.0]));
        let b = g.constant(Tensor::from_vec([2], vec![3.0, 4.0]));
        let dangling = g.square(b);
        let sq = g.square(a);
        let loss = g.sum_all(sq);
        let _ = dangling;
        g.tapecheck(loss)
    }

    fn golden_path(code: &str) -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("tests/golden")
            .join(format!("tapecheck_{code}.expected"))
    }

    /// Every pinned code has a fixture, every fixture names a pinned
    /// code and actually produces it — the same two-way audit the lint
    /// red-fixture suite runs.
    #[test]
    fn red_fixtures_and_codes_cover_each_other() {
        for code in RED_CODES {
            assert!(
                RED_FIXTURES.iter().any(|(c, _)| c == code),
                "diagnostic code {code} has no red fixture"
            );
        }
        for (code, build) in RED_FIXTURES {
            assert!(RED_CODES.contains(code), "fixture {code} names an unpinned code");
            let report = build();
            assert!(
                report.diagnostics.iter().any(|d| d.code == *code),
                "fixture {code} does not produce its diagnostic; got {:?}",
                report.diagnostics
            );
        }
    }

    /// Each fixture's full rendered report must match its golden
    /// transcript byte-for-byte (`UPDATE_GOLDEN=1` regenerates).
    #[test]
    fn red_fixtures_produce_golden_transcripts() {
        for (code, build) in RED_FIXTURES {
            let rendered = build().render();
            let expected_file = golden_path(code);
            if std::env::var_os("UPDATE_GOLDEN").is_some() {
                std::fs::write(&expected_file, &rendered).expect("write golden transcript");
                continue;
            }
            let expected = std::fs::read_to_string(&expected_file)
                .unwrap_or_else(|e| panic!("read golden {}: {e}", expected_file.display()));
            assert_eq!(
                rendered,
                expected,
                "fixture {code}: report drifted from the golden transcript ({}) — update it \
                 if the change is intentional",
                expected_file.display()
            );
        }
    }
}
