//! Tape linter: static analysis over a recorded [`Graph`] arena.
//!
//! [`Graph::check`] walks the arena *before* [`Graph::backward`] and
//! reports problems as [`Diagnostic`]s instead of panicking mid-sweep:
//!
//! * **Shape errors** — every op's output shape is re-derived from its
//!   input shapes by a single centralized inference routine (the same
//!   one the eager constructors use), so a node whose recorded value
//!   disagrees with its op is reported with op provenance.
//! * **Out-of-bounds indices** — `GatherRows`/`GatherFlat`/
//!   `ScatterAddRows` index vectors are validated against their input
//!   extents ([`crate::tape::PAD`] entries are exempt).
//! * **Dead subgraphs** — nodes recorded before the loss that can never
//!   reach it contribute nothing to the gradient and usually indicate a
//!   wiring bug.
//! * **Dead parameters** — registered [`crate::ParamId`]s with no gradient
//!   path to the loss silently never train
//!   ([`Graph::check_with_params`]).
//! * **NaN/Inf patterns** — division by a constant containing zero,
//!   `ln`/`sqrt` of provably non-positive constants, and any node whose
//!   forward value introduces a non-finite value its inputs did not
//!   have.
//!
//! The structural subset (shapes and index bounds) also runs
//! automatically at the top of every `backward()` call in builds with
//! `debug_assertions`, turning latent tape corruption into an immediate
//! panic with a pointed message.
//!
//! ```
//! use dekg_tensor::{Graph, ParamStore, Tensor};
//!
//! let mut ps = ParamStore::new();
//! let w = ps.insert("w", Tensor::ones([2]));
//! let dead = ps.insert("unused", Tensor::ones([2]));
//!
//! let mut g = Graph::new();
//! let wv = g.param(&ps, w);
//! let sq = g.square(wv);
//! let loss = g.sum_all(sq);
//!
//! let diags = g.check_with_params(loss, &ps);
//! assert_eq!(diags.len(), 1);
//! assert_eq!(diags[0].code, "dead-param");
//! let _ = dead;
//! ```

use crate::params::ParamStore;
use crate::shape::Shape;
use crate::tape::{Graph, Op, Var, PAD};
use std::fmt;

/// How serious a [`Diagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not necessarily fatal (dead code, NaN patterns).
    Warning,
    /// A broken invariant: `backward()` would compute garbage or panic.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding from the tape linter (or the KG validator, which reuses
/// this type through `dekg-check`).
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// Stable machine-readable code, e.g. `"shape-mismatch"`.
    pub code: &'static str,
    /// Arena index of the offending node, when one exists.
    pub node: Option<usize>,
    /// Op mnemonic (or subsystem name) for provenance.
    pub op: String,
    /// Human-readable description of the problem.
    pub message: String,
}

impl Diagnostic {
    /// An error-severity diagnostic.
    pub fn error(
        code: &'static str,
        node: Option<usize>,
        op: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic { severity: Severity::Error, code, node, op: op.into(), message: message.into() }
    }

    /// A warning-severity diagnostic.
    pub fn warning(
        code: &'static str,
        node: Option<usize>,
        op: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            code,
            node,
            op: op.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.code)?;
        if let Some(n) = self.node {
            write!(f, " node {n}")?;
        }
        if !self.op.is_empty() {
            write!(f, " ({})", self.op)?;
        }
        write!(f, ": {}", self.message)
    }
}

/// What went wrong inside a [`ShapeError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShapeErrorKind {
    /// Operand shapes are incompatible with each other.
    Mismatch,
    /// An operand has the wrong rank for the op.
    Rank,
    /// An index points outside its operand.
    OutOfBounds,
    /// A count-level invariant failed (empty input, length mismatch).
    Arity,
}

/// A typed shape-inference failure.
///
/// Produced by the centralized per-op shape inference that both the
/// eager [`Graph`] constructors and the tape linter run; the eager path
/// panics with its [`Display`](fmt::Display) text, the linter converts
/// it into a [`Diagnostic`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    op: &'static str,
    kind: ShapeErrorKind,
    message: String,
    context: Option<String>,
}

impl ShapeError {
    pub(crate) fn new(op: &'static str, kind: ShapeErrorKind, message: impl Into<String>) -> Self {
        ShapeError { op, kind, message: message.into(), context: None }
    }

    /// Attaches node provenance — op ordinal and mnemonic, arena index,
    /// input/output `Var` ids with their shapes — rendered in square
    /// brackets after the base message (see `op_context`).
    #[must_use]
    pub fn with_context(mut self, context: impl Into<String>) -> Self {
        self.context = Some(context.into());
        self
    }

    /// The op mnemonic the error originated from.
    pub fn op(&self) -> &'static str {
        self.op
    }

    /// The failure category.
    pub fn kind(&self) -> ShapeErrorKind {
        self.kind
    }

    /// The human-readable detail.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The attached node provenance, when any.
    pub fn context(&self) -> Option<&str> {
        self.context.as_deref()
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Space, not colon: the op mnemonic leads straight into the
        // message ("matmul inner dims: ..."), matching the panic texts
        // the pre-linter kernels produced. Provenance, when attached,
        // trails in brackets so the leading text stays grep-stable.
        write!(f, "{} {}", self.op, self.message)?;
        if let Some(ctx) = &self.context {
            write!(f, " [{ctx}]")?;
        }
        Ok(())
    }
}

impl std::error::Error for ShapeError {}

/// Every op mnemonic the tape can record, indexed by `op_ordinal`.
///
/// This table is the single source of truth that the dekg-grad coverage
/// audit ([`crate::gradcheck::coverage_gaps`]) walks: every entry must
/// have a registered finite-difference gradcheck. Adding an `Op`
/// variant without extending both the exhaustive match in `op_ordinal`
/// and this table fails to compile (non-exhaustive match) or panics on
/// the first diagnostic that names the new op (index out of bounds) —
/// either way, new ops cannot land unverified.
pub const ALL_OPS: &[&str] = &[
    "Param",
    "Constant",
    "Add",
    "Sub",
    "Mul",
    "Div",
    "Neg",
    "AddScalar",
    "MulScalar",
    "Matmul",
    "GatherRows",
    "GatherFlat",
    "Reshape",
    "ConcatRows",
    "ConcatCols",
    "SumAll",
    "MeanAll",
    "SumAxis0",
    "SumAxis1",
    "MeanAxis0",
    "Relu",
    "Sigmoid",
    "Tanh",
    "Sqrt",
    "Exp",
    "Ln",
    "Sin",
    "Cos",
    "Square",
    "Abs",
    "Dropout",
    "StackScalars",
    "ScatterAddRows",
    "BroadcastRow",
];

/// Position of `op`'s mnemonic in [`ALL_OPS`].
///
/// Deliberately written without a wildcard arm: a new `Op` variant must
/// be given an ordinal here, a name in [`ALL_OPS`], and a gradcheck in
/// [`crate::gradcheck`] before the workspace compiles and tests green.
pub(crate) fn op_ordinal(op: &Op) -> usize {
    match op {
        Op::Leaf(Some(_)) => 0,
        Op::Leaf(None) => 1,
        Op::Add(..) => 2,
        Op::Sub(..) => 3,
        Op::Mul(..) => 4,
        Op::Div(..) => 5,
        Op::Neg(..) => 6,
        Op::AddScalar(..) => 7,
        Op::MulScalar(..) => 8,
        Op::Matmul(..) => 9,
        Op::GatherRows(..) => 10,
        Op::GatherFlat(..) => 11,
        Op::Reshape(..) => 12,
        Op::ConcatRows(..) => 13,
        Op::ConcatCols(..) => 14,
        Op::SumAll(..) => 15,
        Op::MeanAll(..) => 16,
        Op::SumAxis0(..) => 17,
        Op::SumAxis1(..) => 18,
        Op::MeanAxis0(..) => 19,
        Op::Relu(..) => 20,
        Op::Sigmoid(..) => 21,
        Op::Tanh(..) => 22,
        Op::Sqrt(..) => 23,
        Op::Exp(..) => 24,
        Op::Ln(..) => 25,
        Op::Sin(..) => 26,
        Op::Cos(..) => 27,
        Op::Square(..) => 28,
        Op::Abs(..) => 29,
        Op::Dropout(..) => 30,
        Op::StackScalars(..) => 31,
        Op::ScatterAddRows { .. } => 32,
        Op::BroadcastRow(..) => 33,
    }
}

/// Short mnemonic for an op, safe to embed in diagnostics (never dumps
/// index payloads).
pub(crate) fn op_mnemonic(op: &Op) -> &'static str {
    ALL_OPS[op_ordinal(op)]
}

/// Calls `f` with every input [`Var`] of `op`, in recording order.
pub(crate) fn for_each_input(op: &Op, mut f: impl FnMut(Var)) {
    match op {
        Op::Leaf(_) => {}
        Op::Add(a, b) | Op::Sub(a, b) | Op::Mul(a, b) | Op::Div(a, b) | Op::Matmul(a, b) => {
            f(*a);
            f(*b);
        }
        Op::Neg(a)
        | Op::AddScalar(a, _)
        | Op::MulScalar(a, _)
        | Op::GatherRows(a, _)
        | Op::GatherFlat(a, _)
        | Op::Reshape(a)
        | Op::SumAll(a)
        | Op::MeanAll(a)
        | Op::SumAxis0(a)
        | Op::SumAxis1(a)
        | Op::MeanAxis0(a)
        | Op::Relu(a)
        | Op::Sigmoid(a)
        | Op::Tanh(a)
        | Op::Sqrt(a)
        | Op::Exp(a)
        | Op::Ln(a)
        | Op::Sin(a)
        | Op::Cos(a)
        | Op::Square(a)
        | Op::Abs(a)
        | Op::Dropout(a, _)
        | Op::BroadcastRow(a, _) => f(*a),
        Op::ConcatRows(parts) | Op::ConcatCols(parts) | Op::StackScalars(parts) => {
            for &p in parts {
                f(p);
            }
        }
        Op::ScatterAddRows { src, .. } => f(*src),
    }
}

/// Non-panicking matrix view of a shape.
fn as_matrix(op: &'static str, s: &Shape) -> Result<(usize, usize), ShapeError> {
    if s.rank() == 2 {
        Ok((s.dim(0), s.dim(1)))
    } else {
        Err(ShapeError::new(op, ShapeErrorKind::Rank, format!("expected a matrix, got shape {s}")))
    }
}

fn same_shape(op: &'static str, a: &Shape, b: &Shape) -> Result<Shape, ShapeError> {
    if a.same_as(b) {
        Ok(a.clone())
    } else {
        Err(ShapeError::new(op, ShapeErrorKind::Mismatch, format!("shape mismatch {a} vs {b}")))
    }
}

/// Centralized per-op shape inference, parameterized over the input
/// shape lookup.
///
/// `declared` carries the caller-declared output shape for the ops that
/// take one (`Leaf`, `Reshape`, `GatherFlat`); for every other op it is
/// ignored. Three callers share this single routine: the eager
/// [`Graph`] constructors (lookup = recorded input values, panic on
/// `Err`), the tape linter (recorded shapes, downgraded to
/// [`Diagnostic`]s), and the abstract interpreter in
/// [`crate::tapecheck`] (symbolic shapes derived bottom-up from the
/// leaves, never touching a recorded value).
pub(crate) fn infer_shape_with<'s>(
    op: &Op,
    declared: Option<&Shape>,
    sh: &impl Fn(Var) -> &'s Shape,
) -> Result<Shape, ShapeError> {
    match op {
        Op::Leaf(_) => Ok(declared.cloned().unwrap_or_else(Shape::scalar)),
        Op::Add(a, b) => same_shape("add", sh(*a), sh(*b)),
        Op::Sub(a, b) => same_shape("sub", sh(*a), sh(*b)),
        Op::Mul(a, b) => same_shape("mul", sh(*a), sh(*b)),
        Op::Div(a, b) => same_shape("div", sh(*a), sh(*b)),
        Op::Neg(a)
        | Op::AddScalar(a, _)
        | Op::MulScalar(a, _)
        | Op::Relu(a)
        | Op::Sigmoid(a)
        | Op::Tanh(a)
        | Op::Sqrt(a)
        | Op::Exp(a)
        | Op::Ln(a)
        | Op::Sin(a)
        | Op::Cos(a)
        | Op::Square(a)
        | Op::Abs(a) => Ok(sh(*a).clone()),
        Op::Dropout(a, mask) => {
            let s = sh(*a);
            if mask.len() != s.numel() {
                return Err(ShapeError::new(
                    "dropout",
                    ShapeErrorKind::Arity,
                    format!("mask length {} does not cover input {s}", mask.len()),
                ));
            }
            Ok(s.clone())
        }
        Op::Matmul(a, b) => {
            let (m, k) = as_matrix("matmul", sh(*a))?;
            let (k2, n) = as_matrix("matmul", sh(*b))?;
            if k != k2 {
                return Err(ShapeError::new(
                    "matmul",
                    ShapeErrorKind::Mismatch,
                    format!("inner dims: {} vs {}", sh(*a), sh(*b)),
                ));
            }
            Ok(Shape::new(vec![m, n]))
        }
        Op::GatherRows(a, idx) => {
            let (rows, cols) = as_matrix("gather_rows", sh(*a))?;
            for &i in idx {
                if i >= rows {
                    return Err(ShapeError::new(
                        "gather_rows",
                        ShapeErrorKind::OutOfBounds,
                        format!("index {i} out of bounds for {rows} rows"),
                    ));
                }
            }
            Ok(Shape::new(vec![idx.len(), cols]))
        }
        Op::GatherFlat(a, idx) => {
            let declared = declared.ok_or_else(|| {
                ShapeError::new(
                    "gather_flat",
                    ShapeErrorKind::Arity,
                    "missing declared output shape",
                )
            })?;
            if idx.len() != declared.numel() {
                return Err(ShapeError::new(
                    "gather_flat",
                    ShapeErrorKind::Arity,
                    format!("index count {} does not fill output {declared}", idx.len()),
                ));
            }
            let n = sh(*a).numel();
            for &i in idx {
                if i != PAD && i >= n {
                    return Err(ShapeError::new(
                        "gather_flat",
                        ShapeErrorKind::OutOfBounds,
                        format!("offset {i} out of bounds for {n} elements"),
                    ));
                }
            }
            Ok(declared.clone())
        }
        Op::Reshape(a) => {
            let declared = declared.ok_or_else(|| {
                ShapeError::new("reshape", ShapeErrorKind::Arity, "missing declared output shape")
            })?;
            let n = sh(*a).numel();
            if declared.numel() != n {
                return Err(ShapeError::new(
                    "reshape",
                    ShapeErrorKind::Mismatch,
                    format!("cannot reshape {n} elements to {declared}"),
                ));
            }
            Ok(declared.clone())
        }
        Op::ConcatRows(parts) => {
            if parts.is_empty() {
                return Err(ShapeError::new("concat_rows", ShapeErrorKind::Arity, "empty input"));
            }
            let first = sh(parts[0]);
            if first.rank() == 1 {
                let mut total = 0;
                for &p in parts {
                    let s = sh(p);
                    if s.rank() != 1 {
                        return Err(ShapeError::new(
                            "concat_rows",
                            ShapeErrorKind::Rank,
                            format!("mixed ranks: [{}] vs {s}", first.dim(0)),
                        ));
                    }
                    total += s.dim(0);
                }
                Ok(Shape::new(vec![total]))
            } else {
                let (_, cols) = as_matrix("concat_rows", first)?;
                let mut rows = 0;
                for &p in parts {
                    let (r, c) = as_matrix("concat_rows", sh(p))?;
                    if c != cols {
                        return Err(ShapeError::new(
                            "concat_rows",
                            ShapeErrorKind::Mismatch,
                            format!("column mismatch: {cols} vs {c}"),
                        ));
                    }
                    rows += r;
                }
                Ok(Shape::new(vec![rows, cols]))
            }
        }
        Op::ConcatCols(parts) => {
            if parts.is_empty() {
                return Err(ShapeError::new("concat_cols", ShapeErrorKind::Arity, "empty input"));
            }
            let (rows, _) = as_matrix("concat_cols", sh(parts[0]))?;
            let mut total = 0;
            for &p in parts {
                let (r, c) = as_matrix("concat_cols", sh(p))?;
                if r != rows {
                    return Err(ShapeError::new(
                        "concat_cols",
                        ShapeErrorKind::Mismatch,
                        format!("row mismatch: {rows} vs {r}"),
                    ));
                }
                total += c;
            }
            Ok(Shape::new(vec![rows, total]))
        }
        Op::SumAll(_) | Op::MeanAll(_) => Ok(Shape::scalar()),
        Op::SumAxis0(a) | Op::MeanAxis0(a) => {
            let (_, n) = as_matrix("sum_axis0", sh(*a))?;
            Ok(Shape::new(vec![n]))
        }
        Op::SumAxis1(a) => {
            let (m, _) = as_matrix("sum_axis1", sh(*a))?;
            Ok(Shape::new(vec![m]))
        }
        Op::StackScalars(parts) => {
            if parts.is_empty() {
                return Err(ShapeError::new("stack_scalars", ShapeErrorKind::Arity, "empty input"));
            }
            for &p in parts {
                let s = sh(p);
                if s.numel() != 1 {
                    return Err(ShapeError::new(
                        "stack_scalars",
                        ShapeErrorKind::Mismatch,
                        format!("non-scalar input {s}"),
                    ));
                }
            }
            Ok(Shape::new(vec![parts.len()]))
        }
        Op::ScatterAddRows { src, idx, rows } => {
            let (e, cols) = as_matrix("scatter_add_rows", sh(*src))?;
            if idx.len() != e {
                return Err(ShapeError::new(
                    "scatter_add_rows",
                    ShapeErrorKind::Arity,
                    format!("index count {} does not match {e} source rows", idx.len()),
                ));
            }
            for &t in idx {
                if t >= *rows {
                    return Err(ShapeError::new(
                        "scatter_add_rows",
                        ShapeErrorKind::OutOfBounds,
                        format!("target {t} out of bounds for {rows} rows"),
                    ));
                }
            }
            Ok(Shape::new(vec![*rows, cols]))
        }
        Op::BroadcastRow(a, rows) => {
            let s = sh(*a);
            if s.rank() != 1 {
                return Err(ShapeError::new(
                    "broadcast_row",
                    ShapeErrorKind::Rank,
                    format!("expected rank-1, got {s}"),
                ));
            }
            Ok(Shape::new(vec![*rows, s.dim(0)]))
        }
    }
}

/// Renders node provenance for a [`ShapeError`]: the op ordinal and
/// mnemonic, the node's arena index, every input `Var` id with its
/// recorded shape, and (when the node already exists) the recorded
/// output shape. Attached via [`ShapeError::with_context`] so a
/// constructor panic or linter diagnostic pinpoints the offending node
/// without a debugger.
pub(crate) fn op_context(g: &Graph, op: &Op, node: usize, output: Option<&Shape>) -> String {
    use std::fmt::Write as _;
    let mut out = format!("op #{} {} at node {node}", op_ordinal(op), op_mnemonic(op));
    let mut first = true;
    for_each_input(op, |v| {
        let sep = if first { "; inputs: " } else { ", " };
        first = false;
        let _ = write!(out, "{sep}v{} {}", v.index(), g.node_value(v).shape());
    });
    if let Some(s) = output {
        let _ = write!(out, "; output v{node} {s}");
    }
    out
}

impl Graph {
    /// Centralized shape inference for one op given the shapes of its
    /// already-recorded inputs (see [`infer_shape_with`]).
    pub(crate) fn infer_shape(
        &self,
        op: &Op,
        declared: Option<&Shape>,
    ) -> Result<Shape, ShapeError> {
        infer_shape_with(op, declared, &|v: Var| self.node_value(v).shape())
    }

    /// Structural invariants only: scalar loss, per-node shape
    /// inference consistency and index bounds. This is the subset that
    /// runs automatically inside `backward()` under `debug_assertions`.
    pub(crate) fn structural_diagnostics(&self, loss: Var) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let loss_value = self.node_value(loss);
        if loss_value.numel() != 1 {
            out.push(Diagnostic::error(
                "non-scalar-loss",
                Some(loss.0),
                op_mnemonic(self.node_op(loss)),
                format!("backward() needs a scalar loss, got {}", loss_value.shape()),
            ));
        }
        for id in 0..=loss.0 {
            let v = Var(id);
            let op = self.node_op(v);
            let recorded = self.node_value(v).shape();
            match self.infer_shape(op, Some(recorded)) {
                Err(e) => {
                    let code = match e.kind() {
                        ShapeErrorKind::OutOfBounds => "oob-index",
                        _ => "shape-error",
                    };
                    let e = e.with_context(op_context(self, op, id, Some(recorded)));
                    out.push(Diagnostic::error(code, Some(id), op_mnemonic(op), e.to_string()));
                }
                Ok(inferred) => {
                    if !inferred.same_as(recorded) {
                        out.push(Diagnostic::error(
                            "shape-mismatch",
                            Some(id),
                            op_mnemonic(op),
                            format!("recorded value has shape {recorded}, op implies {inferred}"),
                        ));
                    }
                }
            }
        }
        out
    }

    /// Marks every node `<= loss` that can reach the loss through op
    /// edges.
    pub(crate) fn live_set(&self, loss: Var) -> Vec<bool> {
        let mut live = vec![false; loss.0 + 1];
        let mut stack = vec![loss.0];
        live[loss.0] = true;
        while let Some(id) = stack.pop() {
            for_each_input(self.node_op(Var(id)), |input| {
                if input.0 < live.len() && !live[input.0] {
                    live[input.0] = true;
                    stack.push(input.0);
                }
            });
        }
        live
    }

    /// Lints the tape below `loss`, returning every finding.
    ///
    /// Runs the structural checks of [`Graph::backward`]'s debug hook
    /// plus reachability analysis (dead subgraphs) and NaN/Inf pattern
    /// detection. An empty result means `backward(loss)` is safe and
    /// every recorded node participates in the gradient.
    ///
    /// Use [`Graph::check_with_params`] to also verify parameter
    /// coverage.
    pub fn check(&self, loss: Var) -> Vec<Diagnostic> {
        let mut out = self.structural_diagnostics(loss);
        let live = self.live_set(loss);

        // Dead subgraphs: collapse into one diagnostic so a large tape
        // with a forgotten branch does not flood the report.
        let dead: Vec<usize> = (0..=loss.0).filter(|&id| !live[id]).collect();
        if !dead.is_empty() {
            let preview: Vec<String> = dead.iter().take(5).map(ToString::to_string).collect();
            let suffix = if dead.len() > 5 { ", .." } else { "" };
            out.push(Diagnostic::warning(
                "dead-code",
                Some(dead[0]),
                op_mnemonic(self.node_op(Var(dead[0]))),
                format!(
                    "{} node(s) recorded before the loss never reach it (nodes {}{suffix})",
                    dead.len(),
                    preview.join(", ")
                ),
            ));
        }

        // NaN/Inf-producing patterns on constants, and non-finite
        // forward values at their origin node.
        for id in 0..=loss.0 {
            let v = Var(id);
            let op = self.node_op(v);
            match op {
                Op::Div(_, b)
                    if self.is_constant(*b) && self.node_value(*b).data().contains(&0.0) =>
                {
                    out.push(Diagnostic::warning(
                        "div-by-zero",
                        Some(id),
                        "Div",
                        format!("divides by constant node {} which contains 0", b.0),
                    ));
                }
                Op::Ln(a)
                    if self.is_constant(*a)
                        && self.node_value(*a).data().iter().any(|&x| x <= 0.0) =>
                {
                    out.push(Diagnostic::warning(
                        "log-nonpositive",
                        Some(id),
                        "Ln",
                        format!("takes ln of constant node {} with a value <= 0", a.0),
                    ));
                }
                Op::Sqrt(a)
                    if self.is_constant(*a)
                        && self.node_value(*a).data().iter().any(|&x| x < 0.0) =>
                {
                    out.push(Diagnostic::warning(
                        "sqrt-negative",
                        Some(id),
                        "Sqrt",
                        format!("takes sqrt of constant node {} with a negative value", a.0),
                    ));
                }
                _ => {}
            }
            // Non-finite op *payloads*: these corrupt gradients (the
            // backward rules multiply by them) even when every node
            // value still looks finite, so they are flagged separately
            // from the value sweep below.
            match op {
                Op::Dropout(_, mask) if mask.iter().any(|m| !m.is_finite()) => {
                    out.push(Diagnostic::warning(
                        "non-finite-mask",
                        Some(id),
                        "Dropout",
                        "recorded dropout mask contains NaN or Inf".to_string(),
                    ));
                }
                Op::AddScalar(_, s) | Op::MulScalar(_, s) if !s.is_finite() => {
                    out.push(Diagnostic::warning(
                        "non-finite-scalar",
                        Some(id),
                        op_mnemonic(op),
                        format!("scalar payload {s} is not finite"),
                    ));
                }
                _ => {}
            }
            if self.node_value(v).has_non_finite() {
                let mut inputs_finite = true;
                for_each_input(op, |input| {
                    if self.node_value(input).has_non_finite() {
                        inputs_finite = false;
                    }
                });
                if inputs_finite {
                    out.push(Diagnostic::warning(
                        "non-finite",
                        Some(id),
                        op_mnemonic(op),
                        "forward value introduces NaN or Inf from finite inputs".to_string(),
                    ));
                }
            }
        }
        out
    }

    /// [`Graph::check`] plus parameter coverage: every parameter
    /// registered in `params` must be mounted on a node that reaches
    /// the loss, otherwise it silently never receives a gradient.
    pub fn check_with_params(&self, loss: Var, params: &ParamStore) -> Vec<Diagnostic> {
        let mut out = self.check(loss);
        let live = self.live_set(loss);
        let mut reached = vec![false; params.len()];
        for (id, &is_live) in live.iter().enumerate().take(loss.0 + 1) {
            if let Op::Leaf(Some(pid)) = self.node_op(Var(id)) {
                if is_live && pid.index() < reached.len() {
                    reached[pid.index()] = true;
                }
            }
        }
        for (pid, name, _) in params.iter() {
            if !reached[pid.index()] {
                out.push(Diagnostic::warning(
                    "dead-param",
                    None,
                    "Param",
                    format!("registered parameter {name:?} has no gradient path to the loss"),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamStore;
    use crate::tensor::Tensor;
    use proptest::prelude::*;

    fn two_param_store() -> (ParamStore, crate::params::ParamId, crate::params::ParamId) {
        let mut ps = ParamStore::new();
        let a = ps.insert("a", Tensor::from_vec([2], vec![1.0, 2.0]));
        let b = ps.insert("b", Tensor::from_vec([2], vec![3.0, 4.0]));
        (ps, a, b)
    }

    #[test]
    fn clean_tape_has_zero_diagnostics() {
        let (ps, a, b) = two_param_store();
        let mut g = Graph::new();
        let av = g.param(&ps, a);
        let bv = g.param(&ps, b);
        let p = g.mul(av, bv);
        let loss = g.sum_all(p);
        assert!(g.check_with_params(loss, &ps).is_empty());
    }

    #[test]
    fn dead_param_is_reported() {
        let (ps, a, _b) = two_param_store();
        let mut g = Graph::new();
        let av = g.param(&ps, a);
        let sq = g.square(av);
        let loss = g.sum_all(sq);
        let diags = g.check_with_params(loss, &ps);
        assert_eq!(diags.len(), 1, "diags: {diags:?}");
        assert_eq!(diags[0].code, "dead-param");
        assert_eq!(diags[0].severity, Severity::Warning);
        assert!(diags[0].message.contains("\"b\""), "message: {}", diags[0].message);
    }

    #[test]
    fn dead_subgraph_is_reported_once() {
        let (ps, a, b) = two_param_store();
        let mut g = Graph::new();
        let av = g.param(&ps, a);
        let bv = g.param(&ps, b);
        // A dangling branch off `b` that never reaches the loss.
        let dangling = g.square(bv);
        let _more_dangling = g.sum_all(dangling);
        let sq = g.square(av);
        let loss = g.sum_all(sq);
        let diags = g.check(loss);
        let dead: Vec<_> = diags.iter().filter(|d| d.code == "dead-code").collect();
        assert_eq!(dead.len(), 1, "diags: {diags:?}");
        assert!(dead[0].message.contains("3 node(s)"), "message: {}", dead[0].message);
    }

    #[test]
    fn oob_gather_is_reported() {
        let (ps, a, _b) = two_param_store();
        let mut g = Graph::new();
        let av = g.param(&ps, a);
        let m = g.reshape(av, [1, 2]);
        let bad = g.fault_gather_rows_unchecked(m, &[0, 7]);
        let s = g.sum_all(bad);
        let diags = g.check(s);
        assert!(
            diags.iter().any(|d| d.code == "oob-index" && d.severity == Severity::Error),
            "diags: {diags:?}"
        );
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let (ps, a, b) = two_param_store();
        let mut g = Graph::new();
        let av = g.param(&ps, a);
        let bv = g.param(&ps, b);
        let sum = g.add(av, bv);
        g.fault_override_value(sum, Tensor::zeros([3]));
        let loss = g.sum_all(sum);
        let diags = g.check(loss);
        assert!(
            diags.iter().any(|d| d.code == "shape-mismatch" && d.node == Some(sum.index())),
            "diags: {diags:?}"
        );
    }

    #[test]
    fn non_scalar_loss_is_reported() {
        let (ps, a, _b) = two_param_store();
        let mut g = Graph::new();
        let av = g.param(&ps, a);
        let diags = g.check(av);
        assert!(diags.iter().any(|d| d.code == "non-scalar-loss"), "diags: {diags:?}");
    }

    #[test]
    fn div_by_zero_constant_warns() {
        let (ps, a, _b) = two_param_store();
        let mut g = Graph::new();
        let av = g.param(&ps, a);
        let z = g.constant(Tensor::from_vec([2], vec![1.0, 0.0]));
        let q = g.div(av, z);
        let loss = g.sum_all(q);
        let diags = g.check(loss);
        assert!(diags.iter().any(|d| d.code == "div-by-zero"), "diags: {diags:?}");
        // The division by zero also produces an Inf at the Div node.
        assert!(diags.iter().any(|d| d.code == "non-finite"), "diags: {diags:?}");
    }

    #[test]
    fn log_of_nonpositive_constant_warns() {
        let mut g = Graph::new();
        let c = g.constant(Tensor::from_vec([2], vec![0.5, -1.0]));
        let l = g.ln(c);
        let loss = g.sum_all(l);
        let diags = g.check(loss);
        assert!(diags.iter().any(|d| d.code == "log-nonpositive"), "diags: {diags:?}");
    }

    #[test]
    fn diagnostic_display_is_stable() {
        let d = Diagnostic::error(
            "oob-index",
            Some(3),
            "GatherRows",
            "index 7 out of bounds for 2 rows",
        );
        assert_eq!(
            d.to_string(),
            "error[oob-index] node 3 (GatherRows): index 7 out of bounds for 2 rows"
        );
    }

    proptest! {
        /// A randomly shaped, randomly valued but well-formed training
        /// tape lints clean, and stays clean while it converges.
        #[test]
        fn converging_tape_stays_clean(rows in 1usize..5, cols in 1usize..5, steps in 1usize..4) {
            let mut ps = ParamStore::new();
            let n = rows * cols;
            let data: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin()).collect();
            let w = ps.insert("w", Tensor::from_vec(vec![rows, cols], data));
            for _ in 0..steps {
                let mut g = Graph::new();
                let wv = g.param(&ps, w);
                let sq = g.square(wv);
                let loss = g.mean_all(sq);
                prop_assert!(g.check_with_params(loss, &ps).is_empty());
                let grads = g.backward(loss);
                use crate::optim::{Optimizer, Sgd};
                Sgd::new(0.1).step(&mut ps, &grads);
            }
        }
    }
}
