//! Reverse-mode automatic differentiation on an arena tape.
//!
//! A [`Graph`] records every operation as a node in a flat arena. Each
//! node stores the operation, its input [`Var`]s and its forward value.
//! [`Graph::backward`] seeds the loss gradient with 1 and sweeps the
//! arena in reverse creation order (which is a valid reverse topological
//! order because inputs always precede outputs), accumulating gradients
//! into a [`GradStore`] keyed by [`ParamId`].
//!
//! The op set is exactly what the DEKG-ILP models and baselines need:
//! elementwise arithmetic, matmul, gathers/scatters for embedding lookup
//! and message passing, concatenation, reductions, pointwise
//! nonlinearities, dropout and an `im2col`-style flat gather that powers
//! the ConvE baseline's convolution.

use crate::kernels;
use crate::params::{GradStore, ParamId, ParamStore};
use crate::prof;
use crate::shape::Shape;
use crate::tensor::Tensor;
use rand::Rng;

/// Handle to a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

impl Var {
    /// The node's arena index — matches [`crate::check::Diagnostic::node`].
    pub fn index(self) -> usize {
        self.0
    }
}

/// Sentinel index for [`Graph::gather_flat`]: positions carrying it read
/// as `0.0` and receive no gradient. Used to zero-pad `im2col` patches.
pub const PAD: usize = usize::MAX;

// Every payload is read by the f64 reference interpreter in
// `interp.rs`, which re-executes recorded tapes from this enum alone.
// When adding a variant: extend `check::ALL_OPS`/`op_ordinal`, the
// interpreter (forward + backward), and register a gradcheck in
// `gradcheck::registry` — the coverage audit fails until all exist.
#[derive(Debug)]
pub(crate) enum Op {
    /// A leaf value; `Some(id)` when it is a trainable parameter.
    Leaf(Option<ParamId>),
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Div(Var, Var),
    Neg(Var),
    AddScalar(Var, f32),
    MulScalar(Var, f32),
    Matmul(Var, Var),
    /// Select rows `idx` of a rank-2 input.
    GatherRows(Var, Vec<usize>),
    /// Select arbitrary flat offsets (or [`PAD`]) into a new shape.
    GatherFlat(Var, Vec<usize>),
    /// Same data, new shape.
    Reshape(Var),
    /// Concatenate along axis 0 (rows).
    ConcatRows(Vec<Var>),
    /// Concatenate rank-2 inputs along axis 1 (columns).
    ConcatCols(Vec<Var>),
    SumAll(Var),
    MeanAll(Var),
    /// Column sums of a rank-2 input: `[m, n] -> [n]`.
    SumAxis0(Var),
    /// Row sums of a rank-2 input: `[m, n] -> [m]`.
    SumAxis1(Var),
    /// Column means of a rank-2 input: `[m, n] -> [n]`.
    MeanAxis0(Var),
    Relu(Var),
    Sigmoid(Var),
    Tanh(Var),
    Sqrt(Var),
    Exp(Var),
    Ln(Var),
    Sin(Var),
    Cos(Var),
    Square(Var),
    Abs(Var),
    /// Multiply by a precomputed inverted-dropout mask.
    Dropout(Var, Vec<f32>),
    /// Stack scalar vars into a rank-1 tensor.
    StackScalars(Vec<Var>),
    /// `out[idx[e], :] += src[e, :]` over `rows` output rows.
    ScatterAddRows {
        src: Var,
        idx: Vec<usize>,
        rows: usize,
    },
    /// Repeat a rank-1 `[d]` input as `rows` identical rows: `[rows, d]`.
    BroadcastRow(Var, usize),
}

struct Node {
    op: Op,
    value: Tensor,
    needs_grad: bool,
}

/// A single-use computation tape.
///
/// See the [module documentation](self) for the usage pattern.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// An empty tape.
    pub fn new() -> Self {
        Graph { nodes: Vec::new() }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The forward value of `v`.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// The shape of `v`'s value.
    pub fn shape(&self, v: Var) -> &Shape {
        self.nodes[v.0].value.shape()
    }

    fn push(&mut self, op: Op, value: Tensor, needs_grad: bool) -> Var {
        let id = self.nodes.len();
        self.nodes.push(Node { op, value, needs_grad });
        Var(id)
    }

    /// [`push`](Self::push) plus per-op profiling: when `t` is armed
    /// (see [`crate::prof::set_enabled`]), folds the op's elapsed wall
    /// time and the bytes it moved — every input read plus the output
    /// written, 4 bytes per f32 — into the global profile tables. The
    /// timer is armed by the op constructor *before* it computes the
    /// forward value, so the elapsed time covers the kernel itself.
    fn push_prof(&mut self, op: Op, value: Tensor, needs_grad: bool, t: prof::ProfTimer) -> Var {
        if let Some(elapsed) = t.finish() {
            let mut bytes = value.numel() as u64 * 4;
            crate::check::for_each_input(&op, |v| {
                bytes += self.nodes[v.0].value.numel() as u64 * 4;
            });
            prof::record_forward(crate::check::op_ordinal(&op), bytes, elapsed);
        }
        self.push(op, value, needs_grad)
    }

    fn needs(&self, v: Var) -> bool {
        self.nodes[v.0].needs_grad
    }

    /// The recorded op of a node (linter access).
    pub(crate) fn node_op(&self, v: Var) -> &Op {
        &self.nodes[v.0].op
    }

    /// The recorded forward value of a node (linter access).
    pub(crate) fn node_value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// True when `v` is a non-parameter leaf — a value the linter may
    /// treat as provably constant.
    pub(crate) fn is_constant(&self, v: Var) -> bool {
        matches!(self.nodes[v.0].op, Op::Leaf(None))
    }

    /// Whether gradients flow through node `v` (analyzer access).
    pub(crate) fn node_needs_grad(&self, v: Var) -> bool {
        self.nodes[v.0].needs_grad
    }

    /// Runs the centralized shape inference of [`crate::check`] for an
    /// op about to be recorded, panicking with the typed
    /// [`crate::check::ShapeError`]'s message on failure. This is the
    /// single place eager construction validates shapes and indices.
    fn expect_shape(&self, op: &Op, declared: Option<&Shape>) -> Shape {
        match self.infer_shape(op, declared) {
            Ok(shape) => shape,
            // The would-be arena index of the op being validated is
            // nodes.len(): provenance for the panic message.
            Err(e) => {
                let e = e.with_context(crate::check::op_context(self, op, self.nodes.len(), None));
                panic!("{e}")
            }
        }
    }

    // ---- leaves ----

    /// Mounts parameter `id` from `store` as a differentiable leaf.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        let t = prof::start();
        self.push_prof(Op::Leaf(Some(id)), store.get(id).clone(), true, t)
    }

    /// Inserts a non-differentiable constant.
    pub fn constant(&mut self, value: Tensor) -> Var {
        let t = prof::start();
        self.push_prof(Op::Leaf(None), value, false, t)
    }

    /// Inserts a scalar constant.
    pub fn scalar(&mut self, value: f32) -> Var {
        self.constant(Tensor::scalar(value))
    }

    // ---- arithmetic ----

    /// Elementwise `a + b` (same shape).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let t = prof::start();
        let op = Op::Add(a, b);
        self.expect_shape(&op, None);
        let v = self.nodes[a.0].value.add(&self.nodes[b.0].value);
        let ng = self.needs(a) || self.needs(b);
        self.push_prof(op, v, ng, t)
    }

    /// Elementwise `a - b` (same shape).
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let t = prof::start();
        let op = Op::Sub(a, b);
        let shape = self.expect_shape(&op, None);
        let av = &self.nodes[a.0].value;
        let bv = &self.nodes[b.0].value;
        let data = av.data().iter().zip(bv.data()).map(|(&x, &y)| x - y).collect();
        let v = Tensor::from_vec(shape, data);
        let ng = self.needs(a) || self.needs(b);
        self.push_prof(op, v, ng, t)
    }

    /// Elementwise `a * b` (same shape).
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let t = prof::start();
        let op = Op::Mul(a, b);
        self.expect_shape(&op, None);
        let v = self.nodes[a.0].value.mul(&self.nodes[b.0].value);
        let ng = self.needs(a) || self.needs(b);
        self.push_prof(op, v, ng, t)
    }

    /// Elementwise `a / b` (same shape).
    pub fn div(&mut self, a: Var, b: Var) -> Var {
        let t = prof::start();
        let op = Op::Div(a, b);
        let shape = self.expect_shape(&op, None);
        let av = &self.nodes[a.0].value;
        let bv = &self.nodes[b.0].value;
        let data = av.data().iter().zip(bv.data()).map(|(&x, &y)| x / y).collect();
        let v = Tensor::from_vec(shape, data);
        let ng = self.needs(a) || self.needs(b);
        self.push_prof(op, v, ng, t)
    }

    /// Elementwise negation.
    pub fn neg(&mut self, a: Var) -> Var {
        let t = prof::start();
        let v = self.nodes[a.0].value.scale(-1.0);
        let ng = self.needs(a);
        self.push_prof(Op::Neg(a), v, ng, t)
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&mut self, a: Var, s: f32) -> Var {
        let t = prof::start();
        let v = self.nodes[a.0].value.map(|x| x + s);
        let ng = self.needs(a);
        self.push_prof(Op::AddScalar(a, s), v, ng, t)
    }

    /// Multiplies every element by a scalar.
    pub fn mul_scalar(&mut self, a: Var, s: f32) -> Var {
        let t = prof::start();
        let v = self.nodes[a.0].value.scale(s);
        let ng = self.needs(a);
        self.push_prof(Op::MulScalar(a, s), v, ng, t)
    }

    /// Matrix product of rank-2 vars.
    ///
    /// Edge-case contract (the reference interpreter replicates both,
    /// see `interp.rs`):
    /// * an exact `0.0` entry of `a` annihilates its whole term — even
    ///   against `Inf`/`NaN` in `b` — because the kernel skips zero
    ///   left factors (`kernels::matmul`'s sparsity shortcut);
    /// * a `0`-length inner dimension (`[m, 0] × [0, n]`) produces an
    ///   all-zero `[m, n]` result, the empty-sum convention.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let t = prof::start();
        let op = Op::Matmul(a, b);
        self.expect_shape(&op, None);
        let v = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        let ng = self.needs(a) || self.needs(b);
        self.push_prof(op, v, ng, t)
    }

    // ---- structure ----

    /// Selects rows `idx` of a rank-2 var, producing `[idx.len(), cols]`.
    ///
    /// This is the embedding-lookup primitive; indices may repeat.
    pub fn gather_rows(&mut self, a: Var, idx: &[usize]) -> Var {
        let t = prof::start();
        let op = Op::GatherRows(a, idx.to_vec());
        let shape = self.expect_shape(&op, None);
        let av = &self.nodes[a.0].value;
        let (_, cols) = av.shape().as_matrix();
        let mut data = Vec::with_capacity(idx.len() * cols);
        for &i in idx {
            data.extend_from_slice(av.row(i));
        }
        let v = Tensor::from_vec(shape, data);
        let ng = self.needs(a);
        self.push_prof(op, v, ng, t)
    }

    /// Gathers arbitrary flat offsets of `a` into a tensor of `shape`.
    ///
    /// Offsets equal to [`PAD`] read as `0.0`. This is the `im2col`
    /// primitive behind the ConvE baseline's `im2col` convolution.
    /// A row of exclusively `PAD` offsets is legal: it reads all zeros
    /// and routes no gradient anywhere — the backward pass produces an
    /// explicit zero gradient for `a`, not a missing one.
    ///
    /// # Panics
    /// If `idx.len() != shape.numel()` or any non-PAD offset is out of
    /// bounds.
    pub fn gather_flat(&mut self, a: Var, idx: &[usize], shape: impl Into<Shape>) -> Var {
        let t = prof::start();
        let shape = shape.into();
        let op = Op::GatherFlat(a, idx.to_vec());
        let shape = self.expect_shape(&op, Some(&shape));
        let av = self.nodes[a.0].value.data();
        let data = idx.iter().map(|&i| if i == PAD { 0.0 } else { av[i] }).collect();
        let v = Tensor::from_vec(shape, data);
        let ng = self.needs(a);
        self.push_prof(op, v, ng, t)
    }

    /// Reinterprets `a` under a new shape (same element count).
    pub fn reshape(&mut self, a: Var, shape: impl Into<Shape>) -> Var {
        let t = prof::start();
        let shape = shape.into();
        let op = Op::Reshape(a);
        let shape = self.expect_shape(&op, Some(&shape));
        let v = self.nodes[a.0].value.clone().reshape(shape);
        let ng = self.needs(a);
        self.push_prof(op, v, ng, t)
    }

    /// Concatenates along axis 0. Rank-1 inputs concatenate into a longer
    /// rank-1; rank-2 inputs stack rows (equal column counts required).
    pub fn concat_rows(&mut self, parts: &[Var]) -> Var {
        let t = prof::start();
        let op = Op::ConcatRows(parts.to_vec());
        let shape = self.expect_shape(&op, None);
        let mut data = Vec::with_capacity(shape.numel());
        for &p in parts {
            data.extend_from_slice(self.nodes[p.0].value.data());
        }
        let v = Tensor::from_vec(shape, data);
        let ng = parts.iter().any(|&p| self.needs(p));
        self.push_prof(op, v, ng, t)
    }

    /// Concatenates rank-2 inputs along axis 1 (equal row counts).
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        let t = prof::start();
        let op = Op::ConcatCols(parts.to_vec());
        let shape = self.expect_shape(&op, None);
        let (rows, total) = shape.as_matrix();
        let mut data = Vec::with_capacity(rows * total);
        for i in 0..rows {
            for &p in parts {
                data.extend_from_slice(self.nodes[p.0].value.row(i));
            }
        }
        let v = Tensor::from_vec(shape, data);
        let ng = parts.iter().any(|&p| self.needs(p));
        self.push_prof(op, v, ng, t)
    }

    // ---- reductions ----

    /// Sum of all elements (scalar output).
    pub fn sum_all(&mut self, a: Var) -> Var {
        let t = prof::start();
        let v = Tensor::scalar(self.nodes[a.0].value.sum());
        let ng = self.needs(a);
        self.push_prof(Op::SumAll(a), v, ng, t)
    }

    /// Mean of all elements (scalar output).
    ///
    /// The mean of an empty var is defined as `0.0` (and its backward
    /// pass divides by `numel().max(1)`), matching the interpreter.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let t = prof::start();
        let v = Tensor::scalar(self.nodes[a.0].value.mean());
        let ng = self.needs(a);
        self.push_prof(Op::MeanAll(a), v, ng, t)
    }

    /// Column sums of a rank-2 var: `[m, n] -> [n]`.
    pub fn sum_axis0(&mut self, a: Var) -> Var {
        let t = prof::start();
        let op = Op::SumAxis0(a);
        self.expect_shape(&op, None);
        let av = &self.nodes[a.0].value;
        let (m, n) = av.shape().as_matrix();
        let mut out = vec![0.0; n];
        for i in 0..m {
            kernels::add_assign(&mut out, av.row(i));
        }
        let ng = self.needs(a);
        self.push_prof(op, Tensor::from_vec(vec![n], out), ng, t)
    }

    /// Row sums of a rank-2 var: `[m, n] -> [m]`.
    pub fn sum_axis1(&mut self, a: Var) -> Var {
        let t = prof::start();
        let op = Op::SumAxis1(a);
        self.expect_shape(&op, None);
        let av = &self.nodes[a.0].value;
        let (m, _n) = av.shape().as_matrix();
        let out: Vec<f32> = (0..m).map(|i| av.row(i).iter().sum()).collect();
        let ng = self.needs(a);
        self.push_prof(op, Tensor::from_vec(vec![m], out), ng, t)
    }

    /// Column means of a rank-2 var: `[m, n] -> [n]`.
    ///
    /// `m == 0` yields the zero vector (empty-mean convention, same as
    /// [`Graph::mean_all`]).
    pub fn mean_axis0(&mut self, a: Var) -> Var {
        let t = prof::start();
        let op = Op::MeanAxis0(a);
        self.expect_shape(&op, None);
        let av = &self.nodes[a.0].value;
        let (m, n) = av.shape().as_matrix();
        let mut out = vec![0.0; n];
        for i in 0..m {
            kernels::add_assign(&mut out, av.row(i));
        }
        let inv = if m == 0 { 0.0 } else { 1.0 / m as f32 };
        for x in &mut out {
            *x *= inv;
        }
        let ng = self.needs(a);
        self.push_prof(op, Tensor::from_vec(vec![n], out), ng, t)
    }

    // ---- nonlinearities ----

    /// `max(0, x)` elementwise.
    pub fn relu(&mut self, a: Var) -> Var {
        let t = prof::start();
        let v = self.nodes[a.0].value.map(|x| x.max(0.0));
        let ng = self.needs(a);
        self.push_prof(Op::Relu(a), v, ng, t)
    }

    /// Logistic sigmoid elementwise.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let t = prof::start();
        let v = self.nodes[a.0].value.map(|x| 1.0 / (1.0 + (-x).exp()));
        let ng = self.needs(a);
        self.push_prof(Op::Sigmoid(a), v, ng, t)
    }

    /// Hyperbolic tangent elementwise.
    pub fn tanh(&mut self, a: Var) -> Var {
        let t = prof::start();
        let v = self.nodes[a.0].value.map(f32::tanh);
        let ng = self.needs(a);
        self.push_prof(Op::Tanh(a), v, ng, t)
    }

    /// Elementwise square root (inputs are expected non-negative).
    pub fn sqrt(&mut self, a: Var) -> Var {
        let t = prof::start();
        let v = self.nodes[a.0].value.map(f32::sqrt);
        let ng = self.needs(a);
        self.push_prof(Op::Sqrt(a), v, ng, t)
    }

    /// Elementwise `exp`.
    pub fn exp(&mut self, a: Var) -> Var {
        let t = prof::start();
        let v = self.nodes[a.0].value.map(f32::exp);
        let ng = self.needs(a);
        self.push_prof(Op::Exp(a), v, ng, t)
    }

    /// Elementwise natural log.
    pub fn ln(&mut self, a: Var) -> Var {
        let t = prof::start();
        let v = self.nodes[a.0].value.map(f32::ln);
        let ng = self.needs(a);
        self.push_prof(Op::Ln(a), v, ng, t)
    }

    /// Elementwise sine.
    pub fn sin(&mut self, a: Var) -> Var {
        let t = prof::start();
        let v = self.nodes[a.0].value.map(f32::sin);
        let ng = self.needs(a);
        self.push_prof(Op::Sin(a), v, ng, t)
    }

    /// Elementwise cosine.
    pub fn cos(&mut self, a: Var) -> Var {
        let t = prof::start();
        let v = self.nodes[a.0].value.map(f32::cos);
        let ng = self.needs(a);
        self.push_prof(Op::Cos(a), v, ng, t)
    }

    /// Elementwise square.
    pub fn square(&mut self, a: Var) -> Var {
        let t = prof::start();
        let v = self.nodes[a.0].value.map(|x| x * x);
        let ng = self.needs(a);
        self.push_prof(Op::Square(a), v, ng, t)
    }

    /// Elementwise absolute value.
    pub fn abs(&mut self, a: Var) -> Var {
        let t = prof::start();
        let v = self.nodes[a.0].value.map(f32::abs);
        let ng = self.needs(a);
        self.push_prof(Op::Abs(a), v, ng, t)
    }

    /// Inverted dropout: zeroes each element with probability `rate` and
    /// scales survivors by `1/(1-rate)`. `rate == 0` is the identity.
    pub fn dropout(&mut self, a: Var, rate: f32, rng: &mut impl Rng) -> Var {
        assert!((0.0..1.0).contains(&rate), "dropout rate {rate} outside [0, 1)");
        if rate == 0.0 {
            return a;
        }
        let t = prof::start();
        let keep = 1.0 - rate;
        let scale = 1.0 / keep;
        let av = &self.nodes[a.0].value;
        let mask: Vec<f32> =
            (0..av.numel()).map(|_| if rng.gen::<f32>() < keep { scale } else { 0.0 }).collect();
        let data = av.data().iter().zip(&mask).map(|(&x, &m)| x * m).collect();
        let v = Tensor::from_vec(av.shape().clone(), data);
        let ng = self.needs(a);
        self.push_prof(Op::Dropout(a, mask), v, ng, t)
    }

    // ---- graph-structured ops ----

    /// Stacks scalar vars into a rank-1 tensor `[parts.len()]`.
    pub fn stack_scalars(&mut self, parts: &[Var]) -> Var {
        let t = prof::start();
        let op = Op::StackScalars(parts.to_vec());
        let shape = self.expect_shape(&op, None);
        let data: Vec<f32> = parts.iter().map(|&p| self.nodes[p.0].value.data()[0]).collect();
        let ng = parts.iter().any(|&p| self.needs(p));
        self.push_prof(op, Tensor::from_vec(shape, data), ng, t)
    }

    /// Row scatter-add: output has `rows` rows; row `idx[e]` accumulates
    /// `src[e, :]`. The message-aggregation primitive of the GNN.
    ///
    /// # Panics
    /// If `idx.len()` differs from `src`'s row count or any index is out
    /// of bounds.
    pub fn scatter_add_rows(&mut self, src: Var, idx: &[usize], rows: usize) -> Var {
        let t = prof::start();
        let op = Op::ScatterAddRows { src, idx: idx.to_vec(), rows };
        let shape = self.expect_shape(&op, None);
        let sv = &self.nodes[src.0].value;
        let mut out = Tensor::zeros(shape);
        for (r, &target) in idx.iter().enumerate() {
            kernels::add_assign(out.row_mut(target), sv.row(r));
        }
        let ng = self.needs(src);
        self.push_prof(op, out, ng, t)
    }

    /// Repeats a rank-1 `[d]` var into `[rows, d]`.
    pub fn broadcast_row(&mut self, a: Var, rows: usize) -> Var {
        let t = prof::start();
        let op = Op::BroadcastRow(a, rows);
        let shape = self.expect_shape(&op, None);
        let av = &self.nodes[a.0].value;
        let mut data = Vec::with_capacity(shape.numel());
        for _ in 0..rows {
            data.extend_from_slice(av.data());
        }
        let ng = self.needs(a);
        self.push_prof(op, Tensor::from_vec(shape, data), ng, t)
    }

    // ---- composites ----

    /// Row-wise squared L2 distance between `[m, d]` vars: `[m]`.
    pub fn rowwise_sq_dist(&mut self, a: Var, b: Var) -> Var {
        let d = self.sub(a, b);
        let sq = self.square(d);
        self.sum_axis1(sq)
    }

    /// Row-wise Euclidean distance between `[m, d]` vars: `[m]`.
    ///
    /// A small epsilon keeps the sqrt differentiable at zero distance.
    pub fn rowwise_dist(&mut self, a: Var, b: Var) -> Var {
        let sq = self.rowwise_sq_dist(a, b);
        let eps = self.add_scalar(sq, 1e-12);
        self.sqrt(eps)
    }

    /// DistMult-style trilinear score per row: `sum(a * r * b, axis=1)`.
    pub fn trilinear_rows(&mut self, a: Var, r: Var, b: Var) -> Var {
        let ar = self.mul(a, r);
        let arb = self.mul(ar, b);
        self.sum_axis1(arb)
    }

    /// Margin ranking loss `mean(relu(margin - pos + neg))` over rank-1
    /// score vectors.
    pub fn margin_ranking_loss(&mut self, pos: Var, neg: Var, margin: f32) -> Var {
        let diff = self.sub(neg, pos);
        let shifted = self.add_scalar(diff, margin);
        let hinge = self.relu(shifted);
        self.mean_all(hinge)
    }

    // ---- backward ----

    /// Runs the reverse sweep from the scalar `loss`, returning parameter
    /// gradients.
    ///
    /// # Panics
    /// If `loss` is not a scalar (1-element) value.
    pub fn backward(&self, loss: Var) -> GradStore {
        assert_eq!(
            self.nodes[loss.0].value.numel(),
            1,
            "backward() needs a scalar loss, got {}",
            self.nodes[loss.0].value.shape()
        );
        // In debug builds, lint the tape's structural invariants before
        // sweeping so corruption fails loudly at its origin node rather
        // than as garbage gradients. Release builds skip this.
        #[cfg(debug_assertions)]
        if let Some(d) = self.structural_diagnostics(loss).first() {
            panic!("tape linter: {d}");
        }
        let mut grads: Vec<Option<Tensor>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[loss.0] = Some(Tensor::from_vec(self.nodes[loss.0].value.shape().clone(), vec![1.0]));

        let mut store = GradStore::new();
        for id in (0..=loss.0).rev() {
            if !self.nodes[id].needs_grad {
                continue;
            }
            let Some(grad) = grads[id].take() else { continue };
            let t = prof::start();
            self.backprop_node(id, &grad, &mut grads, &mut store);
            if let Some(elapsed) = t.finish() {
                prof::record_backward(
                    crate::check::op_ordinal(&self.nodes[id].op),
                    grad.numel() as u64 * 4,
                    elapsed,
                );
            }
        }
        store
    }

    fn accum(&self, grads: &mut [Option<Tensor>], v: Var, delta: &Tensor) {
        if !self.nodes[v.0].needs_grad {
            return;
        }
        match &mut grads[v.0] {
            Some(g) => kernels::add_assign(g.data_mut(), delta.data()),
            slot @ None => *slot = Some(delta.clone()),
        }
    }

    /// Like [`accum`] but takes ownership, avoiding a copy when the slot
    /// is empty.
    fn accum_owned(&self, grads: &mut [Option<Tensor>], v: Var, delta: Tensor) {
        if !self.nodes[v.0].needs_grad {
            return;
        }
        match &mut grads[v.0] {
            Some(g) => kernels::add_assign(g.data_mut(), delta.data()),
            slot @ None => *slot = Some(delta),
        }
    }

    fn backprop_node(
        &self,
        id: usize,
        grad: &Tensor,
        grads: &mut [Option<Tensor>],
        store: &mut GradStore,
    ) {
        let node = &self.nodes[id];
        match &node.op {
            Op::Leaf(Some(pid)) => store.accumulate(*pid, grad),
            Op::Leaf(None) => {}
            Op::Add(a, b) => {
                self.accum(grads, *a, grad);
                self.accum(grads, *b, grad);
            }
            Op::Sub(a, b) => {
                self.accum(grads, *a, grad);
                self.accum_owned(grads, *b, grad.scale(-1.0));
            }
            Op::Mul(a, b) => {
                if self.needs(*a) {
                    self.accum_owned(grads, *a, grad.mul(&self.nodes[b.0].value));
                }
                if self.needs(*b) {
                    self.accum_owned(grads, *b, grad.mul(&self.nodes[a.0].value));
                }
            }
            Op::Div(a, b) => {
                let bv = &self.nodes[b.0].value;
                if self.needs(*a) {
                    let d = grad.data().iter().zip(bv.data()).map(|(&g, &y)| g / y).collect();
                    self.accum_owned(grads, *a, Tensor::from_vec(grad.shape().clone(), d));
                }
                if self.needs(*b) {
                    let av = &self.nodes[a.0].value;
                    let d = grad
                        .data()
                        .iter()
                        .zip(av.data().iter().zip(bv.data()))
                        .map(|(&g, (&x, &y))| -g * x / (y * y))
                        .collect();
                    self.accum_owned(grads, *b, Tensor::from_vec(grad.shape().clone(), d));
                }
            }
            Op::Neg(a) => self.accum_owned(grads, *a, grad.scale(-1.0)),
            Op::AddScalar(a, _) => self.accum(grads, *a, grad),
            Op::MulScalar(a, s) => self.accum_owned(grads, *a, grad.scale(*s)),
            Op::Matmul(a, b) => {
                let av = &self.nodes[a.0].value;
                let bv = &self.nodes[b.0].value;
                let (m, k) = av.shape().as_matrix();
                let (_, n) = bv.shape().as_matrix();
                if self.needs(*a) {
                    // dA = dC * B^T
                    let mut da = Tensor::zeros([m, k]);
                    kernels::matmul_a_bt_acc(grad.data(), bv.data(), da.data_mut(), m, n, k);
                    self.accum_owned(grads, *a, da);
                }
                if self.needs(*b) {
                    // dB = A^T * dC
                    let mut db = Tensor::zeros([k, n]);
                    kernels::matmul_at_b_acc(av.data(), grad.data(), db.data_mut(), k, m, n);
                    self.accum_owned(grads, *b, db);
                }
            }
            Op::GatherRows(a, idx) => {
                let (rows, cols) = self.nodes[a.0].value.shape().as_matrix();
                let mut da = Tensor::zeros([rows, cols]);
                for (r, &i) in idx.iter().enumerate() {
                    kernels::add_assign(da.row_mut(i), grad.row(r));
                }
                self.accum_owned(grads, *a, da);
            }
            Op::GatherFlat(a, idx) => {
                let mut da = Tensor::zeros(self.nodes[a.0].value.shape().clone());
                let dd = da.data_mut();
                for (pos, &i) in idx.iter().enumerate() {
                    if i != PAD {
                        dd[i] += grad.data()[pos];
                    }
                }
                self.accum_owned(grads, *a, da);
            }
            Op::Reshape(a) => {
                let da = grad.clone().reshape(self.nodes[a.0].value.shape().clone());
                self.accum_owned(grads, *a, da);
            }
            Op::ConcatRows(parts) => {
                let mut off = 0;
                for &p in parts {
                    let pv = &self.nodes[p.0].value;
                    let n = pv.numel();
                    if self.needs(p) {
                        let slice = grad.data()[off..off + n].to_vec();
                        self.accum_owned(grads, p, Tensor::from_vec(pv.shape().clone(), slice));
                    }
                    off += n;
                }
            }
            Op::ConcatCols(parts) => {
                let (rows, _) = grad.shape().as_matrix();
                let mut col_off = 0;
                for &p in parts {
                    let pv = &self.nodes[p.0].value;
                    let (_, c) = pv.shape().as_matrix();
                    if self.needs(p) {
                        let mut dp = Tensor::zeros([rows, c]);
                        for i in 0..rows {
                            dp.row_mut(i).copy_from_slice(&grad.row(i)[col_off..col_off + c]);
                        }
                        self.accum_owned(grads, p, dp);
                    }
                    col_off += c;
                }
            }
            Op::SumAll(a) => {
                let g = grad.item();
                let da = Tensor::full(self.nodes[a.0].value.shape().clone(), g);
                self.accum_owned(grads, *a, da);
            }
            Op::MeanAll(a) => {
                let n = self.nodes[a.0].value.numel().max(1);
                let g = grad.item() / n as f32;
                let da = Tensor::full(self.nodes[a.0].value.shape().clone(), g);
                self.accum_owned(grads, *a, da);
            }
            Op::SumAxis0(a) => {
                let (m, n) = self.nodes[a.0].value.shape().as_matrix();
                let mut da = Tensor::zeros([m, n]);
                for i in 0..m {
                    da.row_mut(i).copy_from_slice(grad.data());
                }
                self.accum_owned(grads, *a, da);
            }
            Op::SumAxis1(a) => {
                let (m, n) = self.nodes[a.0].value.shape().as_matrix();
                let mut da = Tensor::zeros([m, n]);
                for i in 0..m {
                    let g = grad.data()[i];
                    for x in da.row_mut(i) {
                        *x = g;
                    }
                }
                self.accum_owned(grads, *a, da);
            }
            Op::MeanAxis0(a) => {
                let (m, n) = self.nodes[a.0].value.shape().as_matrix();
                let inv = if m == 0 { 0.0 } else { 1.0 / m as f32 };
                let mut da = Tensor::zeros([m, n]);
                for i in 0..m {
                    for (x, &g) in da.row_mut(i).iter_mut().zip(grad.data()) {
                        *x = g * inv;
                    }
                }
                self.accum_owned(grads, *a, da);
            }
            Op::Relu(a) => {
                let av = &self.nodes[a.0].value;
                let d = grad
                    .data()
                    .iter()
                    .zip(av.data())
                    .map(|(&g, &x)| if x > 0.0 { g } else { 0.0 })
                    .collect();
                self.accum_owned(grads, *a, Tensor::from_vec(grad.shape().clone(), d));
            }
            Op::Sigmoid(a) => {
                let yv = &node.value;
                let d =
                    grad.data().iter().zip(yv.data()).map(|(&g, &y)| g * y * (1.0 - y)).collect();
                self.accum_owned(grads, *a, Tensor::from_vec(grad.shape().clone(), d));
            }
            Op::Tanh(a) => {
                let yv = &node.value;
                let d =
                    grad.data().iter().zip(yv.data()).map(|(&g, &y)| g * (1.0 - y * y)).collect();
                self.accum_owned(grads, *a, Tensor::from_vec(grad.shape().clone(), d));
            }
            Op::Sqrt(a) => {
                let yv = &node.value;
                let d = grad
                    .data()
                    .iter()
                    .zip(yv.data())
                    .map(|(&g, &y)| if y > 0.0 { g * 0.5 / y } else { 0.0 })
                    .collect();
                self.accum_owned(grads, *a, Tensor::from_vec(grad.shape().clone(), d));
            }
            Op::Exp(a) => {
                let yv = &node.value;
                let d = grad.data().iter().zip(yv.data()).map(|(&g, &y)| g * y).collect();
                self.accum_owned(grads, *a, Tensor::from_vec(grad.shape().clone(), d));
            }
            Op::Ln(a) => {
                let av = &self.nodes[a.0].value;
                let d = grad.data().iter().zip(av.data()).map(|(&g, &x)| g / x).collect();
                self.accum_owned(grads, *a, Tensor::from_vec(grad.shape().clone(), d));
            }
            Op::Sin(a) => {
                let av = &self.nodes[a.0].value;
                let d = grad.data().iter().zip(av.data()).map(|(&g, &x)| g * x.cos()).collect();
                self.accum_owned(grads, *a, Tensor::from_vec(grad.shape().clone(), d));
            }
            Op::Cos(a) => {
                let av = &self.nodes[a.0].value;
                let d = grad.data().iter().zip(av.data()).map(|(&g, &x)| -g * x.sin()).collect();
                self.accum_owned(grads, *a, Tensor::from_vec(grad.shape().clone(), d));
            }
            Op::Square(a) => {
                let av = &self.nodes[a.0].value;
                let d = grad.data().iter().zip(av.data()).map(|(&g, &x)| 2.0 * g * x).collect();
                self.accum_owned(grads, *a, Tensor::from_vec(grad.shape().clone(), d));
            }
            Op::Abs(a) => {
                let av = &self.nodes[a.0].value;
                let d = grad
                    .data()
                    .iter()
                    .zip(av.data())
                    .map(|(&g, &x)| if x >= 0.0 { g } else { -g })
                    .collect();
                self.accum_owned(grads, *a, Tensor::from_vec(grad.shape().clone(), d));
            }
            Op::Dropout(a, mask) => {
                let d = grad.data().iter().zip(mask).map(|(&g, &m)| g * m).collect();
                self.accum_owned(grads, *a, Tensor::from_vec(grad.shape().clone(), d));
            }
            Op::StackScalars(parts) => {
                for (i, &p) in parts.iter().enumerate() {
                    if self.needs(p) {
                        let dp = Tensor::from_vec(
                            self.nodes[p.0].value.shape().clone(),
                            vec![grad.data()[i]],
                        );
                        self.accum_owned(grads, p, dp);
                    }
                }
            }
            Op::ScatterAddRows { src, idx, rows: _ } => {
                let (e, cols) = self.nodes[src.0].value.shape().as_matrix();
                let mut ds = Tensor::zeros([e, cols]);
                for (r, &target) in idx.iter().enumerate() {
                    ds.row_mut(r).copy_from_slice(grad.row(target));
                }
                self.accum_owned(grads, *src, ds);
            }
            Op::BroadcastRow(a, rows) => {
                let d = self.nodes[a.0].value.numel();
                let mut da = Tensor::zeros([d]);
                for r in 0..*rows {
                    kernels::add_assign(da.data_mut(), grad.row(r));
                }
                self.accum_owned(grads, *a, da);
            }
        }
    }
}

/// Fault injection for linter tests: these deliberately record broken
/// nodes that the eager constructors would reject, so
/// [`Graph::check`](crate::check) has something to find.
#[cfg(test)]
impl Graph {
    /// Records a `GatherRows` without bounds validation; out-of-range
    /// rows read as zeros.
    pub(crate) fn fault_gather_rows_unchecked(&mut self, a: Var, idx: &[usize]) -> Var {
        let av = &self.nodes[a.0].value;
        let (rows, cols) = av.shape().as_matrix();
        let mut data = Vec::with_capacity(idx.len() * cols);
        for &i in idx {
            if i < rows {
                data.extend_from_slice(av.row(i));
            } else {
                data.extend(std::iter::repeat(0.0).take(cols));
            }
        }
        let v = Tensor::from_vec(vec![idx.len(), cols], data);
        let ng = self.needs(a);
        self.push(Op::GatherRows(a, idx.to_vec()), v, ng)
    }

    /// Overwrites a node's recorded forward value, breaking the
    /// op/value shape agreement the linter verifies.
    pub(crate) fn fault_override_value(&mut self, v: Var, value: Tensor) {
        self.nodes[v.0].value = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn store_with(shape: impl Into<Shape>, data: Vec<f32>) -> (ParamStore, ParamId) {
        let mut ps = ParamStore::new();
        let id = ps.insert("p", Tensor::from_vec(shape, data));
        (ps, id)
    }

    /// Central-difference gradient check for a scalar function of one
    /// parameter tensor.
    #[allow(clippy::needless_pass_by_value)] // call-site ergonomics: literals go in directly
    fn grad_check(
        shape: impl Into<Shape> + Clone,
        data: Vec<f32>,
        f: impl Fn(&mut Graph, Var) -> Var,
    ) {
        let (mut ps, id) = store_with(shape.clone(), data.clone());

        let mut g = Graph::new();
        let p = g.param(&ps, id);
        let loss = f(&mut g, p);
        let analytic = g.backward(loss);
        let an = analytic.get(id).expect("param should have grad").clone();

        let eps = 1e-3f32;
        for i in 0..data.len() {
            let orig = ps.get(id).data()[i];
            ps.get_mut(id).data_mut()[i] = orig + eps;
            let mut gp = Graph::new();
            let pp = gp.param(&ps, id);
            let lp = f(&mut gp, pp);
            let fp = gp.value(lp).item();

            ps.get_mut(id).data_mut()[i] = orig - eps;
            let mut gm = Graph::new();
            let pm = gm.param(&ps, id);
            let lm = f(&mut gm, pm);
            let fm = gm.value(lm).item();
            ps.get_mut(id).data_mut()[i] = orig;

            let numeric = (fp - fm) / (2.0 * eps);
            let a = an.data()[i];
            assert!(
                (numeric - a).abs() < 1e-2 * (1.0 + numeric.abs().max(a.abs())),
                "grad mismatch at {i}: numeric {numeric} vs analytic {a}"
            );
        }
    }

    #[test]
    fn grad_sum_of_squares() {
        grad_check([3], vec![1.0, -2.0, 0.5], |g, p| {
            let sq = g.square(p);
            g.sum_all(sq)
        });
    }

    #[test]
    fn grad_matmul() {
        grad_check([2, 3], vec![0.5, -1.0, 2.0, 1.5, 0.0, -0.5], |g, p| {
            let w = g.constant(Tensor::from_vec([3, 2], vec![1.0, 2.0, -1.0, 0.5, 0.0, 1.0]));
            let y = g.matmul(p, w);
            let s = g.square(y);
            g.sum_all(s)
        });
    }

    #[test]
    fn grad_matmul_right_operand() {
        grad_check([3, 2], vec![1.0, 2.0, -1.0, 0.5, 0.0, 1.0], |g, p| {
            let x = g.constant(Tensor::from_vec([2, 3], vec![0.5, -1.0, 2.0, 1.5, 0.0, -0.5]));
            let y = g.matmul(x, p);
            let s = g.square(y);
            g.sum_all(s)
        });
    }

    #[test]
    fn grad_sigmoid_tanh_exp_ln() {
        grad_check([3], vec![0.3, 1.2, 2.0], |g, p| {
            let a = g.sigmoid(p);
            let b = g.tanh(a);
            let c = g.exp(b);
            let d = g.ln(c);
            g.sum_all(d)
        });
    }

    #[test]
    fn grad_sin_cos() {
        grad_check([3], vec![0.1, -0.7, 2.2], |g, p| {
            let s = g.sin(p);
            let c = g.cos(p);
            let m = g.mul(s, c);
            g.sum_all(m)
        });
    }

    #[test]
    fn grad_div() {
        grad_check([2], vec![1.5, -0.4], |g, p| {
            let denom = g.constant(Tensor::from_vec([2], vec![2.0, 4.0]));
            let q = g.div(p, denom);
            g.sum_all(q)
        });
        // denominator side
        grad_check([2], vec![2.0, 4.0], |g, p| {
            let num = g.constant(Tensor::from_vec([2], vec![1.5, -0.4]));
            let q = g.div(num, p);
            g.sum_all(q)
        });
    }

    #[test]
    fn grad_gather_rows() {
        grad_check([3, 2], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], |g, p| {
            let sel = g.gather_rows(p, &[0, 2, 0]);
            let s = g.square(sel);
            g.sum_all(s)
        });
    }

    #[test]
    fn grad_scatter_add() {
        grad_check([3, 2], vec![1.0, -1.0, 0.5, 2.0, 0.0, 1.0], |g, p| {
            let agg = g.scatter_add_rows(p, &[1, 0, 1], 2);
            let s = g.square(agg);
            g.sum_all(s)
        });
    }

    #[test]
    fn grad_concat_cols_and_rows() {
        grad_check([2, 2], vec![1.0, 2.0, 3.0, 4.0], |g, p| {
            let c = g.constant(Tensor::from_vec([2, 1], vec![5.0, 6.0]));
            let cat = g.concat_cols(&[p, c]);
            let cat2 = g.concat_rows(&[cat, cat]);
            let s = g.square(cat2);
            g.sum_all(s)
        });
    }

    #[test]
    fn grad_axis_reductions() {
        grad_check([2, 3], vec![1.0, -2.0, 3.0, 0.5, 1.5, -0.5], |g, p| {
            let s0 = g.sum_axis0(p);
            let s1 = g.sum_axis1(p);
            let m0 = g.mean_axis0(p);
            let a = g.sum_all(s0);
            let b = g.sum_all(s1);
            let c = g.sum_all(m0);
            let ab = g.add(a, b);
            let abc = g.add(ab, c);
            let sq = g.square(abc);
            g.sum_all(sq)
        });
    }

    #[test]
    fn grad_broadcast_row() {
        grad_check([3], vec![0.5, -1.0, 2.0], |g, p| {
            let b = g.broadcast_row(p, 4);
            let s = g.square(b);
            g.sum_all(s)
        });
    }

    #[test]
    fn grad_trilinear() {
        grad_check([2, 3], vec![0.2, -0.3, 0.7, 1.0, 0.1, -0.9], |g, p| {
            let r = g.constant(Tensor::from_vec([2, 3], vec![1.0; 6]));
            let b = g.constant(Tensor::from_vec([2, 3], vec![0.5, 0.5, 0.5, 1.0, -1.0, 1.0]));
            let scores = g.trilinear_rows(p, r, b);
            g.sum_all(scores)
        });
    }

    #[test]
    fn grad_rowwise_dist() {
        grad_check([2, 2], vec![1.0, 2.0, 3.0, 4.0], |g, p| {
            let b = g.constant(Tensor::from_vec([2, 2], vec![0.0, 0.5, 2.0, 7.0]));
            let d = g.rowwise_dist(p, b);
            g.sum_all(d)
        });
    }

    #[test]
    fn grad_margin_loss() {
        grad_check([3], vec![0.2, 1.4, -0.1], |g, p| {
            let neg = g.constant(Tensor::from_vec([3], vec![0.5, 0.1, 0.4]));
            g.margin_ranking_loss(p, neg, 1.0)
        });
    }

    #[test]
    fn grad_gather_flat_with_pad() {
        grad_check([4], vec![1.0, 2.0, 3.0, 4.0], |g, p| {
            let sel = g.gather_flat(p, &[3, PAD, 0, 0], [4]);
            let s = g.square(sel);
            g.sum_all(s)
        });
    }

    #[test]
    fn grad_stack_scalars() {
        grad_check([2], vec![2.0, -1.0], |g, p| {
            let s = g.sum_all(p);
            let m = g.mean_all(p);
            let stacked = g.stack_scalars(&[s, m]);
            let sq = g.square(stacked);
            g.sum_all(sq)
        });
    }

    #[test]
    fn dropout_mask_consistency() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let (ps, id) = store_with([100], vec![1.0; 100]);
        let mut g = Graph::new();
        let p = g.param(&ps, id);
        let d = g.dropout(p, 0.5, &mut rng);
        let loss = g.sum_all(d);
        let grads = g.backward(loss);
        let grad = grads.get(id).unwrap();
        // Gradient equals the mask: zero where dropped, 2.0 where kept.
        for (&y, &dg) in g.value(d).data().iter().zip(grad.data()) {
            assert_eq!(y, dg, "grad must equal mask entry");
            assert!(y == 0.0 || (y - 2.0).abs() < 1e-6);
        }
    }

    #[test]
    fn dropout_zero_rate_is_identity() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut g = Graph::new();
        let c = g.constant(Tensor::ones([4]));
        let d = g.dropout(c, 0.0, &mut rng);
        assert_eq!(c, d);
    }

    #[test]
    fn constants_get_no_grad() {
        let (ps, id) = store_with([2], vec![1.0, 2.0]);
        let mut g = Graph::new();
        let p = g.param(&ps, id);
        let c = g.constant(Tensor::ones([2]));
        let s = g.mul(p, c);
        let loss = g.sum_all(s);
        let grads = g.backward(loss);
        assert_eq!(grads.len(), 1);
        assert_eq!(grads.get(id).unwrap().data(), &[1.0, 1.0]);
    }

    #[test]
    fn reused_var_accumulates() {
        // loss = sum(p * p_same_var) should give grad 2p.
        let (ps, id) = store_with([2], vec![3.0, -2.0]);
        let mut g = Graph::new();
        let p = g.param(&ps, id);
        let prod = g.mul(p, p);
        let loss = g.sum_all(prod);
        let grads = g.backward(loss);
        assert_eq!(grads.get(id).unwrap().data(), &[6.0, -4.0]);
    }

    #[test]
    fn param_mounted_twice_accumulates() {
        let (ps, id) = store_with([1], vec![2.0]);
        let mut g = Graph::new();
        let p1 = g.param(&ps, id);
        let p2 = g.param(&ps, id);
        let s = g.add(p1, p2);
        let loss = g.sum_all(s);
        let grads = g.backward(loss);
        assert_eq!(grads.get(id).unwrap().data(), &[2.0]);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_rejects_non_scalar() {
        let (ps, id) = store_with([2], vec![1.0, 2.0]);
        let mut g = Graph::new();
        let p = g.param(&ps, id);
        g.backward(p);
    }
}
