#![warn(missing_docs)]

//! # dekg-tensor
//!
//! A small, self-contained dense-tensor and reverse-mode automatic
//! differentiation library. It is the numerical substrate for the
//! DEKG-ILP reproduction: every model (DEKG-ILP itself and all baselines)
//! expresses its forward pass as a [`Graph`] of operations over [`Tensor`]
//! values and obtains gradients for its [`ParamStore`] parameters via
//! [`Graph::backward`].
//!
//! Design points:
//!
//! * **Tape-based autograd.** A [`Graph`] is an arena of nodes indexed by
//!   [`Var`]. Recording an op stores its inputs and its forward value;
//!   [`Graph::backward`] sweeps the arena in reverse, accumulating
//!   gradients. No `Rc<RefCell<_>>` graphs, no lifetimes in user code.
//! * **Fresh tape per step.** Training loops create a new `Graph` each
//!   step, insert parameters as leaves, and apply the resulting
//!   [`GradStore`] with an optimizer from [`optim`]. This sidesteps every
//!   graph-reuse hazard.
//! * **Determinism.** All random initialization goes through explicit
//!   `Rng` arguments; given a fixed seed the whole stack is reproducible.
//!
//! ```
//! use dekg_tensor::{Graph, Tensor, ParamStore, optim::{Sgd, Optimizer}};
//!
//! let mut params = ParamStore::new();
//! let w = params.insert("w", Tensor::from_vec(vec![2], vec![1.0, -1.0]));
//!
//! // One gradient step minimizing ||w||^2.
//! let mut g = Graph::new();
//! let wv = g.param(&params, w);
//! let sq = g.mul(wv, wv);
//! let loss = g.sum_all(sq);
//! let grads = g.backward(loss);
//! Sgd::new(0.1).step(&mut params, &grads);
//!
//! assert!(params.get(w).data()[0] < 1.0);
//! ```

pub mod check;
pub mod gradcheck;
pub mod init;
pub mod interp;
pub mod kernels;
pub mod optim;
pub mod params;
pub mod prof;
pub mod serialize;
pub mod shape;
pub mod tape;
pub mod tapecheck;
pub mod tensor;

pub use check::{Diagnostic, Severity, ShapeError, ShapeErrorKind, ALL_OPS};
pub use interp::DiffBudget;
pub use params::{GradStore, ParamId, ParamStore};
pub use prof::{OpProfile, ProfSnapshot, TapeProfile};
pub use shape::Shape;
pub use tape::{Graph, Var};
pub use tapecheck::{MemoryPlan, TapeCache, TapeReport};
pub use tensor::Tensor;
