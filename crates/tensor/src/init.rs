//! Weight initializers.
//!
//! All initializers take an explicit RNG so experiments are reproducible
//! from a single seed.

use crate::shape::Shape;
use crate::tensor::Tensor;
use rand::Rng;

/// Uniform on `[lo, hi)`.
pub fn uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut impl Rng) -> Tensor {
    assert!(lo < hi, "uniform: empty range [{lo}, {hi})");
    let shape = shape.into();
    let data = (0..shape.numel()).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(shape, data)
}

/// Gaussian with the given mean and standard deviation (Box–Muller).
pub fn normal(shape: impl Into<Shape>, mean: f32, std: f32, rng: &mut impl Rng) -> Tensor {
    assert!(std >= 0.0, "normal: negative std {std}");
    let shape = shape.into();
    let n = shape.numel();
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(mean + std * r * theta.cos());
        if data.len() < n {
            data.push(mean + std * r * theta.sin());
        }
    }
    Tensor::from_vec(shape, data)
}

/// Glorot/Xavier uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
///
/// For rank-2 shapes fan-in/out are the two dims; for rank-1, both equal
/// the length; for rank-3 `[r, i, o]` stacks, fans are the trailing dims.
pub fn xavier_uniform(shape: impl Into<Shape>, rng: &mut impl Rng) -> Tensor {
    let shape = shape.into();
    let (fan_in, fan_out) = fans(&shape);
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(shape, -a, a, rng)
}

/// Glorot/Xavier normal: `N(0, sqrt(2 / (fan_in + fan_out)))`.
pub fn xavier_normal(shape: impl Into<Shape>, rng: &mut impl Rng) -> Tensor {
    let shape = shape.into();
    let (fan_in, fan_out) = fans(&shape);
    let std = (2.0 / (fan_in + fan_out) as f32).sqrt();
    normal(shape, 0.0, std, rng)
}

fn fans(shape: &Shape) -> (usize, usize) {
    match shape.rank() {
        0 => (1, 1),
        1 => (shape.dim(0).max(1), shape.dim(0).max(1)),
        2 => (shape.dim(0).max(1), shape.dim(1).max(1)),
        r => (shape.dim(r - 2).max(1), shape.dim(r - 1).max(1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn uniform_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let t = uniform([1000], -0.5, 0.5, &mut rng);
        assert!(t.data().iter().all(|&x| (-0.5..0.5).contains(&x)));
        // Mean should be near zero for a large sample.
        assert!(t.mean().abs() < 0.05);
    }

    #[test]
    fn normal_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let t = normal([10_000], 1.0, 2.0, &mut rng);
        let mean = t.mean();
        let var = t.data().iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / t.numel() as f32;
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn xavier_bound_matches_fans() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let t = xavier_uniform([30, 20], &mut rng);
        let a = (6.0f32 / 50.0).sqrt();
        assert!(t.data().iter().all(|&x| x.abs() <= a));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = xavier_normal([4, 4], &mut ChaCha8Rng::seed_from_u64(42));
        let b = xavier_normal([4, 4], &mut ChaCha8Rng::seed_from_u64(42));
        assert_eq!(a, b);
    }
}
