//! First-order optimizers over a [`ParamStore`].
//!
//! Each optimizer keeps its own per-parameter state, keyed by
//! [`crate::ParamId`] index, so one optimizer instance must stay paired with
//! one store for its lifetime (the usual training-loop shape).

use crate::params::{GradStore, ParamStore};
use std::collections::HashMap;

/// A gradient-descent style optimizer.
pub trait Optimizer {
    /// Applies `grads` to `params` in place.
    fn step(&mut self, params: &mut ParamStore, grads: &GradStore);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain SGD with optional momentum and L2 weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: HashMap<usize, Vec<f32>>,
}

impl Sgd {
    /// SGD with learning rate `lr`, no momentum, no weight decay.
    pub fn new(lr: f32) -> Self {
        Sgd { lr, momentum: 0.0, weight_decay: 0.0, velocity: HashMap::new() }
    }

    /// Adds classical momentum.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum {momentum} outside [0,1)");
        self.momentum = momentum;
        self
    }

    /// Adds decoupled L2 weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut ParamStore, grads: &GradStore) {
        for (id, grad) in grads.iter() {
            let value = params.get_mut(id);
            let data = value.data_mut();
            if self.momentum > 0.0 {
                let vel = self.velocity.entry(id.index()).or_insert_with(|| vec![0.0; data.len()]);
                assert_eq!(vel.len(), data.len(), "parameter shape changed under optimizer");
                for ((w, &g), v) in data.iter_mut().zip(grad.data()).zip(vel.iter_mut()) {
                    let g = g + self.weight_decay * *w;
                    *v = self.momentum * *v + g;
                    *w -= self.lr * *v;
                }
            } else {
                for (w, &g) in data.iter_mut().zip(grad.data()) {
                    let g = g + self.weight_decay * *w;
                    *w -= self.lr * g;
                }
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba, 2015) with optional decoupled weight decay.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: HashMap<usize, Vec<f32>>,
    v: HashMap<usize, Vec<f32>>,
}

impl Adam {
    /// Adam with the standard β₁=0.9, β₂=0.999, ε=1e-8.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: HashMap::new(),
            v: HashMap::new(),
        }
    }

    /// Custom betas.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Adds decoupled (AdamW-style) weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut ParamStore, grads: &GradStore) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (id, grad) in grads.iter() {
            let value = params.get_mut(id);
            let data = value.data_mut();
            let m_buf = self.m.entry(id.index()).or_insert_with(|| vec![0.0; data.len()]);
            let v_buf = self.v.entry(id.index()).or_insert_with(|| vec![0.0; data.len()]);
            assert_eq!(m_buf.len(), data.len(), "parameter shape changed under optimizer");
            for (((w, &g), m_i), v_i) in
                data.iter_mut().zip(grad.data()).zip(m_buf.iter_mut()).zip(v_buf.iter_mut())
            {
                *m_i = self.beta1 * *m_i + (1.0 - self.beta1) * g;
                *v_i = self.beta2 * *v_i + (1.0 - self.beta2) * g * g;
                let m_hat = *m_i / bc1;
                let v_hat = *v_i / bc2;
                *w -= self.lr * (m_hat / (v_hat.sqrt() + self.eps) + self.weight_decay * *w);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// AdaGrad — useful for the sparse relation-feature updates in CLRM.
#[derive(Debug, Clone)]
pub struct AdaGrad {
    lr: f32,
    eps: f32,
    accum: HashMap<usize, Vec<f32>>,
}

impl AdaGrad {
    /// AdaGrad with ε=1e-10.
    pub fn new(lr: f32) -> Self {
        AdaGrad { lr, eps: 1e-10, accum: HashMap::new() }
    }
}

impl Optimizer for AdaGrad {
    fn step(&mut self, params: &mut ParamStore, grads: &GradStore) {
        for (id, grad) in grads.iter() {
            let value = params.get_mut(id);
            let data = value.data_mut();
            let acc = self.accum.entry(id.index()).or_insert_with(|| vec![0.0; data.len()]);
            for ((w, &g), a) in data.iter_mut().zip(grad.data()).zip(acc.iter_mut()) {
                *a += g * g;
                *w -= self.lr * g / (a.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;
    use crate::Graph;

    fn quadratic_step<O: Optimizer>(opt: &mut O, steps: usize) -> f32 {
        // Minimize f(w) = sum((w - 3)^2) from w = 0.
        let mut ps = ParamStore::new();
        let w = ps.insert("w", Tensor::zeros([4]));
        for _ in 0..steps {
            let mut g = Graph::new();
            let wv = g.param(&ps, w);
            let target = g.constant(Tensor::full([4], 3.0));
            let d = g.sub(wv, target);
            let sq = g.square(d);
            let loss = g.sum_all(sq);
            let grads = g.backward(loss);
            opt.step(&mut ps, &grads);
        }
        (ps.get(w).data()[0] - 3.0).abs()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        assert!(quadratic_step(&mut Sgd::new(0.1), 100) < 1e-3);
    }

    #[test]
    fn sgd_momentum_converges() {
        assert!(quadratic_step(&mut Sgd::new(0.05).with_momentum(0.9), 200) < 1e-3);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        assert!(quadratic_step(&mut Adam::new(0.1), 300) < 1e-2);
    }

    #[test]
    fn adagrad_converges_on_quadratic() {
        assert!(quadratic_step(&mut AdaGrad::new(1.0), 300) < 1e-2);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut ps = ParamStore::new();
        let w = ps.insert("w", Tensor::full([2], 10.0));
        let mut opt = Sgd::new(0.1).with_weight_decay(1.0);
        // Zero-gradient step: only decay acts.
        let mut g = Graph::new();
        let wv = g.param(&ps, w);
        let zero = g.constant(Tensor::zeros([2]));
        let prod = g.mul(wv, zero);
        let loss = g.sum_all(prod);
        let grads = g.backward(loss);
        opt.step(&mut ps, &grads);
        assert!(ps.get(w).data()[0] < 10.0);
    }

    #[test]
    fn learning_rate_mutation() {
        let mut opt = Adam::new(0.1);
        opt.set_learning_rate(0.5);
        assert_eq!(opt.learning_rate(), 0.5);
    }

    /// Runs 10 optimization steps of a small two-parameter model from
    /// seed `seed` and returns the final parameter bit patterns.
    fn ten_steps<O: Optimizer>(opt: &mut O, seed: u64) -> Vec<Vec<u32>> {
        use crate::init;
        use rand::{Rng, SeedableRng};
        use rand_chacha::ChaCha8Rng;

        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ps = ParamStore::new();
        let w1 = ps.insert("w1", init::xavier_uniform([3, 4], &mut rng));
        let w2 = ps.insert("w2", init::xavier_uniform([4, 2], &mut rng));
        for _ in 0..10 {
            let x = Tensor::from_vec([2, 3], (0..6).map(|_| rng.gen_range(-1.0..1.0)).collect());
            let mut g = Graph::new();
            let xv = g.constant(x);
            let w1v = g.param(&ps, w1);
            let w2v = g.param(&ps, w2);
            let h = g.matmul(xv, w1v);
            let h = g.tanh(h);
            let y = g.matmul(h, w2v);
            let sq = g.square(y);
            let loss = g.mean_all(sq);
            let grads = g.backward(loss);
            opt.step(&mut ps, &grads);
        }
        [w1, w2].iter().map(|&id| ps.get(id).data().iter().map(|x| x.to_bits()).collect()).collect()
    }

    /// Two runs from identical seeds must produce bit-identical
    /// parameters after 10 steps — optimizer state must not depend on
    /// iteration order of its internal maps or any hidden entropy.
    #[test]
    fn optimizers_are_bitwise_deterministic() {
        assert_eq!(
            ten_steps(&mut Sgd::new(0.05).with_momentum(0.9), 3),
            ten_steps(&mut Sgd::new(0.05).with_momentum(0.9), 3)
        );
        assert_eq!(ten_steps(&mut Adam::new(0.01), 3), ten_steps(&mut Adam::new(0.01), 3));
        assert_eq!(ten_steps(&mut AdaGrad::new(0.1), 3), ten_steps(&mut AdaGrad::new(0.1), 3));
    }
}
