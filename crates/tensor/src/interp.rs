//! dekg-grad pass 1: a pure-`f64` reference interpreter for recorded
//! tapes.
//!
//! [`Graph::diff_check`] re-executes a recorded tape op-by-op from the
//! `Op` enum alone, with naive textbook implementations in `f64`, and
//! differentially compares the results against the optimized
//! `f32` path:
//!
//! * **Forward**: every node is recomputed from its *recorded* inputs
//!   and compared against its recorded value. Recomputing locally (per
//!   node, from the recorded `f32` inputs) rather than globally (from
//!   the leaves) keeps the comparison tight — upstream rounding drift
//!   cannot mask a wrong kernel, and the budgets can be a few ULP
//!   instead of a guessed end-to-end tolerance.
//! * **Backward**: an independent textbook reverse sweep in `f64`
//!   produces reference parameter gradients, compared against
//!   [`Graph::backward`]'s `f32` gradients.
//!
//! Tolerance policy (see [`DiffBudget`]): ops whose `f32` kernel
//! performs at most one rounding per element (data movement,
//! elementwise arithmetic) must match the rounded `f64` reference
//! within [`DiffBudget::ulp_exact`] ULP; `libm`-backed transcendentals
//! get [`DiffBudget::ulp_libm`] ULP; accumulation ops (matmul,
//! reductions, scatter-add) are compared against a per-element
//! rounding-error bound `slack · ε₃₂ · (terms + 2) · Σ|term|` that
//! scales with the reduction length. Parameter gradients use a
//! relative tolerance scaled by the gradient's infinity norm.
//!
//! Subgradient conventions are part of the op contract and are
//! replicated exactly (and documented on the op constructors): `Relu`
//! passes gradient only for `x > 0`, `Abs` uses `+g` at `x == 0`,
//! `Sqrt` clamps the gradient to `0` when the forward value is `≤ 0`,
//! and a `0.0` left factor in `Matmul` annihilates even non-finite
//! right factors (the kernel's sparsity shortcut).

use crate::check::{op_mnemonic, Diagnostic};
use crate::params::{ParamId, ParamStore};
use crate::tape::{Graph, Op, Var, PAD};
use std::collections::{BTreeMap, BTreeSet};

/// Per-op error budgets for [`Graph::diff_check_with`].
#[derive(Debug, Clone, Copy)]
pub struct DiffBudget {
    /// ULP slack for ops with at most one `f32` rounding per element
    /// (arithmetic, data movement; covers double-rounding artifacts).
    pub ulp_exact: u32,
    /// ULP slack for `libm`-backed transcendentals, whose `f32` and
    /// `f64` implementations may differ by a few ULP.
    pub ulp_libm: u32,
    /// Multiplier on the accumulation rounding bound
    /// `ε₃₂ · (terms + 2) · Σ|term|` for matmul/reduction/scatter ops.
    pub accum_slack: f64,
    /// Relative gradient tolerance, scaled by the larger infinity norm
    /// of the two gradients being compared.
    pub grad_rel: f64,
    /// Absolute gradient tolerance floor.
    pub grad_abs: f64,
}

impl Default for DiffBudget {
    fn default() -> Self {
        DiffBudget { ulp_exact: 2, ulp_libm: 16, accum_slack: 8.0, grad_rel: 2e-3, grad_abs: 1e-6 }
    }
}

/// Result of re-evaluating one node in `f64`.
struct RefValue {
    data: Vec<f64>,
    /// For accumulation ops: per-element `Σ|term|` and the reduction
    /// length, driving the rounding-error bound.
    accum: Option<(Vec<f64>, usize)>,
}

impl RefValue {
    fn exact(data: Vec<f64>) -> Self {
        RefValue { data, accum: None }
    }
}

/// How a node's recomputed value is compared to its recorded value.
enum BudgetClass {
    /// Leaves are the interpreter's inputs — nothing to compare.
    Leaf,
    /// At most one rounding per element: ULP comparison.
    Exact,
    /// Transcendental: looser ULP comparison.
    Libm,
    /// Accumulation: rounding bound scaled by reduction length.
    Accum,
}

fn budget_class(op: &Op) -> BudgetClass {
    match op {
        Op::Leaf(_) => BudgetClass::Leaf,
        Op::Sigmoid(_) | Op::Tanh(_) | Op::Exp(_) | Op::Ln(_) | Op::Sin(_) | Op::Cos(_) => {
            BudgetClass::Libm
        }
        Op::Matmul(..)
        | Op::SumAll(_)
        | Op::MeanAll(_)
        | Op::SumAxis0(_)
        | Op::SumAxis1(_)
        | Op::MeanAxis0(_)
        | Op::ScatterAddRows { .. } => BudgetClass::Accum,
        _ => BudgetClass::Exact,
    }
}

/// Distance between two `f32` values in units in the last place, using
/// the monotone integer mapping of IEEE-754 bit patterns. `NaN ↔ NaN`
/// and equal infinities count as 0; any other finite/non-finite
/// mismatch is `u64::MAX`.
fn ulp_distance(a: f32, b: f32) -> u64 {
    if a == b || (a.is_nan() && b.is_nan()) {
        return 0;
    }
    if a.is_nan() != b.is_nan() || a.is_infinite() || b.is_infinite() {
        return u64::MAX;
    }
    fn ordered(x: f32) -> i64 {
        let bits = x.to_bits();
        if bits & 0x8000_0000 != 0 {
            -i64::from(bits & 0x7fff_ffff)
        } else {
            i64::from(bits)
        }
    }
    ordered(a).abs_diff(ordered(b))
}

/// True when `got` (the `f32` kernel result) and `want` (the `f64`
/// reference) agree as non-finite values — both NaN, or equal
/// infinities. Used where a magnitude tolerance is meaningless.
fn non_finite_agree(got: f64, want: f64) -> bool {
    (got.is_nan() && want.is_nan()) || (got == want && got.is_infinite())
}

impl Graph {
    /// Differentially checks this tape against the `f64` reference
    /// interpreter under the default [`DiffBudget`].
    ///
    /// Runs the structural linter first (its findings are returned
    /// as-is when shapes or indices are broken — numeric comparison
    /// over a corrupt tape would be meaningless), then compares every
    /// node's forward value and every parameter gradient. `params`, if
    /// given, is only used to name parameters in messages.
    pub fn diff_check(&self, loss: Var, params: Option<&ParamStore>) -> Vec<Diagnostic> {
        self.diff_check_with(loss, params, &DiffBudget::default())
    }

    /// [`Graph::diff_check`] with explicit budgets.
    pub fn diff_check_with(
        &self,
        loss: Var,
        params: Option<&ParamStore>,
        budget: &DiffBudget,
    ) -> Vec<Diagnostic> {
        if self.node_value(loss).numel() != 1 {
            return vec![Diagnostic::error(
                "interp-loss",
                Some(loss.index()),
                op_mnemonic(self.node_op(loss)),
                format!("diff_check needs a scalar loss, got shape {}", self.shape(loss)),
            )];
        }
        let structural = self.structural_diagnostics(loss);
        if !structural.is_empty() {
            return structural;
        }

        let mut out = Vec::new();
        for id in 0..=loss.index() {
            self.diff_check_node(Var(id), budget, &mut out);
        }

        let got = self.backward(loss);
        let want = self.reference_backward(loss);
        let ids: BTreeSet<usize> =
            got.iter().map(|(pid, _)| pid.index()).chain(want.keys().copied()).collect();
        for idx in ids {
            let pid = ParamId(idx);
            let name = match params {
                Some(ps) => ps.name_of(pid).to_string(),
                None => format!("#{idx}"),
            };
            let got_data: Vec<f64> = match got.get(pid) {
                Some(t) => t.data().iter().map(|&x| f64::from(x)).collect(),
                None => vec![0.0; want.get(&idx).map_or(0, Vec::len)],
            };
            let zeros;
            let want_data: &[f64] = match want.get(&idx) {
                Some(w) => w,
                None => {
                    // The tape found no gradient path; the reference
                    // must then produce (implicit) zeros.
                    zeros = vec![0.0; got_data.len()];
                    &zeros
                }
            };
            let scale = got_data
                .iter()
                .chain(want_data)
                .filter(|x| x.is_finite())
                .fold(0.0f64, |m, &x| m.max(x.abs()));
            let tol = budget.grad_abs + budget.grad_rel * scale;
            for (i, (&g, &w)) in got_data.iter().zip(want_data).enumerate() {
                let bad = if g.is_finite() && w.is_finite() {
                    (g - w).abs() > tol
                } else {
                    !non_finite_agree(g, w)
                };
                if bad {
                    out.push(Diagnostic::error(
                        "grad-mismatch",
                        None,
                        "backward",
                        format!(
                            "parameter {name} gradient element {i}: \
                             tape {g:e} vs reference {w:e} (tolerance {tol:e})"
                        ),
                    ));
                    break;
                }
            }
        }
        out
    }

    /// Recomputes node `v` from its recorded inputs and compares.
    fn diff_check_node(&self, v: Var, budget: &DiffBudget, out: &mut Vec<Diagnostic>) {
        let op = self.node_op(v);
        let class = budget_class(op);
        if matches!(class, BudgetClass::Leaf) {
            return;
        }
        let reference = self.ref_eval(v);
        let recorded = self.node_value(v).data();
        debug_assert_eq!(recorded.len(), reference.data.len(), "ref_eval shape drift");
        for (i, (&got, &want)) in recorded.iter().zip(&reference.data).enumerate() {
            let mismatch = match class {
                BudgetClass::Leaf => unreachable!(),
                BudgetClass::Exact | BudgetClass::Libm => {
                    let limit = if matches!(class, BudgetClass::Exact) {
                        budget.ulp_exact
                    } else {
                        budget.ulp_libm
                    };
                    let d = ulp_distance(got, want as f32);
                    (d > u64::from(limit)).then(|| format!("{d} ULP apart (budget {limit} ULP)"))
                }
                BudgetClass::Accum => {
                    let (bound, terms) = reference.accum.as_ref().expect("accum op without bound");
                    let tol = budget.accum_slack
                        * f64::from(f32::EPSILON)
                        * (*terms as f64 + 2.0)
                        * bound[i]
                        + 1e-10;
                    let g = f64::from(got);
                    let bad = if g.is_finite() && want.is_finite() {
                        (g - want).abs() > tol
                    } else {
                        !non_finite_agree(g, want)
                    };
                    bad.then(|| format!("off by {:e} (tolerance {tol:e})", (g - want).abs()))
                }
            };
            if let Some(detail) = mismatch {
                out.push(Diagnostic::error(
                    "fwd-mismatch",
                    Some(v.index()),
                    op_mnemonic(op),
                    format!("element {i}: kernel {got:e} vs f64 reference {want:e}, {detail}"),
                ));
                return; // one finding per node keeps reports readable
            }
        }
    }

    /// Textbook `f64` re-evaluation of one node from its recorded
    /// (`f32`) inputs.
    #[allow(clippy::too_many_lines)] // one arm per op variant, by design
    fn ref_eval(&self, v: Var) -> RefValue {
        let val = |x: Var| -> Vec<f64> {
            self.node_value(x).data().iter().map(|&q| f64::from(q)).collect()
        };
        let mat = |x: Var| self.node_value(x).shape().as_matrix();
        match self.node_op(v) {
            Op::Leaf(_) => RefValue::exact(val(v)),
            Op::Add(a, b) => {
                RefValue::exact(val(*a).iter().zip(val(*b)).map(|(x, y)| x + y).collect())
            }
            Op::Sub(a, b) => {
                RefValue::exact(val(*a).iter().zip(val(*b)).map(|(x, y)| x - y).collect())
            }
            Op::Mul(a, b) => {
                RefValue::exact(val(*a).iter().zip(val(*b)).map(|(x, y)| x * y).collect())
            }
            Op::Div(a, b) => {
                RefValue::exact(val(*a).iter().zip(val(*b)).map(|(x, y)| x / y).collect())
            }
            Op::Neg(a) => RefValue::exact(val(*a).iter().map(|x| -x).collect()),
            Op::AddScalar(a, s) => {
                let s = f64::from(*s);
                RefValue::exact(val(*a).iter().map(|x| x + s).collect())
            }
            Op::MulScalar(a, s) => {
                let s = f64::from(*s);
                RefValue::exact(val(*a).iter().map(|x| x * s).collect())
            }
            Op::Matmul(a, b) => {
                let (m, k) = mat(*a);
                let (_, n) = mat(*b);
                let av = val(*a);
                let bv = val(*b);
                let mut data = vec![0.0; m * n];
                let mut bound = vec![0.0; m * n];
                for i in 0..m {
                    for j in 0..n {
                        let mut acc = 0.0;
                        let mut mag = 0.0;
                        for p in 0..k {
                            let x = av[i * k + p];
                            // The kernel's sparsity shortcut is part of
                            // the contract: a 0.0 left factor contributes
                            // nothing, even against Inf/NaN.
                            if x == 0.0 {
                                continue;
                            }
                            let term = x * bv[p * n + j];
                            acc += term;
                            mag += term.abs();
                        }
                        data[i * n + j] = acc;
                        bound[i * n + j] = mag;
                    }
                }
                RefValue { data, accum: Some((bound, k)) }
            }
            Op::GatherRows(a, idx) => {
                let (_, cols) = mat(*a);
                let av = val(*a);
                let mut data = Vec::with_capacity(idx.len() * cols);
                for &i in idx {
                    data.extend_from_slice(&av[i * cols..(i + 1) * cols]);
                }
                RefValue::exact(data)
            }
            Op::GatherFlat(a, idx) => {
                let av = val(*a);
                RefValue::exact(idx.iter().map(|&i| if i == PAD { 0.0 } else { av[i] }).collect())
            }
            Op::Reshape(a) => RefValue::exact(val(*a)),
            Op::ConcatRows(parts) => {
                let mut data = Vec::new();
                for &p in parts {
                    data.extend(val(p));
                }
                RefValue::exact(data)
            }
            Op::ConcatCols(parts) => {
                let rows = parts.first().map_or(0, |&p| mat(p).0);
                let mut data = Vec::new();
                for i in 0..rows {
                    for &p in parts {
                        let (_, c) = mat(p);
                        let pv = val(p);
                        data.extend_from_slice(&pv[i * c..(i + 1) * c]);
                    }
                }
                RefValue::exact(data)
            }
            Op::SumAll(a) => {
                let av = val(*a);
                let sum: f64 = av.iter().sum();
                let mag: f64 = av.iter().map(|x| x.abs()).sum();
                RefValue { data: vec![sum], accum: Some((vec![mag], av.len())) }
            }
            Op::MeanAll(a) => {
                let av = val(*a);
                if av.is_empty() {
                    // Empty mean is defined as 0.0 (see `Tensor::mean`).
                    return RefValue { data: vec![0.0], accum: Some((vec![0.0], 0)) };
                }
                let n = av.len() as f64;
                let sum: f64 = av.iter().sum();
                let mag: f64 = av.iter().map(|x| x.abs()).sum();
                RefValue { data: vec![sum / n], accum: Some((vec![mag / n], av.len())) }
            }
            Op::SumAxis0(a) => {
                let (m, n) = mat(*a);
                let av = val(*a);
                let mut data = vec![0.0; n];
                let mut bound = vec![0.0; n];
                for i in 0..m {
                    for j in 0..n {
                        data[j] += av[i * n + j];
                        bound[j] += av[i * n + j].abs();
                    }
                }
                RefValue { data, accum: Some((bound, m)) }
            }
            Op::SumAxis1(a) => {
                let (m, n) = mat(*a);
                let av = val(*a);
                let mut data = vec![0.0; m];
                let mut bound = vec![0.0; m];
                for i in 0..m {
                    for j in 0..n {
                        data[i] += av[i * n + j];
                        bound[i] += av[i * n + j].abs();
                    }
                }
                RefValue { data, accum: Some((bound, n)) }
            }
            Op::MeanAxis0(a) => {
                let (m, n) = mat(*a);
                let av = val(*a);
                let mut data = vec![0.0; n];
                let mut bound = vec![0.0; n];
                // m == 0 leaves the zero vector (see `Graph::mean_axis0`).
                if m > 0 {
                    let inv = 1.0 / m as f64;
                    for i in 0..m {
                        for j in 0..n {
                            data[j] += av[i * n + j];
                            bound[j] += av[i * n + j].abs();
                        }
                    }
                    for x in data.iter_mut().chain(&mut bound) {
                        *x *= inv;
                    }
                }
                RefValue { data, accum: Some((bound, m)) }
            }
            Op::Relu(a) => RefValue::exact(val(*a).iter().map(|x| x.max(0.0)).collect()),
            Op::Sigmoid(a) => {
                RefValue::exact(val(*a).iter().map(|x| 1.0 / (1.0 + (-x).exp())).collect())
            }
            Op::Tanh(a) => RefValue::exact(val(*a).iter().map(|x| x.tanh()).collect()),
            Op::Sqrt(a) => RefValue::exact(val(*a).iter().map(|x| x.sqrt()).collect()),
            Op::Exp(a) => RefValue::exact(val(*a).iter().map(|x| x.exp()).collect()),
            Op::Ln(a) => RefValue::exact(val(*a).iter().map(|x| x.ln()).collect()),
            Op::Sin(a) => RefValue::exact(val(*a).iter().map(|x| x.sin()).collect()),
            Op::Cos(a) => RefValue::exact(val(*a).iter().map(|x| x.cos()).collect()),
            Op::Square(a) => RefValue::exact(val(*a).iter().map(|x| x * x).collect()),
            Op::Abs(a) => RefValue::exact(val(*a).iter().map(|x| x.abs()).collect()),
            Op::Dropout(a, mask) => {
                RefValue::exact(val(*a).iter().zip(mask).map(|(x, &m)| x * f64::from(m)).collect())
            }
            Op::StackScalars(parts) => RefValue::exact(parts.iter().map(|&p| val(p)[0]).collect()),
            Op::ScatterAddRows { src, idx, rows } => {
                let (_, cols) = mat(*src);
                let sv = val(*src);
                let mut data = vec![0.0; rows * cols];
                let mut bound = vec![0.0; rows * cols];
                for (r, &target) in idx.iter().enumerate() {
                    for j in 0..cols {
                        data[target * cols + j] += sv[r * cols + j];
                        bound[target * cols + j] += sv[r * cols + j].abs();
                    }
                }
                RefValue { data, accum: Some((bound, idx.len())) }
            }
            Op::BroadcastRow(a, rows) => {
                let av = val(*a);
                let mut data = Vec::with_capacity(av.len() * rows);
                for _ in 0..*rows {
                    data.extend_from_slice(&av);
                }
                RefValue::exact(data)
            }
        }
    }

    /// Independent textbook reverse sweep in `f64`, producing parameter
    /// gradients keyed by [`ParamId::index`]. Uses the recorded `f32`
    /// forward values (exactly what `backward()` sees), so divergence
    /// here isolates a wrong backward *rule* rather than forward drift.
    pub(crate) fn reference_backward(&self, loss: Var) -> BTreeMap<usize, Vec<f64>> {
        let n = loss.index() + 1;
        let mut grads: Vec<Option<Vec<f64>>> = vec![None; n];
        grads[loss.index()] = Some(vec![1.0]);
        let mut out: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
        for id in (0..n).rev() {
            let Some(grad) = grads[id].take() else { continue };
            self.ref_backprop(Var(id), &grad, &mut grads, &mut out);
        }
        out
    }

    #[allow(clippy::too_many_lines)] // one arm per op variant, by design
    fn ref_backprop(
        &self,
        v: Var,
        grad: &[f64],
        grads: &mut [Option<Vec<f64>>],
        out: &mut BTreeMap<usize, Vec<f64>>,
    ) {
        let val = |x: Var| -> Vec<f64> {
            self.node_value(x).data().iter().map(|&q| f64::from(q)).collect()
        };
        let mat = |x: Var| self.node_value(x).shape().as_matrix();
        let accum =
            |grads: &mut [Option<Vec<f64>>], t: Var, delta: Vec<f64>| match &mut grads[t.index()] {
                Some(g) => {
                    for (x, d) in g.iter_mut().zip(delta) {
                        *x += d;
                    }
                }
                slot @ None => *slot = Some(delta),
            };
        match self.node_op(v) {
            Op::Leaf(Some(pid)) => {
                let slot = out.entry(pid.index()).or_insert_with(|| vec![0.0; grad.len()]);
                for (x, &g) in slot.iter_mut().zip(grad) {
                    *x += g;
                }
            }
            Op::Leaf(None) => {}
            Op::Add(a, b) => {
                accum(grads, *a, grad.to_vec());
                accum(grads, *b, grad.to_vec());
            }
            Op::Sub(a, b) => {
                accum(grads, *a, grad.to_vec());
                accum(grads, *b, grad.iter().map(|g| -g).collect());
            }
            Op::Mul(a, b) => {
                let (av, bv) = (val(*a), val(*b));
                accum(grads, *a, grad.iter().zip(&bv).map(|(g, y)| g * y).collect());
                accum(grads, *b, grad.iter().zip(&av).map(|(g, x)| g * x).collect());
            }
            Op::Div(a, b) => {
                let (av, bv) = (val(*a), val(*b));
                accum(grads, *a, grad.iter().zip(&bv).map(|(g, y)| g / y).collect());
                accum(
                    grads,
                    *b,
                    grad.iter()
                        .zip(av.iter().zip(&bv))
                        .map(|(g, (x, y))| -g * x / (y * y))
                        .collect(),
                );
            }
            Op::Neg(a) => accum(grads, *a, grad.iter().map(|g| -g).collect()),
            Op::AddScalar(a, _) => accum(grads, *a, grad.to_vec()),
            Op::MulScalar(a, s) => {
                let s = f64::from(*s);
                accum(grads, *a, grad.iter().map(|g| g * s).collect());
            }
            Op::Matmul(a, b) => {
                let (m, k) = mat(*a);
                let (_, n) = mat(*b);
                let (av, bv) = (val(*a), val(*b));
                // dA = dC · Bᵀ
                let mut da = vec![0.0; m * k];
                for i in 0..m {
                    for p in 0..k {
                        let mut acc = 0.0;
                        for j in 0..n {
                            acc += grad[i * n + j] * bv[p * n + j];
                        }
                        da[i * k + p] = acc;
                    }
                }
                accum(grads, *a, da);
                // dB = Aᵀ · dC; the backward kernel skips 0.0 entries
                // of A (same annihilation contract as forward matmul).
                let mut db = vec![0.0; k * n];
                for p in 0..k {
                    for i in 0..m {
                        let x = av[i * k + p];
                        if x == 0.0 {
                            continue;
                        }
                        for j in 0..n {
                            db[p * n + j] += x * grad[i * n + j];
                        }
                    }
                }
                accum(grads, *b, db);
            }
            Op::GatherRows(a, idx) => {
                let (rows, cols) = mat(*a);
                let mut da = vec![0.0; rows * cols];
                for (r, &i) in idx.iter().enumerate() {
                    for j in 0..cols {
                        da[i * cols + j] += grad[r * cols + j];
                    }
                }
                accum(grads, *a, da);
            }
            Op::GatherFlat(a, idx) => {
                let mut da = vec![0.0; self.node_value(*a).numel()];
                for (pos, &i) in idx.iter().enumerate() {
                    if i != PAD {
                        da[i] += grad[pos];
                    }
                }
                accum(grads, *a, da);
            }
            Op::Reshape(a) => accum(grads, *a, grad.to_vec()),
            Op::ConcatRows(parts) => {
                let mut off = 0;
                for &p in parts {
                    let n = self.node_value(p).numel();
                    accum(grads, p, grad[off..off + n].to_vec());
                    off += n;
                }
            }
            Op::ConcatCols(parts) => {
                let rows = parts.first().map_or(0, |&p| mat(p).0);
                let total: usize = parts.iter().map(|&p| mat(p).1).sum();
                let mut col_off = 0;
                for &p in parts {
                    let (_, c) = mat(p);
                    let mut dp = vec![0.0; rows * c];
                    for i in 0..rows {
                        dp[i * c..(i + 1) * c]
                            .copy_from_slice(&grad[i * total + col_off..i * total + col_off + c]);
                    }
                    accum(grads, p, dp);
                    col_off += c;
                }
            }
            Op::SumAll(a) => {
                accum(grads, *a, vec![grad[0]; self.node_value(*a).numel()]);
            }
            Op::MeanAll(a) => {
                let n = self.node_value(*a).numel();
                accum(grads, *a, vec![grad[0] / n.max(1) as f64; n]);
            }
            Op::SumAxis0(a) => {
                let (m, n) = mat(*a);
                let mut da = vec![0.0; m * n];
                for i in 0..m {
                    da[i * n..(i + 1) * n].copy_from_slice(grad);
                }
                accum(grads, *a, da);
            }
            Op::SumAxis1(a) => {
                let (m, n) = mat(*a);
                let mut da = vec![0.0; m * n];
                for i in 0..m {
                    for x in &mut da[i * n..(i + 1) * n] {
                        *x = grad[i];
                    }
                }
                accum(grads, *a, da);
            }
            Op::MeanAxis0(a) => {
                let (m, n) = mat(*a);
                let inv = if m == 0 { 0.0 } else { 1.0 / m as f64 };
                let mut da = vec![0.0; m * n];
                for i in 0..m {
                    for (x, &g) in da[i * n..(i + 1) * n].iter_mut().zip(grad) {
                        *x = g * inv;
                    }
                }
                accum(grads, *a, da);
            }
            Op::Relu(a) => {
                let av = val(*a);
                accum(
                    grads,
                    *a,
                    grad.iter().zip(&av).map(|(&g, &x)| if x > 0.0 { g } else { 0.0 }).collect(),
                );
            }
            Op::Sigmoid(a) => {
                let yv = val(v);
                accum(grads, *a, grad.iter().zip(&yv).map(|(g, y)| g * y * (1.0 - y)).collect());
            }
            Op::Tanh(a) => {
                let yv = val(v);
                accum(grads, *a, grad.iter().zip(&yv).map(|(g, y)| g * (1.0 - y * y)).collect());
            }
            Op::Sqrt(a) => {
                let yv = val(v);
                accum(
                    grads,
                    *a,
                    grad.iter()
                        .zip(&yv)
                        .map(|(&g, &y)| if y > 0.0 { g * 0.5 / y } else { 0.0 })
                        .collect(),
                );
            }
            Op::Exp(a) => {
                let yv = val(v);
                accum(grads, *a, grad.iter().zip(&yv).map(|(g, y)| g * y).collect());
            }
            Op::Ln(a) => {
                let av = val(*a);
                accum(grads, *a, grad.iter().zip(&av).map(|(g, x)| g / x).collect());
            }
            Op::Sin(a) => {
                let av = val(*a);
                accum(grads, *a, grad.iter().zip(&av).map(|(g, x)| g * x.cos()).collect());
            }
            Op::Cos(a) => {
                let av = val(*a);
                accum(grads, *a, grad.iter().zip(&av).map(|(g, x)| -g * x.sin()).collect());
            }
            Op::Square(a) => {
                let av = val(*a);
                accum(grads, *a, grad.iter().zip(&av).map(|(g, x)| 2.0 * g * x).collect());
            }
            Op::Abs(a) => {
                let av = val(*a);
                accum(
                    grads,
                    *a,
                    grad.iter().zip(&av).map(|(&g, &x)| if x >= 0.0 { g } else { -g }).collect(),
                );
            }
            Op::Dropout(a, mask) => {
                accum(grads, *a, grad.iter().zip(mask).map(|(g, &m)| g * f64::from(m)).collect());
            }
            Op::StackScalars(parts) => {
                for (i, &p) in parts.iter().enumerate() {
                    accum(grads, p, vec![grad[i]]);
                }
            }
            Op::ScatterAddRows { src, idx, rows: _ } => {
                let (_, cols) = mat(*src);
                let mut ds = vec![0.0; idx.len() * cols];
                for (r, &target) in idx.iter().enumerate() {
                    ds[r * cols..(r + 1) * cols]
                        .copy_from_slice(&grad[target * cols..(target + 1) * cols]);
                }
                accum(grads, *src, ds);
            }
            Op::BroadcastRow(a, rows) => {
                let d = self.node_value(*a).numel();
                let mut da = vec![0.0; d];
                for r in 0..*rows {
                    for j in 0..d {
                        da[j] += grad[r * d + j];
                    }
                }
                accum(grads, *a, da);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamStore;
    use crate::tensor::Tensor;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn ulp_distance_basics() {
        assert_eq!(ulp_distance(1.0, 1.0), 0);
        assert_eq!(ulp_distance(0.0, -0.0), 0);
        assert_eq!(ulp_distance(1.0, f32::from_bits(1.0f32.to_bits() + 1)), 1);
        assert_eq!(ulp_distance(f32::NAN, f32::NAN), 0);
        assert_eq!(ulp_distance(1.0, f32::NAN), u64::MAX);
        assert_eq!(ulp_distance(f32::INFINITY, f32::INFINITY), 0);
        assert_eq!(ulp_distance(f32::INFINITY, f32::NEG_INFINITY), u64::MAX);
        // Distance spans the sign boundary correctly.
        assert_eq!(ulp_distance(f32::from_bits(0x8000_0001), f32::from_bits(0x0000_0001)), 2);
    }

    /// A tape exercising most of the op set at once: the interpreter
    /// must agree with the kernels forward and backward.
    #[test]
    fn composite_tape_is_clean() {
        let mut ps = ParamStore::new();
        let w = ps
            .insert("w", Tensor::from_vec([3, 4], (0..12).map(|i| 0.1 * i as f32 - 0.5).collect()));
        let r = ps.insert(
            "r",
            Tensor::from_vec([2, 4], vec![0.3, -0.2, 0.8, 0.1, -0.4, 0.9, 0.05, -0.7]),
        );
        let mut rng = ChaCha8Rng::seed_from_u64(7);

        let mut g = Graph::new();
        let wv = g.param(&ps, w);
        let rv = g.param(&ps, r);
        let rows = g.gather_rows(wv, &[0, 2, 2]);
        let dropped = g.dropout(rows, 0.4, &mut rng);
        let scat = g.scatter_add_rows(dropped, &[1, 0, 1], 2);
        let act = g.tanh(scat);
        let tri = g.trilinear_rows(act, rv, rv);
        let dist = g.rowwise_dist(act, rv);
        let mixed = g.sub(tri, dist);
        let loss = g.mean_all(mixed);

        let diags = g.diff_check(loss, Some(&ps));
        assert!(diags.is_empty(), "diags: {diags:?}");
    }

    #[test]
    fn corrupted_forward_value_is_flagged() {
        let mut ps = ParamStore::new();
        let w = ps.insert("w", Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0]));
        let mut g = Graph::new();
        let wv = g.param(&ps, w);
        let sq = g.square(wv);
        let loss = g.sum_all(sq);
        // Same shape, wrong numbers: structurally valid, semantically not.
        g.fault_override_value(sq, Tensor::from_vec([2, 2], vec![1.0, 4.0, 9.0, 17.0]));
        let diags = g.diff_check(loss, Some(&ps));
        assert!(
            diags.iter().any(|d| d.code == "fwd-mismatch" && d.node == Some(sq.index())),
            "diags: {diags:?}"
        );
    }

    #[test]
    fn structurally_broken_tape_short_circuits() {
        let mut ps = ParamStore::new();
        let w = ps.insert("w", Tensor::from_vec([2, 2], vec![1.0; 4]));
        let mut g = Graph::new();
        let wv = g.param(&ps, w);
        let bad = g.fault_gather_rows_unchecked(wv, &[5]);
        let loss = g.sum_all(bad);
        let diags = g.diff_check(loss, Some(&ps));
        assert!(!diags.is_empty());
        assert!(diags.iter().all(|d| d.code != "fwd-mismatch" && d.code != "grad-mismatch"));
    }

    #[test]
    fn non_scalar_loss_is_reported_not_panicked() {
        let mut g = Graph::new();
        let c = g.constant(Tensor::from_vec([2], vec![1.0, 2.0]));
        let diags = g.diff_check(c, None);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "interp-loss");
    }

    /// Edge cases the kernels and the interpreter must agree on:
    /// inner-dimension-0 matmul yields zeros, all-PAD gathers read
    /// zeros and route no gradient, empty reductions are zero.
    #[test]
    fn edge_case_semantics_agree() {
        let mut ps = ParamStore::new();
        let a = ps.insert("a", Tensor::zeros([2, 0]));
        let b = ps.insert("b", Tensor::from_vec([2, 3], vec![0.5; 6]));
        let mut g = Graph::new();
        let av = g.param(&ps, a);
        let bv = g.param(&ps, b);
        let empty_b = g.constant(Tensor::zeros([0, 3]));
        let mm = g.matmul(av, empty_b); // [2,0] x [0,3] = zeros [2,3]
        assert_eq!(g.value(mm).data(), &[0.0; 6]);
        let padded = g.gather_flat(bv, &[PAD, PAD, 1, PAD], [2, 2]);
        let zero_col = g.constant(Tensor::zeros([2, 1]));
        let padded3 = g.concat_cols(&[padded, zero_col]);
        let summed = g.add(mm, padded3);
        let empty = g.constant(Tensor::zeros([0]));
        let empty_mean = g.mean_all(empty);
        let joined = g.sum_all(summed);
        let loss = g.add(joined, empty_mean);
        let diags = g.diff_check(loss, Some(&ps));
        assert!(diags.is_empty(), "diags: {diags:?}");
    }

    /// A gather of exclusively PAD offsets must produce an explicit
    /// all-zero gradient for the source parameter on both paths.
    #[test]
    fn all_pad_gather_gradient_is_zero_on_both_paths() {
        let mut ps = ParamStore::new();
        let w = ps.insert("w", Tensor::from_vec([4], vec![1.0, 2.0, 3.0, 4.0]));
        let mut g = Graph::new();
        let wv = g.param(&ps, w);
        let gf = g.gather_flat(wv, &[PAD, PAD], [2]);
        let loss = g.sum_all(gf);
        assert!(g.diff_check(loss, Some(&ps)).is_empty());
        let grads = g.backward(loss);
        let id = ps.id_of("w").unwrap();
        assert_eq!(grads.get(id).unwrap().data(), &[0.0; 4]);
    }
}
