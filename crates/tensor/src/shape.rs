//! Tensor shapes and index arithmetic.
//!
//! Shapes are row-major. Most of the library works with rank-1 and rank-2
//! tensors (vectors and matrices); rank-3 appears for per-relation weight
//! stacks and rank-4 never does. [`Shape`] is a thin wrapper over a
//! `Vec<usize>` with the arithmetic the kernels need.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The dimensions of a [`crate::Tensor`], row-major.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from its dimensions.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Shape(dims.into())
    }

    /// A scalar (rank-0) shape.
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// The dimensions as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Size of dimension `d`.
    ///
    /// # Panics
    /// If `d >= rank()`.
    pub fn dim(&self, d: usize) -> usize {
        self.0[d]
    }

    /// Returns `(rows, cols)` for a rank-2 shape.
    ///
    /// # Panics
    /// If the shape is not rank-2.
    pub fn as_matrix(&self) -> (usize, usize) {
        assert_eq!(self.rank(), 2, "expected a matrix, got shape {self}");
        (self.0[0], self.0[1])
    }

    /// Row-major strides.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.rank()];
        for i in (0..self.rank().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Flattens a multi-dimensional index to a linear offset.
    ///
    /// # Panics
    /// If the index rank mismatches or any coordinate is out of bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.rank(),
            "index rank {} does not match shape {self}",
            index.len()
        );
        let mut off = 0;
        let strides = self.strides();
        for (d, (&i, &s)) in index.iter().zip(strides.iter()).enumerate() {
            assert!(i < self.0[d], "index {i} out of bounds for dim {d} of {self}");
            off += i * s;
        }
        off
    }

    /// True when both shapes have the same dims.
    pub fn same_as(&self, other: &Shape) -> bool {
        self.0 == other.0
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::new(vec![3, 4, 5]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.numel(), 60);
        assert_eq!(s.dim(1), 4);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.numel(), 1);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn offset_math() {
        let s = Shape::new(vec![2, 3]);
        assert_eq!(s.offset(&[0, 0]), 0);
        assert_eq!(s.offset(&[1, 2]), 5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_out_of_bounds_panics() {
        let s = Shape::new(vec![2, 3]);
        s.offset(&[2, 0]);
    }

    #[test]
    fn matrix_view() {
        let s = Shape::new(vec![7, 9]);
        assert_eq!(s.as_matrix(), (7, 9));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Shape::new(vec![2, 3]).to_string(), "[2, 3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }
}
