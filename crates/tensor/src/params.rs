//! Named parameter storage and gradient accumulation.

use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Handle to a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// The raw index, stable for the lifetime of the store.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A collection of named, trainable tensors.
///
/// Models allocate their weights here once; every training step then
/// mounts them into a fresh [`crate::Graph`] via [`crate::Graph::param`],
/// and an [`crate::optim::Optimizer`] applies the resulting
/// [`GradStore`]. Names are unique and primarily serve
/// serialization/debugging.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ParamStore {
    names: Vec<String>,
    values: Vec<Tensor>,
    by_name: HashMap<String, usize>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new parameter.
    ///
    /// # Panics
    /// If `name` is already registered.
    pub fn insert(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let name = name.into();
        assert!(!self.by_name.contains_key(&name), "duplicate parameter name {name:?}");
        let id = self.values.len();
        self.by_name.insert(name.clone(), id);
        self.names.push(name);
        self.values.push(value);
        ParamId(id)
    }

    /// The current value of a parameter.
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.values[id.0]
    }

    /// Mutable access to a parameter value.
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.values[id.0]
    }

    /// Looks a parameter up by name.
    pub fn id_of(&self, name: &str) -> Option<ParamId> {
        self.by_name.get(name).copied().map(ParamId)
    }

    /// The name of a parameter.
    pub fn name_of(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Number of parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of scalar weights across all parameters.
    ///
    /// This is what Fig. 7 of the paper reports as "parameter complexity".
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Tensor::numel).sum()
    }

    /// Iterates over `(id, name, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Tensor)> {
        self.values.iter().enumerate().map(|(i, v)| (ParamId(i), self.names[i].as_str(), v))
    }
}

/// Gradients produced by one [`crate::Graph::backward`] call, keyed by
/// [`ParamId`]. Parameters that did not participate in the forward pass
/// have no entry.
///
/// Backed by a `BTreeMap` so every iteration — [`Self::global_norm`]'s
/// reduction in particular — visits parameters in a fixed key order.
/// A hash map's per-instance seed would make the float sum order (and
/// so the reported norm's low bits) depend on process history.
#[derive(Debug, Clone, Default)]
pub struct GradStore {
    grads: BTreeMap<usize, Tensor>,
}

impl GradStore {
    /// An empty gradient set.
    pub fn new() -> Self {
        Self::default()
    }

    /// The gradient for `id`, if it was touched by the forward pass.
    pub fn get(&self, id: ParamId) -> Option<&Tensor> {
        self.grads.get(&id.0)
    }

    /// Accumulates `grad` into the entry for `id`.
    pub fn accumulate(&mut self, id: ParamId, grad: &Tensor) {
        match self.grads.get_mut(&id.0) {
            Some(existing) => {
                crate::kernels::add_assign(existing.data_mut(), grad.data());
            }
            None => {
                self.grads.insert(id.0, grad.clone());
            }
        }
    }

    /// Merges another gradient set into this one (summing overlaps).
    pub fn merge(&mut self, other: &GradStore) {
        for (&k, g) in &other.grads {
            self.accumulate(ParamId(k), g);
        }
    }

    /// Number of parameters with gradients.
    pub fn len(&self) -> usize {
        self.grads.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.grads.is_empty()
    }

    /// Global L2 norm over all gradients.
    pub fn global_norm(&self) -> f32 {
        self.grads.values().map(|g| crate::kernels::norm_sq(g.data())).sum::<f32>().sqrt()
    }

    /// Scales all gradients so the global norm is at most `max_norm`.
    ///
    /// Returns the pre-clip norm.
    pub fn clip_global_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.global_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for g in self.grads.values_mut() {
                for x in g.data_mut() {
                    *x *= s;
                }
            }
        }
        norm
    }

    /// Iterates over `(id, grad)`.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Tensor)> {
        self.grads.iter().map(|(&k, g)| (ParamId(k), g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut ps = ParamStore::new();
        let a = ps.insert("a", Tensor::ones([2, 2]));
        let b = ps.insert("b", Tensor::zeros([3]));
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.num_scalars(), 7);
        assert_eq!(ps.id_of("a"), Some(a));
        assert_eq!(ps.id_of("missing"), None);
        assert_eq!(ps.name_of(b), "b");
        assert_eq!(ps.get(a).sum(), 4.0);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_name_panics() {
        let mut ps = ParamStore::new();
        ps.insert("w", Tensor::zeros([1]));
        ps.insert("w", Tensor::zeros([1]));
    }

    #[test]
    fn grad_accumulation() {
        let mut ps = ParamStore::new();
        let a = ps.insert("a", Tensor::zeros([2]));
        let mut gs = GradStore::new();
        gs.accumulate(a, &Tensor::from_vec([2], vec![1.0, 2.0]));
        gs.accumulate(a, &Tensor::from_vec([2], vec![0.5, 0.5]));
        assert_eq!(gs.get(a).unwrap().data(), &[1.5, 2.5]);
    }

    #[test]
    fn merge_sums_overlaps() {
        let mut ps = ParamStore::new();
        let a = ps.insert("a", Tensor::zeros([1]));
        let mut g1 = GradStore::new();
        g1.accumulate(a, &Tensor::from_vec([1], vec![1.0]));
        let mut g2 = GradStore::new();
        g2.accumulate(a, &Tensor::from_vec([1], vec![2.0]));
        g1.merge(&g2);
        assert_eq!(g1.get(a).unwrap().data(), &[3.0]);
    }

    #[test]
    fn clipping() {
        let mut ps = ParamStore::new();
        let a = ps.insert("a", Tensor::zeros([2]));
        let mut gs = GradStore::new();
        gs.accumulate(a, &Tensor::from_vec([2], vec![3.0, 4.0]));
        let pre = gs.clip_global_norm(1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((gs.global_norm() - 1.0).abs() < 1e-6);
        // Clipping below the max is a no-op.
        let pre2 = gs.clip_global_norm(10.0);
        assert!((pre2 - 1.0).abs() < 1e-6);
    }
}
