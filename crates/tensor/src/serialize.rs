//! Binary (de)serialization of a [`ParamStore`].
//!
//! Format (all little-endian):
//!
//! ```text
//! magic  "DKGT"          4 bytes
//! version u32            currently 1
//! count   u32            number of parameters
//! per parameter:
//!   name_len u32, name bytes (UTF-8)
//!   rank u32, dims u32 * rank
//!   data f32 * numel
//! ```
//!
//! Checkpointing trained models lets the experiment binaries separate
//! the (slow) training phase from (fast) evaluation reruns.

use crate::params::ParamStore;
use crate::tensor::Tensor;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"DKGT";
const VERSION: u32 = 1;

/// Errors produced when decoding a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Buffer is shorter than the header or a declared payload.
    Truncated,
    /// Magic bytes do not match.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// A parameter name is not valid UTF-8.
    BadName,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "checkpoint truncated"),
            DecodeError::BadMagic => write!(f, "not a DKGT checkpoint"),
            DecodeError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            DecodeError::BadName => write!(f, "invalid UTF-8 parameter name"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Serializes the store to its binary checkpoint format.
pub fn encode(store: &ParamStore) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(store.len() as u32);
    for (_, name, value) in store.iter() {
        buf.put_u32_le(name.len() as u32);
        buf.put_slice(name.as_bytes());
        let dims = value.shape().dims();
        buf.put_u32_le(dims.len() as u32);
        for &d in dims {
            buf.put_u32_le(d as u32);
        }
        for &x in value.data() {
            buf.put_f32_le(x);
        }
    }
    buf.freeze()
}

/// Decodes a checkpoint produced by [`encode`].
///
/// Parameter ids are assigned in stored order, which matches the order
/// they were registered at save time.
pub fn decode(mut buf: &[u8]) -> Result<ParamStore, DecodeError> {
    if buf.remaining() < 12 {
        return Err(DecodeError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let count = buf.get_u32_le() as usize;
    let mut store = ParamStore::new();
    for _ in 0..count {
        if buf.remaining() < 4 {
            return Err(DecodeError::Truncated);
        }
        let name_len = buf.get_u32_le() as usize;
        if buf.remaining() < name_len {
            return Err(DecodeError::Truncated);
        }
        let name =
            std::str::from_utf8(&buf[..name_len]).map_err(|_| DecodeError::BadName)?.to_owned();
        buf.advance(name_len);
        if buf.remaining() < 4 {
            return Err(DecodeError::Truncated);
        }
        let rank = buf.get_u32_le() as usize;
        if buf.remaining() < rank * 4 {
            return Err(DecodeError::Truncated);
        }
        let dims: Vec<usize> = (0..rank).map(|_| buf.get_u32_le() as usize).collect();
        let numel: usize = dims.iter().product();
        if buf.remaining() < numel * 4 {
            return Err(DecodeError::Truncated);
        }
        let data: Vec<f32> = (0..numel).map(|_| buf.get_f32_le()).collect();
        store.insert(name, Tensor::from_vec(dims, data));
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn roundtrip() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut ps = ParamStore::new();
        ps.insert("weights", init::xavier_uniform([4, 3], &mut rng));
        ps.insert("bias", Tensor::from_vec([3], vec![0.1, -0.2, 0.3]));
        ps.insert("scalar", Tensor::scalar(7.0));

        let bytes = encode(&ps);
        let back = decode(&bytes).unwrap();
        assert_eq!(back.len(), 3);
        for (_, name, value) in ps.iter() {
            let id = back.id_of(name).expect("name preserved");
            assert_eq!(back.get(id), value);
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let err = decode(b"NOPE\x01\x00\x00\x00\x00\x00\x00\x00").unwrap_err();
        assert_eq!(err, DecodeError::BadMagic);
    }

    #[test]
    fn rejects_truncation() {
        let mut ps = ParamStore::new();
        ps.insert("w", Tensor::ones([8]));
        let bytes = encode(&ps);
        for cut in [0, 5, 13, bytes.len() - 1] {
            let err = decode(&bytes[..cut]).unwrap_err();
            assert_eq!(err, DecodeError::Truncated, "cut at {cut}");
        }
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(99);
        buf.put_u32_le(0);
        assert_eq!(decode(&buf).unwrap_err(), DecodeError::BadVersion(99));
    }

    #[test]
    fn empty_store_roundtrips() {
        let ps = ParamStore::new();
        let back = decode(&encode(&ps)).unwrap();
        assert!(back.is_empty());
    }
}
