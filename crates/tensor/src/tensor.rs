//! The dense `f32` tensor value type.

use crate::check::{ShapeError, ShapeErrorKind};
use crate::kernels;
use crate::shape::Shape;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major, `f32` tensor.
///
/// `Tensor` is a plain value: cloning copies the buffer, and all methods
/// that produce a new tensor allocate. The autograd layer in
/// [`crate::tape`] stores `Tensor`s in its arena; models rarely touch raw
/// tensors outside of parameter initialization and result extraction.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from a shape and backing data.
    ///
    /// # Panics
    /// If `data.len() != shape.numel()`. Use [`Tensor::try_from_vec`]
    /// for a fallible variant.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Self {
        match Self::try_from_vec(shape, data) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Tensor::from_vec`]: returns a typed [`ShapeError`]
    /// when the buffer does not fill the shape.
    pub fn try_from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Result<Self, ShapeError> {
        let shape = shape.into();
        if data.len() != shape.numel() {
            return Err(ShapeError::new(
                "from_vec",
                ShapeErrorKind::Arity,
                format!("data length {} does not match shape {shape}", data.len()),
            ));
        }
        Ok(Tensor { shape, data })
    }

    /// A tensor filled with zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor { shape, data: vec![0.0; n] }
    }

    /// A tensor filled with ones.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Self::full(shape, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor { shape, data: vec![value; n] }
    }

    /// A rank-0 tensor holding one value.
    pub fn scalar(value: f32) -> Self {
        Tensor { shape: Shape::scalar(), data: vec![value] }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The flat data buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the flat data buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// The single value of a scalar (or 1-element) tensor.
    ///
    /// # Panics
    /// If the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(self.numel(), 1, "item() on tensor of shape {}", self.shape);
        self.data[0]
    }

    /// Element at a multi-dimensional index.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Sets the element at a multi-dimensional index.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    /// Borrowed row `i` of a rank-2 tensor.
    ///
    /// # Panics
    /// If not rank-2 or `i` is out of bounds.
    pub fn row(&self, i: usize) -> &[f32] {
        let (rows, cols) = self.shape.as_matrix();
        assert!(i < rows, "row {i} out of bounds for {}", self.shape);
        &self.data[i * cols..(i + 1) * cols]
    }

    /// Mutable row `i` of a rank-2 tensor.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        let (rows, cols) = self.shape.as_matrix();
        assert!(i < rows, "row {i} out of bounds for [{rows}, {cols}]");
        &mut self.data[i * cols..(i + 1) * cols]
    }

    /// Reinterprets the buffer under a new shape with the same `numel`.
    ///
    /// # Panics
    /// If the element counts differ. Use [`Tensor::try_reshape`] for a
    /// fallible variant.
    pub fn reshape(self, shape: impl Into<Shape>) -> Self {
        match self.try_reshape(shape) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Tensor::reshape`]: returns a typed [`ShapeError`]
    /// when the element counts differ.
    pub fn try_reshape(mut self, shape: impl Into<Shape>) -> Result<Self, ShapeError> {
        let shape = shape.into();
        if shape.numel() != self.data.len() {
            return Err(ShapeError::new(
                "reshape",
                ShapeErrorKind::Mismatch,
                format!("cannot reshape {} elements to {shape}", self.data.len()),
            ));
        }
        self.shape = shape;
        Ok(self)
    }

    /// Elementwise sum: `self + other`.
    ///
    /// # Panics
    /// If the shapes differ.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.assert_same_shape(other, "add");
        let mut out = vec![0.0; self.data.len()];
        kernels::add(&self.data, &other.data, &mut out);
        Tensor { shape: self.shape.clone(), data: out }
    }

    /// Elementwise product: `self * other`.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.assert_same_shape(other, "mul");
        let mut out = vec![0.0; self.data.len()];
        kernels::mul(&self.data, &other.data, &mut out);
        Tensor { shape: self.shape.clone(), data: out }
    }

    /// Scales every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        let data = self.data.iter().map(|&x| x * s).collect();
        Tensor { shape: self.shape.clone(), data }
    }

    /// Applies `f` elementwise.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let data = self.data.iter().map(|&x| f(x)).collect();
        Tensor { shape: self.shape.clone(), data }
    }

    /// Matrix product of two rank-2 tensors.
    ///
    /// # Panics
    /// If either operand is not rank-2 or the inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let (m, k) = self.shape.as_matrix();
        let (k2, n) = other.shape.as_matrix();
        assert_eq!(k, k2, "matmul inner dims: {} vs {}", self.shape, other.shape);
        let mut out = vec![0.0; m * n];
        kernels::matmul(&self.data, &other.data, &mut out, m, k, n);
        Tensor { shape: Shape::new(vec![m, n]), data: out }
    }

    /// Transpose of a rank-2 tensor.
    pub fn transpose(&self) -> Tensor {
        let (m, n) = self.shape.as_matrix();
        let mut out = vec![0.0; m * n];
        kernels::transpose(&self.data, &mut out, m, n);
        Tensor { shape: Shape::new(vec![n, m]), data: out }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// L2 norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        kernels::norm_sq(&self.data).sqrt()
    }

    /// Maximum element (NaN-ignoring); `None` for empty tensors.
    pub fn max(&self) -> Option<f32> {
        self.data
            .iter()
            .copied()
            .filter(|x| !x.is_nan())
            .fold(None, |acc, x| Some(acc.map_or(x, |a: f32| a.max(x))))
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Stacks rank-1 tensors of equal length into a rank-2 tensor.
    ///
    /// # Panics
    /// If `rows` is empty or the lengths differ. Use
    /// [`Tensor::try_stack_rows`] for a fallible variant.
    pub fn stack_rows(rows: &[&[f32]]) -> Tensor {
        match Self::try_stack_rows(rows) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Tensor::stack_rows`]: returns a typed [`ShapeError`]
    /// on an empty input or ragged rows.
    pub fn try_stack_rows(rows: &[&[f32]]) -> Result<Tensor, ShapeError> {
        let Some(first) = rows.first() else {
            return Err(ShapeError::new(
                "stack_rows",
                ShapeErrorKind::Arity,
                "stack_rows on empty input",
            ));
        };
        let cols = first.len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(ShapeError::new(
                    "stack_rows",
                    ShapeErrorKind::Mismatch,
                    format!("stack_rows with ragged rows: {cols} vs {}", r.len()),
                ));
            }
            data.extend_from_slice(r);
        }
        Ok(Tensor { shape: Shape::new(vec![rows.len(), cols]), data })
    }

    fn assert_same_shape(&self, other: &Tensor, op: &str) {
        assert!(
            self.shape.same_as(&other.shape),
            "{op}: shape mismatch {} vs {}",
            self.shape,
            other.shape
        );
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, "{:?}", self.data)
        } else {
            write!(f, "[{}, {}, .. {} elems]", self.data[0], self.data[1], self.data.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Tensor::zeros([2, 2]).sum(), 0.0);
        assert_eq!(Tensor::ones([2, 2]).sum(), 4.0);
        assert_eq!(Tensor::full([3], 2.5).sum(), 7.5);
        assert_eq!(Tensor::scalar(3.0).item(), 3.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_length_checked() {
        Tensor::from_vec([2, 2], vec![1.0; 3]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec([2], vec![1.0, 2.0]);
        let b = Tensor::from_vec([2], vec![3.0, 4.0]);
        assert_eq!(a.add(&b).data(), &[4.0, 6.0]);
        assert_eq!(a.mul(&b).data(), &[3.0, 8.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let id = Tensor::from_vec([2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&id), a);
    }

    #[test]
    fn rows_and_indexing() {
        let mut a = Tensor::from_vec([2, 3], (0..6).map(|x| x as f32).collect());
        assert_eq!(a.row(1), &[3.0, 4.0, 5.0]);
        assert_eq!(a.at(&[1, 2]), 5.0);
        a.set(&[0, 0], 9.0);
        assert_eq!(a.at(&[0, 0]), 9.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec([2, 3], (0..6).map(|x| x as f32).collect());
        let b = a.clone().reshape([3, 2]);
        assert_eq!(b.data(), a.data());
        assert_eq!(b.shape().dims(), &[3, 2]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec([4], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.max(), Some(4.0));
        assert!((a.norm() - 30.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn stack_rows_builds_matrix() {
        let t = Tensor::stack_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(t.shape().dims(), &[2, 2]);
        assert_eq!(t.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn non_finite_detection() {
        let a = Tensor::from_vec([2], vec![1.0, f32::NAN]);
        assert!(a.has_non_finite());
        assert!(!Tensor::ones([2]).has_non_finite());
    }

    #[test]
    fn transpose_matches() {
        let a = Tensor::from_vec([2, 3], (0..6).map(|x| x as f32).collect());
        let t = a.transpose();
        assert_eq!(t.shape().dims(), &[3, 2]);
        assert_eq!(t.at(&[2, 1]), a.at(&[1, 2]));
    }
}
