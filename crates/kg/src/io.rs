//! Plain-text triple IO in the standard `head\trelation\ttail` format
//! used by FB15k-237 / NELL-995 / WN18RR releases and the GraIL splits.
//!
//! The synthetic generator in `dekg-datasets` is the default data
//! source, but these loaders let real benchmark files be dropped in
//! unchanged.

use crate::store::TripleStore;
use crate::triple::Triple;
use crate::vocab::Vocab;
use std::fmt::Write as _;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors raised while parsing triple files.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying IO failure.
    Io(io::Error),
    /// A line did not have exactly three tab-separated fields.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "io error: {e}"),
            ParseError::BadLine { line, content } => {
                write!(f, "line {line}: expected 'head\\trel\\ttail', got {content:?}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Parses TSV triples from a reader, interning into `vocab`.
///
/// Blank lines and lines starting with `#` are skipped.
pub fn read_triples(reader: impl Read, vocab: &mut Vocab) -> Result<TripleStore, ParseError> {
    let mut store = TripleStore::new();
    let buf = BufReader::new(reader);
    for (i, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split('\t');
        let (Some(h), Some(r), Some(t), None) =
            (fields.next(), fields.next(), fields.next(), fields.next())
        else {
            return Err(ParseError::BadLine { line: i + 1, content: trimmed.to_owned() });
        };
        let head = vocab.intern_entity(h);
        let rel = vocab.intern_relation(r);
        let tail = vocab.intern_entity(t);
        store.insert(Triple::new(head, rel, tail));
    }
    Ok(store)
}

/// Loads a TSV triple file from disk.
pub fn load_triples(path: impl AsRef<Path>, vocab: &mut Vocab) -> Result<TripleStore, ParseError> {
    let file = std::fs::File::open(path)?;
    read_triples(file, vocab)
}

/// Writes triples as TSV using the vocabulary's names.
pub fn write_triples(store: &TripleStore, vocab: &Vocab, mut writer: impl Write) -> io::Result<()> {
    let mut line = String::new();
    for t in store.triples() {
        line.clear();
        let _ = writeln!(
            line,
            "{}\t{}\t{}",
            vocab.entity_name(t.head),
            vocab.relation_name(t.rel),
            vocab.entity_name(t.tail)
        );
        writer.write_all(line.as_bytes())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic() {
        let input = "a\tlikes\tb\nb\tknows\tc\n";
        let mut vocab = Vocab::new();
        let store = read_triples(input.as_bytes(), &mut vocab).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(vocab.num_entities(), 3);
        assert_eq!(vocab.num_relations(), 2);
    }

    #[test]
    fn skips_comments_and_blanks() {
        let input = "# header\n\na\tr\tb\n   \n";
        let mut vocab = Vocab::new();
        let store = read_triples(input.as_bytes(), &mut vocab).unwrap();
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn rejects_malformed_lines() {
        let input = "a\tr\n";
        let mut vocab = Vocab::new();
        let err = read_triples(input.as_bytes(), &mut vocab).unwrap_err();
        match err {
            ParseError::BadLine { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn rejects_too_many_fields() {
        let input = "a\tr\tb\textra\n";
        let mut vocab = Vocab::new();
        assert!(read_triples(input.as_bytes(), &mut vocab).is_err());
    }

    #[test]
    fn write_read_roundtrip() {
        let mut vocab = Vocab::new();
        let store = read_triples("x\tp\ty\ny\tq\tz\n".as_bytes(), &mut vocab).unwrap();
        let mut out = Vec::new();
        write_triples(&store, &vocab, &mut out).unwrap();
        let mut vocab2 = Vocab::new();
        let store2 = read_triples(out.as_slice(), &mut vocab2).unwrap();
        assert_eq!(store2.len(), store.len());
        assert_eq!(vocab2.num_entities(), vocab.num_entities());
    }

    #[test]
    fn shared_vocab_across_files() {
        // Loading G then G' with one vocab keeps the relation space
        // shared and the entity ranges disjoint (DEKG requirement).
        let mut vocab = Vocab::new();
        let g = read_triples("a\tr\tb\n".as_bytes(), &mut vocab).unwrap();
        let g_prime = read_triples("x\tr\ty\n".as_bytes(), &mut vocab).unwrap();
        assert_eq!(vocab.num_relations(), 1);
        let g_entities = g.entities();
        let gp_entities = g_prime.entities();
        assert!(g_entities.is_disjoint(&gp_entities));
    }
}
