//! Block-diagonal packing of many subgraphs for batched inference.
//!
//! A ranking query scores one subgraph per candidate; packing those
//! subgraphs into a single node matrix turns the per-candidate R-GCN
//! loop into a few large kernel calls. The packed layout is
//! block-diagonal: subgraph `i`'s nodes occupy the contiguous row range
//! `offsets[i]..offsets[i + 1]` (its *segment*), and every edge is
//! re-indexed into that global row space, so no edge ever crosses a
//! segment boundary.
//!
//! Edges are grouped by relation **globally** (ascending relation id,
//! as [`group_edges_by_relation`] orders them per subgraph), with each
//! group remembering which segments contribute — the batched layer
//! touches only those segments' rows per relation, which is what keeps
//! it bitwise-identical to the per-subgraph path (see
//! `DESIGN.md` § batched inference).
//!
//! [`group_edges_by_relation`]: crate::Subgraph

use crate::subgraph::Subgraph;
use std::collections::BTreeMap;

/// All edges of one relation across the packed batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelEdgeGroup {
    /// Relation index in the shared relation space.
    pub rel: usize,
    /// Packed (segment-offset) source row per edge, in (segment,
    /// within-segment edge id) order.
    pub srcs: Vec<u32>,
    /// Packed destination row per edge, aligned with `srcs`.
    pub dsts: Vec<u32>,
    /// Ascending segment indices that contain at least one edge of this
    /// relation — the only segments whose rows the batched layer
    /// aggregates into for this relation.
    pub segments: Vec<u32>,
}

/// A batch of subgraphs packed into one block-diagonal edge list.
///
/// Borrows the subgraphs: packing only re-indexes edges, the node
/// payloads (ids, labels) stay where they are.
#[derive(Debug)]
pub struct BatchedSubgraphs<'a> {
    graphs: &'a [Subgraph],
    /// Node-row offset per segment; `offsets[len]` is the total.
    offsets: Vec<usize>,
    by_rel: Vec<RelEdgeGroup>,
}

impl<'a> BatchedSubgraphs<'a> {
    /// Packs `graphs` in order. Every subgraph becomes one segment even
    /// when empty of edges (endpoint-only subgraphs still get scored).
    pub fn pack(graphs: &'a [Subgraph]) -> Self {
        let mut offsets = Vec::with_capacity(graphs.len() + 1);
        let mut total = 0usize;
        offsets.push(0);
        for sg in graphs {
            total += sg.num_nodes();
            offsets.push(total);
        }
        let mut groups: BTreeMap<usize, RelEdgeGroup> = BTreeMap::new();
        for (si, sg) in graphs.iter().enumerate() {
            let off = offsets[si] as u32;
            for e in &sg.edges {
                let g = groups.entry(e.rel.index()).or_insert_with(|| RelEdgeGroup {
                    rel: e.rel.index(),
                    srcs: Vec::new(),
                    dsts: Vec::new(),
                    segments: Vec::new(),
                });
                if g.segments.last() != Some(&(si as u32)) {
                    g.segments.push(si as u32);
                }
                g.srcs.push(off + e.src);
                g.dsts.push(off + e.dst);
            }
        }
        BatchedSubgraphs { graphs, offsets, by_rel: groups.into_values().collect() }
    }

    /// The packed subgraphs, in segment order.
    pub fn graphs(&self) -> &'a [Subgraph] {
        self.graphs
    }

    /// Number of segments (= subgraphs) in the batch.
    pub fn num_graphs(&self) -> usize {
        self.graphs.len()
    }

    /// Total packed node-row count.
    pub fn total_nodes(&self) -> usize {
        *self.offsets.last().unwrap_or(&0)
    }

    /// The packed row range of segment `i`.
    pub fn segment(&self, i: usize) -> std::ops::Range<usize> {
        self.offsets[i]..self.offsets[i + 1]
    }

    /// Per-relation edge groups, ascending by relation id.
    pub fn by_rel(&self) -> &[RelEdgeGroup] {
        &self.by_rel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::Adjacency;
    use crate::store::TripleStore;
    use crate::subgraph::{ExtractionMode, SubgraphExtractor};
    use crate::triple::Triple;
    use crate::vocab::EntityId;

    fn subgraphs() -> Vec<Subgraph> {
        let store = TripleStore::from_triples([
            Triple::from_raw(0, 0, 1),
            Triple::from_raw(1, 1, 2),
            Triple::from_raw(2, 0, 3),
            Triple::from_raw(4, 2, 5),
        ]);
        let adj = Adjacency::from_store(&store, 6);
        let ex = SubgraphExtractor::new(&adj, 2, ExtractionMode::Union);
        vec![
            ex.extract(EntityId(0), EntityId(2), None),
            ex.extract(EntityId(4), EntityId(5), None),
            ex.extract(EntityId(0), EntityId(4), None), // bridging
        ]
    }

    #[test]
    fn offsets_partition_rows() {
        let sgs = subgraphs();
        let b = BatchedSubgraphs::pack(&sgs);
        assert_eq!(b.num_graphs(), 3);
        let mut covered = 0;
        for (i, sg) in sgs.iter().enumerate() {
            let r = b.segment(i);
            assert_eq!(r.start, covered);
            assert_eq!(r.len(), sg.num_nodes());
            covered = r.end;
        }
        assert_eq!(covered, b.total_nodes());
    }

    #[test]
    fn groups_are_sorted_and_segment_scoped() {
        let sgs = subgraphs();
        let b = BatchedSubgraphs::pack(&sgs);
        let rels: Vec<usize> = b.by_rel().iter().map(|g| g.rel).collect();
        let mut sorted = rels.clone();
        sorted.sort_unstable();
        assert_eq!(rels, sorted, "relation groups must ascend");
        for g in b.by_rel() {
            assert_eq!(g.srcs.len(), g.dsts.len());
            assert!(!g.segments.is_empty());
            assert!(g.segments.windows(2).all(|w| w[0] < w[1]));
            // Every edge's endpoints must lie inside one listed segment.
            for (&s, &d) in g.srcs.iter().zip(&g.dsts) {
                let seg = g
                    .segments
                    .iter()
                    .find(|&&si| b.segment(si as usize).contains(&(s as usize)))
                    .expect("src row outside every listed segment");
                assert!(b.segment(*seg as usize).contains(&(d as usize)));
            }
        }
    }

    #[test]
    fn edge_counts_preserved() {
        let sgs = subgraphs();
        let b = BatchedSubgraphs::pack(&sgs);
        let packed: usize = b.by_rel().iter().map(|g| g.srcs.len()).sum();
        let original: usize = sgs.iter().map(Subgraph::num_edges).sum();
        assert_eq!(packed, original);
    }

    #[test]
    fn empty_batch() {
        let b = BatchedSubgraphs::pack(&[]);
        assert_eq!(b.num_graphs(), 0);
        assert_eq!(b.total_nodes(), 0);
        assert!(b.by_rel().is_empty());
    }
}
