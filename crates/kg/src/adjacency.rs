//! Compressed undirected adjacency for traversal.
//!
//! Subgraph extraction and node labeling traverse the KG ignoring edge
//! direction (as in GraIL), but message passing still needs the original
//! direction, so each adjacency entry carries the relation and the
//! orientation of the underlying triple.

use crate::store::TripleStore;
use crate::triple::Triple;
use crate::vocab::{EntityId, RelationId};

/// Direction of the underlying triple relative to the indexed node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Orientation {
    /// The indexed node is the head; the neighbor is the tail.
    Out,
    /// The indexed node is the tail; the neighbor is the head.
    In,
}

/// One adjacency entry: a neighbor reached over `rel`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Neighbor {
    /// The adjacent entity.
    pub entity: EntityId,
    /// Relation of the connecting triple.
    pub rel: RelationId,
    /// Whether the indexed node was the head (`Out`) or tail (`In`).
    pub orientation: Orientation,
}

/// CSR-style undirected adjacency over a fixed entity-id universe.
///
/// Built once per graph; lookups are contiguous slices.
#[derive(Debug, Clone)]
pub struct Adjacency {
    offsets: Vec<u32>,
    entries: Vec<Neighbor>,
}

impl Adjacency {
    /// Builds adjacency for ids `0..num_entities` from `store`.
    ///
    /// Entities outside the store simply have empty neighbor lists.
    ///
    /// # Panics
    /// If a triple references an id `>= num_entities`.
    pub fn from_store(store: &TripleStore, num_entities: usize) -> Self {
        let mut counts = vec![0u32; num_entities];
        for t in store.triples() {
            assert!(
                t.head.index() < num_entities && t.tail.index() < num_entities,
                "triple {t} outside entity universe of {num_entities}"
            );
            counts[t.head.index()] += 1;
            if !t.is_loop() {
                counts[t.tail.index()] += 1;
            }
        }
        let mut offsets = vec![0u32; num_entities + 1];
        for i in 0..num_entities {
            offsets[i + 1] = offsets[i] + counts[i];
        }
        let total = offsets[num_entities] as usize;
        let mut entries =
            vec![
                Neighbor { entity: EntityId(0), rel: RelationId(0), orientation: Orientation::Out };
                total
            ];
        let mut cursor: Vec<u32> = offsets[..num_entities].to_vec();
        for t in store.triples() {
            let h = t.head.index();
            entries[cursor[h] as usize] =
                Neighbor { entity: t.tail, rel: t.rel, orientation: Orientation::Out };
            cursor[h] += 1;
            if !t.is_loop() {
                let ta = t.tail.index();
                entries[cursor[ta] as usize] =
                    Neighbor { entity: t.head, rel: t.rel, orientation: Orientation::In };
                cursor[ta] += 1;
            }
        }
        Adjacency { offsets, entries }
    }

    /// Neighbors of `e` (both directions).
    pub fn neighbors(&self, e: EntityId) -> &[Neighbor] {
        let i = e.index();
        &self.entries[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Undirected degree of `e`.
    pub fn degree(&self, e: EntityId) -> usize {
        self.neighbors(e).len()
    }

    /// Number of entities in the universe.
    pub fn num_entities(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Reconstructs the directed triple behind an adjacency entry of `e`.
    pub fn triple_of(&self, e: EntityId, n: &Neighbor) -> Triple {
        match n.orientation {
            Orientation::Out => Triple::new(e, n.rel, n.entity),
            Orientation::In => Triple::new(n.entity, n.rel, e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(h: u32, r: u32, ta: u32) -> Triple {
        Triple::from_raw(h, r, ta)
    }

    #[test]
    fn degrees_and_neighbors() {
        let store = TripleStore::from_triples([t(0, 0, 1), t(1, 1, 2), t(0, 2, 2)]);
        let adj = Adjacency::from_store(&store, 4);
        assert_eq!(adj.degree(EntityId(0)), 2);
        assert_eq!(adj.degree(EntityId(1)), 2);
        assert_eq!(adj.degree(EntityId(2)), 2);
        assert_eq!(adj.degree(EntityId(3)), 0);
        let n0: Vec<EntityId> = adj.neighbors(EntityId(0)).iter().map(|n| n.entity).collect();
        assert!(n0.contains(&EntityId(1)) && n0.contains(&EntityId(2)));
    }

    #[test]
    fn orientation_reconstructs_triples() {
        let store = TripleStore::from_triples([t(0, 5, 1)]);
        let adj = Adjacency::from_store(&store, 2);
        let from_head = adj.neighbors(EntityId(0))[0];
        assert_eq!(from_head.orientation, Orientation::Out);
        assert_eq!(adj.triple_of(EntityId(0), &from_head), t(0, 5, 1));
        let from_tail = adj.neighbors(EntityId(1))[0];
        assert_eq!(from_tail.orientation, Orientation::In);
        assert_eq!(adj.triple_of(EntityId(1), &from_tail), t(0, 5, 1));
    }

    #[test]
    fn self_loops_stored_once() {
        let store = TripleStore::from_triples([t(3, 0, 3)]);
        let adj = Adjacency::from_store(&store, 4);
        assert_eq!(adj.degree(EntityId(3)), 1);
        assert_eq!(adj.neighbors(EntityId(3))[0].entity, EntityId(3));
    }

    #[test]
    fn parallel_edges_kept() {
        // Two relations between the same pair → two entries each side.
        let store = TripleStore::from_triples([t(0, 0, 1), t(0, 1, 1)]);
        let adj = Adjacency::from_store(&store, 2);
        assert_eq!(adj.degree(EntityId(0)), 2);
        assert_eq!(adj.degree(EntityId(1)), 2);
    }

    #[test]
    #[should_panic(expected = "outside entity universe")]
    fn universe_bound_checked() {
        let store = TripleStore::from_triples([t(0, 0, 9)]);
        Adjacency::from_store(&store, 2);
    }
}
