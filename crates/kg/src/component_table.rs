//! Relation-component tables (Eq. 2 of the paper).
//!
//! The table `A_i = { a_i^k }` counts, for entity `e_i`, how many
//! triples with relation `r_k` the entity participates in (either side).
//! CLRM represents every entity as the `a_i^k`-weighted mean of learned
//! per-relation features — construction uses *only* the entity's own
//! associated triples, which is what makes the representation
//! entity-independent and applicable to unseen entities.

use crate::store::TripleStore;
use crate::vocab::{EntityId, RelationId};
use serde::{Deserialize, Serialize};

/// A sparse per-entity relation histogram.
///
/// Rows are sorted by relation id; zero counts are not stored.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComponentRow {
    entries: Vec<(RelationId, u32)>,
}

impl ComponentRow {
    /// An empty row (entity with no triples).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds a row from unsorted `(relation, count)` pairs, merging
    /// duplicates and dropping zeros.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (RelationId, u32)>) -> Self {
        let mut entries: Vec<(RelationId, u32)> =
            pairs.into_iter().filter(|&(_, c)| c > 0).collect();
        entries.sort_by_key(|&(r, _)| r);
        entries.dedup_by(|later, earlier| {
            if later.0 == earlier.0 {
                earlier.1 += later.1;
                true
            } else {
                false
            }
        });
        ComponentRow { entries }
    }

    /// The count `a_i^k` for relation `k` (0 when absent).
    pub fn count(&self, r: RelationId) -> u32 {
        self.entries.binary_search_by_key(&r, |&(rel, _)| rel).map_or(0, |i| self.entries[i].1)
    }

    /// Sets the count for a relation (removing the entry when 0).
    pub fn set(&mut self, r: RelationId, count: u32) {
        match self.entries.binary_search_by_key(&r, |&(rel, _)| rel) {
            Ok(i) => {
                if count == 0 {
                    self.entries.remove(i);
                } else {
                    self.entries[i].1 = count;
                }
            }
            Err(i) => {
                if count > 0 {
                    self.entries.insert(i, (r, count));
                }
            }
        }
    }

    /// Nonzero `(relation, count)` entries, sorted by relation.
    pub fn entries(&self) -> &[(RelationId, u32)] {
        &self.entries
    }

    /// Number of distinct relations with nonzero count.
    pub fn num_relations(&self) -> usize {
        self.entries.len()
    }

    /// Total triple count `Σ_k a_i^k`.
    pub fn total(&self) -> u32 {
        self.entries.iter().map(|&(_, c)| c).sum()
    }

    /// The paper's `m_i` (Eq. 5): mean triple count over the entity's
    /// nonzero relations. Zero for empty rows.
    pub fn mean_count(&self) -> f32 {
        if self.entries.is_empty() {
            0.0
        } else {
            self.total() as f32 / self.entries.len() as f32
        }
    }

    /// True when the entity has no associated triples.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Relation-component tables for a whole entity universe.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComponentTable {
    rows: Vec<ComponentRow>,
    num_relations: usize,
}

impl ComponentTable {
    /// Builds tables for ids `0..num_entities` from a triple store.
    ///
    /// Self-loops contribute a count of 2 (the entity participates as
    /// both head and tail), consistent with "number of triples the
    /// entity is associated with" counting both roles.
    pub fn from_store(store: &TripleStore, num_entities: usize, num_relations: usize) -> Self {
        // BTreeMap so the per-row (relation, count) pairs come out in
        // relation order — rows must be reproducible byte-for-byte.
        let mut counts: Vec<std::collections::BTreeMap<RelationId, u32>> =
            vec![std::collections::BTreeMap::new(); num_entities];
        for t in store.triples() {
            *counts[t.head.index()].entry(t.rel).or_insert(0) += 1;
            *counts[t.tail.index()].entry(t.rel).or_insert(0) += 1;
        }
        let rows = counts.into_iter().map(ComponentRow::from_pairs).collect();
        ComponentTable { rows, num_relations }
    }

    /// The row for entity `e`.
    pub fn row(&self, e: EntityId) -> &ComponentRow {
        &self.rows[e.index()]
    }

    /// Number of entities covered.
    pub fn num_entities(&self) -> usize {
        self.rows.len()
    }

    /// Size of the shared relation space.
    pub fn num_relations(&self) -> usize {
        self.num_relations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triple::Triple;

    fn t(h: u32, r: u32, ta: u32) -> Triple {
        Triple::from_raw(h, r, ta)
    }

    #[test]
    fn counts_both_roles() {
        // Entity 0: head of r0 twice, tail of r1 once.
        let store = TripleStore::from_triples([t(0, 0, 1), t(0, 0, 2), t(3, 1, 0)]);
        let table = ComponentTable::from_store(&store, 4, 2);
        let row = table.row(EntityId(0));
        assert_eq!(row.count(RelationId(0)), 2);
        assert_eq!(row.count(RelationId(1)), 1);
        assert_eq!(row.total(), 3);
        assert_eq!(row.num_relations(), 2);
    }

    #[test]
    fn zero_for_unassociated() {
        let store = TripleStore::from_triples([t(0, 0, 1)]);
        let table = ComponentTable::from_store(&store, 3, 2);
        assert_eq!(table.row(EntityId(0)).count(RelationId(1)), 0);
        assert!(table.row(EntityId(2)).is_empty());
    }

    #[test]
    fn self_loop_counts_twice() {
        let store = TripleStore::from_triples([t(0, 0, 0)]);
        let table = ComponentTable::from_store(&store, 1, 1);
        assert_eq!(table.row(EntityId(0)).count(RelationId(0)), 2);
    }

    #[test]
    fn mean_count_matches_eq5() {
        // Entity with relations {r0: 4, r1: 2} → m_i = 3.
        let row = ComponentRow::from_pairs([(RelationId(0), 4), (RelationId(1), 2)]);
        assert_eq!(row.mean_count(), 3.0);
        assert_eq!(ComponentRow::empty().mean_count(), 0.0);
    }

    #[test]
    fn set_inserts_updates_removes() {
        let mut row = ComponentRow::empty();
        row.set(RelationId(5), 2);
        row.set(RelationId(1), 1);
        assert_eq!(row.entries(), &[(RelationId(1), 1), (RelationId(5), 2)]);
        row.set(RelationId(5), 7);
        assert_eq!(row.count(RelationId(5)), 7);
        row.set(RelationId(1), 0);
        assert_eq!(row.num_relations(), 1);
        assert_eq!(row.count(RelationId(1)), 0);
    }

    #[test]
    fn from_pairs_merges_duplicates() {
        let row = ComponentRow::from_pairs([
            (RelationId(2), 1),
            (RelationId(0), 3),
            (RelationId(2), 2),
            (RelationId(1), 0),
        ]);
        assert_eq!(row.entries(), &[(RelationId(0), 3), (RelationId(2), 3)]);
    }
}
