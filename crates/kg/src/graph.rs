//! A convenience bundle of vocabulary + triples for one KG.

use crate::store::TripleStore;
use crate::triple::Triple;
use crate::vocab::{EntityId, RelationId, Vocab};
use serde::{Deserialize, Serialize};

/// A named knowledge graph: a [`Vocab`] plus a [`TripleStore`].
///
/// Examples and IO use this type; the model stack mostly works on bare
/// stores with an externally shared vocabulary (original KG and DEKG
/// must share the relation space and keep entity ids disjoint, which a
/// single shared [`Vocab`] guarantees automatically).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct KnowledgeGraph {
    vocab: Vocab,
    store: TripleStore,
}

impl KnowledgeGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps existing parts.
    pub fn from_parts(vocab: Vocab, store: TripleStore) -> Self {
        KnowledgeGraph { vocab, store }
    }

    /// Adds a fact by names, interning as needed. Returns the triple.
    pub fn add_fact(&mut self, head: &str, rel: &str, tail: &str) -> Triple {
        let h = self.vocab.intern_entity(head);
        let r = self.vocab.intern_relation(rel);
        let t = self.vocab.intern_entity(tail);
        let triple = Triple::new(h, r, t);
        self.store.insert(triple);
        triple
    }

    /// Checks a fact by names; `false` when any name is unknown.
    pub fn has_fact(&self, head: &str, rel: &str, tail: &str) -> bool {
        match (self.vocab.entity(head), self.vocab.relation(rel), self.vocab.entity(tail)) {
            (Some(h), Some(r), Some(t)) => self.store.contains(&Triple::new(h, r, t)),
            _ => false,
        }
    }

    /// The vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Mutable vocabulary access (for pre-interning shared spaces).
    pub fn vocab_mut(&mut self) -> &mut Vocab {
        &mut self.vocab
    }

    /// The triple store.
    pub fn store(&self) -> &TripleStore {
        &self.store
    }

    /// Mutable triple store access.
    pub fn store_mut(&mut self) -> &mut TripleStore {
        &mut self.store
    }

    /// Renders a triple with names for display.
    pub fn render(&self, t: &Triple) -> String {
        format!(
            "({}, {}, {})",
            self.vocab.entity_name(t.head),
            self.vocab.relation_name(t.rel),
            self.vocab.entity_name(t.tail)
        )
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True when no triples are stored.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }
}

/// Resolved ids of a fact expressed with names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedFact {
    /// Head entity id.
    pub head: EntityId,
    /// Relation id.
    pub rel: RelationId,
    /// Tail entity id.
    pub tail: EntityId,
}

impl KnowledgeGraph {
    /// Resolves names to ids without interning.
    pub fn resolve(&self, head: &str, rel: &str, tail: &str) -> Option<ResolvedFact> {
        Some(ResolvedFact {
            head: self.vocab.entity(head)?,
            rel: self.vocab.relation(rel)?,
            tail: self.vocab.entity(tail)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query_by_name() {
        let mut kg = KnowledgeGraph::new();
        kg.add_fact("thunder", "employ", "russell");
        kg.add_fact("russell", "teammate", "kevin_love");
        assert!(kg.has_fact("thunder", "employ", "russell"));
        assert!(!kg.has_fact("russell", "employ", "thunder"));
        assert!(!kg.has_fact("unknown", "employ", "russell"));
        assert_eq!(kg.len(), 2);
    }

    #[test]
    fn render_roundtrips_names() {
        let mut kg = KnowledgeGraph::new();
        let t = kg.add_fact("a", "likes", "b");
        assert_eq!(kg.render(&t), "(a, likes, b)");
    }

    #[test]
    fn resolve_does_not_intern() {
        let mut kg = KnowledgeGraph::new();
        kg.add_fact("a", "r", "b");
        assert!(kg.resolve("a", "r", "b").is_some());
        assert!(kg.resolve("a", "r", "zzz").is_none());
        assert_eq!(kg.vocab().num_entities(), 2);
    }
}
