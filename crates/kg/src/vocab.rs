//! Entity and relation identifiers plus the string interner mapping
//! external names onto them.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Dense identifier of an entity. Ids are assigned in interning order;
/// in the DEKG setting, original-KG entities are interned before
/// emerging-KG ones, so `E` and `E'` occupy disjoint contiguous ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EntityId(pub u32);

/// Dense identifier of a relation. The relation space `R` is shared
/// between the original KG and any emerging KG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RelationId(pub u32);

impl EntityId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl RelationId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for RelationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Bidirectional mapping between entity/relation names and dense ids.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Vocab {
    entity_names: Vec<String>,
    relation_names: Vec<String>,
    entity_ids: HashMap<String, EntityId>,
    relation_ids: HashMap<String, RelationId>,
}

impl Vocab {
    /// An empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns an entity name, returning its (possibly existing) id.
    pub fn intern_entity(&mut self, name: &str) -> EntityId {
        if let Some(&id) = self.entity_ids.get(name) {
            return id;
        }
        let id = EntityId(self.entity_names.len() as u32);
        self.entity_names.push(name.to_owned());
        self.entity_ids.insert(name.to_owned(), id);
        id
    }

    /// Interns a relation name, returning its (possibly existing) id.
    pub fn intern_relation(&mut self, name: &str) -> RelationId {
        if let Some(&id) = self.relation_ids.get(name) {
            return id;
        }
        let id = RelationId(self.relation_names.len() as u32);
        self.relation_names.push(name.to_owned());
        self.relation_ids.insert(name.to_owned(), id);
        id
    }

    /// Looks up an entity by name without interning.
    pub fn entity(&self, name: &str) -> Option<EntityId> {
        self.entity_ids.get(name).copied()
    }

    /// Looks up a relation by name without interning.
    pub fn relation(&self, name: &str) -> Option<RelationId> {
        self.relation_ids.get(name).copied()
    }

    /// The name of an entity id.
    ///
    /// # Panics
    /// If the id was not produced by this vocab.
    pub fn entity_name(&self, id: EntityId) -> &str {
        &self.entity_names[id.index()]
    }

    /// The name of a relation id.
    pub fn relation_name(&self, id: RelationId) -> &str {
        &self.relation_names[id.index()]
    }

    /// Number of interned entities.
    pub fn num_entities(&self) -> usize {
        self.entity_names.len()
    }

    /// Number of interned relations.
    pub fn num_relations(&self) -> usize {
        self.relation_names.len()
    }

    /// All entity ids in interning order.
    pub fn entities(&self) -> impl Iterator<Item = EntityId> + '_ {
        (0..self.entity_names.len() as u32).map(EntityId)
    }

    /// All relation ids in interning order.
    pub fn relations(&self) -> impl Iterator<Item = RelationId> + '_ {
        (0..self.relation_names.len() as u32).map(RelationId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut v = Vocab::new();
        let a = v.intern_entity("thunder");
        let b = v.intern_entity("russell");
        let a2 = v.intern_entity("thunder");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(v.num_entities(), 2);
        assert_eq!(v.entity_name(a), "thunder");
    }

    #[test]
    fn entities_and_relations_are_separate_spaces() {
        let mut v = Vocab::new();
        let e = v.intern_entity("employ");
        let r = v.intern_relation("employ");
        assert_eq!(e.index(), 0);
        assert_eq!(r.index(), 0);
        assert_eq!(v.num_entities(), 1);
        assert_eq!(v.num_relations(), 1);
    }

    #[test]
    fn lookup_without_interning() {
        let mut v = Vocab::new();
        v.intern_relation("teammate");
        assert!(v.relation("teammate").is_some());
        assert!(v.relation("coach").is_none());
        assert_eq!(v.num_relations(), 1);
    }

    #[test]
    fn iteration_order_is_dense() {
        let mut v = Vocab::new();
        for name in ["a", "b", "c"] {
            v.intern_entity(name);
        }
        let ids: Vec<u32> = v.entities().map(|e| e.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn display_impls() {
        assert_eq!(EntityId(3).to_string(), "e3");
        assert_eq!(RelationId(1).to_string(), "r1");
    }
}
