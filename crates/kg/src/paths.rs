//! Bounded 2-path enumeration — the shared walk behind rule mining
//! (RuleN) and differentiable rule learning (Neural LP).
//!
//! A *2-path* is an ordered pair of incident edges `x — z — y` with
//! `x ≠ y`, described direction-agnostically: each atom carries its
//! relation and whether it is traversed against its stored direction
//! (`rev`), so `x —r₁→ z ←r₂— y` is `(r₁, false), (r₂, true)`.

use crate::adjacency::{Adjacency, Orientation};
use crate::vocab::{EntityId, RelationId};

/// One enumerated 2-path instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwoPath {
    /// Start entity `x`.
    pub start: EntityId,
    /// Pivot entity `z`.
    pub pivot: EntityId,
    /// End entity `y` (`≠ start`).
    pub end: EntityId,
    /// First atom's relation.
    pub r1: RelationId,
    /// First atom traversed against its stored direction.
    pub rev1: bool,
    /// Second atom's relation.
    pub r2: RelationId,
    /// Second atom traversed against its stored direction.
    pub rev2: bool,
}

/// Enumerates 2-paths starting at `x`, visiting at most `budget` pairs,
/// invoking `visit` for each.
///
/// Deterministic: neighbors are walked in adjacency order. Self-loops
/// are allowed as atoms; paths ending back at `x` are skipped.
pub fn walk_two_paths(adj: &Adjacency, x: EntityId, budget: usize, mut visit: impl FnMut(TwoPath)) {
    let mut remaining = budget;
    for n1 in adj.neighbors(x) {
        let z = n1.entity;
        for n2 in adj.neighbors(z) {
            let y = n2.entity;
            if y == x {
                continue;
            }
            if remaining == 0 {
                return;
            }
            remaining -= 1;
            visit(TwoPath {
                start: x,
                pivot: z,
                end: y,
                r1: n1.rel,
                rev1: n1.orientation == Orientation::In,
                r2: n2.rel,
                rev2: n2.orientation == Orientation::In,
            });
        }
    }
}

/// Counts the 2-path instantiations between `(x, y)` matching the
/// pattern `(r1, rev1, r2, rev2)` — the body-matching primitive of the
/// rule-based models.
pub fn count_two_paths_between(
    adj: &Adjacency,
    x: EntityId,
    y: EntityId,
    r1: RelationId,
    rev1: bool,
    r2: RelationId,
    rev2: bool,
) -> usize {
    let mut count = 0;
    for n1 in adj.neighbors(x) {
        if n1.rel != r1 || (n1.orientation == Orientation::Out) == rev1 {
            continue;
        }
        count += adj
            .neighbors(n1.entity)
            .iter()
            .filter(|n2| {
                n2.rel == r2 && (n2.orientation == Orientation::Out) != rev2 && n2.entity == y
            })
            .count();
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::TripleStore;
    use crate::triple::Triple;

    fn t(h: u32, r: u32, ta: u32) -> Triple {
        Triple::from_raw(h, r, ta)
    }

    #[test]
    fn walks_forward_paths() {
        // 0 -r0-> 1 -r1-> 2
        let store = TripleStore::from_triples([t(0, 0, 1), t(1, 1, 2)]);
        let adj = Adjacency::from_store(&store, 3);
        let mut found = Vec::new();
        walk_two_paths(&adj, EntityId(0), 100, |p| found.push(p));
        assert!(found.iter().any(|p| p.end == EntityId(2)
            && p.r1 == RelationId(0)
            && !p.rev1
            && p.r2 == RelationId(1)
            && !p.rev2));
    }

    #[test]
    fn records_reversed_atoms() {
        // 1 -r0-> 0 (reversed from 0's view), 1 -r1-> 2.
        let store = TripleStore::from_triples([t(1, 0, 0), t(1, 1, 2)]);
        let adj = Adjacency::from_store(&store, 3);
        let mut found = Vec::new();
        walk_two_paths(&adj, EntityId(0), 100, |p| found.push(p));
        let hit = found.iter().find(|p| p.end == EntityId(2)).expect("path 0 ~ 1 ~ 2 must exist");
        assert!(hit.rev1, "first atom is traversed against direction");
        assert!(!hit.rev2);
    }

    #[test]
    fn budget_caps_enumeration() {
        // A hub with many 2-paths.
        let mut triples = Vec::new();
        for i in 1..=10u32 {
            triples.push(t(0, 0, i));
            for j in 11..=20u32 {
                triples.push(t(i, 1, j));
            }
        }
        let adj = Adjacency::from_store(&TripleStore::from_triples(triples), 21);
        let mut count = 0;
        walk_two_paths(&adj, EntityId(0), 7, |_| count += 1);
        assert_eq!(count, 7);
    }

    #[test]
    fn paths_back_to_start_skipped() {
        // 0 -r0-> 1 -r1-> 0: only degenerate loops, nothing visits.
        let store = TripleStore::from_triples([t(0, 0, 1), t(1, 1, 0)]);
        let adj = Adjacency::from_store(&store, 2);
        let mut count = 0;
        walk_two_paths(&adj, EntityId(0), 100, |_| count += 1);
        assert_eq!(count, 0);
    }

    #[test]
    fn counting_matches_enumeration() {
        let store = TripleStore::from_triples([t(0, 0, 1), t(1, 1, 2), t(0, 0, 3), t(3, 1, 2)]);
        let adj = Adjacency::from_store(&store, 4);
        // Two (r0, fwd)(r1, fwd) paths from 0 to 2: via 1 and via 3.
        let n = count_two_paths_between(
            &adj,
            EntityId(0),
            EntityId(2),
            RelationId(0),
            false,
            RelationId(1),
            false,
        );
        assert_eq!(n, 2);
        // Reversed pattern does not match.
        let n_rev = count_two_paths_between(
            &adj,
            EntityId(0),
            EntityId(2),
            RelationId(0),
            true,
            RelationId(1),
            false,
        );
        assert_eq!(n_rev, 0);
    }
}
