//! The `(head, relation, tail)` fact type.

use crate::vocab::{EntityId, RelationId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A directed fact `(h, r, t)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Triple {
    /// Head entity.
    pub head: EntityId,
    /// Relation.
    pub rel: RelationId,
    /// Tail entity.
    pub tail: EntityId,
}

impl Triple {
    /// Constructs a triple.
    pub fn new(head: EntityId, rel: RelationId, tail: EntityId) -> Self {
        Triple { head, rel, tail }
    }

    /// Convenience constructor from raw ids.
    pub fn from_raw(head: u32, rel: u32, tail: u32) -> Self {
        Triple::new(EntityId(head), RelationId(rel), EntityId(tail))
    }

    /// The triple with head and tail exchanged (same relation).
    pub fn reversed(self) -> Self {
        Triple { head: self.tail, rel: self.rel, tail: self.head }
    }

    /// True if `e` is the head or the tail.
    pub fn touches(self, e: EntityId) -> bool {
        self.head == e || self.tail == e
    }

    /// The endpoint opposite to `e`.
    ///
    /// # Panics
    /// If `e` is neither endpoint.
    pub fn other_end(self, e: EntityId) -> EntityId {
        if self.head == e {
            self.tail
        } else if self.tail == e {
            self.head
        } else {
            panic!("{e} is not an endpoint of {self}")
        }
    }

    /// True for self-loops.
    pub fn is_loop(self) -> bool {
        self.head == self.tail
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.head, self.rel, self.tail)
    }
}

/// Which side of a triple an entity occupies. Used by bridging-link
/// bookkeeping (Definition 4 allows the unseen entity on either side).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Side {
    /// The head position.
    Head,
    /// The tail position.
    Tail,
}

impl Side {
    /// The opposite side.
    pub fn flip(self) -> Side {
        match self {
            Side::Head => Side::Tail,
            Side::Tail => Side::Head,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reversal() {
        let t = Triple::from_raw(1, 2, 3);
        let r = t.reversed();
        assert_eq!(r.head, EntityId(3));
        assert_eq!(r.tail, EntityId(1));
        assert_eq!(r.rel, RelationId(2));
        assert_eq!(r.reversed(), t);
    }

    #[test]
    fn endpoints() {
        let t = Triple::from_raw(1, 0, 2);
        assert!(t.touches(EntityId(1)));
        assert!(t.touches(EntityId(2)));
        assert!(!t.touches(EntityId(3)));
        assert_eq!(t.other_end(EntityId(1)), EntityId(2));
        assert_eq!(t.other_end(EntityId(2)), EntityId(1));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_end_panics_for_stranger() {
        Triple::from_raw(1, 0, 2).other_end(EntityId(9));
    }

    #[test]
    fn loops_detected() {
        assert!(Triple::from_raw(1, 0, 1).is_loop());
        assert!(!Triple::from_raw(1, 0, 2).is_loop());
    }

    #[test]
    fn side_flip() {
        assert_eq!(Side::Head.flip(), Side::Tail);
        assert_eq!(Side::Tail.flip(), Side::Head);
    }
}
