//! Enclosing-subgraph extraction around a candidate link.
//!
//! For a triple `(e_i, r_k, e_j)` GSM reasons over the subgraph induced
//! by the t-hop neighborhoods of the two endpoints. Two extraction
//! modes exist (Section IV-C2 of the paper):
//!
//! * [`ExtractionMode::Intersection`] — GraIL's rule: keep only nodes in
//!   `N_t(e_i) ∩ N_t(e_j)`, pruning any node with `d(i,u) > t` or
//!   `d(j,u) > t`. For a bridging link this intersection is *empty*
//!   apart from the endpoints — the "topological limitation".
//! * [`ExtractionMode::Union`] — the paper's improved labeling: keep
//!   `N_t(e_i) ∪ N_t(e_j)` and record `d(·,u) = -1` where the distance
//!   exceeds `t` or the node is unreachable. These one-sided nodes
//!   "simulate the disconnected nodes" that bridging links produce.
//!
//! Distances are computed with the opposite endpoint blocked, matching
//! the paper's `d(i,u)` = shortest path not passing through `e_j`.

use crate::adjacency::Adjacency;
use crate::bfs::{bounded_distances, UNREACHED};
use crate::triple::Triple;
use crate::vocab::{EntityId, RelationId};
use std::collections::HashMap;

/// Node-retention policy for extraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtractionMode {
    /// GraIL: `N_t(h) ∩ N_t(t)` with both distances within the bound.
    Intersection,
    /// DEKG-ILP: `N_t(h) ∪ N_t(t)`; out-of-bound distances become −1.
    Union,
}

/// An edge of the extracted subgraph in local node indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalEdge {
    /// Local index of the head.
    pub src: u32,
    /// Relation of the original triple.
    pub rel: RelationId,
    /// Local index of the tail.
    pub dst: u32,
}

/// The enclosing subgraph around one candidate link.
///
/// Node 0 is always the head `e_i` and node 1 the tail `e_j`, matching
/// the unique labels `(0,1)` and `(1,0)` the paper assigns them. Edge
/// direction is preserved from the backing store.
#[derive(Debug, Clone)]
pub struct Subgraph {
    /// Global ids of the retained nodes; `nodes[0] = head`, `nodes[1] = tail`.
    pub nodes: Vec<EntityId>,
    /// Induced edges in local indices (target link excluded).
    pub edges: Vec<LocalEdge>,
    /// `d(head, u)` per local node, −1 when unreached/over-bound.
    pub dist_head: Vec<i32>,
    /// `d(tail, u)` per local node, −1 when unreached/over-bound.
    pub dist_tail: Vec<i32>,
}

impl Subgraph {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// True when no path (within the extraction bound) connects the two
    /// endpoints — the signature of a bridging link's subgraph.
    pub fn is_disconnected(&self) -> bool {
        // Head is connected to tail iff the tail's distance-from-head is
        // a real value (node 1 is the tail).
        self.dist_head[1] == UNREACHED
    }

    /// The paper's node label `(d(i,u), d(j,u))` for local node `u`.
    pub fn label(&self, u: usize) -> (i32, i32) {
        (self.dist_head[u], self.dist_tail[u])
    }
}

/// Extractor bound to one graph (store + adjacency).
///
/// ```
/// use dekg_kg::{Adjacency, EntityId, ExtractionMode, SubgraphExtractor, Triple, TripleStore};
///
/// // Two disconnected components: {0,1} and {2,3} — a miniature DEKG.
/// let store = TripleStore::from_triples([
///     Triple::from_raw(0, 0, 1),
///     Triple::from_raw(2, 0, 3),
/// ]);
/// let adj = Adjacency::from_store(&store, 4);
///
/// // Union extraction around the bridging pair (0, 2) keeps both
/// // sides; the subgraph is disconnected, which GSM's labeling handles.
/// let ex = SubgraphExtractor::new(&adj, 2, ExtractionMode::Union);
/// let sg = ex.extract(EntityId(0), EntityId(2), None);
/// assert!(sg.is_disconnected());
/// assert_eq!(sg.num_nodes(), 4);
///
/// // GraIL's intersection mode collapses to the endpoints — the
/// // "topological limitation".
/// let grail = SubgraphExtractor::new(&adj, 2, ExtractionMode::Intersection);
/// assert_eq!(grail.extract(EntityId(0), EntityId(2), None).num_nodes(), 2);
/// ```
#[derive(Debug)]
pub struct SubgraphExtractor<'a> {
    adj: &'a Adjacency,
    hops: u32,
    mode: ExtractionMode,
}

impl<'a> SubgraphExtractor<'a> {
    /// Creates an extractor performing `hops`-hop extraction.
    ///
    /// # Panics
    /// If `hops == 0`.
    pub fn new(adj: &'a Adjacency, hops: u32, mode: ExtractionMode) -> Self {
        assert!(hops > 0, "subgraph extraction needs at least 1 hop");
        SubgraphExtractor { adj, hops, mode }
    }

    /// The hop bound `t`.
    pub fn hops(&self) -> u32 {
        self.hops
    }

    /// The retention mode.
    pub fn mode(&self) -> ExtractionMode {
        self.mode
    }

    /// Extracts the enclosing subgraph around `(head, ·, tail)`.
    ///
    /// `exclude` is removed from the induced edge set — pass the target
    /// triple during training so the model cannot read the answer off
    /// the graph. Both endpoints are always retained, even when
    /// completely isolated (the bridging-link case).
    pub fn extract(&self, head: EntityId, tail: EntityId, exclude: Option<Triple>) -> Subgraph {
        let dist_h = bounded_distances(self.adj, head, self.hops, Some(tail));
        let dist_t = bounded_distances(self.adj, tail, self.hops, Some(head));

        // Collect retained nodes: endpoints first, then the rest in
        // ascending global id for determinism.
        let mut nodes: Vec<EntityId> = vec![head, tail];
        let mut local: HashMap<EntityId, u32> = HashMap::new();
        local.insert(head, 0);
        if tail != head {
            local.insert(tail, 1);
        } else {
            // Degenerate self-link: keep two local slots aliasing one
            // global node so labels (0,1)/(1,0) still exist.
            local.insert(tail, 0);
        }
        for idx in 0..self.adj.num_entities() {
            let e = EntityId(idx as u32);
            if e == head || e == tail {
                continue;
            }
            let dh = dist_h[idx];
            let dt = dist_t[idx];
            let keep = match self.mode {
                ExtractionMode::Intersection => dh != UNREACHED && dt != UNREACHED,
                ExtractionMode::Union => dh != UNREACHED || dt != UNREACHED,
            };
            if keep {
                local.insert(e, nodes.len() as u32);
                nodes.push(e);
            }
        }

        let dist_head: Vec<i32> = nodes.iter().map(|e| dist_h[e.index()]).collect();
        let dist_tail: Vec<i32> = nodes.iter().map(|e| dist_t[e.index()]).collect();

        // Induced directed edges, deduplicated via the Out orientation
        // (every stored triple appears exactly once as Out).
        let mut edges = Vec::new();
        for (li, &e) in nodes.iter().enumerate() {
            for n in self.adj.neighbors(e) {
                if n.orientation != crate::adjacency::Orientation::Out {
                    continue;
                }
                let triple = Triple::new(e, n.rel, n.entity);
                if Some(triple) == exclude {
                    continue;
                }
                if let Some(&lj) = local.get(&n.entity) {
                    edges.push(LocalEdge { src: li as u32, rel: n.rel, dst: lj });
                }
            }
        }

        Subgraph { nodes, edges, dist_head, dist_tail }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::TripleStore;

    fn t(h: u32, r: u32, ta: u32) -> Triple {
        Triple::from_raw(h, r, ta)
    }

    /// Two components: {0,1,2,3} chained and {4,5} chained — a DEKG-like
    /// layout where (0, r, 4) would be a bridging link.
    fn two_component_graph() -> (TripleStore, Adjacency) {
        let store = TripleStore::from_triples([t(0, 0, 1), t(1, 0, 2), t(2, 0, 3), t(4, 1, 5)]);
        let adj = Adjacency::from_store(&store, 6);
        (store, adj)
    }

    #[test]
    fn enclosing_link_intersection() {
        // Triangle 0-1-2 plus pendant 3.
        let store = TripleStore::from_triples([t(0, 0, 1), t(1, 0, 2), t(2, 0, 0), t(2, 0, 3)]);
        let adj = Adjacency::from_store(&store, 4);
        let ex = SubgraphExtractor::new(&adj, 1, ExtractionMode::Intersection);
        let sg = ex.extract(EntityId(0), EntityId(1), None);
        // 1-hop intersection around (0,1): node 2 is adjacent to both.
        assert_eq!(sg.nodes, vec![EntityId(0), EntityId(1), EntityId(2)]);
        assert!(!sg.is_disconnected());
        assert_eq!(sg.label(0), (0, 1));
        assert_eq!(sg.label(1), (1, 0));
        assert_eq!(sg.label(2), (1, 1));
    }

    #[test]
    fn union_keeps_one_sided_nodes() {
        let store = TripleStore::from_triples([t(0, 0, 1), t(1, 0, 2), t(2, 0, 0), t(2, 0, 3)]);
        let adj = Adjacency::from_store(&store, 4);
        let ex = SubgraphExtractor::new(&adj, 1, ExtractionMode::Union);
        let sg = ex.extract(EntityId(0), EntityId(1), None);
        // Node 3 is 1 hop from neither 0 nor 1? d(0,3)=2 (through 2), so
        // it is NOT within 1 hop of either endpoint: excluded.
        assert_eq!(sg.nodes.len(), 3);
        let ex2 = SubgraphExtractor::new(&adj, 2, ExtractionMode::Union);
        let sg2 = ex2.extract(EntityId(0), EntityId(1), None);
        assert!(sg2.nodes.contains(&EntityId(3)));
    }

    #[test]
    fn bridging_link_subgraph_is_disconnected() {
        let (_, adj) = two_component_graph();
        let ex = SubgraphExtractor::new(&adj, 2, ExtractionMode::Union);
        let sg = ex.extract(EntityId(0), EntityId(4), None);
        assert!(sg.is_disconnected());
        // Head side: 0,1,2 within 2 hops; tail side: 4,5.
        assert_eq!(sg.num_nodes(), 5);
        // The tail's dist-from-head is -1 and vice versa.
        assert_eq!(sg.label(1), (UNREACHED, 0));
        assert_eq!(sg.label(0), (0, UNREACHED));
    }

    #[test]
    fn bridging_link_intersection_collapses() {
        // GraIL-mode extraction on a bridging link keeps only endpoints.
        let (_, adj) = two_component_graph();
        let ex = SubgraphExtractor::new(&adj, 2, ExtractionMode::Intersection);
        let sg = ex.extract(EntityId(0), EntityId(4), None);
        assert_eq!(sg.num_nodes(), 2);
        assert_eq!(sg.num_edges(), 0);
    }

    #[test]
    fn target_edge_excluded() {
        let store = TripleStore::from_triples([t(0, 0, 1), t(1, 0, 2), t(2, 0, 0)]);
        let adj = Adjacency::from_store(&store, 3);
        let ex = SubgraphExtractor::new(&adj, 2, ExtractionMode::Union);
        let with = ex.extract(EntityId(0), EntityId(1), None);
        let without = ex.extract(EntityId(0), EntityId(1), Some(t(0, 0, 1)));
        assert_eq!(with.num_edges(), without.num_edges() + 1);
        assert!(!without.edges.iter().any(|e| e.src == 0 && e.dst == 1 && e.rel == RelationId(0)));
    }

    #[test]
    fn distances_avoid_opposite_endpoint() {
        // 0 - 1 - 2: from 0 with 1 as tail, node 2 must be unreachable
        // because the only path passes through the tail.
        let store = TripleStore::from_triples([t(0, 0, 1), t(1, 0, 2)]);
        let adj = Adjacency::from_store(&store, 3);
        let ex = SubgraphExtractor::new(&adj, 3, ExtractionMode::Union);
        let sg = ex.extract(EntityId(0), EntityId(1), None);
        let li = sg.nodes.iter().position(|&e| e == EntityId(2)).unwrap();
        assert_eq!(sg.dist_head[li], UNREACHED);
        assert_eq!(sg.dist_tail[li], 1);
    }

    #[test]
    fn edge_directions_preserved() {
        let store = TripleStore::from_triples([t(1, 3, 0)]);
        let adj = Adjacency::from_store(&store, 2);
        let ex = SubgraphExtractor::new(&adj, 1, ExtractionMode::Union);
        let sg = ex.extract(EntityId(0), EntityId(1), None);
        // local 0 = head = entity 0, local 1 = tail = entity 1; the edge
        // runs 1 -> 0 in global terms, so locally src=1, dst=0.
        assert_eq!(sg.edges, vec![LocalEdge { src: 1, rel: RelationId(3), dst: 0 }]);
    }

    #[test]
    fn isolated_endpoints_still_present() {
        let store = TripleStore::from_triples([t(0, 0, 1)]);
        let adj = Adjacency::from_store(&store, 4);
        let ex = SubgraphExtractor::new(&adj, 2, ExtractionMode::Union);
        let sg = ex.extract(EntityId(2), EntityId(3), None);
        assert_eq!(sg.num_nodes(), 2);
        assert_eq!(sg.num_edges(), 0);
        assert!(sg.is_disconnected());
    }

    #[test]
    #[should_panic(expected = "at least 1 hop")]
    fn zero_hops_rejected() {
        let (_, adj) = two_component_graph();
        SubgraphExtractor::new(&adj, 0, ExtractionMode::Union);
    }
}
