//! Enclosing-subgraph extraction around a candidate link.
//!
//! For a triple `(e_i, r_k, e_j)` GSM reasons over the subgraph induced
//! by the t-hop neighborhoods of the two endpoints. Two extraction
//! modes exist (Section IV-C2 of the paper):
//!
//! * [`ExtractionMode::Intersection`] — GraIL's rule: keep only nodes in
//!   `N_t(e_i) ∩ N_t(e_j)`, pruning any node with `d(i,u) > t` or
//!   `d(j,u) > t`. For a bridging link this intersection is *empty*
//!   apart from the endpoints — the "topological limitation".
//! * [`ExtractionMode::Union`] — the paper's improved labeling: keep
//!   `N_t(e_i) ∪ N_t(e_j)` and record `d(·,u) = -1` where the distance
//!   exceeds `t` or the node is unreachable. These one-sided nodes
//!   "simulate the disconnected nodes" that bridging links produce.
//!
//! Distances are computed with the opposite endpoint blocked, matching
//! the paper's `d(i,u)` = shortest path not passing through `e_j`.

use crate::adjacency::Adjacency;
use crate::bfs::{bounded_distances, sparse_bounded_distances, UNREACHED};
use crate::triple::Triple;
use crate::vocab::{EntityId, RelationId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::OnceLock;

/// Handles for the extraction metrics, registered once and bumped on
/// every [`SubgraphExtractor::extract`]. All additive — totals are
/// thread-count-invariant under `extract_batch`.
struct ExtractionObs {
    extractions: dekg_obs::metrics::Counter,
    disconnected: dekg_obs::metrics::Counter,
    nodes: dekg_obs::metrics::Histogram,
    edges: dekg_obs::metrics::Histogram,
}

fn extraction_obs() -> &'static ExtractionObs {
    static OBS: OnceLock<ExtractionObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let reg = dekg_obs::metrics::global();
        const SIZE_BOUNDS: &[u64] = &[2, 4, 8, 16, 32, 64, 128, 256, 512];
        ExtractionObs {
            extractions: reg.counter("dekg_kg_extractions_total"),
            disconnected: reg.counter("dekg_kg_extractions_disconnected_total"),
            nodes: reg.histogram("dekg_kg_subgraph_nodes", SIZE_BOUNDS),
            edges: reg.histogram("dekg_kg_subgraph_edges", SIZE_BOUNDS),
        }
    })
}

/// Node-retention policy for extraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtractionMode {
    /// GraIL: `N_t(h) ∩ N_t(t)` with both distances within the bound.
    Intersection,
    /// DEKG-ILP: `N_t(h) ∪ N_t(t)`; out-of-bound distances become −1.
    Union,
}

/// Which BFS/collection implementation an extractor runs on.
///
/// Both produce bit-identical [`Subgraph`]s (unit- and property-tested);
/// they differ only in cost. The dense backend is the original seed
/// implementation, kept as a correctness oracle and as the benchmark
/// baseline that `BENCH_perf.json` speedups are measured against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DistanceBackend {
    /// Visited-set BFS + neighborhood-sized collection: cost scales with
    /// the t-hop subgraph, not the whole graph. The default.
    #[default]
    Sparse,
    /// Dense `O(|E|)` distance vectors + full-entity scan per
    /// extraction: the seed implementation, retained as reference.
    DenseReference,
}

/// An edge of the extracted subgraph in local node indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalEdge {
    /// Local index of the head.
    pub src: u32,
    /// Relation of the original triple.
    pub rel: RelationId,
    /// Local index of the tail.
    pub dst: u32,
}

/// The enclosing subgraph around one candidate link.
///
/// Node 0 is always the head `e_i` and node 1 the tail `e_j`, matching
/// the unique labels `(0,1)` and `(1,0)` the paper assigns them. Edge
/// direction is preserved from the backing store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Subgraph {
    /// Global ids of the retained nodes; `nodes[0] = head`, `nodes[1] = tail`.
    pub nodes: Vec<EntityId>,
    /// Induced edges in local indices (target link excluded).
    pub edges: Vec<LocalEdge>,
    /// `d(head, u)` per local node, −1 when unreached/over-bound.
    pub dist_head: Vec<i32>,
    /// `d(tail, u)` per local node, −1 when unreached/over-bound.
    pub dist_tail: Vec<i32>,
}

impl Subgraph {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// True when no path (within the extraction bound) connects the two
    /// endpoints — the signature of a bridging link's subgraph.
    pub fn is_disconnected(&self) -> bool {
        // Head is connected to tail iff the tail's distance-from-head is
        // a real value (node 1 is the tail).
        self.dist_head[1] == UNREACHED
    }

    /// The paper's node label `(d(i,u), d(j,u))` for local node `u`.
    pub fn label(&self, u: usize) -> (i32, i32) {
        (self.dist_head[u], self.dist_tail[u])
    }
}

/// The fixed endpoint's truncated-BFS distance map, computed once per
/// ranking query and reused across candidates — see
/// [`SubgraphExtractor::cache_source`].
///
/// A ranking query `(h, r, ?)` extracts one subgraph per candidate
/// tail, and each extraction runs BFS from `h` with the *candidate*
/// blocked. This cache stores the **unblocked** BFS from the fixed
/// endpoint. Blocking a node only changes a BFS when that node is
/// expanded, and `bounded_distances`/`sparse_bounded_distances` check
/// the hop bound *before* the block check — so the cached (unblocked)
/// run is identical to the blocked run, traversal order included,
/// whenever the blocked candidate
///
/// * is the source itself (the block is a no-op by definition),
/// * was never reached by the unblocked BFS, or
/// * was reached only at the hop bound (never expanded either way).
///
/// In a GraIL-style protocol the vast majority of sampled candidates
/// fall outside the fixed endpoint's t-hop neighborhood, so hit rates
/// are high (`dekg_eval_bfs_cache_hits_total` tracks them). On a miss
/// the extractor simply runs the blocked BFS fresh; either way the
/// resulting subgraph is bit-identical to [`SubgraphExtractor::extract`].
#[derive(Debug, Clone)]
pub struct QueryExtractionCache {
    source: EntityId,
    hops: u32,
    /// Unblocked `(node, distance)` list in BFS discovery order.
    sparse: Vec<(EntityId, i32)>,
    /// The same distances keyed for the O(1) reuse test.
    dist: HashMap<EntityId, i32>,
}

impl QueryExtractionCache {
    /// The fixed endpoint this cache was built on.
    pub fn source(&self) -> EntityId {
        self.source
    }

    /// True when the cached unblocked BFS equals the BFS that blocks
    /// `other` (see the type-level docs for why these cases suffice).
    fn reusable_against(&self, other: EntityId) -> bool {
        if other == self.source {
            return true;
        }
        match self.dist.get(&other) {
            None => true,
            Some(&d) => d as u32 >= self.hops,
        }
    }
}

/// Thread-local scratch for the sparse collection step: generation-
/// stamped distance and local-index arrays replacing per-call hash
/// maps. A generation bump is an O(1) reset, so steady-state extraction
/// allocates only the output `Subgraph`. Lookups are exact, so the
/// produced subgraphs are identical to the map-based implementation.
#[derive(Debug, Default)]
struct CollectScratch {
    /// Head-side distances; `dist_h[i]` valid iff `stamp_h[i] == gen`.
    stamp_h: Vec<u32>,
    dist_h: Vec<i32>,
    /// Tail-side distances.
    stamp_t: Vec<u32>,
    dist_t: Vec<i32>,
    /// Global-id → local-index map over the retained nodes.
    stamp_l: Vec<u32>,
    local: Vec<u32>,
    gen: u32,
}

impl CollectScratch {
    fn begin(&mut self, num_entities: usize) {
        if self.stamp_h.len() < num_entities {
            self.stamp_h.resize(num_entities, 0);
            self.dist_h.resize(num_entities, 0);
            self.stamp_t.resize(num_entities, 0);
            self.dist_t.resize(num_entities, 0);
            self.stamp_l.resize(num_entities, 0);
            self.local.resize(num_entities, 0);
        }
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            self.stamp_h.fill(0);
            self.stamp_t.fill(0);
            self.stamp_l.fill(0);
            self.gen = 1;
        }
    }
}

/// Extractor bound to one graph (store + adjacency).
///
/// ```
/// use dekg_kg::{Adjacency, EntityId, ExtractionMode, SubgraphExtractor, Triple, TripleStore};
///
/// // Two disconnected components: {0,1} and {2,3} — a miniature DEKG.
/// let store = TripleStore::from_triples([
///     Triple::from_raw(0, 0, 1),
///     Triple::from_raw(2, 0, 3),
/// ]);
/// let adj = Adjacency::from_store(&store, 4);
///
/// // Union extraction around the bridging pair (0, 2) keeps both
/// // sides; the subgraph is disconnected, which GSM's labeling handles.
/// let ex = SubgraphExtractor::new(&adj, 2, ExtractionMode::Union);
/// let sg = ex.extract(EntityId(0), EntityId(2), None);
/// assert!(sg.is_disconnected());
/// assert_eq!(sg.num_nodes(), 4);
///
/// // GraIL's intersection mode collapses to the endpoints — the
/// // "topological limitation".
/// let grail = SubgraphExtractor::new(&adj, 2, ExtractionMode::Intersection);
/// assert_eq!(grail.extract(EntityId(0), EntityId(2), None).num_nodes(), 2);
/// ```
#[derive(Debug)]
pub struct SubgraphExtractor<'a> {
    adj: &'a Adjacency,
    hops: u32,
    mode: ExtractionMode,
    backend: DistanceBackend,
}

impl<'a> SubgraphExtractor<'a> {
    /// Creates an extractor performing `hops`-hop extraction with the
    /// default [`DistanceBackend::Sparse`] implementation.
    ///
    /// # Panics
    /// If `hops == 0`.
    pub fn new(adj: &'a Adjacency, hops: u32, mode: ExtractionMode) -> Self {
        assert!(hops > 0, "subgraph extraction needs at least 1 hop");
        SubgraphExtractor { adj, hops, mode, backend: DistanceBackend::default() }
    }

    /// Selects the BFS/collection implementation (builder-style).
    #[must_use]
    pub fn with_backend(mut self, backend: DistanceBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The hop bound `t`.
    pub fn hops(&self) -> u32 {
        self.hops
    }

    /// The retention mode.
    pub fn mode(&self) -> ExtractionMode {
        self.mode
    }

    /// The active BFS/collection implementation.
    pub fn backend(&self) -> DistanceBackend {
        self.backend
    }

    /// Extracts the enclosing subgraph around `(head, ·, tail)`.
    ///
    /// `exclude` is removed from the induced edge set — pass the target
    /// triple during training so the model cannot read the answer off
    /// the graph. Both endpoints are always retained, even when
    /// completely isolated (the bridging-link case).
    pub fn extract(&self, head: EntityId, tail: EntityId, exclude: Option<Triple>) -> Subgraph {
        let _span = dekg_obs::span!("extract_subgraph");
        let sg = match self.backend {
            DistanceBackend::Sparse => self.extract_sparse(head, tail, exclude),
            DistanceBackend::DenseReference => self.extract_dense(head, tail, exclude),
        };
        let obs = extraction_obs();
        obs.extractions.inc();
        if sg.is_disconnected() {
            obs.disconnected.inc();
        }
        obs.nodes.observe(sg.num_nodes() as u64);
        obs.edges.observe(sg.num_edges() as u64);
        sg
    }

    /// Extracts subgraphs for many links in parallel.
    ///
    /// Fan-out uses the ambient `rayon` thread count (see
    /// [`rayon::ThreadPool::install`]); extraction is read-only over the
    /// shared adjacency and results come back in input order, so the
    /// output is identical to calling [`Self::extract`] in a serial
    /// loop — at any thread count. Small batches, and any batch when
    /// only one worker is available, skip the fork-join machinery and
    /// run the serial loop directly: splitting a handful of BFS calls
    /// across workers costs more than it saves.
    pub fn extract_batch(&self, links: &[(EntityId, EntityId, Option<Triple>)]) -> Vec<Subgraph> {
        use rayon::prelude::*;
        const MIN_PARALLEL_LINKS: usize = 32;
        if links.len() < MIN_PARALLEL_LINKS || rayon::current_num_threads() <= 1 {
            return links
                .iter()
                .map(|&(head, tail, exclude)| self.extract(head, tail, exclude))
                .collect();
        }
        links.par_iter().map(|&(head, tail, exclude)| self.extract(head, tail, exclude)).collect()
    }

    /// Precomputes the truncated-BFS distance map of one *fixed*
    /// endpoint so it can be reused across every candidate of a ranking
    /// query — see [`QueryExtractionCache`] for the reuse condition.
    pub fn cache_source(&self, source: EntityId) -> QueryExtractionCache {
        let sparse = sparse_bounded_distances(self.adj, source, self.hops, None);
        let dist: HashMap<EntityId, i32> = sparse.iter().copied().collect();
        QueryExtractionCache { source, hops: self.hops, sparse, dist }
    }

    /// Extracts the enclosing subgraph around `(head, ·, tail)` reusing
    /// `cache` for whichever endpoint it was built on. Returns the
    /// subgraph and whether the cached BFS was reusable (`false` means a
    /// fresh blocked BFS ran for the cached side too).
    ///
    /// Output is bit-identical to [`Self::extract`] for the same
    /// arguments (see [`QueryExtractionCache`] for why), and the same
    /// extraction metrics are recorded.
    ///
    /// # Panics
    /// If `cache` was built by a different extractor configuration
    /// (hop bound mismatch) or on neither endpoint.
    pub fn extract_with_cached_source(
        &self,
        cache: &QueryExtractionCache,
        head: EntityId,
        tail: EntityId,
        exclude: Option<Triple>,
    ) -> (Subgraph, bool) {
        let _span = dekg_obs::span!("extract_subgraph");
        assert_eq!(cache.hops, self.hops, "cache hop bound mismatch");
        assert!(cache.source == head || cache.source == tail, "cache source is neither endpoint");
        // The varying endpoint is the one blocked in the cached side's
        // BFS; the cached (unblocked) run is reusable iff blocking that
        // node would not have changed the traversal.
        let (hit, sparse_h, sparse_t);
        if cache.source == head {
            hit = cache.reusable_against(tail);
            sparse_h = if hit {
                cache.sparse.clone()
            } else {
                sparse_bounded_distances(self.adj, head, self.hops, Some(tail))
            };
            sparse_t = sparse_bounded_distances(self.adj, tail, self.hops, Some(head));
        } else {
            hit = cache.reusable_against(head);
            sparse_h = sparse_bounded_distances(self.adj, head, self.hops, Some(tail));
            sparse_t = if hit {
                cache.sparse.clone()
            } else {
                sparse_bounded_distances(self.adj, tail, self.hops, Some(head))
            };
        }
        let sg = self.collect_sparse(head, tail, &sparse_h, &sparse_t, exclude);
        let obs = extraction_obs();
        obs.extractions.inc();
        if sg.is_disconnected() {
            obs.disconnected.inc();
        }
        obs.nodes.observe(sg.num_nodes() as u64);
        obs.edges.observe(sg.num_edges() as u64);
        (sg, hit)
    }

    /// Seed implementation: dense distance vectors plus a scan over
    /// every entity in the graph. `O(|E|)` per call regardless of how
    /// small the enclosing subgraph is.
    fn extract_dense(&self, head: EntityId, tail: EntityId, exclude: Option<Triple>) -> Subgraph {
        let dist_h = bounded_distances(self.adj, head, self.hops, Some(tail));
        let dist_t = bounded_distances(self.adj, tail, self.hops, Some(head));

        // Collect retained nodes: endpoints first, then the rest in
        // ascending global id for determinism.
        let mut nodes: Vec<EntityId> = vec![head, tail];
        let mut local = self.endpoint_locals(head, tail);
        for idx in 0..self.adj.num_entities() {
            let e = EntityId(idx as u32);
            if e == head || e == tail {
                continue;
            }
            let dh = dist_h[idx];
            let dt = dist_t[idx];
            let keep = match self.mode {
                ExtractionMode::Intersection => dh != UNREACHED && dt != UNREACHED,
                ExtractionMode::Union => dh != UNREACHED || dt != UNREACHED,
            };
            if keep {
                local.insert(e, nodes.len() as u32);
                nodes.push(e);
            }
        }

        let dist_head: Vec<i32> = nodes.iter().map(|e| dist_h[e.index()]).collect();
        let dist_tail: Vec<i32> = nodes.iter().map(|e| dist_t[e.index()]).collect();
        let edges = self.induce_edges(&nodes, &local, exclude);
        Subgraph { nodes, edges, dist_head, dist_tail }
    }

    /// Sparse implementation: visited-set BFS plus collection over the
    /// union of the two neighborhoods. Cost scales with the extracted
    /// subgraph. Produces output bit-identical to
    /// [`Self::extract_dense`]: BFS distances are unique per node, and
    /// non-endpoint nodes are sorted into the same ascending-global-id
    /// order the dense entity scan yields.
    fn extract_sparse(&self, head: EntityId, tail: EntityId, exclude: Option<Triple>) -> Subgraph {
        let sparse_h = sparse_bounded_distances(self.adj, head, self.hops, Some(tail));
        let sparse_t = sparse_bounded_distances(self.adj, tail, self.hops, Some(head));
        self.collect_sparse(head, tail, &sparse_h, &sparse_t, exclude)
    }

    /// Shared collection step of the sparse path: node union (or
    /// intersection), canonical ordering, labels and induced edges from
    /// the two sides' `(node, distance)` lists. Non-endpoint nodes are
    /// sorted into ascending global id, so the result does not depend
    /// on the discovery order of the input lists — which is what lets
    /// [`Self::extract_with_cached_source`] substitute a cached BFS.
    fn collect_sparse(
        &self,
        head: EntityId,
        tail: EntityId,
        sparse_h: &[(EntityId, i32)],
        sparse_t: &[(EntityId, i32)],
        exclude: Option<Triple>,
    ) -> Subgraph {
        thread_local! {
            static SCRATCH: std::cell::RefCell<CollectScratch> =
                std::cell::RefCell::new(CollectScratch::default());
        }
        SCRATCH.with(|s| {
            let mut s = s.borrow_mut();
            let c = &mut *s;
            c.begin(self.adj.num_entities());
            for &(e, d) in sparse_h {
                c.stamp_h[e.index()] = c.gen;
                c.dist_h[e.index()] = d;
            }
            for &(e, d) in sparse_t {
                c.stamp_t[e.index()] = c.gen;
                c.dist_t[e.index()] = d;
            }

            let mut rest: Vec<EntityId> = match self.mode {
                ExtractionMode::Intersection => sparse_h
                    .iter()
                    .map(|&(e, _)| e)
                    .filter(|e| c.stamp_t[e.index()] == c.gen && *e != head && *e != tail)
                    .collect(),
                ExtractionMode::Union => {
                    let mut both: Vec<EntityId> = sparse_h
                        .iter()
                        .chain(sparse_t.iter())
                        .map(|&(e, _)| e)
                        .filter(|e| *e != head && *e != tail)
                        .collect();
                    both.sort_unstable();
                    both.dedup();
                    both
                }
            };
            rest.sort_unstable();

            // Endpoint local slots (a degenerate self-link aliases both
            // slots to local 0, as in `endpoint_locals`), then the rest
            // in ascending global id.
            let mut nodes: Vec<EntityId> = vec![head, tail];
            c.stamp_l[head.index()] = c.gen;
            c.local[head.index()] = 0;
            c.stamp_l[tail.index()] = c.gen;
            c.local[tail.index()] = if tail != head { 1 } else { 0 };
            for e in rest {
                c.stamp_l[e.index()] = c.gen;
                c.local[e.index()] = nodes.len() as u32;
                nodes.push(e);
            }

            let dist_head: Vec<i32> = nodes
                .iter()
                .map(
                    |e| if c.stamp_h[e.index()] == c.gen { c.dist_h[e.index()] } else { UNREACHED },
                )
                .collect();
            let dist_tail: Vec<i32> = nodes
                .iter()
                .map(
                    |e| if c.stamp_t[e.index()] == c.gen { c.dist_t[e.index()] } else { UNREACHED },
                )
                .collect();

            // Induced edges, deduplicated via the Out orientation —
            // identical iteration order to `induce_edges`, with the
            // membership test on the stamped local map.
            let mut edges = Vec::new();
            for (li, &e) in nodes.iter().enumerate() {
                for n in self.adj.neighbors(e) {
                    if n.orientation != crate::adjacency::Orientation::Out {
                        continue;
                    }
                    let triple = Triple::new(e, n.rel, n.entity);
                    if Some(triple) == exclude {
                        continue;
                    }
                    if c.stamp_l[n.entity.index()] == c.gen {
                        edges.push(LocalEdge {
                            src: li as u32,
                            rel: n.rel,
                            dst: c.local[n.entity.index()],
                        });
                    }
                }
            }
            Subgraph { nodes, edges, dist_head, dist_tail }
        })
    }

    /// Local-index slots for the two endpoints (dense reference path —
    /// the sparse path stamps the same slots into [`CollectScratch`]).
    /// A degenerate self-link
    /// keeps two local slots aliasing one global node so labels
    /// (0,1)/(1,0) still exist.
    fn endpoint_locals(&self, head: EntityId, tail: EntityId) -> HashMap<EntityId, u32> {
        let mut local = HashMap::new();
        local.insert(head, 0);
        if tail != head {
            local.insert(tail, 1);
        } else {
            local.insert(tail, 0);
        }
        local
    }

    /// Induced directed edges over `nodes`, deduplicated via the Out
    /// orientation (every stored triple appears exactly once as Out).
    fn induce_edges(
        &self,
        nodes: &[EntityId],
        local: &HashMap<EntityId, u32>,
        exclude: Option<Triple>,
    ) -> Vec<LocalEdge> {
        let mut edges = Vec::new();
        for (li, &e) in nodes.iter().enumerate() {
            for n in self.adj.neighbors(e) {
                if n.orientation != crate::adjacency::Orientation::Out {
                    continue;
                }
                let triple = Triple::new(e, n.rel, n.entity);
                if Some(triple) == exclude {
                    continue;
                }
                if let Some(&lj) = local.get(&n.entity) {
                    edges.push(LocalEdge { src: li as u32, rel: n.rel, dst: lj });
                }
            }
        }
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::TripleStore;

    fn t(h: u32, r: u32, ta: u32) -> Triple {
        Triple::from_raw(h, r, ta)
    }

    /// Two components: {0,1,2,3} chained and {4,5} chained — a DEKG-like
    /// layout where (0, r, 4) would be a bridging link.
    fn two_component_graph() -> (TripleStore, Adjacency) {
        let store = TripleStore::from_triples([t(0, 0, 1), t(1, 0, 2), t(2, 0, 3), t(4, 1, 5)]);
        let adj = Adjacency::from_store(&store, 6);
        (store, adj)
    }

    #[test]
    fn enclosing_link_intersection() {
        // Triangle 0-1-2 plus pendant 3.
        let store = TripleStore::from_triples([t(0, 0, 1), t(1, 0, 2), t(2, 0, 0), t(2, 0, 3)]);
        let adj = Adjacency::from_store(&store, 4);
        let ex = SubgraphExtractor::new(&adj, 1, ExtractionMode::Intersection);
        let sg = ex.extract(EntityId(0), EntityId(1), None);
        // 1-hop intersection around (0,1): node 2 is adjacent to both.
        assert_eq!(sg.nodes, vec![EntityId(0), EntityId(1), EntityId(2)]);
        assert!(!sg.is_disconnected());
        assert_eq!(sg.label(0), (0, 1));
        assert_eq!(sg.label(1), (1, 0));
        assert_eq!(sg.label(2), (1, 1));
    }

    #[test]
    fn union_keeps_one_sided_nodes() {
        let store = TripleStore::from_triples([t(0, 0, 1), t(1, 0, 2), t(2, 0, 0), t(2, 0, 3)]);
        let adj = Adjacency::from_store(&store, 4);
        let ex = SubgraphExtractor::new(&adj, 1, ExtractionMode::Union);
        let sg = ex.extract(EntityId(0), EntityId(1), None);
        // Node 3 is 1 hop from neither 0 nor 1? d(0,3)=2 (through 2), so
        // it is NOT within 1 hop of either endpoint: excluded.
        assert_eq!(sg.nodes.len(), 3);
        let ex2 = SubgraphExtractor::new(&adj, 2, ExtractionMode::Union);
        let sg2 = ex2.extract(EntityId(0), EntityId(1), None);
        assert!(sg2.nodes.contains(&EntityId(3)));
    }

    #[test]
    fn bridging_link_subgraph_is_disconnected() {
        let (_, adj) = two_component_graph();
        let ex = SubgraphExtractor::new(&adj, 2, ExtractionMode::Union);
        let sg = ex.extract(EntityId(0), EntityId(4), None);
        assert!(sg.is_disconnected());
        // Head side: 0,1,2 within 2 hops; tail side: 4,5.
        assert_eq!(sg.num_nodes(), 5);
        // The tail's dist-from-head is -1 and vice versa.
        assert_eq!(sg.label(1), (UNREACHED, 0));
        assert_eq!(sg.label(0), (0, UNREACHED));
    }

    #[test]
    fn bridging_link_intersection_collapses() {
        // GraIL-mode extraction on a bridging link keeps only endpoints.
        let (_, adj) = two_component_graph();
        let ex = SubgraphExtractor::new(&adj, 2, ExtractionMode::Intersection);
        let sg = ex.extract(EntityId(0), EntityId(4), None);
        assert_eq!(sg.num_nodes(), 2);
        assert_eq!(sg.num_edges(), 0);
    }

    #[test]
    fn target_edge_excluded() {
        let store = TripleStore::from_triples([t(0, 0, 1), t(1, 0, 2), t(2, 0, 0)]);
        let adj = Adjacency::from_store(&store, 3);
        let ex = SubgraphExtractor::new(&adj, 2, ExtractionMode::Union);
        let with = ex.extract(EntityId(0), EntityId(1), None);
        let without = ex.extract(EntityId(0), EntityId(1), Some(t(0, 0, 1)));
        assert_eq!(with.num_edges(), without.num_edges() + 1);
        assert!(!without.edges.iter().any(|e| e.src == 0 && e.dst == 1 && e.rel == RelationId(0)));
    }

    #[test]
    fn distances_avoid_opposite_endpoint() {
        // 0 - 1 - 2: from 0 with 1 as tail, node 2 must be unreachable
        // because the only path passes through the tail.
        let store = TripleStore::from_triples([t(0, 0, 1), t(1, 0, 2)]);
        let adj = Adjacency::from_store(&store, 3);
        let ex = SubgraphExtractor::new(&adj, 3, ExtractionMode::Union);
        let sg = ex.extract(EntityId(0), EntityId(1), None);
        let li = sg.nodes.iter().position(|&e| e == EntityId(2)).unwrap();
        assert_eq!(sg.dist_head[li], UNREACHED);
        assert_eq!(sg.dist_tail[li], 1);
    }

    #[test]
    fn edge_directions_preserved() {
        let store = TripleStore::from_triples([t(1, 3, 0)]);
        let adj = Adjacency::from_store(&store, 2);
        let ex = SubgraphExtractor::new(&adj, 1, ExtractionMode::Union);
        let sg = ex.extract(EntityId(0), EntityId(1), None);
        // local 0 = head = entity 0, local 1 = tail = entity 1; the edge
        // runs 1 -> 0 in global terms, so locally src=1, dst=0.
        assert_eq!(sg.edges, vec![LocalEdge { src: 1, rel: RelationId(3), dst: 0 }]);
    }

    #[test]
    fn isolated_endpoints_still_present() {
        let store = TripleStore::from_triples([t(0, 0, 1)]);
        let adj = Adjacency::from_store(&store, 4);
        let ex = SubgraphExtractor::new(&adj, 2, ExtractionMode::Union);
        let sg = ex.extract(EntityId(2), EntityId(3), None);
        assert_eq!(sg.num_nodes(), 2);
        assert_eq!(sg.num_edges(), 0);
        assert!(sg.is_disconnected());
    }

    /// Both backends must agree bit-for-bit on every (head, tail, mode,
    /// hops, exclude) combination over a given adjacency.
    fn assert_backends_agree(adj: &Adjacency, num_entities: u32) {
        for mode in [ExtractionMode::Intersection, ExtractionMode::Union] {
            for hops in 1..4 {
                let sparse = SubgraphExtractor::new(adj, hops, mode);
                let dense = SubgraphExtractor::new(adj, hops, mode)
                    .with_backend(DistanceBackend::DenseReference);
                for h in 0..num_entities {
                    for ta in 0..num_entities {
                        let (head, tail) = (EntityId(h), EntityId(ta));
                        for exclude in [None, Some(Triple::new(head, RelationId(0), tail))] {
                            assert_eq!(
                                sparse.extract(head, tail, exclude),
                                dense.extract(head, tail, exclude),
                                "mode={mode:?} hops={hops} head={h} tail={ta} \
                                 exclude={exclude:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn sparse_backend_matches_dense_reference() {
        let (_, adj) = two_component_graph();
        assert_backends_agree(&adj, 6);
        // Triangle + pendant, including self-loop-ish degenerate pairs.
        let store = TripleStore::from_triples([t(0, 0, 1), t(1, 0, 2), t(2, 0, 0), t(2, 1, 3)]);
        let adj = Adjacency::from_store(&store, 5);
        assert_backends_agree(&adj, 5);
    }

    #[test]
    fn extract_batch_matches_serial_loop() {
        let (_, adj) = two_component_graph();
        let ex = SubgraphExtractor::new(&adj, 2, ExtractionMode::Union);
        let links: Vec<(EntityId, EntityId, Option<Triple>)> = (0..6u32)
            .flat_map(|h| (0..6u32).map(move |ta| (EntityId(h), EntityId(ta), None)))
            .collect();
        let serial: Vec<Subgraph> =
            links.iter().map(|&(h, ta, ex2)| ex.extract(h, ta, ex2)).collect();
        let pool = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let batch = pool.install(|| ex.extract_batch(&links));
        assert_eq!(batch, serial);
    }

    #[test]
    #[should_panic(expected = "at least 1 hop")]
    fn zero_hops_rejected() {
        let (_, adj) = two_component_graph();
        SubgraphExtractor::new(&adj, 0, ExtractionMode::Union);
    }

    /// Cached-source extraction must be bit-identical to the plain path
    /// for every (head, tail) pair, whether the cache hits or misses,
    /// with the cache on either endpoint.
    #[test]
    fn cached_source_extraction_matches_plain() {
        let stores = [
            two_component_graph().0,
            // Triangle + pendant: dense enough that many candidates sit
            // inside the fixed endpoint's neighborhood (cache misses).
            TripleStore::from_triples([t(0, 0, 1), t(1, 0, 2), t(2, 0, 0), t(2, 1, 3)]),
        ];
        for store in &stores {
            let adj = Adjacency::from_store(store, 6);
            for hops in 1..4 {
                let ex = SubgraphExtractor::new(&adj, hops, ExtractionMode::Union);
                for fixed in 0..6u32 {
                    let cache = ex.cache_source(EntityId(fixed));
                    for other in 0..6u32 {
                        // Cache on the head side…
                        let (sg, _) = ex.extract_with_cached_source(
                            &cache,
                            EntityId(fixed),
                            EntityId(other),
                            None,
                        );
                        assert_eq!(sg, ex.extract(EntityId(fixed), EntityId(other), None));
                        // …and on the tail side.
                        let (sg, _) = ex.extract_with_cached_source(
                            &cache,
                            EntityId(other),
                            EntityId(fixed),
                            None,
                        );
                        assert_eq!(sg, ex.extract(EntityId(other), EntityId(fixed), None));
                    }
                }
            }
        }
    }

    #[test]
    fn cache_hits_when_candidate_is_far() {
        let (_, adj) = two_component_graph();
        let ex = SubgraphExtractor::new(&adj, 2, ExtractionMode::Union);
        let cache = ex.cache_source(EntityId(0));
        // Node 4 is in the other component — never reached → hit.
        let (_, hit) = ex.extract_with_cached_source(&cache, EntityId(0), EntityId(4), None);
        assert!(hit);
        // Node 1 is one hop away and would be expanded → miss.
        let (_, hit) = ex.extract_with_cached_source(&cache, EntityId(0), EntityId(1), None);
        assert!(!hit);
        // Node 2 sits exactly at the hop bound — reached but never
        // expanded, so blocking it changes nothing → hit.
        let (_, hit) = ex.extract_with_cached_source(&cache, EntityId(0), EntityId(2), None);
        assert!(hit);
        // The source itself: blocking the start is a no-op → hit.
        let (_, hit) = ex.extract_with_cached_source(&cache, EntityId(0), EntityId(0), None);
        assert!(hit);
    }

    #[test]
    fn small_extract_batch_takes_serial_path() {
        // Below the parallel threshold the batch must still match the
        // serial loop exactly (it *is* the serial loop).
        let (_, adj) = two_component_graph();
        let ex = SubgraphExtractor::new(&adj, 2, ExtractionMode::Union);
        let links = vec![(EntityId(0), EntityId(4), None), (EntityId(1), EntityId(2), None)];
        let serial: Vec<Subgraph> =
            links.iter().map(|&(h, ta, ex2)| ex.extract(h, ta, ex2)).collect();
        assert_eq!(ex.extract_batch(&links), serial);
    }
}
