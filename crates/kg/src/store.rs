//! Triple storage with membership and per-entity/per-relation indexes.

use crate::triple::Triple;
use crate::vocab::{EntityId, RelationId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap, HashSet};

/// An append-only set of triples with secondary indexes.
///
/// The store deduplicates: inserting an existing triple is a no-op.
/// Indexes support the access paths the models need:
///
/// * `by_head` / `by_tail` — negative-sampling corruption checks and
///   relation-component tables,
/// * `by_relation` — RuleN's rule mining and dataset statistics,
/// * `contains` — filtered evaluation.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TripleStore {
    triples: Vec<Triple>,
    set: HashSet<Triple>,
    by_head: HashMap<EntityId, Vec<u32>>,
    by_tail: HashMap<EntityId, Vec<u32>>,
    by_relation: HashMap<RelationId, Vec<u32>>,
}

impl TripleStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a store from an iterator of triples (deduplicating).
    pub fn from_triples(triples: impl IntoIterator<Item = Triple>) -> Self {
        let mut store = Self::new();
        for t in triples {
            store.insert(t);
        }
        store
    }

    /// Inserts a triple. Returns `true` if it was new.
    pub fn insert(&mut self, t: Triple) -> bool {
        if !self.set.insert(t) {
            return false;
        }
        let idx = self.triples.len() as u32;
        self.triples.push(t);
        self.by_head.entry(t.head).or_default().push(idx);
        self.by_tail.entry(t.tail).or_default().push(idx);
        self.by_relation.entry(t.rel).or_default().push(idx);
        true
    }

    /// True when the exact triple is present.
    pub fn contains(&self, t: &Triple) -> bool {
        self.set.contains(t)
    }

    /// All triples in insertion order.
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// Number of stored triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Triples whose head is `e`.
    pub fn with_head(&self, e: EntityId) -> impl Iterator<Item = Triple> + '_ {
        self.by_head.get(&e).into_iter().flatten().map(|&i| self.triples[i as usize])
    }

    /// Triples whose tail is `e`.
    pub fn with_tail(&self, e: EntityId) -> impl Iterator<Item = Triple> + '_ {
        self.by_tail.get(&e).into_iter().flatten().map(|&i| self.triples[i as usize])
    }

    /// Triples touching `e` on either side (head triples first).
    pub fn touching(&self, e: EntityId) -> impl Iterator<Item = Triple> + '_ {
        self.with_head(e).chain(
            self.with_tail(e).filter(move |t| !t.is_loop()), // loops already yielded by with_head
        )
    }

    /// Triples with relation `r`.
    pub fn with_relation(&self, r: RelationId) -> impl Iterator<Item = Triple> + '_ {
        self.by_relation.get(&r).into_iter().flatten().map(|&i| self.triples[i as usize])
    }

    /// Degree of `e` counting both directions (loops count once).
    pub fn degree(&self, e: EntityId) -> usize {
        self.touching(e).count()
    }

    /// The set of entities that appear in at least one triple, in
    /// ascending id order (callers iterate this: order must be stable).
    pub fn entities(&self) -> BTreeSet<EntityId> {
        let mut out = BTreeSet::new();
        out.extend(self.by_head.keys().copied()); // lint: sorted-ok — keys drain into a BTreeSet, which re-sorts
        out.extend(self.by_tail.keys().copied()); // lint: sorted-ok — keys drain into a BTreeSet, which re-sorts
        out
    }

    /// The set of relations that appear in at least one triple, in
    /// ascending id order.
    pub fn relations(&self) -> BTreeSet<RelationId> {
        self.by_relation.keys().copied().collect() // lint: sorted-ok — keys drain into a BTreeSet, which re-sorts
    }

    /// Merges another store into this one.
    pub fn extend_from(&mut self, other: &TripleStore) {
        for &t in other.triples() {
            self.insert(t);
        }
    }
}

/// Union membership over several stores — the filtered evaluation
/// protocol needs "appears in train ∪ valid ∪ test" checks without
/// materializing the union.
#[derive(Debug, Clone, Copy)]
pub struct UnionView<'a> {
    stores: &'a [&'a TripleStore],
}

impl<'a> UnionView<'a> {
    /// Creates a view over the given stores.
    pub fn new(stores: &'a [&'a TripleStore]) -> Self {
        UnionView { stores }
    }

    /// True when any member store contains `t`.
    pub fn contains(&self, t: &Triple) -> bool {
        self.stores.iter().any(|s| s.contains(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(h: u32, r: u32, ta: u32) -> Triple {
        Triple::from_raw(h, r, ta)
    }

    #[test]
    fn insert_dedup() {
        let mut s = TripleStore::new();
        assert!(s.insert(t(0, 0, 1)));
        assert!(!s.insert(t(0, 0, 1)));
        assert_eq!(s.len(), 1);
        assert!(s.contains(&t(0, 0, 1)));
        assert!(!s.contains(&t(1, 0, 0)));
    }

    #[test]
    fn index_lookups() {
        let s = TripleStore::from_triples([t(0, 0, 1), t(0, 1, 2), t(2, 0, 0)]);
        assert_eq!(s.with_head(EntityId(0)).count(), 2);
        assert_eq!(s.with_tail(EntityId(0)).count(), 1);
        assert_eq!(s.with_relation(RelationId(0)).count(), 2);
        assert_eq!(s.degree(EntityId(0)), 3);
    }

    #[test]
    fn touching_counts_loops_once() {
        let s = TripleStore::from_triples([t(5, 0, 5), t(5, 1, 6)]);
        assert_eq!(s.touching(EntityId(5)).count(), 2);
        assert_eq!(s.degree(EntityId(5)), 2);
    }

    #[test]
    fn entity_and_relation_sets() {
        let s = TripleStore::from_triples([t(0, 0, 1), t(2, 2, 3)]);
        assert_eq!(s.entities().len(), 4);
        assert_eq!(s.relations().len(), 2);
    }

    #[test]
    fn union_view() {
        let a = TripleStore::from_triples([t(0, 0, 1)]);
        let b = TripleStore::from_triples([t(1, 0, 2)]);
        let stores = [&a, &b];
        let u = UnionView::new(&stores);
        assert!(u.contains(&t(0, 0, 1)));
        assert!(u.contains(&t(1, 0, 2)));
        assert!(!u.contains(&t(2, 0, 0)));
    }

    #[test]
    fn extend_from_merges() {
        let mut a = TripleStore::from_triples([t(0, 0, 1)]);
        let b = TripleStore::from_triples([t(0, 0, 1), t(1, 0, 2)]);
        a.extend_from(&b);
        assert_eq!(a.len(), 2);
    }
}
