//! Bounded breadth-first search over [`Adjacency`].

use crate::adjacency::Adjacency;
use crate::vocab::EntityId;
use std::cell::RefCell;
use std::collections::VecDeque;

/// Distance value for "unreached within the hop bound".
pub const UNREACHED: i32 = -1;

/// Computes hop distances from `start` up to `max_hops`, optionally
/// treating `blocked` as removed from the graph.
///
/// Returns a dense vector indexed by entity id: `d(start, u)` for nodes
/// reached within the bound, [`UNREACHED`] otherwise. The paper's node
/// labeling defines `d(i, u)` as the shortest path from the head that
/// avoids the tail (and vice versa), which `blocked` implements.
///
/// `start` itself gets distance 0 even when equal to `blocked` — the
/// endpoints of the target link are always labeled (0,·)/(·,0).
pub fn bounded_distances(
    adj: &Adjacency,
    start: EntityId,
    max_hops: u32,
    blocked: Option<EntityId>,
) -> Vec<i32> {
    let mut dist = vec![UNREACHED; adj.num_entities()];
    dist[start.index()] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        if du as u32 >= max_hops {
            continue;
        }
        if Some(u) == blocked && u != start {
            continue; // paths may end at the blocked node but not pass through it
        }
        for n in adj.neighbors(u) {
            let v = n.entity;
            if dist[v.index()] == UNREACHED {
                dist[v.index()] = du + 1;
                queue.push_back(v);
            }
        }
    }
    // Note: a blocked node may still be *reached* (labeling needs
    // d(i, j) for the opposite endpoint); it is just never expanded.
    dist
}

/// Sparse variant of [`bounded_distances`]: visits the same nodes with
/// the same semantics but returns only `(node, distance)` pairs for the
/// nodes actually reached, in BFS discovery order.
///
/// Cost is proportional to the size of the visited neighborhood instead
/// of `O(|E|)` for the dense distance vector, which is the difference
/// between per-extraction cost scaling with the whole graph and scaling
/// with the (much smaller) t-hop subgraph. BFS layer distances are
/// unique, so for every reached node the reported distance is identical
/// to the dense variant's — [`crate::subgraph::SubgraphExtractor`]
/// relies on this to make the two extraction backends bit-identical.
pub fn sparse_bounded_distances(
    adj: &Adjacency,
    start: EntityId,
    max_hops: u32,
    blocked: Option<EntityId>,
) -> Vec<(EntityId, i32)> {
    thread_local! {
        static SCRATCH: RefCell<SparseBfsScratch> = RefCell::new(SparseBfsScratch::default());
    }
    SCRATCH.with(|s| {
        sparse_bounded_distances_scratch(adj, start, max_hops, blocked, &mut s.borrow_mut())
    })
}

/// Reusable state for [`sparse_bounded_distances`]: a generation-stamped
/// visited/distance array plus the BFS queue. Stamping makes "reset"
/// O(1) — a generation bump invalidates every slot — so repeated
/// extractions allocate nothing and never pay an O(|E|) clear. Purely
/// an allocation strategy: lookups are exact, so results are identical
/// to a fresh map.
#[derive(Debug, Default)]
pub struct SparseBfsScratch {
    /// `dist[i]` is valid iff `stamp[i] == gen`.
    stamp: Vec<u32>,
    dist: Vec<i32>,
    gen: u32,
    queue: VecDeque<EntityId>,
}

impl SparseBfsScratch {
    fn begin(&mut self, num_entities: usize) {
        if self.stamp.len() < num_entities {
            self.stamp.resize(num_entities, 0);
            self.dist.resize(num_entities, 0);
        }
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            // Stamp wrap-around: old stamps could alias. Clear once
            // every 2^32 searches.
            self.stamp.fill(0);
            self.gen = 1;
        }
        self.queue.clear();
    }

    /// Marks `e` at distance `d`; returns false if already visited.
    fn visit(&mut self, e: EntityId, d: i32) -> bool {
        let i = e.index();
        if self.stamp[i] == self.gen {
            return false;
        }
        self.stamp[i] = self.gen;
        self.dist[i] = d;
        true
    }
}

/// [`sparse_bounded_distances`] with caller-provided scratch — same
/// visitation semantics and the same discovery-ordered output.
pub fn sparse_bounded_distances_scratch(
    adj: &Adjacency,
    start: EntityId,
    max_hops: u32,
    blocked: Option<EntityId>,
    scratch: &mut SparseBfsScratch,
) -> Vec<(EntityId, i32)> {
    scratch.begin(adj.num_entities());
    scratch.visit(start, 0);
    let mut order = vec![(start, 0)];
    scratch.queue.push_back(start);
    while let Some(u) = scratch.queue.pop_front() {
        let du = scratch.dist[u.index()];
        if du as u32 >= max_hops {
            continue;
        }
        if Some(u) == blocked && u != start {
            continue; // paths may end at the blocked node but not pass through it
        }
        for n in adj.neighbors(u) {
            let v = n.entity;
            if scratch.visit(v, du + 1) {
                order.push((v, du + 1));
                scratch.queue.push_back(v);
            }
        }
    }
    order
}

/// Nodes within `max_hops` of `start` (excluding paths through
/// `blocked`), i.e. the t-hop neighborhood `N_t(start)`.
pub fn neighborhood(
    adj: &Adjacency,
    start: EntityId,
    max_hops: u32,
    blocked: Option<EntityId>,
) -> Vec<EntityId> {
    bounded_distances(adj, start, max_hops, blocked)
        .iter()
        .enumerate()
        .filter(|(_, &d)| d != UNREACHED)
        .map(|(i, _)| EntityId(i as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::TripleStore;
    use crate::triple::Triple;

    fn line_graph(n: u32) -> Adjacency {
        // 0 - 1 - 2 - ... - (n-1)
        let store = TripleStore::from_triples((0..n - 1).map(|i| Triple::from_raw(i, 0, i + 1)));
        Adjacency::from_store(&store, n as usize)
    }

    #[test]
    fn distances_on_a_line() {
        let adj = line_graph(5);
        let d = bounded_distances(&adj, EntityId(0), 10, None);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn hop_bound_respected() {
        let adj = line_graph(5);
        let d = bounded_distances(&adj, EntityId(0), 2, None);
        assert_eq!(d, vec![0, 1, 2, UNREACHED, UNREACHED]);
    }

    #[test]
    fn blocked_node_cuts_paths() {
        // 0 - 1 - 2, blocking 1 makes 2 unreachable from 0, but 1 itself
        // is still *reached* at distance 1.
        let adj = line_graph(3);
        let d = bounded_distances(&adj, EntityId(0), 5, Some(EntityId(1)));
        assert_eq!(d, vec![0, 1, UNREACHED]);
    }

    #[test]
    fn blocked_with_alternate_path() {
        // 0 - 1 - 3 and 0 - 2 - 3: blocking 1 leaves d(0,3) = 2 via 2.
        let store = TripleStore::from_triples([
            Triple::from_raw(0, 0, 1),
            Triple::from_raw(1, 0, 3),
            Triple::from_raw(0, 0, 2),
            Triple::from_raw(2, 0, 3),
        ]);
        let adj = Adjacency::from_store(&store, 4);
        let d = bounded_distances(&adj, EntityId(0), 5, Some(EntityId(1)));
        assert_eq!(d[3], 2);
    }

    #[test]
    fn start_equals_blocked_still_expands() {
        let adj = line_graph(3);
        let d = bounded_distances(&adj, EntityId(0), 5, Some(EntityId(0)));
        assert_eq!(d, vec![0, 1, 2]);
    }

    #[test]
    fn direction_is_ignored() {
        // Edges all point *into* node 0; BFS still crosses them.
        let store =
            TripleStore::from_triples([Triple::from_raw(1, 0, 0), Triple::from_raw(2, 0, 1)]);
        let adj = Adjacency::from_store(&store, 3);
        let d = bounded_distances(&adj, EntityId(0), 5, None);
        assert_eq!(d, vec![0, 1, 2]);
    }

    #[test]
    fn neighborhood_collects_reached() {
        let adj = line_graph(5);
        let n = neighborhood(&adj, EntityId(2), 1, None);
        assert_eq!(n, vec![EntityId(1), EntityId(2), EntityId(3)]);
    }

    /// Sparse and dense BFS must report identical distances for every
    /// reached node, and the sparse result must cover exactly the
    /// reached set.
    fn assert_sparse_matches_dense(
        adj: &Adjacency,
        start: EntityId,
        max_hops: u32,
        blocked: Option<EntityId>,
    ) {
        let dense = bounded_distances(adj, start, max_hops, blocked);
        let sparse = sparse_bounded_distances(adj, start, max_hops, blocked);
        let reached = dense.iter().filter(|&&d| d != UNREACHED).count();
        assert_eq!(sparse.len(), reached);
        for &(e, d) in &sparse {
            assert_eq!(dense[e.index()], d, "distance mismatch at {e:?}");
        }
    }

    #[test]
    fn sparse_matches_dense_on_line() {
        let adj = line_graph(6);
        for hops in 1..5 {
            assert_sparse_matches_dense(&adj, EntityId(0), hops, None);
            assert_sparse_matches_dense(&adj, EntityId(2), hops, Some(EntityId(4)));
            assert_sparse_matches_dense(&adj, EntityId(3), hops, Some(EntityId(3)));
        }
    }

    #[test]
    fn sparse_matches_dense_with_branching() {
        let store = TripleStore::from_triples([
            Triple::from_raw(0, 0, 1),
            Triple::from_raw(1, 0, 3),
            Triple::from_raw(0, 0, 2),
            Triple::from_raw(2, 0, 3),
            Triple::from_raw(3, 1, 4),
            Triple::from_raw(5, 1, 6),
        ]);
        let adj = Adjacency::from_store(&store, 7);
        for start in 0..7 {
            for hops in 1..4 {
                assert_sparse_matches_dense(&adj, EntityId(start), hops, None);
                assert_sparse_matches_dense(&adj, EntityId(start), hops, Some(EntityId(3)));
            }
        }
    }

    #[test]
    fn sparse_discovery_order_is_layered() {
        let adj = line_graph(5);
        let sparse = sparse_bounded_distances(&adj, EntityId(0), 10, None);
        let dists: Vec<i32> = sparse.iter().map(|&(_, d)| d).collect();
        let mut sorted = dists.clone();
        sorted.sort_unstable();
        assert_eq!(dists, sorted, "BFS order must be non-decreasing in distance");
    }

    #[test]
    fn disconnected_components_unreached() {
        // 0 - 1 and 2 - 3 in separate components (the DEKG scenario).
        let store =
            TripleStore::from_triples([Triple::from_raw(0, 0, 1), Triple::from_raw(2, 0, 3)]);
        let adj = Adjacency::from_store(&store, 4);
        let d = bounded_distances(&adj, EntityId(0), 10, None);
        assert_eq!(d[2], UNREACHED);
        assert_eq!(d[3], UNREACHED);
    }
}
