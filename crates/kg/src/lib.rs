#![warn(missing_docs)]

//! # dekg-kg
//!
//! Knowledge-graph substrate for the DEKG-ILP reproduction: vocabularies,
//! triple storage with secondary indexes, undirected adjacency, bounded
//! BFS, enclosing-subgraph extraction (both GraIL-style pruning and the
//! paper's improved union mode), and relation-component tables.
//!
//! The paper's setting (Definitions 1–4):
//!
//! * an **original KG** `G(E, R)` of training triples,
//! * a **disconnected emerging KG** `G'(E', R)` over unseen entities
//!   `E' ∩ E = ∅` sharing the relation set `R`,
//! * **enclosing links** entirely inside `G'`, and
//! * **bridging links** with one endpoint in each graph.
//!
//! Everything here is entity-id based; [`Vocab`] maps external names to
//! dense ids so adjacency and distance buffers can be flat vectors.

pub mod adjacency;
pub mod batch;
pub mod bfs;
pub mod component_table;
pub mod graph;
pub mod io;
pub mod paths;
pub mod store;
pub mod subgraph;
pub mod triple;
pub mod vocab;

pub use adjacency::Adjacency;
pub use batch::{BatchedSubgraphs, RelEdgeGroup};
pub use component_table::{ComponentRow, ComponentTable};
pub use graph::KnowledgeGraph;
pub use store::TripleStore;
pub use subgraph::{
    DistanceBackend, ExtractionMode, QueryExtractionCache, Subgraph, SubgraphExtractor,
};
pub use triple::Triple;
pub use vocab::{EntityId, RelationId, Vocab};
