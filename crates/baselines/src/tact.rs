//! TACT (Chen et al., AAAI 2021) — topology-aware correlations between
//! relations for inductive link prediction.
//!
//! TACT augments GraIL-style subgraph reasoning with a *relational
//! correlation network*: relations incident to the target link's
//! endpoints are grouped into six topological interaction patterns
//! (head-out, head-in, tail-out, tail-in, parallel, inverse), each
//! pattern aggregates the embeddings of its relations weighted by a
//! learned per-pair correlation matrix, and a per-pattern transform
//! produces a correlation embedding `c_r` that joins the score readout:
//!
//! ```text
//! φ = [ h_G ⊕ h_i ⊕ h_j ⊕ r ⊕ c_r ] · W
//! ```
//!
//! The learned `|R|²` correlation matrix and the six `d×d` transforms
//! give TACT its characteristically larger parameter budget (Fig. 7).

use crate::embed_common::ShimRng;
use crate::subgraph_common::{train_subgraph_model, SubgraphModelConfig};
use dekg_core::{InferenceGraph, LinkPredictor, TrainReport, TrainableModel};
use dekg_datasets::DekgDataset;
use dekg_gnn::{LabelingMode, SubgraphEncoder, SubgraphEncoderConfig};
use dekg_kg::{ExtractionMode, RelationId, Subgraph, SubgraphExtractor, Triple};
use dekg_tensor::{init, Graph, ParamId, ParamStore, Tensor, Var};
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The six topological interaction patterns of TACT.
const NUM_PATTERNS: usize = 6;

/// The TACT baseline.
#[derive(Debug)]
pub struct Tact {
    cfg: SubgraphModelConfig,
    params: ParamStore,
    encoder: SubgraphEncoder,
    num_relations: usize,
    /// Relation embeddings `[R, d]`.
    rel_emb: ParamId,
    /// Learned relation-correlation matrix `[R, R]`.
    correlation: ParamId,
    /// Per-pattern transforms, stored as `[6·d, d]`.
    pattern_w: ParamId,
    /// Readout `[5d, 1]`.
    w_out: ParamId,
}

impl Tact {
    /// Allocates the model for `dataset`'s relation space.
    pub fn new(cfg: SubgraphModelConfig, dataset: &DekgDataset, mut rng: &mut dyn RngCore) -> Self {
        cfg.validate();
        let num_relations = dataset.num_relations;
        let mut params = ParamStore::new();
        let encoder = SubgraphEncoder::new(
            SubgraphEncoderConfig {
                num_relations,
                hops: cfg.hops,
                dim: cfg.dim,
                layers: cfg.layers,
                attn_dim: cfg.attn_dim,
                edge_dropout: cfg.edge_dropout,
                labeling: LabelingMode::Grail,
                num_bases: cfg.num_bases,
            },
            "tact.encoder",
            &mut params,
            &mut rng,
        );
        let rel_emb =
            params.insert("tact.rel_emb", init::xavier_uniform([num_relations, cfg.dim], &mut rng));
        let correlation = params.insert(
            "tact.correlation",
            init::xavier_uniform([num_relations, num_relations], &mut rng),
        );
        let pattern_w = params.insert(
            "tact.pattern_w",
            init::xavier_uniform([NUM_PATTERNS * cfg.dim, cfg.dim], &mut rng),
        );
        let w_out = params.insert("tact.w_out", init::xavier_uniform([5 * cfg.dim, 1], &mut rng));
        Tact { cfg, params, encoder, num_relations, rel_emb, correlation, pattern_w, w_out }
    }

    /// The model configuration.
    pub fn config(&self) -> &SubgraphModelConfig {
        &self.cfg
    }

    /// Groups the subgraph's endpoint-incident relations by interaction
    /// pattern. Local node 0 is the head, 1 the tail.
    fn pattern_groups(sg: &Subgraph) -> [Vec<RelationId>; NUM_PATTERNS] {
        let mut groups: [Vec<RelationId>; NUM_PATTERNS] = Default::default();
        for e in &sg.edges {
            let (src_h, dst_h) = (e.src == 0, e.dst == 0);
            let (src_t, dst_t) = (e.src == 1, e.dst == 1);
            let pattern = if src_h && dst_t {
                4 // parallel: r'(h → t)
            } else if src_t && dst_h {
                5 // inverse: r'(t → h)
            } else if src_h {
                0 // head-out
            } else if dst_h {
                1 // head-in
            } else if src_t {
                2 // tail-out
            } else if dst_t {
                3 // tail-in
            } else {
                continue; // edge not incident to an endpoint
            };
            groups[pattern].push(e.rel);
        }
        groups
    }

    /// Builds the correlation embedding `c_r` as `[1, d]`.
    fn correlation_embedding(
        &self,
        g: &mut Graph,
        params: &ParamStore,
        sg: &Subgraph,
        target: RelationId,
    ) -> Var {
        let dim = self.cfg.dim;
        let rel_emb = g.param(params, self.rel_emb);
        let corr = g.param(params, self.correlation);
        let pattern_w = g.param(params, self.pattern_w);
        let ones_row = g.constant(Tensor::ones([1, dim]));

        let groups = Self::pattern_groups(sg);
        let mut acc: Option<Var> = None;
        for (p, rels) in groups.iter().enumerate() {
            if rels.is_empty() {
                continue;
            }
            let idx: Vec<usize> = rels.iter().map(|r| r.index()).collect();
            let embs = g.gather_rows(rel_emb, &idx); // [n_p, d]
                                                     // Correlation weights C[target, r'] per related relation.
            let flat: Vec<usize> =
                rels.iter().map(|r| target.index() * self.num_relations + r.index()).collect();
            let w = g.gather_flat(corr, &flat, [rels.len(), 1]);
            let w_act = g.sigmoid(w);
            let w_wide = g.matmul(w_act, ones_row); // [n_p, d]
            let weighted = g.mul(embs, w_wide);
            let pooled_vec = g.mean_axis0(weighted); // [d]
            let pooled = g.reshape(pooled_vec, [1, dim]);
            let rows: Vec<usize> = (p * dim..(p + 1) * dim).collect();
            let w_p = g.gather_rows(pattern_w, &rows); // [d, d]
            let transformed = g.matmul(pooled, w_p); // [1, d]
            acc = Some(match acc {
                Some(a) => g.add(a, transformed),
                None => transformed,
            });
        }
        acc.unwrap_or_else(|| g.constant(Tensor::zeros([1, dim])))
    }

    /// Scores one extracted subgraph; returns a scalar (`[1, 1]`) Var.
    fn score_subgraph(
        &self,
        g: &mut Graph,
        params: &ParamStore,
        sg: &Subgraph,
        rel: RelationId,
        train: bool,
        rng: &mut impl Rng,
    ) -> Var {
        let enc = self.encoder.encode(g, params, sg, train, rng);
        let rel_emb = g.param(params, self.rel_emb);
        let r = g.gather_rows(rel_emb, &[rel.index()]);
        let c_r = self.correlation_embedding(g, params, sg, rel);
        let cat = g.concat_cols(&[enc.graph, enc.head, enc.tail, r, c_r]);
        let w = g.param(params, self.w_out);
        g.matmul(cat, w)
    }
}

impl LinkPredictor for Tact {
    fn name(&self) -> &'static str {
        "TACT"
    }

    fn score_batch(&self, graph: &InferenceGraph, triples: &[Triple]) -> Vec<f32> {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let extractor =
            SubgraphExtractor::new(&graph.adjacency, self.cfg.hops, ExtractionMode::Intersection);
        triples
            .iter()
            .map(|t| {
                let sg = extractor.extract(t.head, t.tail, None);
                let mut g = Graph::new();
                let s = self.score_subgraph(&mut g, &self.params, &sg, t.rel, false, &mut rng);
                g.value(s).item()
            })
            .collect()
    }

    fn num_parameters(&self) -> usize {
        self.params.num_scalars()
    }
}

impl TrainableModel for Tact {
    fn fit(&mut self, dataset: &DekgDataset, rng: &mut dyn RngCore) -> TrainReport {
        let cfg = self.cfg.clone();
        let mut params = std::mem::take(&mut self.params);
        let this: &Tact = self;
        let report = train_subgraph_model(
            &mut params,
            dataset,
            &cfg,
            ExtractionMode::Intersection,
            rng,
            |g, params, sg, rel, train, rng| {
                this.score_subgraph(g, params, sg, rel, train, &mut ShimRng(rng))
            },
        );
        self.params = params;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dekg_datasets::{generate, DatasetProfile, RawKg, SplitKind, SynthConfig};
    use dekg_kg::TripleStore;

    fn tiny_dataset(seed: u64) -> DekgDataset {
        let profile = DatasetProfile::table2(RawKg::Wn18rr, SplitKind::Eq).scaled(0.015);
        generate(&SynthConfig::for_profile(profile, seed))
    }

    #[test]
    fn pattern_classification() {
        // Build a star around head (local 0) and tail (local 1):
        // global: 0=head, 1=tail, 2..n others.
        let store = TripleStore::from_triples([
            Triple::from_raw(0, 0, 2), // head-out
            Triple::from_raw(3, 1, 0), // head-in
            Triple::from_raw(1, 2, 4), // tail-out
            Triple::from_raw(5, 3, 1), // tail-in
            Triple::from_raw(0, 4, 1), // parallel
            Triple::from_raw(1, 5, 0), // inverse
        ]);
        let adj = dekg_kg::Adjacency::from_store(&store, 6);
        let sg = SubgraphExtractor::new(&adj, 2, ExtractionMode::Union).extract(
            dekg_kg::EntityId(0),
            dekg_kg::EntityId(1),
            None,
        );
        let groups = Tact::pattern_groups(&sg);
        assert!(groups[0].contains(&RelationId(0)), "head-out");
        assert!(groups[1].contains(&RelationId(1)), "head-in");
        assert!(groups[2].contains(&RelationId(2)), "tail-out");
        assert!(groups[3].contains(&RelationId(3)), "tail-in");
        assert_eq!(groups[4], vec![RelationId(4)], "parallel");
        assert_eq!(groups[5], vec![RelationId(5)], "inverse");
    }

    #[test]
    fn training_improves_loss() {
        let d = tiny_dataset(1);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut model = Tact::new(SubgraphModelConfig::quick(), &d, &mut rng);
        let report = model.fit(&d, &mut rng);
        assert!(report.improved(), "{report:?}");
    }

    #[test]
    fn tact_has_more_parameters_than_grail() {
        let d = tiny_dataset(2);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let tact = Tact::new(SubgraphModelConfig::quick(), &d, &mut rng);
        let mut rng2 = ChaCha8Rng::seed_from_u64(0);
        let grail = crate::grail::Grail::new(SubgraphModelConfig::quick(), &d, &mut rng2);
        assert!(
            tact.num_parameters() > grail.num_parameters(),
            "TACT {} vs GraIL {}",
            tact.num_parameters(),
            grail.num_parameters()
        );
    }

    #[test]
    fn scoring_finite_on_all_link_classes() {
        let d = tiny_dataset(3);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let model = Tact::new(SubgraphModelConfig::quick(), &d, &mut rng);
        let graph = InferenceGraph::from_dataset(&d);
        for batch in [&d.test_enclosing[..2], &d.test_bridging[..2]] {
            let scores = model.score_batch(&graph, batch);
            assert!(scores.iter().all(|s| s.is_finite()));
        }
    }

    #[test]
    fn correlation_gradients_flow() {
        let d = tiny_dataset(4);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let model = Tact::new(SubgraphModelConfig::quick(), &d, &mut rng);
        let graph = InferenceGraph::training_view(&d);
        // A training triple whose subgraph has endpoint-incident edges.
        let t = d.original.triples()[0];
        let extractor = SubgraphExtractor::new(&graph.adjacency, 2, ExtractionMode::Intersection);
        let sg = extractor.extract(t.head, t.tail, None);
        let mut g = Graph::new();
        let s = model.score_subgraph(&mut g, &model.params, &sg, t.rel, false, &mut rng);
        let sq = g.square(s);
        let loss = g.sum_all(sq);
        let grads = g.backward(loss);
        if sg.num_edges() > 0 {
            assert!(
                grads.get(model.correlation).is_some(),
                "correlation matrix should receive gradient"
            );
            assert!(grads.get(model.pattern_w).is_some());
        }
    }
}
