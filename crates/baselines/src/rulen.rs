//! RuleN (Meilicke et al., ISWC 2018) — probabilistic rule mining.
//!
//! Mines two rule families from the original KG:
//!
//! * **equivalence rules** `r(x, y) ← r'(x, y)` and inverse rules
//!   `r(x, y) ← r'(y, x)` (length-1 bodies),
//! * **path rules** `r(x, y) ← r₁(x, z) ∧ r₂(z, y)` (length-2 bodies),
//!
//! each with confidence `support / body_count`. Scoring a candidate
//! `(h, r, t)` returns the **maximum confidence** of any rule for `r`
//! whose body is *observed* in the inference graph — mirroring RuleN's
//! "rule fires or it doesn't" behaviour, which the paper credits for
//! strong Hits@1 but flat Hits@5/10.
//!
//! Because every body needs an observed connection between the
//! endpoints, bridging links (no cross-graph edges) never fire a rule —
//! the paper's Fig. 5 collapse.

use dekg_core::{InferenceGraph, LinkPredictor, TrainReport, TrainableModel};
use dekg_datasets::DekgDataset;
use dekg_kg::adjacency::Orientation;
use dekg_kg::{Adjacency, RelationId, Triple};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::Instant;

/// Mining configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RuleNConfig {
    /// Minimum body instantiations for a rule to be kept.
    pub min_body_support: usize,
    /// Minimum confidence to keep a rule.
    pub min_confidence: f64,
    /// Cap on path-rule bodies enumerated per (head) entity, bounding
    /// mining cost on dense graphs.
    pub max_paths_per_entity: usize,
}

impl Default for RuleNConfig {
    fn default() -> Self {
        RuleNConfig { min_body_support: 2, min_confidence: 0.05, max_paths_per_entity: 512 }
    }
}

/// A mined rule body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RuleBody {
    /// `r'(x, y)`.
    Same(RelationId),
    /// `r'(y, x)`.
    Inverse(RelationId),
    /// `r₁(x, z) ∧ r₂(z, y)`; booleans flag reversed atoms.
    Path {
        /// First atom's relation.
        r1: RelationId,
        /// First atom is `r1(z, x)` instead of `r1(x, z)` when true.
        rev1: bool,
        /// Second atom's relation.
        r2: RelationId,
        /// Second atom is `r2(y, z)` instead of `r2(z, y)` when true.
        rev2: bool,
    },
}

/// A rule with its head relation and confidence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    /// The head relation `r` of `r(x, y) ← body`.
    pub head: RelationId,
    /// The body pattern.
    pub body: RuleBody,
    /// `support / body_count`.
    pub confidence: f64,
}

/// The RuleN baseline.
#[derive(Debug, Default)]
pub struct RuleN {
    cfg: RuleNConfig,
    /// Rules grouped by head relation, sorted by descending confidence.
    rules: HashMap<RelationId, Vec<Rule>>,
}

impl RuleN {
    /// An empty (untrained) model.
    pub fn new(cfg: RuleNConfig) -> Self {
        RuleN { cfg, rules: HashMap::new() }
    }

    /// Total number of mined rules.
    pub fn num_rules(&self) -> usize {
        self.rules.values().map(Vec::len).sum()
    }

    /// The mined rules for one head relation (descending confidence).
    pub fn rules_for(&self, r: RelationId) -> &[Rule] {
        self.rules.get(&r).map_or(&[][..], Vec::as_slice)
    }

    /// Checks whether `body` is observed between `(h, t)` in `adj`.
    fn body_matches(adj: &Adjacency, body: &RuleBody, t: &Triple) -> bool {
        match *body {
            RuleBody::Same(r) => adj
                .neighbors(t.head)
                .iter()
                .any(|n| n.rel == r && n.orientation == Orientation::Out && n.entity == t.tail),
            RuleBody::Inverse(r) => adj
                .neighbors(t.head)
                .iter()
                .any(|n| n.rel == r && n.orientation == Orientation::In && n.entity == t.tail),
            RuleBody::Path { r1, rev1, r2, rev2 } => {
                dekg_kg::paths::count_two_paths_between(adj, t.head, t.tail, r1, rev1, r2, rev2) > 0
            }
        }
    }
}

impl LinkPredictor for RuleN {
    fn name(&self) -> &'static str {
        "RuleN"
    }

    fn score_batch(&self, graph: &InferenceGraph, triples: &[Triple]) -> Vec<f32> {
        triples
            .iter()
            .map(|t| {
                let mut best = 0.0f64;
                for rule in self.rules_for(t.rel) {
                    if rule.confidence <= best {
                        break; // rules are sorted descending
                    }
                    // Rules may not use the target edge itself as their
                    // body evidence.
                    if matches!(rule.body, RuleBody::Same(r) if r == t.rel) {
                        continue;
                    }
                    if Self::body_matches(&graph.adjacency, &rule.body, t) {
                        best = rule.confidence;
                    }
                }
                best as f32
            })
            .collect()
    }

    fn num_parameters(&self) -> usize {
        // One confidence scalar per rule.
        self.num_rules()
    }
}

impl TrainableModel for RuleN {
    fn fit(&mut self, dataset: &DekgDataset, _rng: &mut dyn RngCore) -> TrainReport {
        let started = Instant::now();
        let store = &dataset.original;
        let adj = Adjacency::from_store(store, dataset.num_entities());

        // body_count and support per candidate rule.
        let mut body: HashMap<(RelationId, RuleBody), usize> = HashMap::new();
        let mut supp: HashMap<(RelationId, RuleBody), usize> = HashMap::new();

        // Candidate generation: walk every observed body instance and
        // check which head relations it (also) connects.
        for t in store.triples() {
            // Length-1 bodies between (head, tail).
            for n in adj.neighbors(t.head) {
                if n.entity != t.tail {
                    continue;
                }
                let b = match n.orientation {
                    Orientation::Out => RuleBody::Same(n.rel),
                    Orientation::In => RuleBody::Inverse(n.rel),
                };
                if b == RuleBody::Same(t.rel) {
                    continue; // the head atom itself
                }
                *body.entry((t.rel, b)).or_default() += 1;
                *supp.entry((t.rel, b)).or_default() += 1;
            }
        }
        // Path bodies, two passes to keep the candidate map bounded:
        // pass 1 finds (head, body) keys with at least one supporting
        // instantiation; pass 2 counts exact support and body counts
        // for those keys only.
        let entities: Vec<_> =
            (0..dataset.num_original_entities as u32).map(dekg_kg::EntityId).collect();
        let head_rels: Vec<RelationId> = store.relations().into_iter().collect();
        let walk_paths =
            |mut visit: Box<dyn FnMut(dekg_kg::EntityId, dekg_kg::EntityId, RuleBody) + '_>| {
                for &x in &entities {
                    dekg_kg::paths::walk_two_paths(&adj, x, self.cfg.max_paths_per_entity, |p| {
                        let b = RuleBody::Path { r1: p.r1, rev1: p.rev1, r2: p.r2, rev2: p.rev2 };
                        visit(p.start, p.end, b);
                    });
                }
            };

        let mut candidates: std::collections::HashSet<(RelationId, RuleBody)> =
            std::collections::HashSet::new();
        walk_paths(Box::new(|x, y, b| {
            for &hr in &head_rels {
                if store.contains(&Triple::new(x, hr, y)) {
                    candidates.insert((hr, b));
                }
            }
        }));
        walk_paths(Box::new(|x, y, b| {
            for &hr in &head_rels {
                let key = (hr, b);
                if !candidates.contains(&key) {
                    continue;
                }
                *body.entry(key).or_default() += 1;
                if store.contains(&Triple::new(x, hr, y)) {
                    *supp.entry(key).or_default() += 1;
                }
            }
        }));

        // Finalize.
        self.rules.clear();
        for ((head, b), &s) in &supp {
            let bc = body.get(&(*head, *b)).copied().unwrap_or(s);
            if bc < self.cfg.min_body_support {
                continue;
            }
            let confidence = s as f64 / bc as f64;
            if confidence < self.cfg.min_confidence {
                continue;
            }
            self.rules.entry(*head).or_default().push(Rule { head: *head, body: *b, confidence });
        }
        for rules in self.rules.values_mut() {
            rules.sort_by(|a, b| b.confidence.total_cmp(&a.confidence));
        }

        TrainReport {
            epochs: 1,
            // "Loss" proxy: fraction of relations with no rules.
            final_loss: 1.0 - self.rules.len() as f32 / dataset.num_relations.max(1) as f32,
            initial_loss: 1.0,
            seconds: started.elapsed().as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dekg_datasets::{generate, DatasetProfile, RawKg, SplitKind, SynthConfig};
    use dekg_kg::TripleStore;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// A KG where rule r1(x,y) → r0(x,y) holds perfectly.
    fn implication_dataset() -> DekgDataset {
        let mut vocab = dekg_kg::Vocab::new();
        for i in 0..8 {
            vocab.intern_entity(&format!("g{i}"));
        }
        for i in 0..4 {
            vocab.intern_entity(&format!("p{i}"));
        }
        vocab.intern_relation("r0");
        vocab.intern_relation("r1");
        let mut triples = Vec::new();
        for i in 0..4u32 {
            triples.push(Triple::from_raw(2 * i, 1, 2 * i + 1)); // r1
            triples.push(Triple::from_raw(2 * i, 0, 2 * i + 1)); // r0 (implied)
        }
        DekgDataset {
            name: "implication".into(),
            vocab,
            num_original_entities: 8,
            num_relations: 2,
            original: TripleStore::from_triples(triples),
            emerging: TripleStore::from_triples([
                Triple::from_raw(8, 1, 9),
                Triple::from_raw(10, 1, 11),
            ]),
            valid: vec![],
            test_enclosing: vec![Triple::from_raw(8, 0, 9)],
            test_bridging: vec![Triple::from_raw(0, 0, 8)],
        }
    }

    #[test]
    fn mines_equivalence_rule() {
        let d = implication_dataset();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut model = RuleN::new(RuleNConfig::default());
        model.fit(&d, &mut rng);
        let rules = model.rules_for(RelationId(0));
        assert!(
            rules.iter().any(|r| r.body == RuleBody::Same(RelationId(1)) && r.confidence > 0.99),
            "expected r0(x,y) ← r1(x,y): {rules:?}"
        );
    }

    #[test]
    fn rule_fires_on_enclosing_link_in_emerging_graph() {
        let d = implication_dataset();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut model = RuleN::new(RuleNConfig::default());
        model.fit(&d, &mut rng);
        let graph = InferenceGraph::from_dataset(&d);
        // (8, r0, 9): the body r1(8,9) is observed in G' → fires.
        let s = model.score(&graph, &d.test_enclosing[0]);
        assert!(s > 0.9, "rule should fire inductively, score = {s}");
    }

    #[test]
    fn bridging_links_never_fire() {
        let d = implication_dataset();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut model = RuleN::new(RuleNConfig::default());
        model.fit(&d, &mut rng);
        let graph = InferenceGraph::from_dataset(&d);
        // No edge crosses G/G' → no body can match.
        let s = model.score(&graph, &d.test_bridging[0]);
        assert_eq!(s, 0.0, "bridging rule firing is impossible in a DEKG");
    }

    #[test]
    fn path_rules_mined_on_synthetic_data() {
        // FB15k-237 keeps enough relations after scaling that type
        // signatures collide and implication patterns exist.
        let profile = DatasetProfile::table2(RawKg::Fb15k237, SplitKind::Eq).scaled(0.1);
        let d = generate(&SynthConfig::for_profile(profile, 5));
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut model = RuleN::new(RuleNConfig::default());
        let report = model.fit(&d, &mut rng);
        assert!(model.num_rules() > 0, "no rules mined");
        assert!(report.seconds >= 0.0);
        // Confidences are valid probabilities.
        for rules in model.rules.values() {
            for r in rules {
                assert!(r.confidence > 0.0 && r.confidence <= 1.0);
            }
            // Sorted descending.
            for w in rules.windows(2) {
                assert!(w[0].confidence >= w[1].confidence);
            }
        }
    }

    #[test]
    fn untrained_model_scores_zero() {
        let d = implication_dataset();
        let model = RuleN::new(RuleNConfig::default());
        let graph = InferenceGraph::from_dataset(&d);
        assert_eq!(model.score(&graph, &d.test_enclosing[0]), 0.0);
    }
}
