//! GraIL (Teru et al., ICML 2020) — inductive relation prediction by
//! subgraph reasoning.
//!
//! GraIL is structurally the GSM module of DEKG-ILP *without* the
//! paper's improvements: it extracts the **intersection** neighborhood
//! `N_t(h) ∩ N_t(t)` (pruning one-sided nodes) and uses the original
//! double-radius labeling. On bridging links the intersection collapses
//! to the two endpoints with no edges — the "topological limitation"
//! DEKG-ILP exists to fix — so GraIL's bridging scores carry almost no
//! signal, exactly as in the paper's Fig. 5.

use crate::subgraph_common::{train_subgraph_model, SubgraphModelConfig};
use dekg_core::gsm::Gsm;
use dekg_core::{InferenceGraph, LinkPredictor, TrainReport, TrainableModel};
use dekg_datasets::DekgDataset;
use dekg_gnn::{LabelingMode, SubgraphEncoderConfig};
use dekg_kg::{ExtractionMode, SubgraphExtractor, Triple};
use dekg_tensor::{Graph, ParamStore};
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The GraIL baseline.
#[derive(Debug)]
pub struct Grail {
    cfg: SubgraphModelConfig,
    params: ParamStore,
    gsm: Gsm,
}

impl Grail {
    /// Allocates the model for `dataset`'s relation space.
    pub fn new(cfg: SubgraphModelConfig, dataset: &DekgDataset, mut rng: &mut dyn RngCore) -> Self {
        cfg.validate();
        let mut params = ParamStore::new();
        let gsm = Gsm::new(
            SubgraphEncoderConfig {
                num_relations: dataset.num_relations,
                hops: cfg.hops,
                dim: cfg.dim,
                layers: cfg.layers,
                attn_dim: cfg.attn_dim,
                edge_dropout: cfg.edge_dropout,
                labeling: LabelingMode::Grail,
                num_bases: cfg.num_bases,
            },
            "grail",
            &mut params,
            &mut rng,
        );
        Grail { cfg, params, gsm }
    }

    /// The model configuration.
    pub fn config(&self) -> &SubgraphModelConfig {
        &self.cfg
    }
}

impl LinkPredictor for Grail {
    fn name(&self) -> &'static str {
        "Grail"
    }

    fn score_batch(&self, graph: &InferenceGraph, triples: &[Triple]) -> Vec<f32> {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let extractor =
            SubgraphExtractor::new(&graph.adjacency, self.cfg.hops, ExtractionMode::Intersection);
        triples
            .iter()
            .map(|t| {
                let sg = extractor.extract(t.head, t.tail, None);
                let mut g = Graph::new();
                let s = self.gsm.score_subgraph(&mut g, &self.params, &sg, t.rel, false, &mut rng);
                g.value(s).item()
            })
            .collect()
    }

    fn num_parameters(&self) -> usize {
        self.params.num_scalars()
    }
}

impl TrainableModel for Grail {
    fn fit(&mut self, dataset: &DekgDataset, rng: &mut dyn RngCore) -> TrainReport {
        let gsm = self.gsm.clone();
        let cfg = self.cfg.clone();
        train_subgraph_model(
            &mut self.params,
            dataset,
            &cfg,
            ExtractionMode::Intersection,
            rng,
            |g, params, sg, rel, train, rng| {
                gsm.score_subgraph(
                    g,
                    params,
                    sg,
                    rel,
                    train,
                    &mut crate::embed_common::ShimRng(rng),
                )
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dekg_datasets::{generate, DatasetProfile, NegativeSampler, RawKg, SplitKind, SynthConfig};

    fn tiny_dataset(seed: u64) -> DekgDataset {
        let profile = DatasetProfile::table2(RawKg::Wn18rr, SplitKind::Eq).scaled(0.015);
        generate(&SynthConfig::for_profile(profile, seed))
    }

    #[test]
    fn training_improves_loss() {
        let d = tiny_dataset(1);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut model = Grail::new(SubgraphModelConfig::quick(), &d, &mut rng);
        let report = model.fit(&d, &mut rng);
        assert!(report.improved(), "{report:?}");
    }

    #[test]
    fn trained_model_separates_positives_from_corruptions() {
        let d = tiny_dataset(2);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut model = Grail::new(
            SubgraphModelConfig { epochs: 6, ..SubgraphModelConfig::quick() },
            &d,
            &mut rng,
        );
        model.fit(&d, &mut rng);
        let graph = InferenceGraph::training_view(&d);
        let sampler = NegativeSampler::new(0..d.num_original_entities as u32, vec![&d.original]);
        let pos: Vec<Triple> = d.original.triples().iter().copied().take(25).collect();
        let neg: Vec<Triple> = pos.iter().map(|t| sampler.corrupt(t, &mut rng)).collect();
        let ps: f32 = model.score_batch(&graph, &pos).iter().sum();
        let ns: f32 = model.score_batch(&graph, &neg).iter().sum();
        assert!(ps > ns);
    }

    #[test]
    fn bridging_subgraphs_are_degenerate_for_grail() {
        // The structural reason GraIL fails on bridging links: its
        // intersection extraction sees only the two endpoints.
        let d = tiny_dataset(3);
        let graph = InferenceGraph::from_dataset(&d);
        let extractor = SubgraphExtractor::new(&graph.adjacency, 2, ExtractionMode::Intersection);
        for t in &d.test_bridging {
            let sg = extractor.extract(t.head, t.tail, None);
            assert_eq!(sg.num_nodes(), 2, "bridging intersection must collapse");
            assert_eq!(sg.num_edges(), 0);
        }
    }

    #[test]
    fn bridging_scores_are_relation_only() {
        // With a collapsed subgraph, scores depend only on the relation:
        // two bridging links with the same relation get identical scores.
        let d = tiny_dataset(4);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let model = Grail::new(SubgraphModelConfig::quick(), &d, &mut rng);
        let graph = InferenceGraph::from_dataset(&d);
        let same_rel: Vec<Triple> = d
            .test_bridging
            .iter()
            .filter(|t| t.rel == d.test_bridging[0].rel)
            .copied()
            .take(2)
            .collect();
        if same_rel.len() == 2 {
            let scores = model.score_batch(&graph, &same_rel);
            assert!(
                (scores[0] - scores[1]).abs() < 1e-5,
                "degenerate subgraphs ⇒ identical scores: {scores:?}"
            );
        }
    }
}
