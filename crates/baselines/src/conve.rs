//! ConvE (Dettmers et al., AAAI 2018): a 2D-convolutional decoder.
//!
//! The head and relation embeddings are reshaped into a stacked 2D
//! "image", convolved, projected back to embedding space and matched
//! against the tail embedding:
//!
//! ```text
//! score = f(vec(f([h̄; r̄] ∗ ω)) W) · t
//! ```
//!
//! The convolution is implemented with an `im2col` flat gather feeding a
//! matmul, so it is fully differentiable through `dekg-tensor`.

use crate::embed_common::{train_margin, EmbeddingConfig};
use dekg_core::{InferenceGraph, LinkPredictor, TrainReport, TrainableModel};
use dekg_datasets::DekgDataset;
use dekg_kg::Triple;
use dekg_tensor::{init, Graph, ParamId, ParamStore, Var};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// ConvE-specific hyperparameters on top of the shared embedding config.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConvEConfig {
    /// Shared embedding training settings.
    pub embed: EmbeddingConfig,
    /// Rows of each reshaped embedding (`dim % reshape_rows == 0`).
    pub reshape_rows: usize,
    /// Number of convolution filters.
    pub filters: usize,
    /// Square kernel size.
    pub kernel: usize,
}

impl Default for ConvEConfig {
    fn default() -> Self {
        ConvEConfig { embed: EmbeddingConfig::default(), reshape_rows: 4, filters: 4, kernel: 3 }
    }
}

impl ConvEConfig {
    /// Fast configuration for tests and scaled runs.
    pub fn quick() -> Self {
        ConvEConfig { embed: EmbeddingConfig::quick(), ..Self::default() }
    }

    /// Derived image geometry `(img_h, img_w, out_h, out_w)`.
    fn geometry(&self) -> (usize, usize, usize, usize) {
        let dim = self.embed.dim;
        assert_eq!(dim % self.reshape_rows, 0, "dim must be divisible by reshape_rows");
        let dh = self.reshape_rows;
        let dw = dim / dh;
        let img_h = 2 * dh; // head stacked over relation
        let img_w = dw;
        assert!(
            img_h >= self.kernel && img_w >= self.kernel,
            "kernel {k} larger than image {img_h}x{img_w}",
            k = self.kernel
        );
        (img_h, img_w, img_h - self.kernel + 1, img_w - self.kernel + 1)
    }
}

/// The ConvE baseline.
#[derive(Debug)]
pub struct ConvE {
    cfg: ConvEConfig,
    params: ParamStore,
    entities: ParamId,
    relations: ParamId,
    filters: ParamId,
    fc: ParamId,
    /// Precomputed im2col offsets for the fixed image geometry.
    im2col: Vec<usize>,
}

impl ConvE {
    /// Allocates the model for `dataset`'s universe.
    pub fn new(cfg: ConvEConfig, dataset: &DekgDataset, mut rng: &mut dyn RngCore) -> Self {
        cfg.embed.validate();
        let (img_h, img_w, out_h, out_w) = cfg.geometry();
        let k = cfg.kernel;
        let mut params = ParamStore::new();
        let entities = params.insert(
            "conve.entities",
            init::xavier_uniform([dataset.num_entities(), cfg.embed.dim], &mut rng),
        );
        let relations = params.insert(
            "conve.relations",
            init::xavier_uniform([dataset.num_relations, cfg.embed.dim], &mut rng),
        );
        let filters =
            params.insert("conve.filters", init::xavier_uniform([k * k, cfg.filters], &mut rng));
        let fc = params.insert(
            "conve.fc",
            init::xavier_uniform([out_h * out_w * cfg.filters, cfg.embed.dim], &mut rng),
        );

        // im2col offsets: output position (y, x), kernel cell (ky, kx) →
        // flat offset (y+ky)·img_w + (x+kx).
        let mut im2col = Vec::with_capacity(out_h * out_w * k * k);
        for y in 0..out_h {
            for x in 0..out_w {
                for ky in 0..k {
                    for kx in 0..k {
                        im2col.push((y + ky) * img_w + (x + kx));
                    }
                }
            }
        }
        debug_assert!(im2col.iter().all(|&o| o < img_h * img_w));

        ConvE { cfg, params, entities, relations, filters, fc, im2col }
    }

    /// The model configuration.
    pub fn config(&self) -> &ConvEConfig {
        &self.cfg
    }
}

/// Scores one batch by running the conv decoder per triple and stacking.
#[allow(clippy::too_many_arguments)]
fn score_conve(
    g: &mut Graph,
    params: &ParamStore,
    cfg: &ConvEConfig,
    ids: (ParamId, ParamId, ParamId, ParamId),
    im2col: &[usize],
    triples: &[Triple],
) -> Var {
    let (entities, relations, filters_id, fc_id) = ids;
    let (_, _, out_h, out_w) = cfg.geometry();
    let k = cfg.kernel;
    let dh = cfg.reshape_rows;
    let dw = cfg.embed.dim / dh;

    let ent = g.param(params, entities);
    let rel = g.param(params, relations);
    let filters = g.param(params, filters_id);
    let fc = g.param(params, fc_id);

    let mut scores = Vec::with_capacity(triples.len());
    for t in triples {
        let h_emb = g.gather_rows(ent, &[t.head.index()]);
        let r_emb = g.gather_rows(rel, &[t.rel.index()]);
        let h_img = g.reshape(h_emb, [dh, dw]);
        let r_img = g.reshape(r_emb, [dh, dw]);
        let img = g.concat_rows(&[h_img, r_img]); // [2dh, dw]
        let col = g.gather_flat(img, im2col, [out_h * out_w, k * k]);
        let conv = g.matmul(col, filters); // [P, C]
        let conv_act = g.relu(conv);
        let flat = g.reshape(conv_act, [1, out_h * out_w * cfg.filters]);
        let proj = g.matmul(flat, fc); // [1, dim]
        let proj_act = g.relu(proj);
        let t_emb = g.gather_rows(ent, &[t.tail.index()]);
        let prod = g.mul(proj_act, t_emb);
        let score = g.sum_axis1(prod); // [1]
        scores.push(score);
    }
    let stacked = g.concat_rows(&scores);
    g.reshape(stacked, [triples.len()])
}

impl LinkPredictor for ConvE {
    fn name(&self) -> &'static str {
        "ConvE"
    }

    fn score_batch(&self, _graph: &InferenceGraph, triples: &[Triple]) -> Vec<f32> {
        if triples.is_empty() {
            return Vec::new();
        }
        let mut g = Graph::new();
        let s = score_conve(
            &mut g,
            &self.params,
            &self.cfg,
            (self.entities, self.relations, self.filters, self.fc),
            &self.im2col,
            triples,
        );
        g.value(s).data().to_vec()
    }

    fn num_parameters(&self) -> usize {
        self.params.num_scalars()
    }
}

impl TrainableModel for ConvE {
    fn fit(&mut self, dataset: &DekgDataset, rng: &mut dyn RngCore) -> TrainReport {
        let ids = (self.entities, self.relations, self.filters, self.fc);
        let cfg = self.cfg.clone();
        let im2col = self.im2col.clone();
        let embed_cfg = cfg.embed.clone();
        train_margin(
            &mut self.params,
            dataset,
            &embed_cfg,
            rng,
            |g, params, triples, _| score_conve(g, params, &cfg, ids, &im2col, triples),
            |_| {},
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dekg_datasets::{generate, DatasetProfile, RawKg, SplitKind, SynthConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny_dataset(seed: u64) -> DekgDataset {
        let profile = DatasetProfile::table2(RawKg::Wn18rr, SplitKind::Eq).scaled(0.015);
        generate(&SynthConfig::for_profile(profile, seed))
    }

    fn fast_cfg() -> ConvEConfig {
        ConvEConfig {
            embed: EmbeddingConfig { epochs: 8, batch_size: 64, ..EmbeddingConfig::quick() },
            ..ConvEConfig::quick()
        }
    }

    #[test]
    fn geometry_math() {
        let cfg = ConvEConfig::quick(); // dim 16, rows 4 → image 8×4, k 3 → out 6×2
        let (ih, iw, oh, ow) = cfg.geometry();
        assert_eq!((ih, iw, oh, ow), (8, 4, 6, 2));
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn bad_reshape_rejected() {
        let cfg = ConvEConfig {
            embed: EmbeddingConfig { dim: 10, ..EmbeddingConfig::quick() },
            reshape_rows: 4,
            ..ConvEConfig::quick()
        };
        cfg.geometry();
    }

    #[test]
    fn scoring_shapes_and_finiteness() {
        let d = tiny_dataset(1);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let model = ConvE::new(fast_cfg(), &d, &mut rng);
        let graph = InferenceGraph::from_dataset(&d);
        let scores = model.score_batch(&graph, &d.original.triples()[..10]);
        assert_eq!(scores.len(), 10);
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn training_improves_loss() {
        let d = tiny_dataset(2);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut model = ConvE::new(fast_cfg(), &d, &mut rng);
        let report = model.fit(&d, &mut rng);
        assert!(report.improved(), "{report:?}");
    }

    #[test]
    fn conv_parameters_present() {
        let d = tiny_dataset(3);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let cfg = fast_cfg();
        let model = ConvE::new(cfg.clone(), &d, &mut rng);
        let (_, _, oh, ow) = cfg.geometry();
        let expected = (d.num_entities() + d.num_relations) * cfg.embed.dim // tables
            + cfg.kernel * cfg.kernel * cfg.filters                          // filters
            + oh * ow * cfg.filters * cfg.embed.dim; // fc
        assert_eq!(model.num_parameters(), expected);
    }
}
