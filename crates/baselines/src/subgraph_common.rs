//! Shared margin-ranking training loop for the subgraph-reasoning
//! baselines (GraIL, TACT).

use crate::embed_common::ShimRng;
use dekg_core::{InferenceGraph, TrainReport};
use dekg_datasets::{DekgDataset, NegativeSampler};
use dekg_kg::{ExtractionMode, RelationId, Subgraph, SubgraphExtractor, Triple};
use dekg_tensor::optim::{Adam, Optimizer};
use dekg_tensor::{Graph, ParamStore, Var};
use rand::seq::SliceRandom;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Hyperparameters shared by the subgraph models.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubgraphModelConfig {
    /// Embedding/hidden dimension.
    pub dim: usize,
    /// Learning rate.
    pub lr: f32,
    /// Training epochs (the paper runs 100).
    pub epochs: usize,
    /// Batch size.
    pub batch_size: usize,
    /// Ranking-loss margin.
    pub margin: f32,
    /// Negatives per positive.
    pub neg_per_pos: usize,
    /// Edge dropout rate in the GNN.
    pub edge_dropout: f32,
    /// Subgraph hop bound `t`.
    pub hops: u32,
    /// R-GCN layers.
    pub layers: usize,
    /// Attention embedding width.
    pub attn_dim: usize,
    /// Global-norm gradient clip.
    pub grad_clip: f32,
    /// Basis decomposition for relation weights — GraIL's default
    /// (`Some(4)`), and what keeps subgraph-model parameter counts at
    /// `O(|R|·d·l)` instead of `O(|R|·d²·l)`.
    pub num_bases: Option<usize>,
}

impl Default for SubgraphModelConfig {
    fn default() -> Self {
        SubgraphModelConfig {
            dim: 32,
            lr: 0.01,
            epochs: 100,
            batch_size: 32,
            margin: 1.0,
            neg_per_pos: 1,
            edge_dropout: 0.5,
            hops: 2,
            layers: 3,
            attn_dim: 8,
            grad_clip: 5.0,
            num_bases: Some(4),
        }
    }
}

impl SubgraphModelConfig {
    /// Fast configuration for tests and scaled runs. Uses full
    /// per-relation weights (`num_bases: None`) — at small dims the
    /// basis indirection costs more than it saves.
    pub fn quick() -> Self {
        SubgraphModelConfig {
            dim: 16,
            epochs: 4,
            batch_size: 16,
            layers: 2,
            num_bases: None,
            ..Self::default()
        }
    }

    /// Validates ranges.
    ///
    /// # Panics
    /// On out-of-range values.
    pub fn validate(&self) {
        assert!(self.dim > 0 && self.epochs > 0 && self.batch_size > 0 && self.layers > 0);
        assert!(self.lr > 0.0 && self.margin >= 0.0 && self.grad_clip > 0.0);
        assert!((0.0..1.0).contains(&self.edge_dropout));
        assert!(self.hops > 0 && self.attn_dim > 0 && self.neg_per_pos > 0);
    }
}

/// Runs margin training over per-triple subgraph scores.
///
/// `score_fn(graph_tape, params, subgraph, relation, train, rng)` must
/// return a scalar (`[1, 1]`) Var.
pub(crate) fn train_subgraph_model<F>(
    params: &mut ParamStore,
    dataset: &DekgDataset,
    cfg: &SubgraphModelConfig,
    mode: ExtractionMode,
    rng: &mut dyn RngCore,
    mut score_fn: F,
) -> TrainReport
where
    F: FnMut(&mut Graph, &ParamStore, &Subgraph, RelationId, bool, &mut dyn RngCore) -> Var,
{
    let started = Instant::now();
    let train_graph = InferenceGraph::training_view(dataset);
    let sampler =
        NegativeSampler::new(0..dataset.num_original_entities as u32, vec![&dataset.original]);
    let mut opt = Adam::new(cfg.lr);
    let mut positives: Vec<Triple> = dataset.original.triples().to_vec();
    let mut initial_loss = 0.0;
    let mut final_loss = 0.0;

    for epoch in 0..cfg.epochs {
        positives.shuffle(&mut ShimRng(rng));
        let mut epoch_loss = 0.0f64;
        let mut batches = 0usize;
        for batch in positives.chunks(cfg.batch_size) {
            let extractor = SubgraphExtractor::new(&train_graph.adjacency, cfg.hops, mode);
            let mut g = Graph::new();
            let mut pos_scores = Vec::new();
            let mut neg_scores = Vec::new();
            for t in batch {
                for _ in 0..cfg.neg_per_pos {
                    let sg = extractor.extract(t.head, t.tail, Some(*t));
                    pos_scores.push(score_fn(&mut g, params, &sg, t.rel, true, rng));
                    let n = sampler.corrupt(t, &mut ShimRng(rng));
                    let nsg = extractor.extract(n.head, n.tail, None);
                    neg_scores.push(score_fn(&mut g, params, &nsg, n.rel, true, rng));
                }
            }
            let pos = g.stack_scalars(&pos_scores);
            let neg = g.stack_scalars(&neg_scores);
            let loss = g.margin_ranking_loss(pos, neg, cfg.margin);
            let loss_val = g.value(loss).item();
            debug_assert!(loss_val.is_finite(), "non-finite subgraph-model loss");
            let mut grads = g.backward(loss);
            grads.clip_global_norm(cfg.grad_clip);
            opt.step(params, &grads);
            epoch_loss += loss_val as f64;
            batches += 1;
        }
        let mean = if batches > 0 { (epoch_loss / batches as f64) as f32 } else { 0.0 };
        if epoch == 0 {
            initial_loss = mean;
        }
        final_loss = mean;
    }

    TrainReport {
        epochs: cfg.epochs,
        final_loss,
        initial_loss,
        seconds: started.elapsed().as_secs_f64(),
    }
}
