//! Neural LP (Yang et al., NIPS 2017) — differentiable rule learning,
//! reduced to its load-bearing mechanism at this scale: for every head
//! relation the model learns soft attention over candidate rule bodies
//! (single atoms, inverse atoms and length-2 paths à la TensorLog),
//! and the score of `(h, r, t)` is the attention-weighted count of
//! body instantiations observed between `h` and `t`:
//!
//! ```text
//! score(h, r, t) = Σ_b softmax(α_r)_b · #matches(b, h, t)
//! ```
//!
//! Unlike RuleN's hard mined confidences, the body weights are learned
//! end-to-end by gradient descent on the margin ranking loss — the
//! "differentiable" in differentiable rule learning. Like every
//! rule-based method, bodies require observed connectivity, so bridging
//! links score (near) zero: Table I's ✗ for DEKG bridging.

use crate::embed_common::ShimRng;
use dekg_core::{InferenceGraph, LinkPredictor, TrainReport, TrainableModel};
use dekg_datasets::{DekgDataset, NegativeSampler};
use dekg_kg::adjacency::Orientation;
use dekg_kg::{Adjacency, RelationId, Triple};
use dekg_tensor::optim::{Adam, Optimizer};
use dekg_tensor::{Graph, ParamId, ParamStore, Tensor};
use rand::seq::SliceRandom;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::Instant;

/// A soft rule body (the same shapes RuleN mines, but weighted softly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
enum SoftBody {
    /// `r'(x, y)`.
    Same(RelationId),
    /// `r'(y, x)`.
    Inverse(RelationId),
    /// `r₁(x, z) ∧ r₂(z, y)` with orientation flags.
    Path(RelationId, bool, RelationId, bool),
}

/// Hyperparameters for Neural LP.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NeuralLpConfig {
    /// Learning rate.
    pub lr: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Batch size.
    pub batch_size: usize,
    /// Ranking-loss margin.
    pub margin: f32,
    /// Keep only bodies co-occurring with the head relation at least
    /// this many times (pre-filter, like Neural LP's beam).
    pub min_cooccurrence: usize,
    /// Cap on candidate bodies per head relation.
    pub max_bodies_per_relation: usize,
    /// Path-enumeration budget per entity during body discovery.
    pub max_paths_per_entity: usize,
}

impl Default for NeuralLpConfig {
    fn default() -> Self {
        NeuralLpConfig {
            lr: 0.05,
            epochs: 20,
            batch_size: 128,
            margin: 1.0,
            min_cooccurrence: 2,
            max_bodies_per_relation: 64,
            max_paths_per_entity: 512,
        }
    }
}

/// The Neural LP baseline.
#[derive(Debug)]
pub struct NeuralLp {
    cfg: NeuralLpConfig,
    params: ParamStore,
    /// Candidate bodies per head relation (index-aligned with the
    /// attention logits parameter of that relation).
    bodies: HashMap<RelationId, Vec<SoftBody>>,
    /// Attention logits `α_r`, one parameter tensor per head relation.
    logits: HashMap<RelationId, ParamId>,
}

impl NeuralLp {
    /// An empty (untrained) model.
    pub fn new(cfg: NeuralLpConfig) -> Self {
        NeuralLp { cfg, params: ParamStore::new(), bodies: HashMap::new(), logits: HashMap::new() }
    }

    /// Number of candidate bodies across all relations.
    pub fn num_bodies(&self) -> usize {
        self.bodies.values().map(Vec::len).sum()
    }

    /// Counts instantiations of `body` between `(h, t)` in `adj`.
    fn count_matches(adj: &Adjacency, body: &SoftBody, t: &Triple) -> f32 {
        match *body {
            SoftBody::Same(r) => adj
                .neighbors(t.head)
                .iter()
                .filter(|n| n.rel == r && n.orientation == Orientation::Out && n.entity == t.tail)
                .count() as f32,
            SoftBody::Inverse(r) => adj
                .neighbors(t.head)
                .iter()
                .filter(|n| n.rel == r && n.orientation == Orientation::In && n.entity == t.tail)
                .count() as f32,
            SoftBody::Path(r1, rev1, r2, rev2) => {
                dekg_kg::paths::count_two_paths_between(adj, t.head, t.tail, r1, rev1, r2, rev2)
                    as f32
            }
        }
    }

    /// The body-feature vector of a triple for one head relation.
    fn features(&self, adj: &Adjacency, rel: RelationId, t: &Triple) -> Vec<f32> {
        let bodies = self.bodies.get(&rel).map_or(&[][..], Vec::as_slice);
        bodies
            .iter()
            .map(|b| {
                // The head atom itself may not serve as its own body.
                if *b == SoftBody::Same(rel) {
                    0.0
                } else {
                    Self::count_matches(adj, b, t).min(8.0) // saturate heavy hubs
                }
            })
            .collect()
    }

    /// Discovers candidate bodies per head relation by co-occurrence.
    fn discover_bodies(&mut self, dataset: &DekgDataset, adj: &Adjacency) {
        let store = &dataset.original;
        let mut cooc: HashMap<(RelationId, SoftBody), usize> = HashMap::new();
        for t in store.triples() {
            // Single-atom bodies observed between (h, t).
            for n in adj.neighbors(t.head) {
                if n.entity != t.tail {
                    continue;
                }
                let b = match n.orientation {
                    Orientation::Out => SoftBody::Same(n.rel),
                    Orientation::In => SoftBody::Inverse(n.rel),
                };
                if b != SoftBody::Same(t.rel) {
                    *cooc.entry((t.rel, b)).or_default() += 1;
                }
            }
            // Path bodies: bounded walk from the head.
            dekg_kg::paths::walk_two_paths(adj, t.head, self.cfg.max_paths_per_entity, |p| {
                if p.end == t.tail {
                    let b = SoftBody::Path(p.r1, p.rev1, p.r2, p.rev2);
                    *cooc.entry((t.rel, b)).or_default() += 1;
                }
            });
        }
        // Keep the most frequent bodies per relation.
        let mut grouped: HashMap<RelationId, Vec<(SoftBody, usize)>> = HashMap::new();
        for ((rel, body), count) in cooc {
            if count >= self.cfg.min_cooccurrence {
                grouped.entry(rel).or_default().push((body, count));
            }
        }
        self.bodies.clear();
        for (rel, mut bodies) in grouped {
            bodies.sort_by(|a, b| {
                b.1.cmp(&a.1).then_with(|| format!("{:?}", a.0).cmp(&format!("{:?}", b.0)))
            });
            bodies.truncate(self.cfg.max_bodies_per_relation);
            self.bodies.insert(rel, bodies.into_iter().map(|(b, _)| b).collect());
        }
    }
}

impl LinkPredictor for NeuralLp {
    fn name(&self) -> &'static str {
        "Neural LP"
    }

    fn score_batch(&self, graph: &InferenceGraph, triples: &[Triple]) -> Vec<f32> {
        triples
            .iter()
            .map(|t| {
                let Some(logit_id) = self.logits.get(&t.rel) else {
                    return 0.0;
                };
                let feats = self.features(&graph.adjacency, t.rel, t);
                if feats.iter().all(|&x| x == 0.0) {
                    return 0.0;
                }
                // softmax(α) · features, computed directly (no tape).
                let logits = self.params.get(*logit_id).data();
                let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                let exps: Vec<f32> = logits.iter().map(|&x| (x - max).exp()).collect();
                let z: f32 = exps.iter().sum();
                feats.iter().zip(&exps).map(|(&f, &e)| f * e / z).sum()
            })
            .collect()
    }

    fn num_parameters(&self) -> usize {
        self.params.num_scalars()
    }
}

impl TrainableModel for NeuralLp {
    fn fit(&mut self, dataset: &DekgDataset, rng: &mut dyn RngCore) -> TrainReport {
        let started = Instant::now();
        let adj = Adjacency::from_store(&dataset.original, dataset.num_entities());
        self.discover_bodies(dataset, &adj);

        // One attention-logit vector per relation with bodies.
        self.params = ParamStore::new();
        self.logits.clear();
        let mut rels: Vec<RelationId> = self.bodies.keys().copied().collect();
        rels.sort();
        for rel in rels {
            let n = self.bodies[&rel].len();
            let id = self
                .params
                .insert(format!("neurallp.alpha.{}", rel.index()), Tensor::zeros([1, n]));
            self.logits.insert(rel, id);
        }

        let sampler =
            NegativeSampler::new(0..dataset.num_original_entities as u32, vec![&dataset.original]);
        let mut opt = Adam::new(self.cfg.lr);
        let mut positives: Vec<Triple> = dataset
            .original
            .triples()
            .iter()
            .copied()
            .filter(|t| self.logits.contains_key(&t.rel))
            .collect();

        let mut initial_loss = 0.0;
        let mut final_loss = 0.0;
        for epoch in 0..self.cfg.epochs {
            positives.shuffle(&mut ShimRng(rng));
            let mut epoch_loss = 0.0f64;
            let mut batches = 0usize;
            for batch in positives.chunks(self.cfg.batch_size) {
                let mut g = Graph::new();
                let mut pos_scores = Vec::new();
                let mut neg_scores = Vec::new();
                for t in batch {
                    let neg = sampler.corrupt(t, &mut ShimRng(rng));
                    let logit_id = self.logits[&t.rel];
                    let logits = g.param(&self.params, logit_id);
                    // softmax over bodies (1 x n).
                    let max_shift = g.add_scalar(logits, 0.0);
                    let e = g.exp(max_shift);
                    let z = g.sum_axis1(e); // [1]
                    let pos_f = g.constant(Tensor::from_vec(
                        [1, self.bodies[&t.rel].len()],
                        self.features(&adj, t.rel, t),
                    ));
                    let neg_f = g.constant(Tensor::from_vec(
                        [1, self.bodies[&t.rel].len()],
                        self.features(&adj, t.rel, &neg),
                    ));
                    let pos_dot = {
                        let prod = g.mul(e, pos_f);
                        let s = g.sum_axis1(prod);
                        g.div(s, z)
                    };
                    let neg_dot = {
                        let prod = g.mul(e, neg_f);
                        let s = g.sum_axis1(prod);
                        g.div(s, z)
                    };
                    pos_scores.push(pos_dot);
                    neg_scores.push(neg_dot);
                }
                if pos_scores.is_empty() {
                    continue;
                }
                let pos = g.concat_rows(&pos_scores);
                let neg = g.concat_rows(&neg_scores);
                let loss = g.margin_ranking_loss(pos, neg, self.cfg.margin);
                let loss_val = g.value(loss).item();
                let grads = g.backward(loss);
                opt.step(&mut self.params, &grads);
                epoch_loss += loss_val as f64;
                batches += 1;
            }
            let mean = if batches > 0 { (epoch_loss / batches as f64) as f32 } else { 0.0 };
            if epoch == 0 {
                initial_loss = mean;
            }
            final_loss = mean;
        }

        TrainReport {
            epochs: self.cfg.epochs,
            final_loss,
            initial_loss,
            seconds: started.elapsed().as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dekg_datasets::{generate, DatasetProfile, RawKg, SplitKind, SynthConfig};
    use dekg_kg::TripleStore;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// r1(x,y) → r0(x,y) holds perfectly (same fixture as RuleN's).
    fn implication_dataset() -> DekgDataset {
        let mut vocab = dekg_kg::Vocab::new();
        for i in 0..8 {
            vocab.intern_entity(&format!("g{i}"));
        }
        for i in 0..4 {
            vocab.intern_entity(&format!("p{i}"));
        }
        vocab.intern_relation("r0");
        vocab.intern_relation("r1");
        let mut triples = Vec::new();
        for i in 0..4u32 {
            triples.push(Triple::from_raw(2 * i, 1, 2 * i + 1));
            triples.push(Triple::from_raw(2 * i, 0, 2 * i + 1));
        }
        DekgDataset {
            name: "implication".into(),
            vocab,
            num_original_entities: 8,
            num_relations: 2,
            original: TripleStore::from_triples(triples),
            emerging: TripleStore::from_triples([
                Triple::from_raw(8, 1, 9),
                Triple::from_raw(10, 1, 11),
            ]),
            valid: vec![],
            test_enclosing: vec![Triple::from_raw(8, 0, 9)],
            test_bridging: vec![Triple::from_raw(0, 0, 8)],
        }
    }

    #[test]
    fn learns_the_implication_rule() {
        let d = implication_dataset();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut model = NeuralLp::new(NeuralLpConfig::default());
        let report = model.fit(&d, &mut rng);
        assert!(model.num_bodies() > 0, "no bodies discovered");
        assert!(report.final_loss.is_finite());

        let graph = InferenceGraph::from_dataset(&d);
        // The enclosing truth's body r1(8,9) is observed → high score.
        let s_true = model.score(&graph, &d.test_enclosing[0]);
        // A corrupted enclosing link has no body → lower score.
        let s_false = model.score(&graph, &Triple::from_raw(8, 0, 10));
        assert!(s_true > s_false, "{s_true} vs {s_false}");
    }

    #[test]
    fn bridging_links_score_zero() {
        let d = implication_dataset();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut model = NeuralLp::new(NeuralLpConfig::default());
        model.fit(&d, &mut rng);
        let graph = InferenceGraph::from_dataset(&d);
        assert_eq!(model.score(&graph, &d.test_bridging[0]), 0.0);
    }

    #[test]
    fn trains_on_synthetic_data() {
        let profile = DatasetProfile::table2(RawKg::Fb15k237, SplitKind::Eq).scaled(0.05);
        let d = generate(&SynthConfig::for_profile(profile, 3));
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut model = NeuralLp::new(NeuralLpConfig { epochs: 5, ..Default::default() });
        let report = model.fit(&d, &mut rng);
        assert!(model.num_bodies() > 0);
        assert!(report.seconds >= 0.0);
        let graph = InferenceGraph::from_dataset(&d);
        let scores = model.score_batch(&graph, &d.test_enclosing[..5]);
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn untrained_scores_zero() {
        let d = implication_dataset();
        let model = NeuralLp::new(NeuralLpConfig::default());
        let graph = InferenceGraph::from_dataset(&d);
        assert_eq!(model.score(&graph, &d.test_enclosing[0]), 0.0);
    }
}
