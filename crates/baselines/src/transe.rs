//! TransE (Bordes et al., NIPS 2013): `score = −‖h + r − t‖₂`.
//!
//! Applied to the DEKG setting via the paper's protocol: embeddings for
//! unseen entities are allocated (and randomly initialized) but never
//! trained — only original-KG triples produce gradients. The residual
//! bridging-link signal the paper observes comes from the trained
//! relation vectors: `−‖h_seen + r − t_random‖` still carries
//! information about `h` and `r`.

use crate::embed_common::{train_margin, EmbeddingConfig};
use dekg_core::{InferenceGraph, LinkPredictor, TrainReport, TrainableModel};
use dekg_datasets::DekgDataset;
use dekg_kg::Triple;
use dekg_tensor::{init, Graph, ParamId, ParamStore, Var};
use rand::RngCore;

/// The TransE baseline.
#[derive(Debug)]
pub struct TransE {
    cfg: EmbeddingConfig,
    params: ParamStore,
    entities: ParamId,
    relations: ParamId,
}

impl TransE {
    /// Allocates embeddings for `dataset`'s full entity universe.
    pub fn new(cfg: EmbeddingConfig, dataset: &DekgDataset, mut rng: &mut dyn RngCore) -> Self {
        cfg.validate();
        let mut params = ParamStore::new();
        let mut ent_init = init::xavier_uniform([dataset.num_entities(), cfg.dim], &mut rng);
        // TransE constrains entity embeddings to the unit sphere; this
        // also puts never-trained (unseen) rows on the same scale as
        // trained ones, as the original algorithm guarantees.
        crate::embed_common::normalize_rows(&mut ent_init);
        let entities = params.insert("transe.entities", ent_init);
        let relations = params.insert(
            "transe.relations",
            init::xavier_uniform([dataset.num_relations, cfg.dim], &mut rng),
        );
        TransE { cfg, params, entities, relations }
    }

    /// The model configuration.
    pub fn config(&self) -> &EmbeddingConfig {
        &self.cfg
    }

    fn score_var(&self, g: &mut Graph, params: &ParamStore, triples: &[Triple]) -> Var {
        let heads: Vec<usize> = triples.iter().map(|t| t.head.index()).collect();
        let rels: Vec<usize> = triples.iter().map(|t| t.rel.index()).collect();
        let tails: Vec<usize> = triples.iter().map(|t| t.tail.index()).collect();
        let ent = g.param(params, self.entities);
        let rel = g.param(params, self.relations);
        let h = g.gather_rows(ent, &heads);
        let r = g.gather_rows(rel, &rels);
        let t = g.gather_rows(ent, &tails);
        let hr = g.add(h, r);
        let dist = g.rowwise_dist(hr, t);
        g.neg(dist)
    }
}

impl LinkPredictor for TransE {
    fn name(&self) -> &'static str {
        "TransE"
    }

    fn score_batch(&self, _graph: &InferenceGraph, triples: &[Triple]) -> Vec<f32> {
        if triples.is_empty() {
            return Vec::new();
        }
        let mut g = Graph::new();
        let s = self.score_var(&mut g, &self.params, triples);
        g.value(s).data().to_vec()
    }

    fn num_parameters(&self) -> usize {
        self.params.num_scalars()
    }
}

impl TrainableModel for TransE {
    fn fit(&mut self, dataset: &DekgDataset, rng: &mut dyn RngCore) -> TrainReport {
        let entities = self.entities;
        let relations = self.relations;
        let dim = self.cfg.dim;
        let cfg = self.cfg.clone();
        train_margin(
            &mut self.params,
            dataset,
            &cfg,
            rng,
            |g, params, triples, _rng| score_transe(g, params, entities, relations, dim, triples),
            |params| crate::embed_common::normalize_rows(params.get_mut(entities)),
        )
    }
}

/// Free-function scorer so the training closure does not borrow `self`.
fn score_transe(
    g: &mut Graph,
    params: &ParamStore,
    entities: ParamId,
    relations: ParamId,
    _dim: usize,
    triples: &[Triple],
) -> Var {
    let heads: Vec<usize> = triples.iter().map(|t| t.head.index()).collect();
    let rels: Vec<usize> = triples.iter().map(|t| t.rel.index()).collect();
    let tails: Vec<usize> = triples.iter().map(|t| t.tail.index()).collect();
    let ent = g.param(params, entities);
    let rel = g.param(params, relations);
    let h = g.gather_rows(ent, &heads);
    let r = g.gather_rows(rel, &rels);
    let t = g.gather_rows(ent, &tails);
    let hr = g.add(h, r);
    let dist = g.rowwise_dist(hr, t);
    g.neg(dist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dekg_datasets::{generate, DatasetProfile, NegativeSampler, RawKg, SplitKind, SynthConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    pub(crate) fn tiny_dataset(seed: u64) -> DekgDataset {
        let profile = DatasetProfile::table2(RawKg::Wn18rr, SplitKind::Eq).scaled(0.02);
        generate(&SynthConfig::for_profile(profile, seed))
    }

    #[test]
    fn training_improves_ranking_of_positives() {
        let d = tiny_dataset(1);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut model = TransE::new(EmbeddingConfig::quick(), &d, &mut rng);
        let report = model.fit(&d, &mut rng);
        assert!(report.improved(), "{report:?}");

        let graph = InferenceGraph::from_dataset(&d);
        let sampler = NegativeSampler::new(0..d.num_original_entities as u32, vec![&d.original]);
        let pos: Vec<Triple> = d.original.triples().iter().copied().take(50).collect();
        let neg: Vec<Triple> = pos.iter().map(|t| sampler.corrupt(t, &mut rng)).collect();
        let ps: f32 = model.score_batch(&graph, &pos).iter().sum();
        let ns: f32 = model.score_batch(&graph, &neg).iter().sum();
        assert!(ps > ns, "positives should outscore corruptions");
    }

    #[test]
    fn unseen_rows_untouched_by_training() {
        let d = tiny_dataset(2);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut model = TransE::new(EmbeddingConfig::quick(), &d, &mut rng);
        let unseen_row_before: Vec<f32> =
            model.params.get(model.entities).row(d.num_original_entities).to_vec();
        model.fit(&d, &mut rng);
        let unseen_row_after: Vec<f32> =
            model.params.get(model.entities).row(d.num_original_entities).to_vec();
        // Unseen rows receive no gradient; only the (idempotent up to
        // float rounding) norm projection touches them.
        for (a, b) in unseen_row_before.iter().zip(&unseen_row_after) {
            assert!((a - b).abs() < 1e-5, "unseen embedding must stay at its random init");
        }
        // …while seen rows moved.
        let seen_row: Vec<f32> = model.params.get(model.entities).row(0).to_vec();
        let mut rng2 = ChaCha8Rng::seed_from_u64(0);
        let fresh = TransE::new(EmbeddingConfig::quick(), &d, &mut rng2);
        assert_ne!(seen_row, fresh.params.get(fresh.entities).row(0).to_vec());
    }

    #[test]
    fn parameter_count_is_entity_plus_relation_tables() {
        let d = tiny_dataset(3);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let cfg = EmbeddingConfig::quick();
        let model = TransE::new(cfg.clone(), &d, &mut rng);
        assert_eq!(model.num_parameters(), (d.num_entities() + d.num_relations) * cfg.dim);
    }

    #[test]
    fn score_is_translation_distance() {
        let d = tiny_dataset(4);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let model = TransE::new(EmbeddingConfig::quick(), &d, &mut rng);
        let graph = InferenceGraph::from_dataset(&d);
        let t = d.original.triples()[0];
        let s = model.score(&graph, &t);
        // Manual recomputation.
        let ent = model.params.get(model.entities);
        let rel = model.params.get(model.relations);
        let mut sq = 0.0f32;
        for k in 0..model.cfg.dim {
            let v = ent.at(&[t.head.index(), k]) + rel.at(&[t.rel.index(), k])
                - ent.at(&[t.tail.index(), k]);
            sq += v * v;
        }
        assert!((s + (sq + 1e-12).sqrt()).abs() < 1e-4, "{s} vs {}", -sq.sqrt());
    }
}
