//! GEN (Baek et al., NeurIPS 2020) — graph extrapolation networks,
//! reduced to its load-bearing mechanism: unseen entities are embedded
//! by **aggregating neighbor embeddings through learned relation-wise
//! transforms**, and training *simulates* the emerging-KG scenario by
//! periodically treating seen entities as unseen (the meta-learning
//! episode structure).
//!
//! In the DEKG setting every neighbor of an unseen entity is itself
//! unseen, so the aggregation bottoms out in random initializations —
//! reproducing the paper's observation that "the final embeddings of
//! unseen entities in GEN are close to random initialized vectors".

use crate::embed_common::{train_margin, EmbeddingConfig, ShimRng};
use dekg_core::{InferenceGraph, LinkPredictor, TrainReport, TrainableModel};
use dekg_datasets::DekgDataset;
use dekg_kg::{EntityId, Triple};
use dekg_tensor::{init, Graph, ParamId, ParamStore, Var};
use rand::{Rng, RngCore};

/// Maximum neighbors aggregated per entity (degree cap for bounded
/// tape size; deterministic prefix).
const MAX_NEIGHBORS: usize = 16;

/// Probability that a training triple's endpoint is treated as a
/// simulated-unseen entity (meta-learning episode).
const SIMULATE_PROB: f64 = 0.5;

/// The GEN baseline.
#[derive(Debug)]
pub struct Gen {
    cfg: EmbeddingConfig,
    params: ParamStore,
    entities: ParamId,
    relations: ParamId,
    /// Relation-wise aggregation transforms, stored as `[R·d, d]`.
    w_agg: ParamId,
    num_original_entities: usize,
}

impl Gen {
    /// Allocates the model for `dataset`'s universe.
    pub fn new(cfg: EmbeddingConfig, dataset: &DekgDataset, mut rng: &mut dyn RngCore) -> Self {
        cfg.validate();
        let mut params = ParamStore::new();
        // Same unit-sphere constraint as TransE (GEN's decoder here is
        // translational): keeps trained and never-trained rows on one
        // scale so unseen-entity scores are artifact-free.
        let mut ent_init = init::xavier_uniform([dataset.num_entities(), cfg.dim], &mut rng);
        crate::embed_common::normalize_rows(&mut ent_init);
        let entities = params.insert("gen.entities", ent_init);
        let relations = params.insert(
            "gen.relations",
            init::xavier_uniform([dataset.num_relations, cfg.dim], &mut rng),
        );
        let w_agg = params.insert(
            "gen.w_agg",
            init::xavier_uniform([dataset.num_relations * cfg.dim, cfg.dim], &mut rng),
        );
        Gen {
            cfg,
            params,
            entities,
            relations,
            w_agg,
            num_original_entities: dataset.num_original_entities,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &EmbeddingConfig {
        &self.cfg
    }

    /// Embeds one entity: table lookup for trusted entities, neighbor
    /// aggregation for (simulated-)unseen ones. Returns `[1, d]`.
    fn embed_entity(
        &self,
        g: &mut Graph,
        params: &ParamStore,
        graph: &InferenceGraph,
        e: EntityId,
        as_unseen: bool,
    ) -> Var {
        let ent = g.param(params, self.entities);
        if !as_unseen {
            return g.gather_rows(ent, &[e.index()]);
        }
        let neighbors = graph.adjacency.neighbors(e);
        if neighbors.is_empty() {
            // Nothing to extrapolate from: the random initialization is
            // all GEN has (the paper's DEKG failure mode in its purest
            // form).
            return g.gather_rows(ent, &[e.index()]);
        }
        let w_agg = g.param(params, self.w_agg);
        let dim = self.cfg.dim;
        let mut messages = Vec::with_capacity(neighbors.len().min(MAX_NEIGHBORS));
        for n in neighbors.iter().take(MAX_NEIGHBORS) {
            let n_emb = g.gather_rows(ent, &[n.entity.index()]);
            let rows: Vec<usize> = (n.rel.index() * dim..(n.rel.index() + 1) * dim).collect();
            let w_r = g.gather_rows(w_agg, &rows);
            messages.push(g.matmul(n_emb, w_r));
        }
        let stacked = g.concat_rows(&messages);
        let mean = g.mean_axis0(stacked);
        g.reshape(mean, [1, dim])
    }

    /// TransE-style score over (possibly aggregated) embeddings.
    fn score_var(
        &self,
        g: &mut Graph,
        params: &ParamStore,
        graph: &InferenceGraph,
        triples: &[Triple],
        simulate: bool,
        rng: &mut dyn RngCore,
    ) -> Var {
        let rel = g.param(params, self.relations);
        let mut scores = Vec::with_capacity(triples.len());
        let mut rng = ShimRng(rng);
        for t in triples {
            let head_unseen = if simulate {
                rng.gen_bool(SIMULATE_PROB)
            } else {
                t.head.index() >= self.num_original_entities
            };
            let tail_unseen = if simulate {
                rng.gen_bool(SIMULATE_PROB)
            } else {
                t.tail.index() >= self.num_original_entities
            };
            let h = self.embed_entity(g, params, graph, t.head, head_unseen);
            let ta = self.embed_entity(g, params, graph, t.tail, tail_unseen);
            let r = g.gather_rows(rel, &[t.rel.index()]);
            let hr = g.add(h, r);
            let dist = g.rowwise_dist(hr, ta);
            let s = g.neg(dist);
            scores.push(g.reshape(s, [1, 1]));
        }
        let stacked = g.concat_rows(&scores);
        g.reshape(stacked, [triples.len()])
    }
}

impl LinkPredictor for Gen {
    fn name(&self) -> &'static str {
        "GEN"
    }

    fn score_batch(&self, graph: &InferenceGraph, triples: &[Triple]) -> Vec<f32> {
        if triples.is_empty() {
            return Vec::new();
        }
        let mut g = Graph::new();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        use rand::SeedableRng;
        let s = self.score_var(&mut g, &self.params, graph, triples, false, &mut rng);
        g.value(s).data().to_vec()
    }

    fn num_parameters(&self) -> usize {
        self.params.num_scalars()
    }
}

impl TrainableModel for Gen {
    fn fit(&mut self, dataset: &DekgDataset, rng: &mut dyn RngCore) -> TrainReport {
        let train_graph = InferenceGraph::training_view(dataset);
        let cfg = self.cfg.clone();
        // Work around the closure borrowing `self` mutably and
        // immutably: move params out, put them back after.
        let mut params = std::mem::take(&mut self.params);
        let this: &Gen = self;
        let report = train_margin(
            &mut params,
            dataset,
            &cfg,
            rng,
            |g, params, triples, rng| this.score_var(g, params, &train_graph, triples, true, rng),
            |params| crate::embed_common::normalize_rows(params.get_mut(this.entities)),
        );
        self.params = params;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dekg_datasets::{generate, DatasetProfile, RawKg, SplitKind, SynthConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny_dataset(seed: u64) -> DekgDataset {
        let profile = DatasetProfile::table2(RawKg::Wn18rr, SplitKind::Eq).scaled(0.015);
        generate(&SynthConfig::for_profile(profile, seed))
    }

    fn fast_cfg() -> EmbeddingConfig {
        // The per-epoch norm projection fights the optimizer early on,
        // so GEN needs a few more epochs than raw TransE to show a
        // monotone loss trend.
        EmbeddingConfig { epochs: 20, batch_size: 64, ..EmbeddingConfig::quick() }
    }

    #[test]
    fn training_improves_loss() {
        let d = tiny_dataset(1);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut model = Gen::new(fast_cfg(), &d, &mut rng);
        let report = model.fit(&d, &mut rng);
        assert!(report.improved(), "{report:?}");
    }

    #[test]
    fn unseen_entities_use_aggregation() {
        let d = tiny_dataset(2);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let model = Gen::new(fast_cfg(), &d, &mut rng);
        let graph = InferenceGraph::from_dataset(&d);
        // Score an enclosing link (both endpoints unseen): finite, and
        // distinct from the pure-table score path.
        let t = d.test_enclosing[0];
        let s = model.score(&graph, &t);
        assert!(s.is_finite());
    }

    #[test]
    fn scoring_is_deterministic() {
        let d = tiny_dataset(3);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let model = Gen::new(fast_cfg(), &d, &mut rng);
        let graph = InferenceGraph::from_dataset(&d);
        let batch = &d.test_bridging[..5.min(d.test_bridging.len())];
        assert_eq!(model.score_batch(&graph, batch), model.score_batch(&graph, batch));
    }

    #[test]
    fn isolated_unseen_entity_falls_back_to_random_init() {
        let d = tiny_dataset(4);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let model = Gen::new(fast_cfg(), &d, &mut rng);
        // Training view: unseen entities have no edges → aggregation
        // must fall back to the stored (random) row without panicking.
        let train_graph = InferenceGraph::training_view(&d);
        let unseen = EntityId(d.num_original_entities as u32);
        let mut g = Graph::new();
        let e = model.embed_entity(&mut g, &model.params, &train_graph, unseen, true);
        let stored = model.params.get(model.entities).row(unseen.index()).to_vec();
        assert_eq!(g.value(e).row(0), &stored[..]);
    }
}
