#![warn(missing_docs)]

//! # dekg-baselines
//!
//! The comparison methods of the paper's evaluation (Table III roster
//! plus the two additional Table I methods), implemented from scratch
//! behind the shared
//! [`dekg_core::LinkPredictor`]/[`dekg_core::TrainableModel`] interface:
//!
//! | Model | Family | DEKG behaviour |
//! |---|---|---|
//! | [`TransE`] | translational distance | unseen entities keep random init |
//! | [`RotatE`] | complex rotation | unseen entities keep random init |
//! | [`ConvE`] | CNN decoder | unseen entities keep random init |
//! | [`Mean`] | GNN pooling over neighbors | no seen anchors in a DEKG → pooled randomness |
//! | [`Gen`] | GNN extrapolation (meta-learned aggregation) | aggregation has no seen anchors → near-random unseen embeddings |
//! | [`NeuralLp`] | differentiable rule learning | rule bodies need observed paths → no bridging signal |
//! | [`RuleN`] | probabilistic rule mining | rules need observed paths → no bridging signal |
//! | [`Grail`] | subgraph reasoning | enclosing-only (intersection extraction collapses on bridging links) |
//! | [`Tact`] | subgraph + relation correlations | same topological limitation as GraIL |
//!
//! [`capability`] encodes the paper's Table I.

pub mod capability;
pub mod conve;
mod embed_common;
pub mod gen;
pub mod grail;
pub mod mean;
pub mod neural_lp;
pub mod rotate;
pub mod rulen;
mod subgraph_common;
pub mod tact;
pub mod transe;

pub use capability::{capability_of, Capability, MODEL_NAMES};
pub use conve::ConvE;
pub use embed_common::EmbeddingConfig;
pub use gen::Gen;
pub use grail::Grail;
pub use mean::Mean;
pub use neural_lp::{NeuralLp, NeuralLpConfig};
pub use rotate::RotatE;
pub use rulen::RuleN;
pub use subgraph_common::SubgraphModelConfig;
pub use tact::Tact;
pub use transe::TransE;
