//! Shared margin-ranking training loop for the entity-identity
//! embedding baselines (TransE, RotatE, ConvE, GEN).
//!
//! These models allocate embeddings for the *entire* entity universe
//! `E ∪ E'` up front; training touches only original-KG rows (negatives
//! are corrupted within `E`), so unseen entities keep their random
//! initialization — exactly the paper's protocol for applying
//! transductive methods inductively.

use dekg_core::TrainReport;
use dekg_datasets::{DekgDataset, NegativeSampler};
use dekg_kg::Triple;
use dekg_tensor::optim::{Adam, Optimizer};
use dekg_tensor::{Graph, ParamStore, Var};
use rand::seq::SliceRandom;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Hyperparameters shared by the embedding baselines.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmbeddingConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Learning rate.
    pub lr: f32,
    /// Training epochs (the paper runs 1000; scaled runs use fewer).
    pub epochs: usize,
    /// Batch size.
    pub batch_size: usize,
    /// Ranking-loss margin.
    pub margin: f32,
    /// Negatives per positive.
    pub neg_per_pos: usize,
    /// Global-norm gradient clip.
    pub grad_clip: f32,
}

impl Default for EmbeddingConfig {
    fn default() -> Self {
        EmbeddingConfig {
            dim: 32,
            lr: 0.01,
            epochs: 1000,
            batch_size: 128,
            margin: 1.0,
            neg_per_pos: 1,
            grad_clip: 5.0,
        }
    }
}

impl EmbeddingConfig {
    /// A fast configuration for tests and scaled experiments.
    pub fn quick() -> Self {
        EmbeddingConfig { dim: 16, epochs: 30, batch_size: 64, ..Self::default() }
    }

    /// Validates ranges.
    ///
    /// # Panics
    /// On out-of-range values.
    pub fn validate(&self) {
        assert!(self.dim > 0 && self.epochs > 0 && self.batch_size > 0);
        assert!(self.lr > 0.0 && self.margin >= 0.0 && self.grad_clip > 0.0);
        assert!(self.neg_per_pos > 0);
    }
}

/// Runs margin-ranking training, delegating the score computation to
/// `score_fn(graph, params, triples, rng) -> [len] Var`.
///
/// `epoch_hook` runs after every epoch's optimizer steps — TransE uses
/// it for its entity-norm projection; pass `|_| {}` when unneeded.
pub(crate) fn train_margin<F, H>(
    params: &mut ParamStore,
    dataset: &DekgDataset,
    cfg: &EmbeddingConfig,
    rng: &mut dyn RngCore,
    mut score_fn: F,
    mut epoch_hook: H,
) -> TrainReport
where
    F: FnMut(&mut Graph, &ParamStore, &[Triple], &mut dyn RngCore) -> Var,
    H: FnMut(&mut ParamStore),
{
    let started = Instant::now();
    let sampler =
        NegativeSampler::new(0..dataset.num_original_entities as u32, vec![&dataset.original]);
    let mut opt = Adam::new(cfg.lr);
    let mut positives: Vec<Triple> = dataset.original.triples().to_vec();
    let mut initial_loss = 0.0;
    let mut final_loss = 0.0;

    for epoch in 0..cfg.epochs {
        positives.shuffle(&mut ShimRng(rng));
        let mut epoch_loss = 0.0f64;
        let mut batches = 0usize;
        for batch in positives.chunks(cfg.batch_size) {
            let mut pos_rep = Vec::with_capacity(batch.len() * cfg.neg_per_pos);
            let mut negs = Vec::with_capacity(batch.len() * cfg.neg_per_pos);
            for t in batch {
                for _ in 0..cfg.neg_per_pos {
                    pos_rep.push(*t);
                    negs.push(sampler.corrupt(t, &mut ShimRng(rng)));
                }
            }
            let mut g = Graph::new();
            let pos_scores = score_fn(&mut g, params, &pos_rep, rng);
            let neg_scores = score_fn(&mut g, params, &negs, rng);
            let loss = g.margin_ranking_loss(pos_scores, neg_scores, cfg.margin);
            let loss_val = g.value(loss).item();
            debug_assert!(loss_val.is_finite(), "non-finite embedding loss");
            let mut grads = g.backward(loss);
            grads.clip_global_norm(cfg.grad_clip);
            opt.step(params, &grads);
            epoch_loss += loss_val as f64;
            batches += 1;
        }
        epoch_hook(params);
        let mean = if batches > 0 { (epoch_loss / batches as f64) as f32 } else { 0.0 };
        if epoch == 0 {
            initial_loss = mean;
        }
        final_loss = mean;
    }

    TrainReport {
        epochs: cfg.epochs,
        final_loss,
        initial_loss,
        seconds: started.elapsed().as_secs_f64(),
    }
}

/// Projects every row of a rank-2 tensor onto the unit L2 sphere
/// (rows with zero norm are left untouched). TransE's entity-embedding
/// constraint (Bordes et al., 2013).
pub(crate) fn normalize_rows(t: &mut dekg_tensor::Tensor) {
    let (rows, _) = t.shape().as_matrix();
    for i in 0..rows {
        let row = t.row_mut(i);
        let norm = row.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm > 0.0 {
            for x in row {
                *x /= norm;
            }
        }
    }
}

/// Sized adapter over `&mut dyn RngCore` for APIs needing `impl Rng`.
pub(crate) struct ShimRng<'a>(pub &'a mut dyn RngCore);

impl RngCore for ShimRng<'_> {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest);
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.0.try_fill_bytes(dest)
    }
}
