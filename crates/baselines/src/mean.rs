//! MEAN (Hamaguchi et al., IJCAI 2017) — the original
//! "out-of-knowledge-base entities" GNN: an unseen entity's embedding
//! is the **plain mean pool** of `T(e_neighbor + r)` propagated from its
//! neighbors, decoded translationally.
//!
//! MEAN predates GEN and is simpler: no relation-wise transform, no
//! meta-learning episodes — a single shared propagation matrix. Its
//! Table I row stops at *common* emerging KGs: the propagation needs
//! edges from seen entities, which DEKGs do not have, so unseen-entity
//! embeddings degrade to the pooled randomness of their (also unseen)
//! neighbors.

use crate::embed_common::{normalize_rows, train_margin, EmbeddingConfig, ShimRng};
use dekg_core::{InferenceGraph, LinkPredictor, TrainReport, TrainableModel};
use dekg_datasets::DekgDataset;
use dekg_kg::adjacency::Orientation;
use dekg_kg::{EntityId, Triple};
use dekg_tensor::{init, Graph, ParamId, ParamStore, Var};
use rand::{Rng, RngCore};

/// Degree cap for pooling (deterministic prefix).
const MAX_NEIGHBORS: usize = 16;

/// Probability of simulating an endpoint as unseen during training.
const SIMULATE_PROB: f64 = 0.5;

/// The MEAN baseline.
#[derive(Debug)]
pub struct Mean {
    cfg: EmbeddingConfig,
    params: ParamStore,
    entities: ParamId,
    relations: ParamId,
    /// The single shared propagation matrix `T`.
    w_prop: ParamId,
    num_original_entities: usize,
}

impl Mean {
    /// Allocates the model for `dataset`'s universe.
    pub fn new(cfg: EmbeddingConfig, dataset: &DekgDataset, mut rng: &mut dyn RngCore) -> Self {
        cfg.validate();
        let mut params = ParamStore::new();
        let mut ent_init = init::xavier_uniform([dataset.num_entities(), cfg.dim], &mut rng);
        normalize_rows(&mut ent_init);
        let entities = params.insert("mean.entities", ent_init);
        let relations = params.insert(
            "mean.relations",
            init::xavier_uniform([dataset.num_relations, cfg.dim], &mut rng),
        );
        let w_prop =
            params.insert("mean.w_prop", init::xavier_uniform([cfg.dim, cfg.dim], &mut rng));
        Mean {
            cfg,
            params,
            entities,
            relations,
            w_prop,
            num_original_entities: dataset.num_original_entities,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &EmbeddingConfig {
        &self.cfg
    }

    /// Pools an unseen entity's embedding: `mean(T · (e_n ± r))` over
    /// its neighbors; falls back to the stored row when isolated.
    fn embed_entity(
        &self,
        g: &mut Graph,
        params: &ParamStore,
        graph: &InferenceGraph,
        e: EntityId,
        as_unseen: bool,
    ) -> Var {
        let ent = g.param(params, self.entities);
        if !as_unseen {
            return g.gather_rows(ent, &[e.index()]);
        }
        let neighbors = graph.adjacency.neighbors(e);
        if neighbors.is_empty() {
            return g.gather_rows(ent, &[e.index()]);
        }
        let rel = g.param(params, self.relations);
        let w = g.param(params, self.w_prop);
        let mut messages = Vec::with_capacity(neighbors.len().min(MAX_NEIGHBORS));
        for n in neighbors.iter().take(MAX_NEIGHBORS) {
            let n_emb = g.gather_rows(ent, &[n.entity.index()]);
            let r_emb = g.gather_rows(rel, &[n.rel.index()]);
            // Translation toward the pooled entity: e ≈ n + r when the
            // neighbor is a head (n −r→ e), e ≈ n − r when a tail.
            let shifted = match n.orientation {
                Orientation::In => g.add(n_emb, r_emb),
                Orientation::Out => g.sub(n_emb, r_emb),
            };
            messages.push(g.matmul(shifted, w));
        }
        let stacked = g.concat_rows(&messages);
        let pooled = g.mean_axis0(stacked);
        g.reshape(pooled, [1, self.cfg.dim])
    }

    fn score_var(
        &self,
        g: &mut Graph,
        params: &ParamStore,
        graph: &InferenceGraph,
        triples: &[Triple],
        simulate: bool,
        rng: &mut dyn RngCore,
    ) -> Var {
        let rel = g.param(params, self.relations);
        let mut rng = ShimRng(rng);
        let mut scores = Vec::with_capacity(triples.len());
        for t in triples {
            let head_unseen = if simulate {
                rng.gen_bool(SIMULATE_PROB)
            } else {
                t.head.index() >= self.num_original_entities
            };
            let tail_unseen = if simulate {
                rng.gen_bool(SIMULATE_PROB)
            } else {
                t.tail.index() >= self.num_original_entities
            };
            let h = self.embed_entity(g, params, graph, t.head, head_unseen);
            let ta = self.embed_entity(g, params, graph, t.tail, tail_unseen);
            let r = g.gather_rows(rel, &[t.rel.index()]);
            let hr = g.add(h, r);
            let dist = g.rowwise_dist(hr, ta);
            let s = g.neg(dist);
            scores.push(g.reshape(s, [1, 1]));
        }
        let stacked = g.concat_rows(&scores);
        g.reshape(stacked, [triples.len()])
    }
}

impl LinkPredictor for Mean {
    fn name(&self) -> &'static str {
        "MEAN"
    }

    fn score_batch(&self, graph: &InferenceGraph, triples: &[Triple]) -> Vec<f32> {
        if triples.is_empty() {
            return Vec::new();
        }
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        let mut g = Graph::new();
        let s = self.score_var(&mut g, &self.params, graph, triples, false, &mut rng);
        g.value(s).data().to_vec()
    }

    fn num_parameters(&self) -> usize {
        self.params.num_scalars()
    }
}

impl TrainableModel for Mean {
    fn fit(&mut self, dataset: &DekgDataset, rng: &mut dyn RngCore) -> TrainReport {
        let train_graph = InferenceGraph::training_view(dataset);
        let cfg = self.cfg.clone();
        let mut params = std::mem::take(&mut self.params);
        let this: &Mean = self;
        let report = train_margin(
            &mut params,
            dataset,
            &cfg,
            rng,
            |g, params, triples, rng| this.score_var(g, params, &train_graph, triples, true, rng),
            |params| normalize_rows(params.get_mut(this.entities)),
        );
        self.params = params;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dekg_datasets::{generate, DatasetProfile, RawKg, SplitKind, SynthConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny_dataset(seed: u64) -> DekgDataset {
        let profile = DatasetProfile::table2(RawKg::Wn18rr, SplitKind::Eq).scaled(0.015);
        generate(&SynthConfig::for_profile(profile, seed))
    }

    fn fast_cfg() -> EmbeddingConfig {
        EmbeddingConfig { epochs: 20, batch_size: 64, ..EmbeddingConfig::quick() }
    }

    #[test]
    fn training_improves_loss() {
        let d = tiny_dataset(1);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut model = Mean::new(fast_cfg(), &d, &mut rng);
        let report = model.fit(&d, &mut rng);
        assert!(report.improved(), "{report:?}");
    }

    #[test]
    fn scores_finite_on_all_classes() {
        let d = tiny_dataset(2);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let model = Mean::new(fast_cfg(), &d, &mut rng);
        let graph = InferenceGraph::from_dataset(&d);
        for batch in [&d.test_enclosing[..3], &d.test_bridging[..3]] {
            assert!(model.score_batch(&graph, batch).iter().all(|s| s.is_finite()));
        }
    }

    #[test]
    fn fewer_parameters_than_gen() {
        // MEAN's single propagation matrix vs GEN's per-relation stack.
        let d = tiny_dataset(3);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mean = Mean::new(fast_cfg(), &d, &mut rng);
        let mut rng2 = ChaCha8Rng::seed_from_u64(0);
        let gen = crate::gen::Gen::new(fast_cfg(), &d, &mut rng2);
        assert!(mean.num_parameters() < gen.num_parameters());
    }

    #[test]
    fn isolated_unseen_falls_back_to_init() {
        let d = tiny_dataset(4);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let model = Mean::new(fast_cfg(), &d, &mut rng);
        let train_graph = InferenceGraph::training_view(&d);
        let unseen = EntityId(d.num_original_entities as u32);
        let mut g = Graph::new();
        let e = model.embed_entity(&mut g, &model.params, &train_graph, unseen, true);
        let stored = model.params.get(model.entities).row(unseen.index()).to_vec();
        assert_eq!(g.value(e).row(0), &stored[..]);
    }
}
