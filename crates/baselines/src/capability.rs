//! The paper's Table I: which tasks each method can handle.

use serde::{Deserialize, Serialize};

/// The model names of Table I, in paper order.
pub const MODEL_NAMES: [&str; 10] =
    ["TransE", "RotatE", "ConvE", "MEAN", "GEN", "Neural LP", "RuleN", "Grail", "TACT", "DEKG-ILP"];

/// One row of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Capability {
    /// Transductive link prediction.
    pub transductive: bool,
    /// Inductive prediction on a *common* emerging KG (edges to `G`
    /// observed).
    pub common_emerging: bool,
    /// Enclosing links in a *disconnected* emerging KG.
    pub dekg_enclosing: bool,
    /// Bridging links in a disconnected emerging KG.
    pub dekg_bridging: bool,
}

/// Looks up a model's Table I row.
///
/// # Panics
/// If `name` is not one of [`MODEL_NAMES`].
pub fn capability_of(name: &str) -> Capability {
    let cap = |t, c, e, b| Capability {
        transductive: t,
        common_emerging: c,
        dekg_enclosing: e,
        dekg_bridging: b,
    };
    match name {
        "TransE" | "RotatE" | "ConvE" => cap(true, false, false, false),
        "MEAN" => cap(true, true, false, false),
        "GEN" => cap(true, true, false, false),
        "Neural LP" | "RuleN" | "Grail" | "TACT" => cap(true, true, true, false),
        "DEKG-ILP" => cap(true, true, true, true),
        other => panic!("unknown model {other:?} (Table I covers {MODEL_NAMES:?})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_dekg_ilp_handles_bridging() {
        for name in MODEL_NAMES {
            let c = capability_of(name);
            assert_eq!(c.dekg_bridging, name == "DEKG-ILP", "{name}");
        }
    }

    #[test]
    fn every_model_is_transductive_capable() {
        for name in MODEL_NAMES {
            assert!(capability_of(name).transductive, "{name}");
        }
    }

    #[test]
    fn subgraph_and_rule_methods_handle_enclosing() {
        for name in ["RuleN", "Grail", "TACT", "Neural LP", "DEKG-ILP"] {
            assert!(capability_of(name).dekg_enclosing, "{name}");
        }
        for name in ["TransE", "RotatE", "ConvE", "MEAN", "GEN"] {
            assert!(!capability_of(name).dekg_enclosing, "{name}");
        }
    }

    #[test]
    #[should_panic(expected = "unknown model")]
    fn unknown_model_panics() {
        capability_of("BERT");
    }
}
