//! RotatE (Sun et al., ICLR 2019): relations as rotations in complex
//! space — `score = −‖h ∘ r − t‖` with `|r_i| = 1` enforced by storing
//! relation *phases*.

use crate::embed_common::{train_margin, EmbeddingConfig};
use dekg_core::{InferenceGraph, LinkPredictor, TrainReport, TrainableModel};
use dekg_datasets::DekgDataset;
use dekg_kg::Triple;
use dekg_tensor::{init, Graph, ParamId, ParamStore, Var};
use rand::RngCore;

/// The RotatE baseline. Entities are complex vectors stored as separate
/// real/imaginary tables; relations are phase vectors `θ` applied as
/// `e^{iθ}` rotations.
#[derive(Debug)]
pub struct RotatE {
    cfg: EmbeddingConfig,
    params: ParamStore,
    ent_re: ParamId,
    ent_im: ParamId,
    rel_phase: ParamId,
}

impl RotatE {
    /// Allocates embeddings for the full entity universe.
    pub fn new(cfg: EmbeddingConfig, dataset: &DekgDataset, mut rng: &mut dyn RngCore) -> Self {
        cfg.validate();
        let mut params = ParamStore::new();
        let n = dataset.num_entities();
        let ent_re = params.insert("rotate.ent_re", init::xavier_uniform([n, cfg.dim], &mut rng));
        let ent_im = params.insert("rotate.ent_im", init::xavier_uniform([n, cfg.dim], &mut rng));
        let rel_phase = params.insert(
            "rotate.rel_phase",
            init::uniform(
                [dataset.num_relations, cfg.dim],
                -std::f32::consts::PI,
                std::f32::consts::PI,
                &mut rng,
            ),
        );
        RotatE { cfg, params, ent_re, ent_im, rel_phase }
    }

    /// The model configuration.
    pub fn config(&self) -> &EmbeddingConfig {
        &self.cfg
    }
}

/// Complex rotation score: `−sqrt(‖re(h∘r−t)‖² + ‖im(h∘r−t)‖²)` rowwise.
fn score_rotate(
    g: &mut Graph,
    params: &ParamStore,
    ids: (ParamId, ParamId, ParamId),
    triples: &[Triple],
) -> Var {
    let (ent_re_id, ent_im_id, rel_phase_id) = ids;
    let heads: Vec<usize> = triples.iter().map(|t| t.head.index()).collect();
    let rels: Vec<usize> = triples.iter().map(|t| t.rel.index()).collect();
    let tails: Vec<usize> = triples.iter().map(|t| t.tail.index()).collect();

    let ent_re = g.param(params, ent_re_id);
    let ent_im = g.param(params, ent_im_id);
    let phase = g.param(params, rel_phase_id);

    let h_re = g.gather_rows(ent_re, &heads);
    let h_im = g.gather_rows(ent_im, &heads);
    let t_re = g.gather_rows(ent_re, &tails);
    let t_im = g.gather_rows(ent_im, &tails);
    let theta = g.gather_rows(phase, &rels);
    let cos = g.cos(theta);
    let sin = g.sin(theta);

    // (h_re + i·h_im)(cos + i·sin) = (h_re·cos − h_im·sin) + i(h_re·sin + h_im·cos)
    let rr = g.mul(h_re, cos);
    let ii = g.mul(h_im, sin);
    let rot_re = g.sub(rr, ii);
    let ri = g.mul(h_re, sin);
    let ir = g.mul(h_im, cos);
    let rot_im = g.add(ri, ir);

    let d_re = g.sub(rot_re, t_re);
    let d_im = g.sub(rot_im, t_im);
    let sq_re = g.square(d_re);
    let sq_im = g.square(d_im);
    let sq = g.add(sq_re, sq_im);
    let row_sq = g.sum_axis1(sq);
    let eps = g.add_scalar(row_sq, 1e-12);
    let dist = g.sqrt(eps);
    g.neg(dist)
}

impl LinkPredictor for RotatE {
    fn name(&self) -> &'static str {
        "RotatE"
    }

    fn score_batch(&self, _graph: &InferenceGraph, triples: &[Triple]) -> Vec<f32> {
        if triples.is_empty() {
            return Vec::new();
        }
        let mut g = Graph::new();
        let s =
            score_rotate(&mut g, &self.params, (self.ent_re, self.ent_im, self.rel_phase), triples);
        g.value(s).data().to_vec()
    }

    fn num_parameters(&self) -> usize {
        self.params.num_scalars()
    }
}

impl TrainableModel for RotatE {
    fn fit(&mut self, dataset: &DekgDataset, rng: &mut dyn RngCore) -> TrainReport {
        let ids = (self.ent_re, self.ent_im, self.rel_phase);
        let cfg = self.cfg.clone();
        train_margin(
            &mut self.params,
            dataset,
            &cfg,
            rng,
            |g, params, triples, _| score_rotate(g, params, ids, triples),
            |_| {},
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dekg_datasets::{generate, DatasetProfile, RawKg, SplitKind, SynthConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny_dataset(seed: u64) -> DekgDataset {
        let profile = DatasetProfile::table2(RawKg::Wn18rr, SplitKind::Eq).scaled(0.02);
        generate(&SynthConfig::for_profile(profile, seed))
    }

    #[test]
    fn rotation_preserves_norm() {
        // |h ∘ r| = |h| for unit rotations: score of (h, r, h-rotated)
        // should be ~0 when t equals the rotated head. We check the
        // weaker invariant that scoring runs and is finite.
        let d = tiny_dataset(1);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let model = RotatE::new(EmbeddingConfig::quick(), &d, &mut rng);
        let graph = InferenceGraph::from_dataset(&d);
        let scores = model.score_batch(&graph, d.original.triples());
        assert!(scores.iter().all(|s| s.is_finite() && *s <= 0.0));
    }

    #[test]
    fn training_improves_loss() {
        let d = tiny_dataset(2);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut model = RotatE::new(EmbeddingConfig::quick(), &d, &mut rng);
        let report = model.fit(&d, &mut rng);
        assert!(report.improved(), "{report:?}");
    }

    #[test]
    fn parameter_count_doubles_entities() {
        let d = tiny_dataset(3);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let cfg = EmbeddingConfig::quick();
        let model = RotatE::new(cfg.clone(), &d, &mut rng);
        assert_eq!(model.num_parameters(), (2 * d.num_entities() + d.num_relations) * cfg.dim);
    }

    #[test]
    fn identity_rotation_matches_translation_free_distance() {
        // Zero phases → score(h, r, t) = −‖h − t‖ in complex space.
        let d = tiny_dataset(4);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut model = RotatE::new(EmbeddingConfig::quick(), &d, &mut rng);
        let phase = model.params.id_of("rotate.rel_phase").unwrap();
        for x in model.params.get_mut(phase).data_mut() {
            *x = 0.0;
        }
        let graph = InferenceGraph::from_dataset(&d);
        let t = d.original.triples()[0];
        let s = model.score(&graph, &t);
        let re = model.params.get(model.ent_re);
        let im = model.params.get(model.ent_im);
        let mut sq = 0.0f32;
        for k in 0..model.cfg.dim {
            let dr = re.at(&[t.head.index(), k]) - re.at(&[t.tail.index(), k]);
            let di = im.at(&[t.head.index(), k]) - im.at(&[t.tail.index(), k]);
            sq += dr * dr + di * di;
        }
        assert!((s + sq.sqrt()).abs() < 1e-4);
    }
}
