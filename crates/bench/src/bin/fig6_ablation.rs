//! Regenerates **Fig. 6**: the ablation study — Hits@10 of DEKG-ILP
//! against its -R (no semantic score), -C (no contrastive loss) and
//! -N (original GraIL labeling) variants, per link class.
//!
//! ```sh
//! cargo run --release -p dekg-bench --bin fig6_ablation -- --raw fb --split mb
//! ```

use dekg_bench::{run_models_on_dataset, zoo, ExperimentOpts};
use dekg_eval::report::{bar_chart, fmt3};
use dekg_eval::Table;

fn main() {
    let mut opts = ExperimentOpts::from_args();
    if opts.models.is_empty() {
        opts.models = zoo::ABLATION_MODELS.iter().map(ToString::to_string).collect();
    }
    let models = opts.model_names();
    println!("Fig. 6 — ablation study, Hits@10 per link class (scale {:.2})\n", opts.scale);

    let mut all_cells = Vec::new();
    for raw in opts.raw_kgs() {
        for split in opts.split_kinds() {
            let cells = run_models_on_dataset(raw, split, &models, &opts);
            println!("== {} ==", cells[0].dataset);
            let mut table =
                Table::new(vec!["variant", "enclosing H@10", "bridging H@10", "overall H@10"]);
            for cell in &cells {
                table.add_row(vec![
                    cell.model.clone(),
                    fmt3(cell.result.enclosing.hits_at(10)),
                    fmt3(cell.result.bridging.hits_at(10)),
                    fmt3(cell.result.overall.hits_at(10)),
                ]);
            }
            println!("{}", table.render());
            let bars: Vec<(&str, f64)> =
                cells.iter().map(|c| (c.model.as_str(), c.result.bridging.hits_at(10))).collect();
            println!("bridging Hits@10:");
            println!("{}", bar_chart(&bars, 1.0, 40));
            all_cells.extend(cells);
        }
    }
    opts.save_json("fig6_ablation.json", &all_cells);
    println!("raw rows saved to {}/fig6_ablation.json", opts.out_dir);
}
