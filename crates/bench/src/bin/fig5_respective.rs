//! Regenerates **Fig. 5**: the respective study — Hits@10 on
//! enclosing-only and bridging-only test sets per model and dataset.
//!
//! The paper's Fig. 5 compares DEKG-ILP, Grail, TACT, TransE, RuleN
//! and GEN; the same roster is the default here.
//!
//! ```sh
//! cargo run --release -p dekg-bench --bin fig5_respective -- --raw fb --split eq
//! ```

use dekg_bench::{run_models_on_dataset, ExperimentOpts};
use dekg_eval::report::{bar_chart, fmt3};
use dekg_eval::Table;

fn main() {
    let mut opts = ExperimentOpts::from_args();
    if opts.models.is_empty() {
        opts.models = ["TransE", "GEN", "RuleN", "Grail", "TACT", "DEKG-ILP"]
            .iter()
            .map(ToString::to_string)
            .collect();
    }
    let models = opts.model_names();
    println!("Fig. 5 — enclosing-only vs bridging-only Hits@10 (scale {:.2})\n", opts.scale);

    let mut all_cells = Vec::new();
    for raw in opts.raw_kgs() {
        for split in opts.split_kinds() {
            let cells = run_models_on_dataset(raw, split, &models, &opts);
            println!("== {} ==", cells[0].dataset);
            let mut table = Table::new(vec![
                "model",
                "enclosing H@10",
                "bridging H@10",
                "enclosing MRR",
                "bridging MRR",
            ]);
            for cell in &cells {
                table.add_row(vec![
                    cell.model.clone(),
                    fmt3(cell.result.enclosing.hits_at(10)),
                    fmt3(cell.result.bridging.hits_at(10)),
                    fmt3(cell.result.enclosing.mrr),
                    fmt3(cell.result.bridging.mrr),
                ]);
            }
            println!("{}", table.render());
            for (title, pick) in [("enclosing Hits@10", 0usize), ("bridging Hits@10", 1usize)] {
                let bars: Vec<(&str, f64)> = cells
                    .iter()
                    .map(|c| {
                        let m = if pick == 0 { &c.result.enclosing } else { &c.result.bridging };
                        (c.model.as_str(), m.hits_at(10))
                    })
                    .collect();
                println!("{title}:");
                println!("{}", bar_chart(&bars, 1.0, 40));
            }
            all_cells.extend(cells);
        }
    }
    opts.save_json("fig5_respective.json", &all_cells);
    println!("raw rows saved to {}/fig5_respective.json", opts.out_dir);
}
