//! Regenerates **Table II**: the statistics of all nine evaluation
//! datasets. Prints the paper's targets next to what the synthetic
//! generator achieves at the chosen `--scale`.
//!
//! ```sh
//! cargo run --release -p dekg-bench --bin table2_datasets -- --scale 0.1
//! ```

use dekg_bench::ExperimentOpts;
use dekg_datasets::{DatasetProfile, DatasetStats};
use dekg_eval::Table;

fn main() {
    let opts = ExperimentOpts::from_args();
    println!("Table II — dataset statistics (targets scaled by {:.2})\n", opts.scale);
    let mut table = Table::new(vec![
        "dataset",
        "graph",
        "|R| target",
        "|R| got",
        "|E| target",
        "|E| got",
        "|T| target",
        "|T| got",
    ]);
    let mut json_rows = Vec::new();
    for split in opts.split_kinds() {
        for raw in opts.raw_kgs() {
            let target = DatasetProfile::table2(raw, split).scaled(opts.scale);
            let data = opts.dataset(raw, split, 0);
            let stats = DatasetStats::of(&data);
            table.add_row(vec![
                target.name(),
                "G".into(),
                target.relations_g.to_string(),
                stats.original.relations.to_string(),
                target.entities_g.to_string(),
                stats.original.entities.to_string(),
                target.triples_g.to_string(),
                stats.original.triples.to_string(),
            ]);
            table.add_row(vec![
                String::new(),
                "G'".into(),
                target.relations_gp.to_string(),
                stats.emerging.relations.to_string(),
                target.entities_gp.to_string(),
                stats.emerging.entities.to_string(),
                target.triples_gp.to_string(),
                stats.emerging.triples.to_string(),
            ]);
            json_rows.push(stats);
        }
    }
    println!("{}", table.render());
    opts.save_json("table2_datasets.json", &json_rows);
    println!("(held-out pools: see results/table2_datasets.json)");
}
