//! Regenerates **Table I**: the capability matrix of all evaluated
//! methods across transductive / common-emerging / DEKG-enclosing /
//! DEKG-bridging tasks.
//!
//! ```sh
//! cargo run -p dekg-bench --bin table1_capabilities
//! ```

use dekg_baselines::{capability_of, MODEL_NAMES};
use dekg_eval::Table;

fn main() {
    let mark = |b: bool| if b { "yes" } else { "-" }.to_owned();
    let mut table = Table::new(vec![
        "model",
        "transductive",
        "common emerging KG",
        "DEKG enclosing",
        "DEKG bridging",
    ]);
    for name in MODEL_NAMES {
        let c = capability_of(name);
        table.add_row(vec![
            name.to_owned(),
            mark(c.transductive),
            mark(c.common_emerging),
            mark(c.dekg_enclosing),
            mark(c.dekg_bridging),
        ]);
    }
    println!("Table I — KG link prediction capability matrix\n");
    println!("{}", table.render());
    println!("Only DEKG-ILP covers bridging links in disconnected emerging KGs.");
}
