//! Protocol ablation: how does the candidate-sampling shortcut (our
//! CPU-scale substitute for the paper's rank-against-everything
//! protocol) affect metrics and, crucially, model *ordering*?
//!
//! Runs the same trained models under K ∈ {10, 30, 50, full} sampled
//! candidates. Absolute MRR/Hits inflate as K shrinks, but the ranking
//! of models must stay put for the scaled protocol to be a valid
//! stand-in — this binary is the evidence behind that claim in
//! `EXPERIMENTS.md`.
//!
//! ```sh
//! cargo run --release -p dekg-bench --bin ablation_protocol -- --raw fb --split eq
//! ```

use dekg_bench::{zoo, ExperimentOpts};
use dekg_core::{InferenceGraph, TrainableModel};
use dekg_datasets::{MixRatio, RawKg, SplitKind, TestMix};
use dekg_eval::report::fmt3;
use dekg_eval::{evaluate, ProtocolConfig, Table};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: String,
    candidates: String,
    mrr: f64,
    hits10: f64,
}

fn main() {
    let mut opts = ExperimentOpts::from_args();
    if opts.models.is_empty() {
        opts.models =
            ["TransE", "RuleN", "Grail", "DEKG-ILP"].iter().map(ToString::to_string).collect();
    }
    let raw = *opts.raw_kgs().first().unwrap_or(&RawKg::Fb15k237);
    let split = *opts.split_kinds().first().unwrap_or(&SplitKind::Eq);
    let dataset = opts.dataset(raw, split, 0);
    println!("Protocol ablation on {} — metric vs candidate count\n", dataset.name);

    let graph = InferenceGraph::from_dataset(&dataset);
    let mix = TestMix::build(&dataset, MixRatio::for_split(split));

    // Train each model once; evaluate under every K.
    let mut trained: Vec<(String, Box<dyn TrainableModel>)> = Vec::new();
    for name in opts.model_names() {
        let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
        let (model, _) = zoo::build_and_train(&name, &dataset, &opts, &mut rng);
        trained.push((name, model));
    }

    let ks: [Option<usize>; 4] = [Some(10), Some(30), Some(50), None];
    let mut table_cols: Vec<String> = vec!["model".into()];
    for k in ks {
        let label = k.map_or("full".to_owned(), |k| format!("K={k}"));
        table_cols.push(format!("MRR {label}"));
    }
    let mut table = Table::new(table_cols);
    let mut rows = Vec::new();
    let mut orderings: Vec<Vec<String>> = Vec::new();

    let mut per_k_scores: Vec<Vec<(String, f64)>> = vec![Vec::new(); ks.len()];
    for (name, model) in &trained {
        let mut cells = vec![name.clone()];
        for (i, k) in ks.iter().enumerate() {
            let mut protocol = match k {
                Some(k) => ProtocolConfig::sampled(*k),
                None => ProtocolConfig::default(),
            };
            protocol.seed = opts.seed;
            let r = evaluate(model.as_ref(), &graph, &dataset, &mix, &protocol);
            cells.push(fmt3(r.overall.mrr));
            per_k_scores[i].push((name.clone(), r.overall.mrr));
            rows.push(Row {
                model: name.clone(),
                candidates: k.map_or("full".into(), |k| k.to_string()),
                mrr: r.overall.mrr,
                hits10: r.overall.hits_at(10),
            });
        }
        table.add_row(cells);
    }
    println!("{}", table.render());

    for (i, k) in ks.iter().enumerate() {
        let mut order = per_k_scores[i].clone();
        order.sort_by(|a, b| b.1.total_cmp(&a.1));
        let names: Vec<String> = order.into_iter().map(|(n, _)| n).collect();
        println!(
            "ordering @ {}: {}",
            k.map_or("full".to_owned(), |k| format!("K={k}")),
            names.join(" > ")
        );
        orderings.push(names);
    }
    let stable = orderings.windows(2).all(|w| w[0] == w[1]);
    println!(
        "\nmodel ordering stable across candidate counts: {}",
        if stable { "YES" } else { "NO — see rows above" }
    );
    opts.save_json("ablation_protocol.json", &rows);
}
