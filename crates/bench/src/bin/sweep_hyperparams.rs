//! Reproduces the **Section V-D** hyperparameter grid search: learning
//! rate `lr`, feature dimension `d`, edge dropout `β` and contrastive
//! coefficient `σ`, evaluated by validation-set MRR (one axis varied at
//! a time around the paper's optimum, which is cheaper than the full
//! grid and shows the same optima).
//!
//! The paper's reported optimum is `lr = 0.01`, `d = 32`, `β = 0.5`,
//! `σ = 0.1`.
//!
//! ```sh
//! cargo run --release -p dekg-bench --bin sweep_hyperparams -- --raw fb --split eq
//! ```

use dekg_bench::ExperimentOpts;
use dekg_core::{DekgIlp, DekgIlpConfig, InferenceGraph, TrainableModel};
use dekg_datasets::{LinkClass, RawKg, SplitKind};
use dekg_eval::report::fmt3;
use dekg_eval::{evaluate_with_filter, ProtocolConfig, Table};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

#[derive(Serialize)]
struct SweepRow {
    axis: &'static str,
    value: f64,
    valid_mrr: f64,
    valid_hits10: f64,
}

fn main() {
    let opts = ExperimentOpts::from_args();
    let raw = *opts.raw_kgs().first().unwrap_or(&RawKg::Fb15k237);
    let split = *opts.split_kinds().first().unwrap_or(&SplitKind::Eq);
    let dataset = opts.dataset(raw, split, 0);
    println!("Section V-D — hyperparameter sweep on {} (validation MRR)\n", dataset.name);

    // Validation links live inside G, so models see the training view.
    let graph = InferenceGraph::training_view(&dataset);
    let mut filter = dataset.original.clone();
    for t in &dataset.valid {
        filter.insert(*t);
    }
    let valid_links: Vec<_> = dataset
        .valid
        .iter()
        .map(|&t| (t, LinkClass::Enclosing)) // class label unused here
        .collect();
    let protocol = ProtocolConfig {
        num_candidates: Some(opts.candidates.max(10)),
        seed: opts.seed,
        threads: std::thread::available_parallelism().map_or(1, |n| n.get().min(8)),
        ..Default::default()
    };

    let run = |cfg: DekgIlpConfig| -> (f64, f64) {
        let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
        let mut model = DekgIlp::new(cfg, &dataset, &mut rng);
        model.fit(&dataset, &mut rng);
        let r = evaluate_with_filter(&model, &graph, &filter, &valid_links, &protocol);
        (r.overall.mrr, r.overall.hits_at(10))
    };

    let base = DekgIlpConfig { epochs: opts.epochs, ..DekgIlpConfig::quick() };
    let mut rows: Vec<SweepRow> = Vec::new();
    let mut table = Table::new(vec!["axis", "value", "valid MRR", "valid H@10"]);

    for &lr in &[0.1f32, 0.01, 0.001, 0.0005] {
        let (mrr, h10) = run(DekgIlpConfig { lr, ..base.clone() });
        table.add_row(vec!["lr".into(), lr.to_string(), fmt3(mrr), fmt3(h10)]);
        rows.push(SweepRow { axis: "lr", value: lr as f64, valid_mrr: mrr, valid_hits10: h10 });
    }
    for &dim in &[16usize, 32, 64, 128] {
        let (mrr, h10) = run(DekgIlpConfig { dim, ..base.clone() });
        table.add_row(vec!["d".into(), dim.to_string(), fmt3(mrr), fmt3(h10)]);
        rows.push(SweepRow { axis: "d", value: dim as f64, valid_mrr: mrr, valid_hits10: h10 });
    }
    for &beta in &[0.1f32, 0.3, 0.5, 0.8] {
        let (mrr, h10) = run(DekgIlpConfig { edge_dropout: beta, ..base.clone() });
        table.add_row(vec!["beta".into(), beta.to_string(), fmt3(mrr), fmt3(h10)]);
        rows.push(SweepRow { axis: "beta", value: beta as f64, valid_mrr: mrr, valid_hits10: h10 });
    }
    for &sigma in &[0.01f32, 0.1, 0.5, 1.0] {
        let (mrr, h10) = run(DekgIlpConfig { sigma, ..base.clone() });
        table.add_row(vec!["sigma".into(), sigma.to_string(), fmt3(mrr), fmt3(h10)]);
        rows.push(SweepRow {
            axis: "sigma",
            value: sigma as f64,
            valid_mrr: mrr,
            valid_hits10: h10,
        });
    }

    println!("{}", table.render());
    opts.save_json("sweep_hyperparams.json", &rows);
    println!("raw rows saved to {}/sweep_hyperparams.json", opts.out_dir);
}
