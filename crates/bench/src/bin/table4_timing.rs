//! Regenerates **Table IV**: training time per epoch and average
//! inference time for 50 links, for every model on every dataset.
//!
//! ```sh
//! cargo run --release -p dekg-bench --bin table4_timing -- --raw nell --split eq
//! ```

use dekg_bench::{zoo, ExperimentOpts};
use dekg_core::InferenceGraph;
use dekg_eval::{time_inference_per_50, Table, TimingResult};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

/// One dataset's worth of Table IV rows.
#[derive(Serialize)]
struct DatasetTiming {
    dataset: String,
    rows: Vec<TimingResult>,
}

fn main() {
    let opts = ExperimentOpts::from_args();
    println!(
        "Table IV — training time per epoch (s) and inference time per 50 links (s), scale {:.2}\n",
        opts.scale
    );

    let mut out = Vec::new();
    for raw in opts.raw_kgs() {
        for split in opts.split_kinds() {
            let dataset = opts.dataset(raw, split, 0);
            let graph = InferenceGraph::from_dataset(&dataset);
            let links: Vec<_> =
                dataset.test_enclosing.iter().chain(&dataset.test_bridging).copied().collect();
            println!("== {} ==", dataset.name);
            let mut table = Table::new(vec!["model", "T-T s/epoch", "T-I s/50 links", "params"]);
            let mut rows = Vec::new();
            for name in opts.model_names() {
                let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
                let (model, report) = zoo::build_and_train(&name, &dataset, &opts, &mut rng);
                let per_epoch = report.seconds / report.epochs.max(1) as f64;
                let t_i = time_inference_per_50(model.as_ref(), &graph, &links, 2);
                table.add_row(vec![
                    name.clone(),
                    format!("{per_epoch:.3}"),
                    format!("{t_i:.4}"),
                    format!("{}", model.num_parameters()),
                ]);
                rows.push(TimingResult {
                    model: name,
                    train_seconds_per_epoch: per_epoch,
                    inference_seconds_per_50: t_i,
                    parameters: model.num_parameters(),
                });
            }
            println!("{}", table.render());
            out.push(DatasetTiming { dataset: dataset.name.clone(), rows });
        }
    }
    opts.save_json("table4_timing.json", &out);
    println!("raw rows saved to {}/table4_timing.json", opts.out_dir);
}
