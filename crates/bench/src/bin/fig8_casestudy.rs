//! Regenerates **Fig. 8**: the case-study embedding heat maps — the
//! concatenated endpoint embeddings of one enclosing link and one
//! bridging link, from the semantic (CLRM) and topological (GSM)
//! perspectives, rendered as 8×8 matrices (for `d = 32`) plus summary
//! activity statistics.
//!
//! ```sh
//! cargo run --release -p dekg-bench --bin fig8_casestudy
//! ```

use dekg_bench::ExperimentOpts;
use dekg_core::explain::{explain_link, LinkExplanation};
use dekg_core::{DekgIlp, DekgIlpConfig, InferenceGraph, TrainableModel};
use dekg_datasets::{RawKg, SplitKind};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

#[derive(Serialize)]
struct CaseRow {
    dataset: String,
    link_class: &'static str,
    semantic_activity: f32,
    topological_activity: f32,
    semantic_heatmap: Vec<Vec<f32>>,
    topological_heatmap: Vec<Vec<f32>>,
}

fn print_heatmap(title: &str, m: &[Vec<f32>]) {
    println!("  {title}:");
    for row in m {
        let cells: Vec<String> = row.iter().map(|v| format!("{v:>6.2}")).collect();
        println!("    [{}]", cells.join(" "));
    }
}

fn side(rows: usize, cols: usize, ex: &LinkExplanation) -> (Vec<Vec<f32>>, Vec<Vec<f32>>) {
    (ex.semantic_heatmap(rows, cols), ex.topological_heatmap(rows, cols))
}

fn main() {
    let mut opts = ExperimentOpts::from_args();
    if opts.epochs == ExperimentOpts::default().epochs {
        opts.epochs = 10; // the case study benefits from a trained model
    }
    println!("Fig. 8 — case-study embedding heat maps (scale {:.2})\n", opts.scale);

    // The paper uses an enclosing link from FB15k-237 and a bridging
    // link from NELL-995; mirror that pairing.
    let cases = [(RawKg::Fb15k237, "enclosing"), (RawKg::Nell995, "bridging")];
    let mut rows = Vec::new();
    for (raw, class) in cases {
        let dataset = opts.dataset(raw, SplitKind::Eq, 0);
        let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
        let cfg = DekgIlpConfig { dim: 32, epochs: opts.epochs, ..DekgIlpConfig::quick() };
        let mut model = DekgIlp::new(cfg, &dataset, &mut rng);
        model.fit(&dataset, &mut rng);
        let graph = InferenceGraph::from_dataset(&dataset);

        let link =
            if class == "enclosing" { dataset.test_enclosing[0] } else { dataset.test_bridging[0] };
        let ex = explain_link(&model, &graph, &link);
        let (sem, tpo) = side(8, 8, &ex);

        println!(
            "== {} — {} link ({} --{}--> {}) ==",
            dataset.name,
            class,
            dataset.vocab.entity_name(link.head),
            dataset.vocab.relation_name(link.rel),
            dataset.vocab.entity_name(link.tail),
        );
        print_heatmap("semantic embedding (e_i ⊕ e_j, 8x8)", &sem);
        print_heatmap("topological embedding (h_i ⊕ h_j, 8x8)", &tpo);
        println!(
            "  mean |activation|: semantic {:.4}, topological {:.4}\n",
            ex.semantic_activity(),
            ex.topological_activity()
        );
        rows.push(CaseRow {
            dataset: dataset.name.clone(),
            link_class: if class == "enclosing" { "enclosing" } else { "bridging" },
            semantic_activity: ex.semantic_activity(),
            topological_activity: ex.topological_activity(),
            semantic_heatmap: sem,
            topological_heatmap: tpo,
        });
    }
    opts.save_json("fig8_casestudy.json", &rows);
    println!("raw heat maps saved to {}/fig8_casestudy.json", opts.out_dir);
}
