//! Regenerates **Fig. 7**: parameter complexity and inference time of
//! every parametric model on FB15k-237 ME.
//!
//! The two axes come from different instantiations, each measured where
//! it is meaningful:
//!
//! * **Parameters** — counted on models constructed (not trained)
//!   against the *full-scale* FB15k-237 ME profile at the paper's
//!   `d = 32`, because the paper's ordering (entity-identity methods ≫
//!   TACT > DEKG-ILP > GraIL) is driven by `|E| ≫ |R|`, which profile
//!   scaling distorts. Construction is cheap; no training is needed to
//!   count weights.
//! * **Inference time** — measured on trained scaled models (average
//!   seconds to score 50 links), where the subgraph-methods ≫
//!   embedding-methods ordering is structural.
//!
//! RuleN is non-parametric (its "parameters" are mined rule
//! confidences) and is omitted, as in the paper's Fig. 7 discussion.
//!
//! ```sh
//! cargo run --release -p dekg-bench --bin fig7_complexity -- --epochs 1
//! ```

use dekg_baselines::{
    conve::ConvEConfig, ConvE, EmbeddingConfig, Gen, Grail, RotatE, SubgraphModelConfig, Tact,
    TransE,
};
use dekg_bench::{zoo, ExperimentOpts};
use dekg_core::{DekgIlp, DekgIlpConfig, InferenceGraph, TrainableModel};
use dekg_datasets::{generate, DatasetProfile, DekgDataset, RawKg, SplitKind, SynthConfig};
use dekg_eval::{time_inference_per_50, Table};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

const ROSTER: [&str; 7] = ["TransE", "RotatE", "ConvE", "GEN", "Grail", "TACT", "DEKG-ILP"];

#[derive(Serialize)]
struct Row {
    model: String,
    parameters_full_scale: usize,
    inference_seconds_per_50: f64,
}

/// Constructs (without training) a model at the paper's `d = 32`
/// against a full-scale dataset, purely for parameter counting.
fn build_paper_dims(
    name: &str,
    dataset: &DekgDataset,
    rng: &mut ChaCha8Rng,
) -> Box<dyn TrainableModel> {
    let embed = EmbeddingConfig::default();
    let sub = SubgraphModelConfig::default();
    match name {
        "TransE" => Box::new(TransE::new(embed, dataset, rng)),
        "RotatE" => Box::new(RotatE::new(embed, dataset, rng)),
        "ConvE" => Box::new(ConvE::new(ConvEConfig::default(), dataset, rng)),
        "GEN" => Box::new(Gen::new(embed, dataset, rng)),
        "Grail" => Box::new(Grail::new(sub, dataset, rng)),
        "TACT" => Box::new(Tact::new(sub, dataset, rng)),
        "DEKG-ILP" => Box::new(DekgIlp::new(DekgIlpConfig::paper(), dataset, rng)),
        other => panic!("unknown Fig. 7 model {other:?}"),
    }
}

fn main() {
    let opts = ExperimentOpts::from_args();
    println!(
        "Fig. 7 — parameter complexity (full-scale FB15k-237 ME, d = 32) and \
         inference time (scaled {:.2})\n",
        opts.scale
    );

    // Full-scale dataset for parameter counting: generate with tiny
    // held-out pools (unused here) to keep generation quick.
    let full_profile = DatasetProfile::table2(RawKg::Fb15k237, SplitKind::Me);
    let mut full_cfg = SynthConfig::for_profile(full_profile, opts.seed);
    full_cfg.num_valid = 1;
    full_cfg.num_test_enclosing = 1;
    full_cfg.num_test_bridging = 1;
    let full_dataset = generate(&full_cfg);

    // Scaled dataset + trained models for timing.
    let scaled = opts.dataset(RawKg::Fb15k237, SplitKind::Me, 0);
    let graph = InferenceGraph::from_dataset(&scaled);
    let links: Vec<_> =
        scaled.test_enclosing.iter().chain(&scaled.test_bridging).copied().collect();

    let mut table =
        Table::new(vec!["model", "parameters (full scale, d=32)", "inference s/50 links (scaled)"]);
    let mut rows = Vec::new();
    for name in ROSTER {
        let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
        let full_model = build_paper_dims(name, &full_dataset, &mut rng);
        let params = full_model.num_parameters();
        drop(full_model);

        let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
        let (timed_model, _) = zoo::build_and_train(name, &scaled, &opts, &mut rng);
        let secs = time_inference_per_50(timed_model.as_ref(), &graph, &links, 3);

        table.add_row(vec![name.to_owned(), params.to_string(), format!("{secs:.4}")]);
        rows.push(Row {
            model: name.to_owned(),
            parameters_full_scale: params,
            inference_seconds_per_50: secs,
        });
    }
    println!("{}", table.render());

    // The two orderings the paper reports.
    let p = |n: &str| rows.iter().find(|r| r.model == n).unwrap().parameters_full_scale;
    let t = |n: &str| rows.iter().find(|r| r.model == n).unwrap().inference_seconds_per_50;
    println!(
        "entity-identity methods ≫ subgraph methods on parameters: {}",
        if ["TransE", "RotatE", "ConvE", "GEN"].iter().map(|m| p(m)).min().unwrap()
            > ["Grail", "TACT", "DEKG-ILP"].iter().map(|m| p(m)).max().unwrap()
        {
            "YES"
        } else {
            "NO"
        }
    );
    println!(
        "TACT > DEKG-ILP > Grail on parameters: {}",
        if p("TACT") > p("DEKG-ILP") && p("DEKG-ILP") > p("Grail") { "YES" } else { "NO" }
    );
    println!(
        "subgraph methods slower than embedding methods at inference: {}",
        if ["Grail", "TACT", "DEKG-ILP"].iter().map(|m| t(m)).fold(f64::MAX, f64::min)
            > ["TransE", "RotatE", "GEN"].iter().map(|m| t(m)).fold(0.0, f64::max)
        {
            "YES"
        } else {
            "NO"
        }
    );
    opts.save_json("fig7_complexity.json", &rows);
    println!("raw rows saved to {}/fig7_complexity.json", opts.out_dir);
}
