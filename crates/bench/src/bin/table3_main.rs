//! Regenerates **Table III**: the main results — MRR / Hits@1 / Hits@5
//! / Hits@10 for every model on the EQ/MB/ME mixes of all three raw
//! KGs (mixed enclosing + bridging test sets).
//!
//! ```sh
//! # the default scaled sweep (see EXPERIMENTS.md):
//! cargo run --release -p dekg-bench --bin table3_main
//! # one cell, more epochs:
//! cargo run --release -p dekg-bench --bin table3_main -- --raw fb --split eq --epochs 12
//! ```

use dekg_bench::{run_models_on_dataset, ExperimentOpts};
use dekg_eval::report::fmt3;
use dekg_eval::Table;

fn main() {
    let opts = ExperimentOpts::from_args();
    let models = opts.model_names();
    println!(
        "Table III — main results (scale {:.2}, {} candidate(s) sampled, {} run(s))\n",
        opts.scale,
        if opts.candidates == 0 { "all".to_owned() } else { opts.candidates.to_string() },
        opts.runs
    );

    let mut all_cells = Vec::new();
    for raw in opts.raw_kgs() {
        for split in opts.split_kinds() {
            let cells = run_models_on_dataset(raw, split, &models, &opts);
            let name = &cells[0].dataset;
            println!("== {name} ==");
            let mut table = Table::new(vec!["model", "MRR", "Hits@1", "Hits@5", "Hits@10"]);
            for cell in &cells {
                let m = &cell.result.overall;
                table.add_row(vec![
                    cell.model.clone(),
                    fmt3(m.mrr),
                    fmt3(m.hits_at(1)),
                    fmt3(m.hits_at(5)),
                    fmt3(m.hits_at(10)),
                ]);
            }
            println!("{}", table.render());
            all_cells.extend(cells);
        }
    }
    opts.save_json("table3_main.json", &all_cells);
    println!("raw rows saved to {}/table3_main.json", opts.out_dir);
}
