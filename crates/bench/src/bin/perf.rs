//! The tracked performance harness behind `BENCH_perf.json`.
//!
//! Times the three optimized hot paths on the synthetic FB15k-237
//! profile — enclosing-subgraph extraction, one training epoch, and the
//! full filtered-ranking evaluation — each as the *seed pipeline*
//! versus the current one. For extraction and training the seed is
//! dense `O(|E|)` extraction on one thread versus sparse extraction on
//! `--threads` workers; for evaluation the seed additionally scores
//! through the autograd tape, while the current pipeline uses the
//! batched candidate-ranking engine ([`dekg_core::ScoringPath`]) — a
//! separate `batched` section isolates that engine's win over the
//! per-candidate forward-only path, and a `serve` section boots the
//! `dekg serve` daemon to split its one-time startup cost from warm
//! per-request latency. Every timed pair is also checked for identical
//! output, so the speedups are measured against a bit-equal baseline,
//! not a different computation.
//!
//! ```sh
//! cargo run --release -p dekg-bench --bin perf
//! cargo run --release -p dekg-bench --bin perf -- --threads 2 --scale 0.05 --out /tmp/p.json
//! ```
//!
//! See the "Performance" section of `EXPERIMENTS.md` for how these
//! numbers relate to the paper's Table IV, and `DESIGN.md` for why the
//! parallel pipeline is bitwise-deterministic.

use dekg_core::{DekgIlp, DekgIlpConfig, InferenceGraph, ScoringPath, TrainableModel};
use dekg_datasets::{
    generate, item_rng, loader, DatasetProfile, DekgDataset, MixRatio, RawKg, SplitKind,
    SynthConfig, TestMix,
};
use dekg_eval::{evaluate, filtered_rank, EvalResult, ProtocolConfig, RankQuery};
use dekg_kg::{DistanceBackend, EntityId, SubgraphExtractor, Triple};
use dekg_serve::{http_call, RankEngine, ServeConfig, Server};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::time::Instant;

/// Counting global allocator behind the `count-alloc` feature. Every
/// heap allocation (and growing reallocation) bumps one relaxed atomic;
/// `--alloc-check` reads it around the warmed batched scoring loop and
/// demands a delta of zero. Kept behind a feature because counting
/// perturbs the timing numbers this harness tracks.
#[cfg(feature = "count-alloc")]
mod alloc_counter {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);
    static CURRENT_BYTES: AtomicU64 = AtomicU64::new(0);
    static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

    /// Delegates to [`System`], counting `alloc`/`realloc` calls and
    /// tracking live heap bytes plus their high-water mark.
    pub struct CountingAlloc;

    fn on_alloc(size: usize) {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        let cur = CURRENT_BYTES.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
        PEAK_BYTES.fetch_max(cur, Ordering::Relaxed);
    }

    // `GlobalAlloc` is an unsafe trait; this impl only forwards to the
    // system allocator around relaxed atomic bookkeeping.
    #[allow(unsafe_code)]
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            on_alloc(layout.size());
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            CURRENT_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            CURRENT_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
            on_alloc(new_size);
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;

    /// Total allocations so far (monotonic; read before/after a region).
    pub fn count() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }

    /// Bytes currently live on the heap.
    pub fn current_bytes() -> u64 {
        CURRENT_BYTES.load(Ordering::Relaxed)
    }

    /// Resets the high-water mark to the current live size so a
    /// region's peak growth can be measured in isolation.
    pub fn reset_peak() {
        PEAK_BYTES.store(CURRENT_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// High-water mark of live heap bytes since the last [`reset_peak`].
    pub fn peak_bytes() -> u64 {
        PEAK_BYTES.load(Ordering::Relaxed)
    }
}

struct Opts {
    scale: f64,
    seed: u64,
    threads: usize,
    candidates: usize,
    epochs: usize,
    out: String,
    alloc_check: bool,
    compare: Option<String>,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            scale: 0.08,
            seed: 1,
            threads: 4,
            candidates: 30,
            epochs: 2,
            out: "BENCH_perf.json".into(),
            alloc_check: false,
            compare: None,
        }
    }
}

impl Opts {
    fn from_args() -> Self {
        let mut o = Self::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            let value = |i: usize| -> &str {
                args.get(i + 1).unwrap_or_else(|| panic!("flag {flag} needs a value"))
            };
            match flag {
                "--scale" => o.scale = value(i).parse().expect("--scale f64"),
                "--seed" => o.seed = value(i).parse().expect("--seed u64"),
                "--threads" => o.threads = value(i).parse().expect("--threads usize"),
                "--candidates" => o.candidates = value(i).parse().expect("--candidates usize"),
                "--epochs" => o.epochs = value(i).parse().expect("--epochs usize"),
                "--out" => o.out = value(i).to_owned(),
                "--compare" => o.compare = Some(value(i).to_owned()),
                "--alloc-check" => {
                    o.alloc_check = true;
                    i += 1;
                    continue;
                }
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --scale F --seed N --threads N --candidates N --epochs N \
                         --out FILE --alloc-check --compare BASELINE.json"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other:?} (try --help)"),
            }
            i += 2;
        }
        assert!(o.threads >= 1, "--threads must be at least 1");
        o
    }
}

/// One timed pipeline configuration.
#[derive(Serialize)]
struct Timed {
    backend: String,
    threads: usize,
    seconds: f64,
}

/// A timed section: baseline (seed pipeline) vs current, plus derived
/// speedup and the proof that both computed the same output.
#[derive(Serialize)]
struct Section {
    baseline: Timed,
    current: Timed,
    /// `baseline.seconds / current.seconds`.
    speedup: f64,
    /// Both variants produced bitwise-identical results.
    outputs_identical: bool,
}

fn section(baseline: Timed, current: Timed, outputs_identical: bool) -> Section {
    let speedup = if current.seconds > 0.0 { baseline.seconds / current.seconds } else { 0.0 };
    Section { baseline, current, speedup, outputs_identical }
}

/// The static tape analyzer's overhead profile: a cold analysis of one
/// production training-batch tape versus cache-served re-analysis of
/// structurally identical rebuilds, against the cost of recording the
/// tape itself (the thing any per-step analysis must amortize under).
#[derive(Serialize)]
struct TapecheckSection {
    /// Nodes in the analyzed training-batch tape.
    tape_nodes: usize,
    /// The memory plan's predicted peak for that tape.
    predicted_peak_bytes: usize,
    /// One full three-pass analysis, no cache.
    cold_analysis_seconds: f64,
    /// Recording the tape once (forward execution included).
    tape_build_seconds: f64,
    /// Steady-state cache-served analysis per rebuilt identical tape
    /// (one structure hash + lookup).
    cached_analysis_seconds: f64,
    /// Cache hits over steady-state iterations (must be 1.0).
    cache_hit_rate: f64,
    /// `cached_analysis_seconds / tape_build_seconds` — the per-step
    /// overhead `train --tape-report` adds once warm.
    amortized_overhead_ratio: f64,
}

/// Times the tape static analyzer on one production training-batch
/// tape: cold, then cache-served over identical rebuilds.
fn time_tapecheck(dataset: &DekgDataset, opts: &Opts) -> TapecheckSection {
    use dekg_datasets::NegativeSampler;

    let cfg = DekgIlpConfig { epochs: 1, ..DekgIlpConfig::quick() };
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
    let model = DekgIlp::new(cfg, dataset, &mut rng);
    let train_graph = InferenceGraph::training_view(dataset);
    let sampler =
        NegativeSampler::new(0..dataset.num_original_entities as u32, vec![&dataset.original]);
    let batch: Vec<Triple> = dataset.original.triples().iter().copied().take(8).collect();
    let build = || {
        let mut rng = ChaCha8Rng::seed_from_u64(opts.seed ^ 0x7a9e);
        let mut g = dekg_tensor::Graph::new();
        let parts = dekg_core::batch_loss_parts(
            &mut g,
            &model,
            dataset,
            &train_graph,
            &sampler,
            &batch,
            &mut rng,
        );
        (g, parts)
    };

    const ITERS: usize = 8;
    let start = Instant::now();
    let tapes: Vec<_> = (0..ITERS).map(|_| build()).collect();
    let tape_build_seconds = start.elapsed().as_secs_f64() / ITERS as f64;

    let (g, parts) = build();
    let observed = parts.observed_vars();
    let start = Instant::now();
    let report =
        dekg_tensor::tapecheck::tapecheck_with(&g, parts.total, &observed, Some(model.params()));
    let cold_analysis_seconds = start.elapsed().as_secs_f64();
    assert_eq!(report.errors(), 0, "perf harness training tape has shape errors");

    let mut cache = dekg_tensor::TapeCache::new();
    cache.analyze(&g, parts.total, &observed, Some(model.params()));
    let start = Instant::now();
    for (g2, p2) in &tapes {
        cache.analyze(g2, p2.total, &p2.observed_vars(), Some(model.params()));
    }
    let cached_analysis_seconds = start.elapsed().as_secs_f64() / ITERS as f64;
    let cache_hit_rate = cache.hits() as f64 / ITERS as f64;

    TapecheckSection {
        tape_nodes: report.num_nodes,
        predicted_peak_bytes: report.plan.peak_live_bytes,
        cold_analysis_seconds,
        tape_build_seconds,
        cached_analysis_seconds,
        cache_hit_rate,
        amortized_overhead_ratio: if tape_build_seconds > 0.0 {
            cached_analysis_seconds / tape_build_seconds
        } else {
            0.0
        },
    }
}

/// The serving daemon's cost profile: the one-time startup cost a
/// `dekg serve` operator pays before `/readyz` flips, against warm
/// per-request latency through the full HTTP → admission-batch →
/// batched-scoring path, with every served response checked byte-equal
/// to the library protocol's answer.
#[derive(Serialize)]
struct ServeSection {
    /// Scale of the serving dataset — fixed at [`SERVE_SCALE`], not
    /// `--scale`: this section measures load-once/answer-many
    /// economics, which need a serving-sized graph, not the timing
    /// microbenchmark's tiny slice (where startup would be noise).
    scale: f64,
    /// Everything `RankEngine::load` does once: dataset load, inference
    /// graph and filter construction, checkpoint restore.
    startup_seconds: f64,
    /// Concurrent clients driving the warm measurement.
    clients: usize,
    /// Total warm requests timed (after a full warm-up pass).
    requests: usize,
    /// Median warm request latency, wall time per `POST /rank`.
    warm_p50_latency_seconds: f64,
    /// 99th-percentile warm request latency.
    warm_p99_latency_seconds: f64,
    /// Warm requests served per second across all clients.
    throughput_rps: f64,
    /// Every served body byte-matched `filtered_rank` on the same
    /// checkpoint — the daemon's fidelity pin, measured under load.
    responses_identical: bool,
}

/// The serving dataset's scale (of the full synthetic FB15k-237 EQ
/// profile). Decoupled from `--scale`: the daemon's startup cost must
/// reflect a graph worth keeping resident, independent of how small
/// the timing microbenchmark's slice is.
const SERVE_SCALE: f64 = 1.0;

/// Boots a real `dekg-serve` daemon over a serving-scale dataset
/// (written to a temp dir, exactly as an operator would lay it out)
/// and measures cold startup versus warm concurrent request latency.
fn time_serve(opts: &Opts) -> ServeSection {
    let profile = DatasetProfile::table2(RawKg::Fb15k237, SplitKind::Eq).scaled(SERVE_SCALE);
    let mut synth = SynthConfig::for_profile(profile, opts.seed);
    synth.num_test_enclosing = synth.num_test_enclosing.clamp(12, 24);
    synth.num_test_bridging = synth.num_test_bridging.clamp(12, 24);
    let dataset = generate(&synth);
    let dir = std::env::temp_dir().join(format!("dekg-perf-serve-{}", std::process::id()));
    let data_dir = dir.join("data");
    std::fs::create_dir_all(&data_dir).expect("serve temp dir");
    loader::save_dir(&dataset, &data_dir).expect("save serve dataset");
    let data = data_dir.to_string_lossy().into_owned();
    // The daemon's view of the dataset is the disk round-trip (vocab
    // interning order comes from the files, not the generator).
    let served = loader::load_dir(&data, &data).expect("reload serve dataset");
    let ckpt = dir.join("model.dekg").to_string_lossy().into_owned();
    let cfg = DekgIlpConfig::quick();
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
    let model = DekgIlp::new(cfg.clone(), &served, &mut rng);
    model.save_checkpoint(&ckpt).expect("write serve checkpoint");
    let cfg_json = serde_json::to_string_pretty(&cfg).expect("render serve config");
    std::fs::write(format!("{ckpt}.json"), cfg_json).expect("write serve config");

    // Cold startup: everything the daemon does between `bind` and the
    // moment `/readyz` starts answering 200.
    let start = Instant::now();
    let engine = RankEngine::load(&data, &ckpt).expect("serve engine load");
    let startup_seconds = start.elapsed().as_secs_f64();

    // No admission linger: this probe measures per-request latency, so
    // the batcher should drain eagerly rather than wait out its window
    // (batching still happens whenever clients overlap).
    let cfg = ServeConfig { workers: opts.threads, max_wait_ms: 0, ..ServeConfig::default() };
    let server = Server::bind(cfg).expect("bind serve socket");
    let addr = server.addr().to_string();
    server.install_engine(engine);

    // The query set: tail-ranking the first held-out enclosing links,
    // with the expected reply reconstructed through the same library
    // entry points `dekg evaluate --scoring batched` uses.
    let links = served.test_enclosing.len().min(12);
    // Cheap probe queries: the section measures serving overhead (HTTP,
    // admission batching, warm workspaces), so a small candidate set
    // keeps the scoring work itself from drowning the measurement.
    let candidates = 4;
    let lib_model = DekgIlp::restore(&ckpt, &served).expect("restore serve checkpoint");
    let graph = InferenceGraph::from_dataset(&served);
    let mut filter = graph.store.clone();
    for t in served.valid.iter().chain(&served.test_enclosing).chain(&served.test_bridging) {
        filter.insert(*t);
    }
    let mut bodies = Vec::new();
    let mut expected = Vec::new();
    for li in 0..links {
        let t = served.test_enclosing[li];
        bodies.push(format!(
            "{{\"rank\": {{\"task\": \"tail\", \"head\": \"{}\", \"rel\": \"{}\", \
             \"tail\": \"{}\", \"candidates\": {candidates}, \"seed\": {}, \"index\": {li}}}}}",
            served.vocab.entity_name(t.head),
            served.vocab.relation_name(t.rel),
            served.vocab.entity_name(t.tail),
            opts.seed,
        ));
        let mut rng = item_rng(opts.seed, li as u64);
        let rank = filtered_rank(
            &lib_model,
            &graph,
            &RankQuery::Tail(t),
            &filter,
            Some(candidates),
            &mut rng,
        );
        let reply = serde_json::to_string(&serde::Value::Object(vec![
            ("task".to_owned(), serde::Value::Str("tail".to_owned())),
            ("rank".to_owned(), serde::Value::Num(serde::Number::F(rank))),
        ]))
        .expect("render expected reply");
        expected.push(reply);
    }

    // Warm-up passes: the first touch sizes every worker's scratch
    // workspace, the second settles lazy paging and branch caches.
    let mut identical = true;
    for _ in 0..2 {
        for (body, want) in bodies.iter().zip(&expected) {
            let (status, reply) =
                http_call(&addr, "POST", "/rank", Some(body)).expect("warm-up rank");
            identical &= status == 200 && reply == *want;
        }
    }

    const ROUNDS: usize = 10;
    let clients = dekg_eval::effective_threads(opts.threads).clamp(1, 4);
    let wall = Instant::now();
    let mut latencies: Vec<f64> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let (addr, bodies, expected) = (&addr, &bodies, &expected);
                scope.spawn(move || {
                    let mut lat = Vec::new();
                    let mut ok = true;
                    for round in 0..ROUNDS {
                        for i in 0..bodies.len() {
                            // Offset per client so concurrent admission
                            // batches mix different queries.
                            let qi = (i + c + round) % bodies.len();
                            let start = Instant::now();
                            let (status, reply) =
                                http_call(addr, "POST", "/rank", Some(&bodies[qi]))
                                    .expect("timed rank");
                            lat.push(start.elapsed().as_secs_f64());
                            ok &= status == 200 && reply == expected[qi];
                        }
                    }
                    (lat, ok)
                })
            })
            .collect();
        for handle in handles {
            let (lat, ok) = handle.join().expect("serve client thread");
            latencies.extend(lat);
            identical &= ok;
        }
    });
    let wall_seconds = wall.elapsed().as_secs_f64();

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);

    latencies.sort_by(f64::total_cmp);
    let requests = latencies.len();
    let percentile = |hundredths: usize| latencies[(requests - 1) * hundredths / 100];
    ServeSection {
        scale: SERVE_SCALE,
        startup_seconds,
        clients,
        requests,
        warm_p50_latency_seconds: percentile(50),
        warm_p99_latency_seconds: percentile(99),
        throughput_rps: if wall_seconds > 0.0 { requests as f64 / wall_seconds } else { 0.0 },
        responses_identical: identical,
    }
}

/// The per-op kernel profiler's observer contract, measured on the
/// production training tape: attribution coverage (how much of the
/// timed bracket the hot-op table explains), overhead (profiled vs
/// unprofiled wall time of the identical workload), and the bitwise
/// proof that arming the profiler changed no output.
#[derive(Serialize)]
struct ProfileSection {
    /// Tape executions profiled.
    batches: usize,
    /// Structurally distinct batch shapes those executions rotate over.
    distinct_structures: usize,
    /// Total tape nodes across the profiled executions.
    tape_nodes: u64,
    /// Seconds inside the tape-execution bracket of the profiled run.
    span_seconds: f64,
    /// Summed per-op kernel seconds the profiler attributed.
    attributed_seconds: f64,
    /// `attributed_seconds / span_seconds` — asserted ≥ 0.90.
    coverage: f64,
    /// Hottest op by total kernel time.
    hottest_op: String,
    /// Best-of-2 bracket seconds with the profiler off.
    unprofiled_seconds: f64,
    /// Best-of-2 bracket seconds with the profiler on.
    profiled_seconds: f64,
    /// `profiled / unprofiled - 1` — asserted < 0.05.
    overhead_ratio: f64,
    /// Loss and gradient bits identical with the profiler on and off.
    outputs_identical: bool,
}

/// Measures [`ProfileSection`]: one warm-up, then interleaved timed
/// runs of the identical workload per profiler state. The 5% overhead
/// bar is tighter than this machine's run-to-run jitter, so each
/// mode's estimate is the sum of *per-batch* minima across six
/// alternating rounds — a scheduler stall biases the comparison only
/// if it hits the same batch in every round of one mode. Rounds
/// alternate which mode runs first so monotonic drift (VM steal,
/// thermal) cannot systematically tax one mode either.
fn time_profile(dataset: &DekgDataset, opts: &Opts) -> ProfileSection {
    const BATCHES: usize = 8;
    const DISTINCT: usize = 2;
    let run = |profiled: bool| {
        dekg_core::profile_train_outputs(dataset, opts.seed, BATCHES, DISTINCT, profiled)
    };
    let fold_minima = |best: &mut [f64], sample: &[f64]| {
        for (b, s) in best.iter_mut().zip(sample) {
            *b = b.min(*s);
        }
    };
    let _ = run(false); // warm-up: page in the model, size caches
    let mut off_best = vec![f64::INFINITY; BATCHES];
    let mut on_best = vec![f64::INFINITY; BATCHES];
    let mut bits: Option<Vec<u32>> = None;
    let mut outputs_identical = true;
    for round in 0..6 {
        let first_profiled = round % 2 == 1;
        let (a, bits_a) = run(first_profiled);
        let (b, bits_b) = run(!first_profiled);
        let (off, on) = if first_profiled { (&b, &a) } else { (&a, &b) };
        fold_minima(&mut off_best, off);
        fold_minima(&mut on_best, on);
        outputs_identical &= bits_a == bits_b;
        let first = bits.get_or_insert(bits_a);
        outputs_identical &= *first == bits_b;
    }
    let unprofiled_seconds: f64 = off_best.iter().sum();
    let profiled_seconds: f64 = on_best.iter().sum();
    let report = dekg_core::profile_train(dataset, opts.seed, BATCHES, DISTINCT);
    ProfileSection {
        batches: report.batches,
        distinct_structures: DISTINCT,
        tape_nodes: report.nodes,
        span_seconds: report.span_seconds,
        attributed_seconds: report.attributed_seconds(),
        coverage: report.coverage(),
        hottest_op: report.ops.first().map(|o| o.op.to_string()).unwrap_or_default(),
        unprofiled_seconds,
        profiled_seconds,
        overhead_ratio: if unprofiled_seconds > 0.0 {
            profiled_seconds / unprofiled_seconds - 1.0
        } else {
            0.0
        },
        outputs_identical,
    }
}

#[derive(Serialize)]
struct Report {
    dataset: String,
    scale: f64,
    seed: u64,
    threads: usize,
    candidates: usize,
    epochs: usize,
    /// Worker threads actually available on this machine — on a 1-core
    /// host the parallel numbers measure overhead, and the speedups
    /// below come from the forward-only scoring path and the sparse
    /// extraction backend, not from threads.
    available_parallelism: usize,
    extraction: Section,
    train_epoch: Section,
    eval: Section,
    /// The batched candidate-ranking engine against the per-candidate
    /// forward-only pipeline — isolates what block-diagonal packing and
    /// BFS reuse add on top of dropping the tape.
    batched: Section,
    /// Static tape analysis overhead: cold vs cache-served, relative to
    /// the cost of recording the tape itself.
    tapecheck: TapecheckSection,
    /// The `dekg serve` daemon: one-time startup vs warm request
    /// latency, responses pinned byte-equal to the library protocol.
    serve: ServeSection,
    /// The per-op kernel profiler's observer contract: attribution
    /// coverage, overhead and bitwise output identity.
    profile: ProfileSection,
    eval_queries: usize,
    /// The headline number: end-to-end evaluation, seed pipeline (tape
    /// scoring, dense extraction, serial) vs current (batched scoring,
    /// sparse extraction, `threads` workers).
    end_to_end_eval_speedup: f64,
}

fn pool(threads: usize) -> rayon::ThreadPool {
    // Clamp to the machine: oversubscribed pools measure scheduler
    // overhead, not the pipeline (the eval protocol clamps the same way).
    let threads = dekg_eval::effective_threads(threads);
    rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("thread pool")
}

/// Extraction section: every test link, dense/serial vs sparse/parallel.
fn time_extraction(dataset: &DekgDataset, graph: &InferenceGraph, threads: usize) -> Section {
    let links: Vec<(EntityId, EntityId, Option<Triple>)> = dataset
        .test_enclosing
        .iter()
        .chain(&dataset.test_bridging)
        .map(|t| (t.head, t.tail, None))
        .collect();
    let hops = 2;
    let dense = SubgraphExtractor::new(&graph.adjacency, hops, dekg_kg::ExtractionMode::Union)
        .with_backend(DistanceBackend::DenseReference);
    let sparse = SubgraphExtractor::new(&graph.adjacency, hops, dekg_kg::ExtractionMode::Union);

    let start = Instant::now();
    let base_out: Vec<_> = links.iter().map(|&(h, t, ex)| dense.extract(h, t, ex)).collect();
    let base_secs = start.elapsed().as_secs_f64();

    let p = pool(threads);
    let start = Instant::now();
    let cur_out = p.install(|| sparse.extract_batch(&links));
    let cur_secs = start.elapsed().as_secs_f64();

    section(
        Timed { backend: "dense".into(), threads: 1, seconds: base_secs },
        Timed { backend: "sparse".into(), threads, seconds: cur_secs },
        base_out == cur_out,
    )
}

/// One training epoch, seed pipeline vs current. Training draws from
/// the RNG stream, so "identical output" is checked on the final loss
/// of two runs from the same seed.
fn time_train_epoch(dataset: &DekgDataset, opts: &Opts) -> Section {
    let run = |backend: DistanceBackend, threads: usize| -> (f64, f32) {
        let cfg = DekgIlpConfig { epochs: 1, ..DekgIlpConfig::quick() };
        let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
        let mut model = DekgIlp::new(cfg, dataset, &mut rng);
        model.set_distance_backend(backend);
        let p = pool(threads);
        let report = p.install(|| model.fit(dataset, &mut rng));
        (report.seconds, report.final_loss)
    };
    let (base_secs, base_loss) = run(DistanceBackend::DenseReference, 1);
    let (cur_secs, cur_loss) = run(DistanceBackend::Sparse, opts.threads);
    section(
        Timed { backend: "dense".into(), threads: 1, seconds: base_secs },
        Timed { backend: "sparse".into(), threads: opts.threads, seconds: cur_secs },
        base_loss == cur_loss,
    )
}

/// Full filtered-ranking evaluation, three ways: the seed pipeline
/// (tape scoring, dense extraction, serial), the per-candidate
/// forward-only pipeline, and the batched candidate-ranking engine.
///
/// Returns the headline section (seed vs batched), the `batched`
/// section isolating the batched engine's own win over the
/// per-candidate forward path, the query count and the batched result.
fn time_eval(
    dataset: &DekgDataset,
    graph: &InferenceGraph,
    opts: &Opts,
) -> (Section, Section, usize, EvalResult) {
    let cfg = DekgIlpConfig { epochs: opts.epochs, ..DekgIlpConfig::quick() };
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
    let mut model = DekgIlp::new(cfg, dataset, &mut rng);
    model.fit(dataset, &mut rng);

    let mix = TestMix::build(dataset, MixRatio::for_split(SplitKind::Eq));
    let mut protocol = ProtocolConfig::sampled(opts.candidates);
    protocol.seed = opts.seed;

    // Baseline: the seed pipeline — scoring through the autograd tape,
    // dense extraction, one thread.
    protocol.threads = 1;
    model.set_distance_backend(DistanceBackend::DenseReference);
    model.set_scoring_path(ScoringPath::TapeReference);
    let base = evaluate(&model, graph, dataset, &mix, &protocol);

    // Per-candidate forward-only scoring, sparse extraction, N threads
    // (the previous "current" pipeline).
    protocol.threads = opts.threads;
    model.set_distance_backend(DistanceBackend::Sparse);
    model.set_scoring_path(ScoringPath::Inference);
    let per_candidate = evaluate(&model, graph, dataset, &mix, &protocol);

    // Current: the batched candidate-ranking engine.
    model.set_scoring_path(ScoringPath::Batched);
    let batched = evaluate(&model, graph, dataset, &mix, &protocol);

    let metrics_eq = |a: &EvalResult, b: &EvalResult| {
        a.overall == b.overall && a.enclosing == b.enclosing && a.bridging == b.bridging
    };
    let eval_section = section(
        Timed { backend: "tape+dense".into(), threads: 1, seconds: base.timing.wall_seconds },
        Timed {
            backend: "batched+sparse".into(),
            threads: opts.threads,
            seconds: batched.timing.wall_seconds,
        },
        metrics_eq(&base, &batched),
    );
    let batched_section = section(
        Timed {
            backend: "inference+sparse".into(),
            threads: opts.threads,
            seconds: per_candidate.timing.wall_seconds,
        },
        Timed {
            backend: "batched+sparse".into(),
            threads: opts.threads,
            seconds: batched.timing.wall_seconds,
        },
        metrics_eq(&per_candidate, &batched),
    );
    let queries = batched.timing.queries;
    (eval_section, batched_section, queries, batched)
}

/// The zero-allocation sanitizer: builds a small model, extracts and
/// packs one candidate batch, warms the scoring workspace, then runs
/// the batched scoring loop under the counting allocator and asserts
/// the steady state never touches the heap. Guards the
/// `InferenceWorkspace`/scratch-buffer discipline the batched engine
/// was built on — a stray `Vec::new()` in the hot loop fails this run.
#[cfg(feature = "count-alloc")]
fn alloc_check(opts: &Opts) {
    use dekg_kg::BatchedSubgraphs;

    let profile = DatasetProfile::table2(RawKg::Fb15k237, SplitKind::Eq).scaled(0.02);
    let mut synth = SynthConfig::for_profile(profile, opts.seed);
    synth.num_test_enclosing = synth.num_test_enclosing.clamp(8, 24);
    synth.num_test_bridging = synth.num_test_bridging.clamp(8, 24);
    let dataset = generate(&synth);
    let graph = InferenceGraph::from_dataset(&dataset);
    let cfg = DekgIlpConfig::quick();
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
    let model = DekgIlp::new(cfg, &dataset, &mut rng);

    // Extract and pack ONCE — the sanitizer isolates the scoring loop,
    // the one region the zero-allocation contract covers.
    let extractor = SubgraphExtractor::new(&graph.adjacency, 2, dekg_kg::ExtractionMode::Union);
    let links: Vec<(EntityId, EntityId, Option<Triple>)> =
        dataset.test_enclosing.iter().map(|t| (t.head, t.tail, None)).collect();
    let sgs = extractor.extract_batch(&links);
    let batch = BatchedSubgraphs::pack(&sgs);
    let rels: Vec<dekg_kg::RelationId> = dataset.test_enclosing.iter().map(|t| t.rel).collect();

    // Predicted memory bound: the tape-based formulation of the same
    // scoring work, analyzed statically. Each candidate's autograd tape
    // gets a liveness/buffer-reuse plan; the sum of the per-candidate
    // peaks is what an optimally-scheduled tape executor would need, so
    // the workspace-based batched engine must stay at or under it in
    // steady state (it reuses warmed buffers, so its delta is ~zero).
    let predicted_peak: usize = {
        let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
        dataset
            .test_enclosing
            .iter()
            .zip(&sgs)
            .map(|(t, sg)| {
                let mut g = dekg_tensor::Graph::new();
                let score =
                    model.gsm().score_subgraph(&mut g, model.params(), sg, t.rel, false, &mut rng);
                let report = dekg_tensor::tapecheck::tapecheck_with(&g, score, &[], None);
                report.plan.peak_live_bytes
            })
            .sum()
    };

    let mut ws = dekg_core::gsm::InferenceWorkspace::new();
    let mut out: Vec<f32> = Vec::new();
    // Warm-up: the first call sizes every scratch buffer.
    model.score_packed(&batch, &rels, &mut ws, &mut out);
    let warm = out.clone();

    const ITERS: usize = 64;
    let before = alloc_counter::count();
    let live_before = alloc_counter::current_bytes();
    alloc_counter::reset_peak();
    for _ in 0..ITERS {
        out.clear();
        model.score_packed(&batch, &rels, &mut ws, &mut out);
    }
    let delta = alloc_counter::count() - before;
    let measured_peak_delta = alloc_counter::peak_bytes().saturating_sub(live_before) as usize;
    assert_eq!(out, warm, "steady-state batched scores drifted between iterations");
    println!(
        "alloc-check: {ITERS} warmed batched-scoring iterations \
         ({} candidates, {} packed nodes): {delta} heap allocations",
        rels.len(),
        batch.total_nodes(),
    );
    println!(
        "alloc-check: measured steady-state peak growth {measured_peak_delta} byte(s) vs \
         {predicted_peak} byte(s) predicted by the tape memory plan"
    );
    assert_eq!(
        delta, 0,
        "batched scoring loop allocated in steady state — a scratch buffer \
         is being rebuilt per call instead of reused from InferenceWorkspace"
    );
    assert!(
        measured_peak_delta <= predicted_peak,
        "steady-state batched scoring grew the heap by {measured_peak_delta} byte(s), more \
         than the {predicted_peak} byte(s) the static tape memory plan predicts"
    );
    record_alloc_check(&opts.out, ITERS, rels.len(), delta, predicted_peak, measured_peak_delta);
    println!("alloc-check: OK — steady-state batched scoring is allocation-free");
}

/// Merges an `alloc_check` section into the JSON report at `out`
/// (creating the file when absent), preserving every other key a prior
/// default `perf` run wrote.
#[cfg(feature = "count-alloc")]
fn record_alloc_check(
    out: &str,
    iters: usize,
    candidates: usize,
    allocations: u64,
    predicted_peak: usize,
    measured_peak_delta: usize,
) {
    use serde::{Number, Value};
    let num = |n: u64| Value::Num(Number::U(n));
    let section = Value::Object(vec![
        ("iterations".into(), num(iters as u64)),
        ("candidates".into(), num(candidates as u64)),
        ("steady_state_allocations".into(), num(allocations)),
        ("predicted_peak_bytes".into(), num(predicted_peak as u64)),
        ("measured_peak_delta_bytes".into(), num(measured_peak_delta as u64)),
    ]);
    let mut root = match std::fs::read_to_string(out) {
        Ok(text) => match serde_json::parse_value(&text) {
            Ok(Value::Object(pairs)) => pairs,
            _ => {
                eprintln!("{out}: existing report is not a JSON object; rewriting");
                Vec::new()
            }
        },
        Err(_) => Vec::new(),
    };
    match root.iter_mut().find(|(k, _)| k == "alloc_check") {
        Some((_, v)) => *v = section,
        None => root.push(("alloc_check".into(), section)),
    }
    let text = serde_json::to_string_pretty(&Value::Object(root)).expect("render alloc_check");
    if let Err(e) = std::fs::write(out, text) {
        eprintln!("could not write {out}: {e}");
        std::process::exit(1);
    }
    println!("alloc-check: predicted-vs-measured peak recorded in {out}");
}

#[cfg(not(feature = "count-alloc"))]
fn alloc_check(_opts: &Opts) {
    eprintln!(
        "--alloc-check needs the counting allocator: rebuild with \
         `cargo run --release -p dekg-bench --features count-alloc --bin perf -- --alloc-check`"
    );
    std::process::exit(2);
}

/// The ratio metrics the regression watchdog tracks: dotted paths into
/// the report JSON where *lower means slower* (speedups, attribution
/// coverage). A metric present in the baseline but missing from the
/// current report is also a failure — a tracked number can't silently
/// disappear.
const TRACKED_RATIOS: &[&str] = &[
    "extraction.speedup",
    "train_epoch.speedup",
    "eval.speedup",
    "batched.speedup",
    "end_to_end_eval_speedup",
    "profile.coverage",
];

/// How far a tracked ratio may drift below its baseline before the
/// watchdog calls it a regression. Perf boxes are noisy and several
/// sections time sub-second regions, so the bar is deliberately loose:
/// a real regression (lost parallelism, a pessimized kernel, attribution
/// hooks falling off a path) overshoots 40% drift; run-to-run jitter
/// does not.
const COMPARE_TOLERANCE: f64 = 0.6;

/// Follows a dotted path (`"eval.speedup"`) through nested JSON
/// objects to a number.
fn lookup(root: &serde::Value, path: &str) -> Option<f64> {
    let mut v = root;
    for key in path.split('.') {
        let serde::Value::Object(pairs) = v else { return None };
        v = &pairs.iter().find(|(k, _)| k == key)?.1;
    }
    match v {
        serde::Value::Num(serde::Number::I(i)) => Some(*i as f64),
        serde::Value::Num(serde::Number::U(u)) => Some(*u as f64),
        serde::Value::Num(serde::Number::F(f)) => Some(*f),
        _ => None,
    }
}

/// Collects every boolean field named `*identical*` anywhere in the
/// report — the output-fidelity pins (`outputs_identical`,
/// `responses_identical`) the watchdog refuses to see `false`.
fn collect_identity_pins(v: &serde::Value, prefix: &str, out: &mut Vec<(String, bool)>) {
    if let serde::Value::Object(pairs) = v {
        for (k, child) in pairs {
            let path = if prefix.is_empty() { k.clone() } else { format!("{prefix}.{k}") };
            match child {
                serde::Value::Bool(b) if k.contains("identical") => out.push((path, *b)),
                _ => collect_identity_pins(child, &path, out),
            }
        }
    }
}

/// `perf --compare BASELINE.json`: the perf-regression watchdog. A pure
/// file-vs-file check — no measurement — comparing the report at
/// `--out` (the current run, default `BENCH_perf.json`) against a
/// baseline report. Exits nonzero when any tracked speedup/coverage
/// ratio fell beyond [`COMPARE_TOLERANCE`], disappeared, or any
/// output-identity pin in the current report is `false`.
fn compare_reports(baseline_path: &str, current_path: &str) {
    let load = |path: &str| -> serde::Value {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("perf --compare: cannot read {path}: {e}");
            std::process::exit(2);
        });
        serde_json::parse_value(&text).unwrap_or_else(|e| {
            eprintln!("perf --compare: {path} is not valid JSON: {e}");
            std::process::exit(2);
        })
    };
    let baseline = load(baseline_path);
    let current = load(current_path);
    let mut regressions = 0usize;
    for path in TRACKED_RATIOS {
        let Some(base) = lookup(&baseline, path) else {
            println!("  {path}: not in baseline, skipped");
            continue;
        };
        match lookup(&current, path) {
            None => {
                eprintln!(
                    "  {path}: REGRESSION — tracked in baseline ({base:.3}) but missing \
                           from {current_path}"
                );
                regressions += 1;
            }
            Some(cur) if cur < base * COMPARE_TOLERANCE => {
                eprintln!(
                    "  {path}: REGRESSION — {cur:.3} is below {:.3} ({:.0}% of the \
                     baseline {base:.3})",
                    base * COMPARE_TOLERANCE,
                    COMPARE_TOLERANCE * 100.0
                );
                regressions += 1;
            }
            Some(cur) => {
                println!("  {path}: ok ({cur:.3} vs baseline {base:.3})");
            }
        }
    }
    let mut pins = Vec::new();
    collect_identity_pins(&current, "", &mut pins);
    for (path, ok) in pins {
        if !ok {
            eprintln!("  {path}: REGRESSION — output-identity pin is false in {current_path}");
            regressions += 1;
        }
    }
    if regressions > 0 {
        eprintln!(
            "perf --compare: {regressions} regression(s) in {current_path} vs {baseline_path}"
        );
        std::process::exit(1);
    }
    println!("perf --compare: {current_path} holds every tracked ratio of {baseline_path}");
}

fn main() {
    // The tracked numbers must not include span-timer overhead, however
    // small — this harness measures the pipeline, not the telemetry.
    dekg_obs::set_spans_enabled(false);
    let opts = Opts::from_args();
    if let Some(baseline) = &opts.compare {
        compare_reports(baseline, &opts.out);
        return;
    }
    if opts.alloc_check {
        alloc_check(&opts);
        return;
    }
    let profile = DatasetProfile::table2(RawKg::Fb15k237, SplitKind::Eq).scaled(opts.scale);
    let mut synth = SynthConfig::for_profile(profile, opts.seed);
    synth.num_test_enclosing = synth.num_test_enclosing.clamp(40, 120);
    synth.num_test_bridging = synth.num_test_bridging.clamp(40, 120);
    let dataset = generate(&synth);
    let graph = InferenceGraph::from_dataset(&dataset);
    println!(
        "perf harness on {} (scale {:.2}, {} threads requested, {} available)",
        dataset.name,
        opts.scale,
        opts.threads,
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    );

    // Profiling overhead is measured first, while the process is quiet:
    // the later sections spin up thread pools and churn the heap, which
    // inflates run-to-run jitter well past the 5% bar this section asserts.
    println!("profiling the training tape…");
    let profile = time_profile(&dataset, &opts);
    println!(
        "  {} batches, {} nodes: {:.1}% coverage (hottest {}), overhead {:+.1}% \
         ({:.3}s off / {:.3}s on), identical: {}",
        profile.batches,
        profile.tape_nodes,
        profile.coverage * 100.0,
        profile.hottest_op,
        profile.overhead_ratio * 100.0,
        profile.unprofiled_seconds,
        profile.profiled_seconds,
        profile.outputs_identical
    );
    assert!(
        profile.outputs_identical,
        "arming the kernel profiler changed a loss or gradient bit — profiling must \
         observe, never participate"
    );
    assert!(
        profile.coverage >= 0.90,
        "hot-op table attributes only {:.1}% of the tape-execution bracket (bar: 90%) — \
         a kernel path is missing its profiler hook",
        profile.coverage * 100.0
    );
    assert!(
        profile.overhead_ratio < 0.05,
        "kernel profiling adds {:.1}% wall time (bar: 5%)",
        profile.overhead_ratio * 100.0
    );

    println!("timing subgraph extraction…");
    let extraction = time_extraction(&dataset, &graph, opts.threads);
    println!(
        "  dense/serial {:.3}s  sparse/{}t {:.3}s  speedup {:.2}x  identical: {}",
        extraction.baseline.seconds,
        opts.threads,
        extraction.current.seconds,
        extraction.speedup,
        extraction.outputs_identical
    );

    println!("timing one training epoch…");
    let train_epoch = time_train_epoch(&dataset, &opts);
    println!(
        "  dense/serial {:.2}s  sparse/{}t {:.2}s  speedup {:.2}x  identical loss: {}",
        train_epoch.baseline.seconds,
        opts.threads,
        train_epoch.current.seconds,
        train_epoch.speedup,
        train_epoch.outputs_identical
    );

    println!("timing full evaluation…");
    let (eval, batched, eval_queries, result) = time_eval(&dataset, &graph, &opts);
    println!(
        "  tape+dense/serial {:.2}s  batched+sparse/{}t {:.2}s  speedup {:.2}x  \
         identical metrics: {}  ({} queries, {:.1}/s)",
        eval.baseline.seconds,
        opts.threads,
        eval.current.seconds,
        eval.speedup,
        eval.outputs_identical,
        eval_queries,
        result.timing.queries_per_second
    );
    println!(
        "  batched engine vs per-candidate: {:.2}s -> {:.2}s  speedup {:.2}x  \
         identical metrics: {}",
        batched.baseline.seconds,
        batched.current.seconds,
        batched.speedup,
        batched.outputs_identical
    );

    println!("timing tape static analysis…");
    let tapecheck = time_tapecheck(&dataset, &opts);
    println!(
        "  {} node(s): cold {:.4}s, cached {:.6}s/iter vs {:.4}s/tape build \
         (overhead {:.4}x, hit rate {:.2})",
        tapecheck.tape_nodes,
        tapecheck.cold_analysis_seconds,
        tapecheck.cached_analysis_seconds,
        tapecheck.tape_build_seconds,
        tapecheck.amortized_overhead_ratio,
        tapecheck.cache_hit_rate
    );
    assert!(
        (tapecheck.cache_hit_rate - 1.0).abs() < f64::EPSILON,
        "structurally identical rebuilt tapes missed the analysis cache"
    );
    assert!(
        tapecheck.amortized_overhead_ratio < 0.5,
        "cache-served tape analysis costs {:.3}x of tape recording — overhead is not \
         amortized to noise",
        tapecheck.amortized_overhead_ratio
    );

    println!("timing the serving daemon…");
    let serve = time_serve(&opts);
    println!(
        "  startup {:.3}s  warm p50 {:.5}s  p99 {:.5}s  {:.1} req/s \
         ({} requests from {} clients)  identical: {}",
        serve.startup_seconds,
        serve.warm_p50_latency_seconds,
        serve.warm_p99_latency_seconds,
        serve.throughput_rps,
        serve.requests,
        serve.clients,
        serve.responses_identical
    );
    assert!(
        serve.warm_p99_latency_seconds < serve.startup_seconds,
        "warm p99 request latency ({:.4}s) is not under the one-time startup cost \
         ({:.4}s) — the daemon's warm caches are not paying for themselves",
        serve.warm_p99_latency_seconds,
        serve.startup_seconds
    );

    let report = Report {
        dataset: dataset.name.clone(),
        scale: opts.scale,
        seed: opts.seed,
        threads: opts.threads,
        candidates: opts.candidates,
        epochs: opts.epochs,
        available_parallelism: std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get),
        end_to_end_eval_speedup: eval.speedup,
        extraction,
        train_epoch,
        eval,
        batched,
        tapecheck,
        serve,
        profile,
        eval_queries,
    };
    if let Err(e) = dekg_eval::report::save_json(std::path::Path::new(&opts.out), &report) {
        eprintln!("could not write {}: {e}", opts.out);
        std::process::exit(1);
    }
    println!(
        "end-to-end eval speedup {:.2}x — report written to {}",
        report.end_to_end_eval_speedup, opts.out
    );
    assert!(
        report.extraction.outputs_identical
            && report.train_epoch.outputs_identical
            && report.eval.outputs_identical
            && report.batched.outputs_identical
            && report.serve.responses_identical,
        "parallel/sparse/batched/served pipeline diverged from its baseline"
    );
}
