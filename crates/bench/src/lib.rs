#![warn(missing_docs)]

//! Shared harness for the experiment binaries.
//!
//! Every binary regenerates one table or figure of the paper (see
//! `DESIGN.md` for the index). The harness provides:
//!
//! * [`ExperimentOpts`] — a tiny flag parser (`--scale`, `--seed`,
//!   `--candidates`, `--epochs`, `--raw`, `--split`, `--models`,
//!   `--runs`, `--out`),
//! * the model [`zoo`] — building and training any evaluated model by
//!   name,
//! * [`run_models_on_dataset`] — the train-then-evaluate sweep behind
//!   Table III / Fig. 5 / Fig. 6.
//!
//! The defaults run the *scaled* protocol documented in
//! `EXPERIMENTS.md` (profiles scaled by `--scale`, ranking against
//! `--candidates` sampled negatives); `--scale 1 --candidates 0`
//! reproduces the paper's full protocol if you have the patience.

use dekg_baselines::{
    ConvE, EmbeddingConfig, Gen, Grail, Mean, NeuralLp, RotatE, RuleN, SubgraphModelConfig, Tact,
    TransE,
};
use dekg_core::{Ablation, DekgIlp, DekgIlpConfig, InferenceGraph, TrainReport, TrainableModel};
use dekg_datasets::{
    generate, DatasetProfile, DekgDataset, MixRatio, RawKg, SplitKind, SynthConfig, TestMix,
};
use dekg_eval::{evaluate, EvalResult, ProtocolConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

/// Command-line options shared by the experiment binaries.
#[derive(Debug, Clone)]
pub struct ExperimentOpts {
    /// Profile scale factor in `(0, 1]`.
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Sampled ranking candidates (`0` = full candidate set).
    pub candidates: usize,
    /// Epoch override for the GNN-based models (embedding models train
    /// `8×` this number — they are far cheaper per epoch).
    pub epochs: usize,
    /// Raw-KG filter (empty = all three).
    pub raws: Vec<RawKg>,
    /// Split filter (empty = all three).
    pub splits: Vec<SplitKind>,
    /// Model filter (empty = the full Table III roster).
    pub models: Vec<String>,
    /// Independent repetitions averaged per cell (the paper uses 5).
    pub runs: usize,
    /// Where to drop JSON results.
    pub out_dir: String,
}

impl Default for ExperimentOpts {
    fn default() -> Self {
        ExperimentOpts {
            scale: 0.08,
            seed: 1,
            candidates: 30,
            epochs: 8,
            raws: vec![],
            splits: vec![],
            models: vec![],
            runs: 1,
            out_dir: "results".into(),
        }
    }
}

impl ExperimentOpts {
    /// Parses `std::env::args`, panicking with a usage message on
    /// malformed input (these are experiment drivers, not services).
    pub fn from_args() -> Self {
        let mut opts = Self::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            let value = |i: usize| -> &str {
                args.get(i + 1).unwrap_or_else(|| panic!("flag {flag} needs a value"))
            };
            match flag {
                "--scale" => opts.scale = value(i).parse().expect("--scale f64"),
                "--seed" => opts.seed = value(i).parse().expect("--seed u64"),
                "--candidates" => opts.candidates = value(i).parse().expect("--candidates usize"),
                "--epochs" => opts.epochs = value(i).parse().expect("--epochs usize"),
                "--runs" => opts.runs = value(i).parse().expect("--runs usize"),
                "--out" => opts.out_dir = value(i).to_owned(),
                "--raw" => {
                    opts.raws.push(match value(i) {
                        "fb" | "fb15k-237" => RawKg::Fb15k237,
                        "nell" | "nell-995" => RawKg::Nell995,
                        "wn" | "wn18rr" => RawKg::Wn18rr,
                        other => panic!("unknown raw KG {other:?} (fb|nell|wn)"),
                    });
                }
                "--split" => {
                    opts.splits.push(match value(i) {
                        "eq" => SplitKind::Eq,
                        "mb" => SplitKind::Mb,
                        "me" => SplitKind::Me,
                        other => panic!("unknown split {other:?} (eq|mb|me)"),
                    });
                }
                "--models" => {
                    opts.models = value(i).split(',').map(str::to_owned).collect();
                }
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --scale F --seed N --candidates N --epochs N --runs N \
                         --raw fb|nell|wn --split eq|mb|me --models a,b,c --out DIR"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other:?} (try --help)"),
            }
            i += 2;
        }
        assert!(opts.scale > 0.0 && opts.scale <= 1.0, "--scale must be in (0, 1]");
        opts
    }

    /// The raw KGs to sweep.
    pub fn raw_kgs(&self) -> Vec<RawKg> {
        if self.raws.is_empty() {
            RawKg::all().to_vec()
        } else {
            self.raws.clone()
        }
    }

    /// The splits to sweep.
    pub fn split_kinds(&self) -> Vec<SplitKind> {
        if self.splits.is_empty() {
            SplitKind::all().to_vec()
        } else {
            self.splits.clone()
        }
    }

    /// The models to run (Table III roster by default).
    pub fn model_names(&self) -> Vec<String> {
        if self.models.is_empty() {
            zoo::TABLE3_MODELS.iter().map(ToString::to_string).collect()
        } else {
            self.models.clone()
        }
    }

    /// Generates the scaled dataset for one `(raw, split)` cell.
    pub fn dataset(&self, raw: RawKg, split: SplitKind, run: usize) -> DekgDataset {
        let profile = DatasetProfile::table2(raw, split).scaled(self.scale);
        let mut cfg =
            SynthConfig::for_profile(profile, self.seed ^ (run as u64).wrapping_mul(0xA5A5));
        // Enough held-out links to satisfy every mix ratio at a usable
        // size without exploding evaluation time.
        cfg.num_test_enclosing = cfg.num_test_enclosing.clamp(40, 120);
        cfg.num_test_bridging = cfg.num_test_bridging.clamp(40, 120);
        generate(&cfg)
    }

    /// The ranking protocol for this options set.
    pub fn protocol(&self) -> ProtocolConfig {
        let mut p = if self.candidates == 0 {
            ProtocolConfig::default()
        } else {
            ProtocolConfig::sampled(self.candidates)
        };
        p.seed = self.seed;
        p.threads = std::thread::available_parallelism().map_or(1, |n| n.get().min(8));
        p
    }

    /// Saves a JSON result under the output directory.
    pub fn save_json(&self, name: &str, value: &impl Serialize) {
        let path = std::path::Path::new(&self.out_dir).join(name);
        if let Err(e) = dekg_eval::report::save_json(&path, value) {
            eprintln!("warning: could not save {}: {e}", path.display());
        }
    }
}

/// Model construction and training by name.
pub mod zoo {
    use super::*;

    /// The Table III roster, in paper order.
    pub const TABLE3_MODELS: [&str; 8] =
        ["TransE", "RotatE", "ConvE", "GEN", "RuleN", "Grail", "TACT", "DEKG-ILP"];

    /// The Fig. 6 ablation roster.
    pub const ABLATION_MODELS: [&str; 4] = ["DEKG-ILP", "DEKG-ILP-R", "DEKG-ILP-C", "DEKG-ILP-N"];

    /// Builds and trains one model by its table name.
    ///
    /// # Panics
    /// On unknown names.
    pub fn build_and_train(
        name: &str,
        dataset: &DekgDataset,
        opts: &ExperimentOpts,
        rng: &mut ChaCha8Rng,
    ) -> (Box<dyn TrainableModel>, TrainReport) {
        let gnn_epochs = opts.epochs;
        let embed_epochs = opts.epochs * 8;
        let embed = EmbeddingConfig { epochs: embed_epochs, ..EmbeddingConfig::quick() };
        let sub = SubgraphModelConfig { epochs: gnn_epochs, ..SubgraphModelConfig::quick() };
        let ilp =
            |ablation| DekgIlpConfig { epochs: gnn_epochs, ablation, ..DekgIlpConfig::quick() };

        let mut model: Box<dyn TrainableModel> = match name {
            "TransE" => Box::new(TransE::new(embed, dataset, rng)),
            "RotatE" => Box::new(RotatE::new(embed, dataset, rng)),
            "ConvE" => Box::new(ConvE::new(
                dekg_baselines::conve::ConvEConfig {
                    embed: EmbeddingConfig { epochs: embed_epochs / 2, ..EmbeddingConfig::quick() },
                    ..dekg_baselines::conve::ConvEConfig::quick()
                },
                dataset,
                rng,
            )),
            "GEN" => Box::new(Gen::new(
                EmbeddingConfig { epochs: embed_epochs / 2, ..EmbeddingConfig::quick() },
                dataset,
                rng,
            )),
            "MEAN" => Box::new(Mean::new(
                EmbeddingConfig { epochs: embed_epochs / 2, ..EmbeddingConfig::quick() },
                dataset,
                rng,
            )),
            "Neural LP" => Box::new(NeuralLp::new(Default::default())),
            "RuleN" => Box::new(RuleN::new(Default::default())),
            "Grail" => Box::new(Grail::new(sub, dataset, rng)),
            "TACT" => Box::new(Tact::new(sub, dataset, rng)),
            "DEKG-ILP" => Box::new(DekgIlp::new(ilp(Ablation::full()), dataset, rng)),
            "DEKG-ILP-R" => Box::new(DekgIlp::new(ilp(Ablation::without_semantic()), dataset, rng)),
            "DEKG-ILP-C" => {
                Box::new(DekgIlp::new(ilp(Ablation::without_contrastive()), dataset, rng))
            }
            "DEKG-ILP-N" => {
                Box::new(DekgIlp::new(ilp(Ablation::without_improved_labeling()), dataset, rng))
            }
            other => panic!("unknown model {other:?}"),
        };
        let report = model.fit(dataset, rng);
        (model, report)
    }
}

/// One model's evaluation on one dataset cell.
#[derive(Debug, Clone, Serialize)]
pub struct ModelCell {
    /// Model name.
    pub model: String,
    /// Dataset name.
    pub dataset: String,
    /// Metrics on the mixed test set and per link class.
    pub result: EvalResult,
    /// Training summary.
    pub train: TrainSummary,
    /// Parameter count.
    pub parameters: usize,
}

/// Serializable slice of a [`TrainReport`].
#[derive(Debug, Clone, Serialize)]
pub struct TrainSummary {
    /// Epochs run.
    pub epochs: usize,
    /// First-epoch mean loss.
    pub initial_loss: f32,
    /// Last-epoch mean loss.
    pub final_loss: f32,
    /// Wall-clock seconds.
    pub seconds: f64,
}

impl From<TrainReport> for TrainSummary {
    fn from(r: TrainReport) -> Self {
        TrainSummary {
            epochs: r.epochs,
            initial_loss: r.initial_loss,
            final_loss: r.final_loss,
            seconds: r.seconds,
        }
    }
}

/// Trains and evaluates `model_names` on one dataset cell, averaging
/// over `opts.runs` repetitions with different seeds (the paper
/// averages 5 runs).
pub fn run_models_on_dataset(
    raw: RawKg,
    split: SplitKind,
    model_names: &[String],
    opts: &ExperimentOpts,
) -> Vec<ModelCell> {
    let mut per_model: Vec<Vec<ModelCell>> = vec![Vec::new(); model_names.len()];
    for run in 0..opts.runs.max(1) {
        let dataset = opts.dataset(raw, split, run);
        let graph = InferenceGraph::from_dataset(&dataset);
        let mix = TestMix::build(&dataset, MixRatio::for_split(split));
        let protocol = opts.protocol();
        for (m, name) in model_names.iter().enumerate() {
            let mut rng = ChaCha8Rng::seed_from_u64(opts.seed ^ ((run as u64) << 32) ^ (m as u64));
            let (model, report) = zoo::build_and_train(name, &dataset, opts, &mut rng);
            let result = evaluate(model.as_ref(), &graph, &dataset, &mix, &protocol);
            per_model[m].push(ModelCell {
                model: name.clone(),
                dataset: dataset.name.clone(),
                result,
                train: report.into(),
                parameters: model.num_parameters(),
            });
        }
    }
    per_model.into_iter().map(average_cells).collect()
}

/// Averages repeated runs of the same model/dataset cell.
fn average_cells(cells: Vec<ModelCell>) -> ModelCell {
    assert!(!cells.is_empty());
    if cells.len() == 1 {
        return cells.into_iter().next().expect("non-empty");
    }
    let n = cells.len() as f64;
    let mut out = cells[0].clone();
    let avg = |f: &dyn Fn(&ModelCell) -> f64| cells.iter().map(f).sum::<f64>() / n;
    let merge = |get: fn(&EvalResult) -> &dekg_eval::Metrics| {
        let mrr = avg(&|c| get(&c.result).mrr);
        let hits = [
            avg(&|c| get(&c.result).hits[0]),
            avg(&|c| get(&c.result).hits[1]),
            avg(&|c| get(&c.result).hits[2]),
        ];
        (mrr, hits)
    };
    let (mrr, hits) = merge(|r| &r.overall);
    out.result.overall.mrr = mrr;
    out.result.overall.hits = hits;
    let (mrr, hits) = merge(|r| &r.enclosing);
    out.result.enclosing.mrr = mrr;
    out.result.enclosing.hits = hits;
    let (mrr, hits) = merge(|r| &r.bridging);
    out.result.bridging.mrr = mrr;
    out.result.bridging.hits = hits;
    out.train.seconds = avg(&|c| c.train.seconds);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_builds_every_table3_model() {
        let opts = ExperimentOpts { scale: 0.02, epochs: 1, ..ExperimentOpts::default() };
        let dataset = opts.dataset(RawKg::Wn18rr, SplitKind::Eq, 0);
        for name in zoo::TABLE3_MODELS {
            let mut rng = ChaCha8Rng::seed_from_u64(0);
            let (model, report) = zoo::build_and_train(name, &dataset, &opts, &mut rng);
            assert_eq!(model.name(), name);
            assert!(report.final_loss.is_finite(), "{name}");
        }
    }

    #[test]
    fn zoo_builds_every_ablation() {
        let opts = ExperimentOpts { scale: 0.02, epochs: 1, ..ExperimentOpts::default() };
        let dataset = opts.dataset(RawKg::Wn18rr, SplitKind::Eq, 0);
        for name in zoo::ABLATION_MODELS {
            let mut rng = ChaCha8Rng::seed_from_u64(0);
            let (model, _) = zoo::build_and_train(name, &dataset, &opts, &mut rng);
            assert_eq!(model.name(), name);
        }
    }

    #[test]
    fn run_models_produces_cells() {
        let opts =
            ExperimentOpts { scale: 0.02, epochs: 1, candidates: 8, ..ExperimentOpts::default() };
        let cells = run_models_on_dataset(
            RawKg::Wn18rr,
            SplitKind::Eq,
            &["TransE".to_owned(), "RuleN".to_owned()],
            &opts,
        );
        assert_eq!(cells.len(), 2);
        for c in &cells {
            assert!(c.result.overall.count > 0);
        }
    }

    #[test]
    fn averaging_runs_is_stable() {
        let opts = ExperimentOpts {
            scale: 0.02,
            epochs: 1,
            candidates: 8,
            runs: 2,
            ..ExperimentOpts::default()
        };
        let cells =
            run_models_on_dataset(RawKg::Wn18rr, SplitKind::Eq, &["RuleN".to_owned()], &opts);
        assert_eq!(cells.len(), 1);
        assert!(cells[0].result.overall.mrr.is_finite());
    }
}
