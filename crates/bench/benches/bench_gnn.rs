//! Microbenchmarks for the R-GCN subgraph encoder: forward pass cost
//! versus layer count and basis decomposition (the DESIGN.md ablation
//! knob).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dekg_core::InferenceGraph;
use dekg_datasets::{generate, DatasetProfile, RawKg, SplitKind, SynthConfig};
use dekg_gnn::{LabelingMode, SubgraphEncoder, SubgraphEncoderConfig};
use dekg_kg::{ExtractionMode, Subgraph, SubgraphExtractor};
use dekg_tensor::{Graph, ParamStore};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn test_subgraph() -> (Subgraph, usize) {
    let profile = DatasetProfile::table2(RawKg::Fb15k237, SplitKind::Eq).scaled(0.12);
    let dataset = generate(&SynthConfig::for_profile(profile, 3));
    let graph = InferenceGraph::from_dataset(&dataset);
    let link = dataset.test_enclosing[0];
    let ex = SubgraphExtractor::new(&graph.adjacency, 2, ExtractionMode::Union);
    (ex.extract(link.head, link.tail, None), dataset.num_relations)
}

fn encoder(
    num_relations: usize,
    layers: usize,
    bases: Option<usize>,
) -> (SubgraphEncoder, ParamStore) {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let mut params = ParamStore::new();
    let enc = SubgraphEncoder::new(
        SubgraphEncoderConfig {
            num_relations,
            hops: 2,
            dim: 32,
            layers,
            attn_dim: 8,
            edge_dropout: 0.5,
            labeling: LabelingMode::Improved,
            num_bases: bases,
        },
        "enc",
        &mut params,
        &mut rng,
    );
    (enc, params)
}

fn bench_forward_layers(c: &mut Criterion) {
    let (sg, num_relations) = test_subgraph();
    let mut group = c.benchmark_group("rgcn_forward_layers");
    for layers in [1usize, 2, 3] {
        let (enc, params) = encoder(num_relations, layers, None);
        group.bench_with_input(BenchmarkId::from_parameter(layers), &layers, |b, _| {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            b.iter(|| {
                let mut g = Graph::new();
                black_box(enc.encode(&mut g, &params, &sg, false, &mut rng));
            });
        });
    }
    group.finish();
}

fn bench_basis_decomposition(c: &mut Criterion) {
    let (sg, num_relations) = test_subgraph();
    let mut group = c.benchmark_group("rgcn_bases");
    for (name, bases) in [("full", None), ("bases4", Some(4))] {
        let (enc, params) = encoder(num_relations, 3, bases);
        group.bench_function(name, |b| {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            b.iter(|| {
                let mut g = Graph::new();
                black_box(enc.encode(&mut g, &params, &sg, false, &mut rng));
            });
        });
    }
    group.finish();
}

fn bench_forward_backward(c: &mut Criterion) {
    let (sg, num_relations) = test_subgraph();
    let (enc, params) = encoder(num_relations, 2, None);
    c.bench_function("rgcn_forward_backward", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        b.iter(|| {
            let mut g = Graph::new();
            let out = enc.encode(&mut g, &params, &sg, true, &mut rng);
            let sq = g.square(out.graph);
            let loss = g.sum_all(sq);
            black_box(g.backward(loss));
        });
    });
}

fn fast_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench_forward_layers, bench_basis_decomposition, bench_forward_backward
}
criterion_main!(benches);
