//! RuleN mining cost versus graph scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dekg_baselines::RuleN;
use dekg_core::TrainableModel;
use dekg_datasets::{generate, DatasetProfile, RawKg, SplitKind, SynthConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_mining(c: &mut Criterion) {
    let mut group = c.benchmark_group("rulen_mining");
    group.sample_size(10);
    for scale in [0.05f64, 0.1, 0.2] {
        let profile = DatasetProfile::table2(RawKg::Fb15k237, SplitKind::Eq).scaled(scale);
        let data = generate(&SynthConfig::for_profile(profile, 6));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{scale}")),
            &data,
            |b, data| {
                b.iter(|| {
                    let mut rng = ChaCha8Rng::seed_from_u64(0);
                    let mut model = RuleN::new(Default::default());
                    model.fit(data, &mut rng);
                    black_box(model.num_rules());
                });
            },
        );
    }
    group.finish();
}

fn fast_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench_mining
}
criterion_main!(benches);
